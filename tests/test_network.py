"""Integration tests for the cycle-level network simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.config import NetworkConfig
from repro.network import IdealNetwork, Network
from repro.traffic import UniformRandom


def drain(net, limit=20000):
    for _ in range(limit):
        if net.is_idle():
            return True
        net.step()
    return net.is_idle()


def send_and_wait(net, src, dst, size=1):
    pkt = net.make_packet(src, dst, size)
    net.offer(pkt)
    assert drain(net)
    return pkt


class TestSinglePacket:
    def test_delivery_and_fields(self, mesh4):
        net = Network(mesh4)
        pkt = send_and_wait(net, 0, 15)
        assert pkt.deliver_time > 0
        assert pkt.inject_time == 0
        assert pkt.hops == 6  # minimal path on 4x4 corner to corner

    def test_zero_load_latency_formula(self, mesh4):
        # H hops * (tr + link) + source-router pipeline (tr); the tail
        # ejects the cycle it clears the destination pipeline.
        for tr in (1, 2, 4):
            net = Network(mesh4.with_(router_delay=tr))
            pkt = send_and_wait(net, 0, 15)
            hops = 6
            assert pkt.latency == hops * (tr + 1) + tr

    def test_zero_load_ratio_matches_paper(self, mesh8):
        """§III-B: tr 1->2 and 1->4 scale zero-load latency 1.5x and 2.5x."""
        lats = {}
        for tr in (1, 2, 4):
            net = Network(mesh8.with_(router_delay=tr))
            lats[tr] = send_and_wait(net, 0, 63).latency
        # pure hop component dominates for a 14-hop path
        assert lats[2] / lats[1] == pytest.approx(1.5, abs=0.05)
        assert lats[4] / lats[1] == pytest.approx(2.5, abs=0.1)

    def test_multiflit_serialization(self, mesh4):
        net1 = Network(mesh4)
        lat1 = send_and_wait(net1, 0, 15, size=1).latency
        net4 = Network(mesh4)
        lat4 = send_and_wait(net4, 0, 15, size=4).latency
        assert lat4 == lat1 + 3  # 3 extra flits pipeline behind the head

    def test_self_packet_delivered_locally(self, mesh4):
        net = Network(mesh4)
        pkt = send_and_wait(net, 5, 5)
        assert pkt.hops == 0
        assert pkt.deliver_time >= 0

    def test_torus_link_delay_visible(self, torus4):
        net = Network(torus4)
        pkt = send_and_wait(net, 0, 1)
        # 1 hop * (tr=1 + link=2) + source pipeline tr
        assert pkt.latency == 3 + 1


class TestConservation:
    def _run_random(self, cfg, cycles=1500, rate=0.1, seed=3):
        net = Network(cfg)
        gen = rng_mod.make_generator(seed, "load")
        pat = UniformRandom(net.num_nodes)
        offered = 0
        offered_flits = 0
        for _ in range(cycles):
            for src in np.nonzero(gen.random(net.num_nodes) < rate)[0]:
                src = int(src)
                size = 1 + int(gen.random() < 0.3) * 3
                net.offer(net.make_packet(src, pat.dest(src, gen), size))
                offered += 1
                offered_flits += size
            net.step()
        assert drain(net)
        return net, offered, offered_flits

    def test_all_packets_delivered_mesh(self, mesh4):
        net, offered, offered_flits = self._run_random(mesh4)
        assert net.total_packets_delivered == offered
        assert net.total_flits_delivered == offered_flits
        assert int(net.flit_ejections.sum()) == offered_flits
        assert int(net.flit_injections.sum()) == offered_flits

    def test_all_packets_delivered_torus(self, torus4):
        net, offered, _ = self._run_random(torus4)
        assert net.total_packets_delivered == offered

    def test_all_packets_delivered_ring(self, ring16):
        net, offered, _ = self._run_random(ring16, rate=0.05)
        assert net.total_packets_delivered == offered

    @pytest.mark.parametrize("routing", ["val", "ma", "romm"])
    def test_all_packets_delivered_each_routing(self, routing):
        cfg = NetworkConfig(k=4, n=2, routing=routing)
        net, offered, _ = self._run_random(cfg)
        assert net.total_packets_delivered == offered

    def test_age_arbitration_conserves(self):
        cfg = NetworkConfig(k=4, n=2, arbitration="age")
        net, offered, _ = self._run_random(cfg)
        assert net.total_packets_delivered == offered

    def test_buffers_empty_after_drain(self, mesh4):
        net, _, _ = self._run_random(mesh4)
        assert net.buffered_flits() == 0
        for router in net.routers:
            assert not router.busy
            for port in range(router.num_ports):
                if router.vc_owner[port] is None:
                    continue
                for vc in range(router.num_vcs):
                    assert router.vc_owner[port][vc] is None

    def test_credits_restored_after_drain(self, mesh4):
        net, _, _ = self._run_random(mesh4)
        for _ in range(5):  # flush in-flight credit events
            net.step()
        for router in net.routers:
            for port in range(router.num_ports):
                creds = router.credits[port]
                if creds is None:
                    continue
                assert all(c == mesh4.vc_buffer_size for c in creds)


class TestDeterminism:
    def _run(self, cfg, seed):
        net = Network(cfg)
        gen = rng_mod.make_generator(seed, "det")
        pat = UniformRandom(net.num_nodes)
        log = []
        for _ in range(800):
            for src in np.nonzero(gen.random(net.num_nodes) < 0.15)[0]:
                src = int(src)
                net.offer(net.make_packet(src, pat.dest(src, gen), 1))
            for pkt in net.step():
                log.append((pkt.pid, pkt.deliver_time))
        return log

    def test_same_seed_bit_identical(self, mesh4):
        assert self._run(mesh4, 5) == self._run(mesh4, 5)

    def test_different_seed_differs(self, mesh4):
        assert self._run(mesh4, 5) != self._run(mesh4, 6)


class TestBackpressure:
    def test_injection_stalls_when_vcs_full(self, mesh4):
        # Saturate one destination column; the source queue must grow
        # (closed-loop feedback) rather than flits being dropped.
        net = Network(mesh4)
        for _ in range(50):
            net.offer(net.make_packet(0, 3, 4))
        net.step()
        assert sum(len(q) for q in net.src_queues[0]) > 40
        assert drain(net, 30000)
        assert net.total_packets_delivered == 50

    def test_hotspot_all_delivered(self, mesh4):
        # All nodes hammer node 0: ejection bandwidth (1 flit/cycle) is the
        # bottleneck; everything still arrives.
        net = Network(mesh4)
        offered = 0
        for src in range(1, 16):
            for _ in range(10):
                net.offer(net.make_packet(src, 0, 1))
                offered += 1
        assert drain(net, 5000)
        assert net.total_packets_delivered == offered
        # ejection is serialized: runtime at least one cycle per flit
        assert net.now >= offered

    def test_deep_buffers_speed_up_hotspot_drain(self):
        times = {}
        for q in (1, 16):
            cfg = NetworkConfig(k=4, n=2, vc_buffer_size=q)
            net = Network(cfg)
            for src in range(1, 16):
                for _ in range(8):
                    net.offer(net.make_packet(src, src ^ 5, 4))
            assert drain(net, 40000)
            times[q] = net.now
        assert times[16] < times[1]


class TestIdealNetwork:
    def test_fixed_latency(self):
        net = IdealNetwork(16)
        pkt = net.make_packet(0, 9, 4)
        net.offer(pkt)
        assert net.step() == []  # cycle 0: the packet is in flight
        assert net.step() == [pkt]  # cycle 1: fixed 1-cycle latency
        assert pkt.latency == 1

    def test_infinite_bandwidth(self):
        net = IdealNetwork(16)
        pkts = [net.make_packet(0, 1, 1) for _ in range(100)]
        for p in pkts:
            net.offer(p)
        net.step()
        delivered = net.step()
        assert len(delivered) == 100
        assert net.is_idle()

    def test_counters(self):
        net = IdealNetwork(4)
        net.offer(net.make_packet(2, 3, 5))
        net.run(2)
        assert net.total_flits_delivered == 5
        assert net.flit_injections[2] == 5
        assert net.flit_ejections[3] == 5

    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            IdealNetwork(4, latency=0)

    def test_config_rejects_ideal_network_class(self):
        with pytest.raises(ValueError):
            Network(NetworkConfig(topology="ideal"))
