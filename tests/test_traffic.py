"""Tests for traffic patterns and size distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.config import NetworkConfig
from repro.traffic import (
    Bimodal,
    BitComplement,
    BitReversal,
    FixedSize,
    Neighbor,
    SingleFlit,
    Tornado,
    Transpose,
    UniformRandom,
    build_pattern,
    build_sizes,
)


class TestUniformRandom:
    def test_never_self(self):
        p = UniformRandom(16)
        gen = rng_mod.make_generator(1, "t")
        for src in range(16):
            for _ in range(50):
                assert p.dest(src, gen) != src

    def test_covers_all_destinations(self):
        p = UniformRandom(8)
        gen = rng_mod.make_generator(1, "t")
        seen = {p.dest(3, gen) for _ in range(500)}
        assert seen == set(range(8)) - {3}

    def test_roughly_uniform(self):
        p = UniformRandom(8)
        gen = rng_mod.make_generator(1, "t")
        counts = np.zeros(8)
        for _ in range(7000):
            counts[p.dest(0, gen)] += 1
        assert counts[0] == 0
        assert counts[1:].min() > 7000 / 7 * 0.8

    def test_vectorized_matches_semantics(self):
        p = UniformRandom(16)
        gen = rng_mod.make_generator(2, "t")
        d = p.dests(5, 1000, gen)
        assert (d != 5).all()
        assert d.min() >= 0 and d.max() < 16

    def test_not_permutation(self):
        assert not UniformRandom(8).is_permutation()


class TestTranspose:
    def test_mapping(self):
        p = Transpose(16)  # 4x4
        gen = rng_mod.make_generator(1, "t")
        # (1,0) = node 1 -> (0,1) = node 4
        assert p.dest(1, gen) == 4
        assert p.dest(4, gen) == 1

    def test_diagonal_fixed_points(self):
        p = Transpose(16)
        gen = rng_mod.make_generator(1, "t")
        for d in (0, 5, 10, 15):
            assert p.dest(d, gen) == d

    def test_is_involution(self):
        p = Transpose(64)
        t = p.table
        assert (t[t] == np.arange(64)).all()

    def test_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(8)


class TestBitPatterns:
    def test_complement(self):
        p = BitComplement(16)
        gen = rng_mod.make_generator(1, "t")
        assert p.dest(0, gen) == 15
        assert p.dest(5, gen) == 10

    def test_reversal(self):
        p = BitReversal(16)
        gen = rng_mod.make_generator(1, "t")
        assert p.dest(0b0001, gen) == 0b1000
        assert p.dest(0b1010, gen) == 0b0101

    def test_reversal_is_involution(self):
        t = BitReversal(64).table
        assert (t[t] == np.arange(64)).all()

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BitComplement(12)
        with pytest.raises(ValueError):
            BitReversal(12)


class TestOtherPermutations:
    def test_neighbor(self):
        p = Neighbor(8)
        gen = rng_mod.make_generator(1, "t")
        assert p.dest(0, gen) == 1
        assert p.dest(7, gen) == 0

    def test_tornado_half_way(self):
        p = Tornado(64)
        gen = rng_mod.make_generator(1, "t")
        assert p.dest(0, gen) == 31

    @given(st.sampled_from([4, 16, 64]))
    @settings(max_examples=10, deadline=None)
    def test_all_permutations_are_bijections(self, n):
        for cls in (Transpose, BitComplement, BitReversal, Neighbor, Tornado):
            table = cls(n).table
            assert sorted(table.tolist()) == list(range(n))


class TestSizes:
    def test_single(self):
        s = SingleFlit()
        gen = rng_mod.make_generator(1, "t")
        assert all(s.draw(gen) == 1 for _ in range(10))
        assert s.mean == 1.0

    def test_fixed(self):
        s = FixedSize(4)
        gen = rng_mod.make_generator(1, "t")
        assert s.draw(gen) == 4
        assert s.mean == 4.0
        with pytest.raises(ValueError):
            FixedSize(0)

    def test_bimodal_values_and_mean(self):
        s = Bimodal(1, 4, long_fraction=0.5)
        gen = rng_mod.make_generator(1, "t")
        draws = [s.draw(gen) for _ in range(4000)]
        assert set(draws) == {1, 4}
        assert np.mean(draws) == pytest.approx(2.5, abs=0.15)
        assert s.mean == pytest.approx(2.5)

    def test_bimodal_extremes(self):
        gen = rng_mod.make_generator(1, "t")
        assert Bimodal(1, 4, long_fraction=0.0).draw(gen) == 1
        assert Bimodal(1, 4, long_fraction=1.0).draw(gen) == 4

    def test_bimodal_validation(self):
        with pytest.raises(ValueError):
            Bimodal(4, 1)
        with pytest.raises(ValueError):
            Bimodal(1, 4, long_fraction=2.0)


class TestRegistry:
    def test_build_pattern_each_name(self):
        for name, cls in (
            ("uniform_random", UniformRandom),
            ("transpose", Transpose),
            ("bit_complement", BitComplement),
            ("bit_reversal", BitReversal),
            ("neighbor", Neighbor),
            ("tornado", Tornado),
        ):
            cfg = NetworkConfig(traffic=name)
            assert isinstance(build_pattern(cfg), cls)

    def test_pattern_size_matches_config(self):
        p = build_pattern(NetworkConfig(k=4, n=2))
        assert p.num_nodes == 16

    def test_build_sizes(self):
        assert isinstance(build_sizes(NetworkConfig()), SingleFlit)
        bi = build_sizes(NetworkConfig(packet_size="bimodal"))
        assert isinstance(bi, Bimodal)
        assert bi.long == 4
