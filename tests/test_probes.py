"""Unit tests for the pluggable probe/metrics layer."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.engine import DrainSink, SimulationEngine
from repro.core.openloop import OpenLoopSimulator
from repro.core.probes import (
    PROBE_REGISTRY,
    ChannelUtilizationProbe,
    InFlightProbe,
    InjectionStallProbe,
    Probe,
    ProbeSet,
    VCOccupancyProbe,
    build_probes,
)
from repro.network.network import Network


@pytest.fixture
def cfg() -> NetworkConfig:
    return NetworkConfig(k=4, n=2, seed=3)


def run_openloop(cfg, probes, rate=0.2):
    sim = OpenLoopSimulator(
        cfg, warmup=100, measure=300, drain_limit=2000, probes=probes
    )
    return sim.run(rate)


class _RandomSource:
    """Minimal engine injector: Bernoulli traffic for a fixed span, then stop."""

    def __init__(self, gen, rate: float, cycles: int, size: int = 1):
        self.gen = gen
        self.rate = rate
        self.cycles = cycles
        self.size = size

    def inject(self, engine) -> None:
        net = engine.network
        if net.now >= self.cycles:
            return
        draws = self.gen.random(net.num_nodes)
        for src in np.flatnonzero(draws < self.rate):
            dst = int(self.gen.integers(net.num_nodes))
            net.offer(net.make_packet(int(src), dst, self.size))

    def done(self, engine) -> bool:
        return engine.network.now >= self.cycles


def drive_network(cfg, probes, *, rate=0.2, cycles=400, seed=123, size=1):
    """Run a raw Network under the engine until it fully drains."""
    net = Network(cfg)
    source = _RandomSource(np.random.default_rng(seed), rate, cycles, size)
    engine = SimulationEngine(
        net, source, DrainSink(), max_cycles=cycles + 5000, probes=probes
    )
    outcome = engine.run()
    assert outcome.completed
    return net, outcome


class TestBuildProbes:
    def test_all(self):
        probes = build_probes("all")
        assert {p.name for p in probes} == set(
            PROBE_REGISTRY[k]().name for k in PROBE_REGISTRY
        )

    def test_subset_and_whitespace(self):
        probes = build_probes(" channel , stall ")
        assert [type(p) for p in probes] == [
            ChannelUtilizationProbe,
            InjectionStallProbe,
        ]

    def test_iterable(self):
        probes = build_probes(["vc", "inflight"])
        assert [type(p) for p in probes] == [VCOccupancyProbe, InFlightProbe]

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown probe"):
            build_probes("channel,teleport")

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ProbeSet(build_probes("channel"), interval=0)


class TestChannelUtilizationProbe:
    def test_ejected_reconciles_with_delivered_flits(self, cfg):
        """Sum of per-window ejected/delivered flits == the network's
        cumulative total_flits_delivered over the run (acceptance invariant)."""
        probes = ProbeSet(build_probes("channel"), interval=100)
        net, _ = drive_network(cfg, probes)
        recs = probes.records
        assert recs
        assert net.total_flits_delivered > 0
        total_delivered = sum(r["delivered_flits"] for r in recs)
        total_ejected = sum(r["ejected_flits"] for r in recs)
        per_node_total = sum(sum(r["per_node_ejected"]) for r in recs)
        assert total_delivered == net.total_flits_delivered
        assert total_ejected == net.total_flits_delivered
        assert per_node_total == net.total_flits_delivered

    def test_link_counts_consistent(self, cfg):
        probes = ProbeSet(build_probes("channel"), interval=100)
        res = run_openloop(cfg, probes)
        for r in res.probe_records:
            assert r["link_flits"] == sum(r["per_channel"])
            assert 0.0 <= r["link_util"] <= 1.0
            assert r["max_link_util"] >= 0.0
            # a 4x4 mesh has 48 directed channels
            assert len(r["per_channel"]) == 48

    def test_hook_removed_on_detach(self, cfg):
        probes = ProbeSet(build_probes("channel"), interval=100)
        net, _ = drive_network(cfg, probes, cycles=100)
        assert net._flit_hook is None


class TestVCOccupancyProbe:
    def test_occupancy_bounded_by_buffer_depth(self, cfg):
        """No single VC FIFO can ever hold more than vc_buffer_size flits."""
        probes = ProbeSet(build_probes("vc"), interval=50)
        res = run_openloop(cfg, probes, rate=0.35)  # push toward saturation
        assert res.probe_records
        for r in res.probe_records:
            assert 0 <= r["vc_occ_peak"] <= cfg.vc_buffer_size
            assert 0.0 <= r["vc_occ_mean"] <= cfg.vc_buffer_size
            assert all(0 <= v <= cfg.vc_buffer_size for v in r["per_node_vc_peak"])

    def test_occupancy_nonzero_under_load(self, cfg):
        probes = ProbeSet(build_probes("vc"), interval=50)
        res = run_openloop(cfg, probes, rate=0.35)
        assert max(r["vc_occ_peak"] for r in res.probe_records) > 0


class TestInjectionStallProbe:
    def test_stall_windows_sum_to_network_counter(self, cfg):
        probes = ProbeSet(build_probes("stall"), interval=100)
        # saturating multi-flit load -> source backpressure must happen
        net, _ = drive_network(cfg, probes, rate=0.6, cycles=400, size=4)
        total = sum(r["injection_stalls"] for r in probes.records)
        assert total == net.injection_stalls
        assert total > 0


class TestInFlightProbe:
    def test_series_sane(self, cfg):
        probes = ProbeSet(build_probes("inflight"), interval=100)
        _, _ = drive_network(cfg, probes)
        for r in probes.records:
            assert 0.0 <= r["in_flight_avg"] <= r["in_flight_peak"]
            assert r["in_flight_last"] <= r["in_flight_peak"]
        # the run fully drains, so the final sample is zero packets in flight
        assert probes.records[-1]["in_flight_last"] == 0


class TestWindowing:
    def test_window_bounds_partition_the_run(self, cfg):
        probes = ProbeSet(build_probes("channel"), interval=128)
        res = run_openloop(cfg, probes)
        recs = res.probe_records
        assert recs[0]["window_start"] == 0
        for prev, cur in zip(recs, recs[1:]):
            assert cur["window_start"] == prev["window_end"]
        for r in recs[:-1]:
            assert r["cycles"] == 128
        assert sum(r["cycles"] for r in recs) == recs[-1]["window_end"]


class TestJsonlRoundTrip:
    def test_records_stream_and_round_trip(self, cfg, tmp_path):
        """Acceptance: probe records are valid JSONL readable by analysis.io."""
        from repro.analysis.io import read_jsonl

        out = tmp_path / "probes.jsonl"
        probes = ProbeSet(build_probes("all"), interval=100, out=out)
        res = run_openloop(cfg, probes)
        loaded = read_jsonl(out)
        assert loaded == res.probe_records

    def test_closedloop_round_trip(self, cfg, tmp_path):
        from repro.analysis.io import read_jsonl

        out = tmp_path / "probes.jsonl"
        probes = ProbeSet(build_probes("channel,stall"), interval=50, out=out)
        res = BatchSimulator(
            cfg, batch_size=30, max_outstanding=2, probes=probes
        ).run()
        loaded = read_jsonl(out)
        assert loaded == res.probe_records
        assert sum(r["delivered_flits"] for r in loaded) > 0

    def test_heatmap_renders_from_round_tripped_records(self, cfg, tmp_path):
        from repro.analysis import probe_heatmap
        from repro.analysis.io import read_jsonl

        out = tmp_path / "probes.jsonl"
        probes = ProbeSet(build_probes("channel"), interval=100, out=out)
        run_openloop(cfg, probes)
        art = probe_heatmap(read_jsonl(out))
        assert "per_node_ejected" in art
        assert "|" in art


class TestBackendEquivalence:
    """Probes must see the exact same simulation on either backend."""

    @pytest.mark.parametrize("kinds", ["all", "channel,stall"])
    def test_windowed_records_identical_across_backends(self, cfg, kinds, tmp_path):
        """Every windowed JSONL record — per-channel counts included — is
        identical between the object and vectorized backends."""
        from repro.analysis.io import read_jsonl

        records = {}
        for backend in ("object", "vectorized"):
            out = tmp_path / f"{backend}.jsonl"
            probes = ProbeSet(build_probes(kinds), interval=50, out=out)
            res = run_openloop(cfg.with_(backend=backend), probes, rate=0.3)
            assert res.probe_records
            assert read_jsonl(out) == res.probe_records
            records[backend] = res.probe_records
        assert records["object"] == records["vectorized"]

    def test_vectorized_hook_removed_on_detach(self, cfg):
        from repro.network.factory import build_network

        net = build_network(cfg.with_(backend="vectorized"))
        probes = ProbeSet(build_probes("channel"), interval=50)
        probes.begin(net)
        probes.finish(net)
        assert net._flit_hook is None


class TestZeroCostWhenDisabled:
    def test_no_flit_hook_without_probes(self, cfg):
        net, _ = drive_network(cfg, None, cycles=100)
        assert net._flit_hook is None

    @pytest.mark.parametrize("backend", ["object", "vectorized"])
    def test_disabled_probes_allocate_nothing(self, cfg, backend):
        """With probes=None no code from probes.py allocates during a run,
        on either network backend."""
        import repro.core.probes as probes_mod

        sim = OpenLoopSimulator(
            cfg.with_(backend=backend), warmup=50, measure=100, drain_limit=500
        )
        tracemalloc.start()
        try:
            sim.run(0.1)
            snap = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        probe_allocs = snap.filter_traces(
            [tracemalloc.Filter(True, probes_mod.__file__)]
        ).statistics("filename")
        assert probe_allocs == []


class TestIdealNetworkProbes:
    def test_probes_work_on_contention_free_fabric(self):
        """The ideal network has no channels/VCs; per-node deltas still flow."""
        from repro.network.ideal import IdealNetwork

        net = IdealNetwork(num_nodes=16)
        probes = ProbeSet(build_probes("all"), interval=10)
        probes.begin(net)
        for t in range(30):
            if t < 20:
                net.offer(net.make_packet(src=t % 16, dst=(t + 5) % 16, size=2))
            net.step()
            probes.on_cycle(net, t, [])
        recs = probes.finish(net)
        assert recs
        assert sum(r["ejected_flits"] for r in recs) == net.total_flits_delivered
        for r in recs:
            assert r["link_flits"] == 0
            assert r["vc_occ_peak"] == 0


class TestCustomProbe:
    def test_subclass_contributes_fields(self, cfg):
        class DeliveryCounter(Probe):
            name = "deliveries"

            def __init__(self):
                self.count = 0

            def on_cycle(self, net, now, delivered):
                self.count += len(delivered)

            def flush(self, net, window_cycles):
                fields = {"packets_delivered": self.count}
                self.count = 0
                return fields

        probes = ProbeSet([DeliveryCounter()], interval=100)
        net, _ = drive_network(cfg, probes)
        total = sum(r["packets_delivered"] for r in probes.records)
        assert total == net.total_packets_delivered
