"""Tests for the closed-loop batch model and its extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.osmodel import OSModel
from repro.core.reply import FixedReply, ProbabilisticReply


class TestBaselineBatch:
    def test_completes_and_counts(self, mesh4):
        res = BatchSimulator(mesh4, batch_size=20, max_outstanding=2).run()
        assert res.completed
        assert res.total_requests == 20 * 16
        assert res.runtime > 0
        assert (res.node_finish >= 0).all()
        assert res.runtime == res.node_finish.max()

    def test_m1_runtime_is_serialized_round_trips(self, mesh4):
        # With m=1 each operation is a full round trip; runtime/b should be
        # close to the average request+reply latency.
        res = BatchSimulator(mesh4, batch_size=50, max_outstanding=1).run()
        avg_rtt = 2 * 8.5  # ~ 2 * zero-load latency on 4x4
        assert res.normalized_runtime == pytest.approx(avg_rtt, rel=0.3)

    def test_runtime_decreases_with_m(self, mesh4):
        runtimes = [
            BatchSimulator(mesh4, batch_size=40, max_outstanding=m).run().runtime
            for m in (1, 2, 4, 16)
        ]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_throughput_saturates_at_high_m(self, mesh4):
        t8 = BatchSimulator(mesh4, batch_size=150, max_outstanding=8).run().throughput
        t32 = BatchSimulator(mesh4, batch_size=150, max_outstanding=32).run().throughput
        # m beyond the bandwidth-delay product buys little (Fig. 2)
        assert t32 < t8 * 1.35

    def test_packet_throughput_formula(self, mesh4):
        res = BatchSimulator(mesh4, batch_size=30, max_outstanding=4).run()
        assert res.packet_throughput == pytest.approx(2 * 30 / res.runtime)
        # single-flit packets: flit throughput equals the paper's θ=(2b)/T
        assert res.throughput == pytest.approx(res.packet_throughput, rel=1e-6)

    def test_runtime_scales_with_tr_at_m1(self, mesh4):
        # §III-B: at m=1 runtime tracks zero-load latency ratios.
        r1 = BatchSimulator(mesh4, batch_size=40, max_outstanding=1).run().runtime
        r2 = BatchSimulator(
            mesh4.with_(router_delay=2), batch_size=40, max_outstanding=1
        ).run().runtime
        assert r2 / r1 == pytest.approx(1.5, abs=0.12)

    def test_deterministic(self, mesh4):
        a = BatchSimulator(mesh4, batch_size=25, max_outstanding=2).run()
        b = BatchSimulator(mesh4, batch_size=25, max_outstanding=2).run()
        assert a.runtime == b.runtime
        assert (a.node_finish == b.node_finish).all()

    def test_incomplete_run_flagged(self, mesh4):
        res = BatchSimulator(
            mesh4, batch_size=100, max_outstanding=1, max_cycles=200
        ).run()
        assert not res.completed
        assert res.runtime == 200

    def test_mesh_corner_finishes_last(self, mesh8):
        # Fig. 7a: on the edge-asymmetric mesh, corner nodes finish last.
        res = BatchSimulator(mesh8, batch_size=60, max_outstanding=4).run()
        finish = res.node_finish.reshape(8, 8)
        corners = [finish[0, 0], finish[0, 7], finish[7, 0], finish[7, 7]]
        center = finish[3:5, 3:5].mean()
        assert max(corners) > center

    def test_validation(self, mesh4):
        with pytest.raises(ValueError):
            BatchSimulator(mesh4, batch_size=0)
        with pytest.raises(ValueError):
            BatchSimulator(mesh4, max_outstanding=0)
        with pytest.raises(ValueError):
            BatchSimulator(mesh4, nar=0.0)
        with pytest.raises(ValueError):
            BatchSimulator(mesh4, nar=1.5)


class TestNarInjectionModel:
    def test_nar_one_is_baseline(self, mesh4):
        base = BatchSimulator(mesh4, batch_size=30, max_outstanding=2).run()
        nar1 = BatchSimulator(mesh4, batch_size=30, max_outstanding=2, nar=1.0).run()
        assert base.runtime == nar1.runtime

    def test_low_nar_slows_runtime(self, mesh4):
        fast = BatchSimulator(mesh4, batch_size=30, max_outstanding=4, nar=1.0).run()
        slow = BatchSimulator(mesh4, batch_size=30, max_outstanding=4, nar=0.05).run()
        assert slow.runtime > 2 * fast.runtime

    def test_low_nar_hides_router_delay(self, mesh4):
        """§IV-C1: at small NAR and large m the network is not the
        bottleneck, so tr barely affects runtime."""
        ratios = {}
        for nar in (1.0, 0.04):
            r1 = BatchSimulator(
                mesh4, batch_size=40, max_outstanding=16, nar=nar
            ).run().runtime
            r4 = BatchSimulator(
                mesh4.with_(router_delay=4), batch_size=40, max_outstanding=16, nar=nar
            ).run().runtime
            ratios[nar] = r4 / r1
        assert ratios[0.04] < ratios[1.0]
        assert ratios[0.04] < 1.35

    def test_nar_runtime_lower_bound(self, mesh4):
        # b operations at rate nar take at least b/nar cycles.
        res = BatchSimulator(mesh4, batch_size=30, max_outstanding=8, nar=0.1).run()
        assert res.runtime >= 30 / 0.1 * 0.8


class TestReplyModel:
    def test_fixed_reply_adds_latency(self, mesh4):
        base = BatchSimulator(mesh4, batch_size=30, max_outstanding=1).run()
        slow = BatchSimulator(
            mesh4, batch_size=30, max_outstanding=1, reply_model=FixedReply(50)
        ).run()
        # m=1: every operation serializes, so runtime grows by ~b*50
        assert slow.runtime - base.runtime == pytest.approx(30 * 50, rel=0.1)

    def test_memory_latency_dampens_tr_impact(self, mesh4):
        """§IV-C2 / Fig. 17: long memory latencies dominate the round trip
        and mute router-delay effects."""
        ratios = {}
        for reply in (None, FixedReply(300)):
            r1 = BatchSimulator(
                mesh4, batch_size=30, max_outstanding=1, reply_model=reply
            ).run().runtime
            r4 = BatchSimulator(
                mesh4.with_(router_delay=4),
                batch_size=30,
                max_outstanding=1,
                reply_model=reply,
            ).run().runtime
            ratios[reply is None] = r4 / r1
        assert ratios[False] < ratios[True]

    def test_probabilistic_same_mean_lower_throughput_than_fixed(self, mesh4):
        """Fig. 17(b) vs (c): same mean memory latency, but the long-tail
        probabilistic model reduces the achieved injection rate."""
        fixed = BatchSimulator(
            mesh4, batch_size=60, max_outstanding=4, reply_model=FixedReply(50)
        ).run()
        prob = BatchSimulator(
            mesh4,
            batch_size=60,
            max_outstanding=4,
            reply_model=ProbabilisticReply(20, 300, 0.1),
        ).run()
        assert prob.throughput < fixed.throughput


class TestOSModel:
    def test_static_extra_increases_requests(self, mesh4):
        os_model = OSModel(static_fraction=0.5, timer_rate=0.0, timer_batch=0)
        res = BatchSimulator(
            mesh4, batch_size=20, max_outstanding=2, os_model=os_model
        ).run()
        assert res.completed
        assert res.os_requests == 10 * 16
        assert res.total_requests == 30 * 16

    def test_timer_adds_runtime_proportional_traffic(self, mesh4):
        os_model = OSModel(static_fraction=0.0, timer_rate=0.01, timer_batch=2)
        slow = BatchSimulator(
            mesh4, batch_size=40, max_outstanding=1, os_model=os_model
        ).run()
        base = BatchSimulator(mesh4, batch_size=40, max_outstanding=1).run()
        assert slow.os_requests > 0
        assert slow.runtime > base.runtime
        # total OS work scales with runtime: roughly timer_batch per node per
        # 1/timer_rate cycles
        expected = slow.runtime * 0.01 * 2 * 16
        assert slow.os_requests == pytest.approx(expected, rel=0.5)

    def test_faster_timer_means_more_kernel_traffic(self, mesh4):
        """§V: the 75 MHz clock sees ~40x more interrupts per cycle than
        3 GHz, hence far more kernel traffic."""
        res = {}
        for rate in (0.02, 0.0005):
            os_model = OSModel(static_fraction=0.0, timer_rate=rate, timer_batch=2)
            res[rate] = BatchSimulator(
                mesh4, batch_size=40, max_outstanding=2, os_model=os_model
            ).run()
        assert res[0.02].os_requests > 5 * res[0.0005].os_requests
        assert res[0.02].runtime > res[0.0005].runtime


class TestOSModelConfig:
    def test_timer_interval(self):
        assert OSModel(timer_rate=0.004).timer_interval == 250
        assert OSModel(timer_rate=0.0).timer_interval == 0
        assert OSModel(timer_batch=0).timer_interval == 0

    def test_static_extra(self):
        assert OSModel(static_fraction=0.58).static_extra(1000) == 580
        assert OSModel(static_fraction=0.0).static_extra(1000) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OSModel(static_fraction=-0.1)
        with pytest.raises(ValueError):
            OSModel(timer_rate=1.5)
        with pytest.raises(ValueError):
            OSModel(timer_batch=-1)
        with pytest.raises(ValueError):
            OSModel(os_nar=0.0)
