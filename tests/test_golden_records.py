"""Golden-record regression tests for the unified simulation engine.

Every value here was captured from the pre-engine drivers (each owning its
own hand-rolled cycle loop) immediately before they were refactored onto
``repro.core.engine.SimulationEngine``.  The refactor's contract is that
seeded results are *bit-identical*, so these assert exact equality — scalar
counters with ``==``, float statistics with ``==``, and whole arrays via a
sha256 digest of their raw bytes.

If one of these fails, the engine's per-cycle order of operations (phase
transitions -> stop check -> inject -> step -> deliver) has drifted from
the historical drivers; that is a behaviour change, not a tolerance issue.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.barrier import BarrierSimulator
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.core.osmodel import OSModel
from repro.core.reply import FixedReply
from repro.core.tracedriven import (
    TraceDrivenSimulator,
    capture_batch_trace,
    capture_openloop_trace,
)


def digest(arr) -> str:
    """First 16 hex chars of sha256 over the array's raw bytes."""
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


@pytest.fixture
def cfg() -> NetworkConfig:
    return NetworkConfig(k=4, n=2, seed=7)


BACKENDS = ("object", "vectorized")


class TestOpenLoopGolden:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_run_bit_identical(self, cfg, backend):
        res = OpenLoopSimulator(
            cfg.with_(backend=backend), warmup=200, measure=400, drain_limit=4000
        ).run(0.15)
        assert res.num_measured == 961
        assert res.avg_latency == 6.45681581685744
        assert res.worst_node_latency == 7.938461538461539
        assert res.throughput == 0.1509375
        assert res.avg_hops == 2.660770031217482
        assert res.saturated is False
        assert digest(res.latencies) == "f37300b4a16e0db9"
        assert digest(res.per_node_latency) == "24b418683089b767"


class TestTopologyGolden:
    """Torus and ring goldens, pinned for both backends.

    Captured from the object backend at the commit introducing the
    vectorized backend; both backends must reproduce them bit-exactly, so
    any drift in the dateline VC classes or wrap-around routing — on either
    implementation — fails here.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_torus_balanced_dateline(self, backend):
        cfg = NetworkConfig(topology="torus", k=4, n=2, seed=7, backend=backend)
        res = OpenLoopSimulator(cfg, warmup=200, measure=400, drain_limit=4000).run(0.15)
        assert res.num_measured == 961
        assert res.avg_latency == 7.502601456815817
        assert res.throughput == 0.15046875
        assert res.avg_hops == 2.1238293444328824
        assert digest(res.latencies) == "12677a27bd26b03c"
        assert digest(res.per_node_latency) == "1395e92d74df763f"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_torus_strict_dateline(self, backend):
        cfg = NetworkConfig(
            topology="torus", k=4, n=2, seed=7, dateline="strict", backend=backend
        )
        res = OpenLoopSimulator(cfg, warmup=200, measure=400, drain_limit=4000).run(0.15)
        assert res.num_measured == 961
        assert res.avg_latency == 7.49843912591051
        assert res.throughput == 0.15046875
        assert digest(res.latencies) == "079b79b04f72e189"
        assert digest(res.per_node_latency) == "2077a8405b4acd53"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ring(self, backend):
        cfg = NetworkConfig(topology="ring", k=4, n=2, seed=7, backend=backend)
        res = OpenLoopSimulator(cfg, warmup=200, measure=400, drain_limit=4000).run(0.15)
        assert res.num_measured == 961
        assert res.avg_latency == 14.183142559833506
        assert res.throughput == 0.15015625
        assert res.avg_hops == 4.235171696149844
        assert digest(res.latencies) == "96735525268ecb6a"
        assert digest(res.per_node_latency) == "fcb8ce3ed1b1f3ab"


class TestTrafficClassGolden:
    """2-class strict-priority mesh, pinned for both backends.

    Captured from the object backend at the commit introducing first-class
    traffic classes; both backends must reproduce every per-packet latency
    and class id bit-exactly, including the per-class summary views.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_class_priority_mesh(self, backend):
        cfg = NetworkConfig(
            k=4,
            n=2,
            seed=7,
            backend=backend,
            arbitration="priority",
            classes="user:share=3+os:priority=1",
        )
        res = OpenLoopSimulator(cfg, warmup=200, measure=400, drain_limit=4000).run(0.3)
        assert res.num_measured == 1978
        assert res.avg_latency == 6.983822042467138
        assert res.throughput == 0.3078125
        assert res.num_classes == 2
        assert res.per_class_avg_latency.tolist() == [7.06, 6.7447698744769875]
        assert res.per_class_throughput.tolist() == [0.234375, 0.0746875]
        assert digest(res.latencies) == "53d526892db94336"
        assert digest(res.class_ids) == "6bb11aff0dad55bc"


class TestClosedLoopGolden:
    def test_baseline_batch(self, cfg):
        res = BatchSimulator(cfg, batch_size=30, max_outstanding=2).run()
        assert res.completed is True
        assert res.runtime == 271
        assert res.throughput == 0.22140221402214022
        assert res.total_requests == 480
        assert res.avg_request_latency == 6.6375
        assert digest(res.node_finish) == "16e05388a4dbcb4e"

    def test_enhanced_models(self, cfg):
        """NAR gating + fixed reply latency + OS background traffic."""
        res = BatchSimulator(
            cfg,
            batch_size=20,
            max_outstanding=2,
            nar=0.4,
            reply_model=FixedReply(25),
            os_model=OSModel(
                static_fraction=0.2, timer_rate=0.002, timer_batch=3, os_nar=0.6
            ),
        ).run()
        assert res.completed is True
        assert res.runtime == 619
        assert res.throughput == 0.08299676898222941
        assert res.total_requests == 411
        assert res.os_requests == 91
        assert res.avg_request_latency == 6.591240875912408
        assert digest(res.node_finish) == "635aaa20a967faf3"


class TestBarrierGolden:
    def test_two_rounds(self, cfg):
        res = BarrierSimulator(cfg, batch_size=40, rounds=2).run()
        assert res.completed is True
        assert res.runtime == 142
        assert res.throughput == 0.5633802816901409
        assert res.round_times.tolist() == [72, 142]


class TestTraceDrivenGolden:
    def test_openloop_trace_replay(self, cfg):
        trace = capture_openloop_trace(cfg, 0.12, cycles=600, seed=11)
        assert len(trace) == 1138
        assert trace.total_flits == 1138
        res = TraceDrivenSimulator(cfg, trace).run()
        assert res.completed is True
        assert res.runtime == 609
        assert res.packets == 1138
        assert res.avg_latency == 6.451669595782074
        assert res.throughput == 0.11678981937602627

    def test_batch_trace_replay(self, cfg):
        trace = capture_batch_trace(cfg, batch_size=15, max_outstanding=2, seed=5)
        assert len(trace) == 480
        res = TraceDrivenSimulator(cfg, trace).run()
        assert res.runtime == 158
        assert res.avg_latency == 6.516666666666667


class TestExecDrivenGolden:
    def test_cmp_real_network(self):
        from repro.execdriven import BENCHMARKS, CmpSystem

        spec = BENCHMARKS["blackscholes"](3000)
        res = CmpSystem(spec, timer_interval=10000, seed=3).run()
        assert res.completed is True
        assert res.cycles == 5134
        assert res.instructions == 49776
        assert res.total_flits == 2590
        assert res.requests == 518
        assert res.flits_by_class == {0: 1675, 1: 915}
        assert res.requests_by_kind == {
            "user": 335,
            "kernel_burst": 183,
            "kernel_timer": 0,
        }
        assert res.l2_accesses == 518
        assert res.l2_misses == 1
        assert res.interrupts == 0
        assert res.mshr_stall_cycles == 0
        assert res.kernel_instructions == 1776
        assert digest(res.traffic_matrix) == "1e67db3c5a0a3626"
        assert digest(res.timeline) == "a0be003413538cba"
        assert digest(res.logical_matrix) == "7728ef1cb37a4fd9"

    def test_cmp_ideal_network(self):
        from repro.execdriven import BENCHMARKS, CmpSystem

        res = CmpSystem(BENCHMARKS["fft"](2000), ideal=True, seed=3).run()
        assert res.completed is True
        assert res.cycles == 11798
        assert res.total_flits == 5840
        assert res.requests == 1168
        assert digest(res.traffic_matrix) == "83a6c0d698c3f327"


class TestProbesDoNotPerturb:
    """Attaching probes must observe, never change, the simulation."""

    def test_openloop_identical_with_probes(self, cfg):
        from repro.core.probes import ProbeSet, build_probes

        probes = ProbeSet(build_probes("all"), interval=50)
        res = OpenLoopSimulator(
            cfg, warmup=200, measure=400, drain_limit=4000, probes=probes
        ).run(0.15)
        assert res.avg_latency == 6.45681581685744
        assert res.throughput == 0.1509375
        assert digest(res.latencies) == "f37300b4a16e0db9"
        assert res.probe_records  # and it actually recorded something

    def test_batch_identical_with_probes(self, cfg):
        from repro.core.probes import ProbeSet, build_probes

        probes = ProbeSet(build_probes("channel,vc"), interval=64)
        res = BatchSimulator(
            cfg, batch_size=30, max_outstanding=2, probes=probes
        ).run()
        assert res.runtime == 271
        assert digest(res.node_finish) == "16e05388a4dbcb4e"
        assert res.probe_records
