"""Tests for the execution-driven CMP substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.config import CmpConfig, NetworkConfig
from repro.execdriven import (
    BENCHMARKS,
    KERNEL,
    USER,
    AddressSpace,
    CmpSystem,
    HomeTile,
    MixtureStream,
    PhaseSpec,
    blackscholes,
    characterize,
    derive_batch_params,
    fft,
    lu,
    timer_interval_cycles,
)
from repro.execdriven.kernel import TIMER_INTERVAL_3GHZ, TIMER_INTERVAL_75MHZ


class TestAddressSpace:
    def test_pools_disjoint(self):
        sp = AddressSpace(16)
        hot = sp.hot_line(3, 5)
        mid = sp.mid_line(5)
        cold = sp.cold_line(5)
        assert len({hot, mid, cold}) == 3

    def test_hot_lines_private_per_core(self):
        sp = AddressSpace(16, hot_lines=64)
        a = {sp.hot_line(0, i) for i in range(64)}
        b = {sp.hot_line(1, i) for i in range(64)}
        assert not (a & b)

    def test_home_tile_interleaves(self):
        sp = AddressSpace(16)
        homes = {sp.home_tile(sp.mid_line(off)) for off in range(64)}
        assert homes == set(range(16))

    def test_block_producer_structured(self):
        sp = AddressSpace(4, producer_block=8)
        line0 = sp.mid_line(0)
        line1 = sp.mid_line(8)
        assert sp.producer_of(line0) == 0
        assert sp.producer_of(line1) == 1

    def test_random_producer_covers_cores(self):
        sp = AddressSpace(16, producer_random=True, producer_block=8)
        producers = {sp.producer_of(sp.mid_line(off)) for off in range(0, 4096, 8)}
        assert len(producers) == 16


class TestMixtureStream:
    def _stream(self, p_mid, p_cold, **kw):
        sp = AddressSpace(16, mid_lines=1024, cold_lines=65536)
        gen = rng_mod.make_generator(1, "stream")
        return sp, MixtureStream(sp, 2, p_mid=p_mid, p_cold=p_cold, rng=gen, **kw)

    def test_pure_hot(self):
        sp, st = self._stream(0.0, 0.0)
        lines = {st.next_line() for _ in range(200)}
        hot = {sp.hot_line(2, i) for i in range(sp.hot_lines)}
        assert lines <= hot

    def test_mixture_fractions(self):
        sp, st = self._stream(0.3, 0.1)
        mid = cold = 0
        n = 5000
        for _ in range(n):
            line = st.next_line()
            if line >= 3 << 40:
                cold += 1
            elif line >= 2 << 40:
                mid += 1
        assert mid / n == pytest.approx(0.3, abs=0.03)
        assert cold / n == pytest.approx(0.1, abs=0.02)

    def test_partner_bias_shapes_logical_traffic(self):
        sp = AddressSpace(16, mid_lines=4096, producer_block=16)
        gen = rng_mod.make_generator(1, "s")
        st = MixtureStream(
            sp, 2, p_mid=1.0, p_cold=0.0, rng=gen, partners=(3,), partner_bias=0.5
        )
        producers = [sp.producer_of(st.next_line()) for _ in range(2000)]
        counts = np.bincount(producers, minlength=16)
        # ~half to self, ~half to partner 3
        assert counts[2] > 600 and counts[3] > 600
        assert counts[2] + counts[3] > 1800

    def test_validation(self):
        sp = AddressSpace(4)
        gen = rng_mod.make_generator(1, "s")
        with pytest.raises(ValueError):
            MixtureStream(sp, 0, p_mid=0.8, p_cold=0.4, rng=gen)
        with pytest.raises(ValueError):
            MixtureStream(sp, 0, p_mid=0.1, p_cold=0.1, rng=gen, partner_bias=2.0)


class TestHomeTile:
    def test_hit_miss_latencies(self):
        tile = HomeTile(0, l2_lines=64, l2_assoc=8, l2_latency=10, memory_latency=300)
        lat, hit = tile.service(16)
        assert not hit and lat == 310
        lat, hit = tile.service(16)
        assert hit and lat == 10

    def test_per_class_miss_rates(self):
        tile = HomeTile(0, l2_lines=64, l2_assoc=8, l2_latency=10, memory_latency=300)
        tile.service(1, traffic_class=USER)   # miss
        tile.service(1, traffic_class=USER)   # hit
        tile.service(2, traffic_class=KERNEL)  # miss
        assert tile.miss_rate(USER) == pytest.approx(0.5)
        assert tile.miss_rate(KERNEL) == 1.0
        assert tile.miss_rate() == pytest.approx(2 / 3)

    def test_interleave_indexing_spreads_sets(self):
        tile = HomeTile(0, l2_lines=64, l2_assoc=2, l2_latency=1, memory_latency=1, interleave=16)
        # lines 0,16,32,... all home here; with interleave they must hit
        # distinct sets rather than thrash one
        for i in range(32):
            tile.service(i * 16)
        misses_before = tile.l2.stats.misses
        for i in range(32):
            assert tile.service(i * 16)[1], "warm line should hit"
        assert tile.l2.stats.misses == misses_before


class TestBenchmarkSpecs:
    def test_all_factories_build(self):
        for name, factory in BENCHMARKS.items():
            spec = factory(5000)
            assert spec.name == name
            assert spec.total_instructions() > 5000  # bursts add to main
            assert spec.timer_handler.traffic_class == KERNEL

    def test_phase_structure_kernel_user_kernel(self):
        spec = lu(5000)
        classes = [p.traffic_class for p in spec.phases]
        assert classes == [KERNEL, USER, KERNEL]

    def test_scaled_preserves_rates(self):
        spec = fft(10000)
        small = spec.scaled(0.1)
        assert small.total_instructions() == pytest.approx(
            spec.total_instructions() * 0.1, rel=0.01
        )
        assert small.phases[1].p_mid == spec.phases[1].p_mid
        assert small.blocking_fraction == spec.blocking_fraction

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            PhaseSpec("bad", -1, 0.3, 0.1, 0.1)
        with pytest.raises(ValueError):
            PhaseSpec("bad", 10, 0.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            PhaseSpec("bad", 10, 0.3, 0.8, 0.4)

    def test_l2_miss_targets_ordered(self):
        # fft's cold share must dominate lu's, which dominates barnes'
        def cold_share(spec):
            main = spec.phases[1]
            return main.p_cold / (main.p_mid + main.p_cold)

        assert cold_share(fft(1000)) > cold_share(lu(1000)) > cold_share(blackscholes(1000))


class TestTimerIntervals:
    def test_frequency_ratio(self):
        assert TIMER_INTERVAL_3GHZ / TIMER_INTERVAL_75MHZ == pytest.approx(40, rel=0.01)

    def test_custom(self):
        assert timer_interval_cycles(1e9, timer_hz=100, scale=1000) == 10000
        with pytest.raises(ValueError):
            timer_interval_cycles(0)


class TestCmpSystem:
    def _small(self, spec, **kw):
        return CmpSystem(spec, ideal=kw.pop("ideal", True), seed=2, **kw)

    def test_runs_to_completion_ideal(self):
        res = self._small(blackscholes(2000)).run()
        assert res.completed
        assert res.instructions == 16 * blackscholes(2000).total_instructions()
        assert res.cycles > 2000
        assert res.total_flits > 0

    def test_runs_to_completion_mesh(self):
        res = CmpSystem(blackscholes(1500), ideal=False, seed=2).run()
        assert res.completed
        assert res.nar > 0

    def test_mesh_slower_than_ideal(self):
        ideal = CmpSystem(lu(1500), ideal=True, seed=2).run()
        mesh = CmpSystem(lu(1500), ideal=False, seed=2).run()
        assert mesh.cycles > ideal.cycles

    def test_request_reply_flit_accounting(self):
        res = self._small(blackscholes(1500)).run()
        # every request (1 flit) gets a data reply (4 flits)
        assert res.total_flits == res.requests * 5

    def test_traffic_matrix_conserves(self):
        res = self._small(blackscholes(1500)).run()
        assert res.traffic_matrix.sum() == res.total_flits

    def test_kernel_and_user_traffic_present(self):
        res = self._small(lu(1500)).run()
        assert res.flits_by_class[USER] > 0
        assert res.flits_by_class[KERNEL] > 0
        assert 0 < res.kernel_fraction < 1

    def test_timer_interrupts_fire_and_add_traffic(self):
        base = self._small(lu(1500)).run()
        timer = self._small(lu(1500), timer_interval=500).run()
        assert timer.interrupts > 0
        assert timer.requests_by_kind["kernel_timer"] > 0
        assert base.requests_by_kind["kernel_timer"] == 0
        assert timer.total_flits > base.total_flits

    def test_timer_rate_measured(self):
        res = self._small(lu(1500), timer_interval=500).run()
        assert res.timer_rate == pytest.approx(1 / 500, rel=0.3)

    def test_deterministic(self):
        a = self._small(fft(1000)).run()
        b = self._small(fft(1000)).run()
        assert a.cycles == b.cycles
        assert a.total_flits == b.total_flits

    def test_warm_start_lowers_l2_miss_rate(self):
        warm = CmpSystem(blackscholes(1500), ideal=True, seed=2).run()
        cold = CmpSystem(blackscholes(1500), ideal=True, seed=2, warm_start=False).run()
        assert warm.l2_miss_rate < cold.l2_miss_rate

    def test_blocking_fraction_slows_execution(self):
        spec_fast = blackscholes(1500)
        object.__setattr__(spec_fast, "blocking_fraction", 0.0)
        spec_slow = blackscholes(1500)
        object.__setattr__(spec_slow, "blocking_fraction", 1.0)
        fast = CmpSystem(spec_fast, ideal=True, seed=2).run()
        slow = CmpSystem(spec_slow, ideal=True, seed=2).run()
        assert slow.cycles > fast.cycles

    def test_timeline_covers_run(self):
        res = self._small(blackscholes(1500), timeline_bucket=200).run()
        assert res.timeline.shape[0] == 2
        assert res.timeline.sum() == res.total_flits

    def test_logical_matrix_structured_for_lu(self):
        res = self._small(lu(3000)).run()
        logical = res.logical_matrix
        assert logical.sum() > 0
        # partner bias: diagonal (self-owned blocks) should dominate
        diag = np.trace(logical)
        assert diag > logical.sum() / 16

    def test_actual_traffic_near_uniform_fig13(self):
        """Fig. 13(b): home-tile interleaving makes real traffic far more
        uniform than the logical sharing pattern."""
        res = self._small(lu(3000)).run()

        def row_cv(m):
            m = m.astype(float)
            rows = m.sum(axis=1, keepdims=True)
            rows[rows == 0] = 1
            norm = m / rows
            return norm.std()

        assert row_cv(res.traffic_matrix) < row_cv(res.logical_matrix)


class TestCharacterize:
    def test_characterization_fields(self):
        ch = characterize(blackscholes(1500), seed=3)
        assert ch.ideal_cycles > 0
        assert 0 < ch.nar < 0.5
        assert 0 <= ch.l2_miss_rate <= 1
        assert ch.user_nar > 0 and ch.os_nar > 0
        assert ch.static_kernel_fraction > 0
        assert ch.interrupts == 0

    def test_benchmark_l2_ordering_matches_paper(self):
        # Table III: fft >> lu > blackscholes in L2 miss rate
        miss = {
            name: characterize(BENCHMARKS[name](2500), seed=3).user_l2_miss
            for name in ("fft", "lu", "blackscholes")
        }
        assert miss["fft"] > miss["lu"] > miss["blackscholes"]

    def test_derive_batch_params(self):
        ch = characterize(lu(1500), timer_interval=500, seed=3)
        params = derive_batch_params(ch)
        assert 0 < params["nar"] <= 1
        assert params["os_model"].timer_rate == pytest.approx(ch.timer_rate)
        assert params["os_model"].static_fraction == ch.static_kernel_fraction
        assert params["reply_model"].models[0].l2_miss_rate == ch.user_l2_miss
