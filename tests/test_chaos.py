"""Chaos harness: random worker kills and stalls, verified bit-for-bit.

The self-healing claim is not "the sweep finishes" but "the sweep finishes
with *exactly* the records a quiet serial run would have produced" — the
derived-seed contract makes every re-execution deterministic, so chaos
must be invisible in the data and visible only in the health summary.
These tests inject failures chosen by a seeded RNG into both execution
paths:

* **process pool** (:func:`repro.core.parallel.run_sweep`): runners that
  SIGKILL their own worker process, or raise ``SimulationStalled``, on the
  first attempt of randomly selected victim points;
* **service** (:mod:`repro.service`): workers that drop their connection
  mid-lease (a machine dying) or report a stalled record (a run aborted
  by the watchdog) on victim points, while a healthy sibling keeps
  pulling work.

Every test asserts the final records equal the serial baseline modulo
``wall_seconds``, and that the health summary attributes what happened.
"""

from __future__ import annotations

import functools
import os
import pathlib
import random
import signal
import threading

import pytest

from repro.config import NetworkConfig
from repro.core.parallel import SweepPoint, _failed_record, run_sweep
from repro.core.resilience import SimulationStalled, StallDiagnosis
from repro.service import Controller, ControllerServer, ServiceOptions, Worker, run_remote_sweep

BASE = NetworkConfig(k=4, n=2)
AXES = {"router_delay": (1, 2, 3, 4)}
EXTRA = {"load": (0.1, 0.2)}  # 4 x 2 = 8 points

#: One seed drives every victim choice below; reseeding reshuffles the
#: chaos but never the asserted records.
CHAOS_SEED = 0xC0FFEE


def strip_timing(records):
    return [{k: v for k, v in r.items() if k != "wall_seconds"} for r in records]


def payload_runner(cfg, load=0.0):
    """Deterministic, seed-sensitive outputs; the chaos baseline."""
    return {
        "value": cfg.router_delay * 100 + load,
        "seed_seen": cfg.seed,
    }


def _marker(logdir, cfg, load):
    return pathlib.Path(logdir) / f"tr{cfg.router_delay}-load{load}"


def kill_once_runner(cfg, load=0.0, *, logdir, victims):
    """SIGKILL this worker process on the first attempt of victim points."""
    if cfg.router_delay in victims:
        marker = _marker(logdir, cfg, load)
        if not marker.exists():
            marker.write_text("killed")
            os.kill(os.getpid(), signal.SIGKILL)
    return payload_runner(cfg, load)


def stall_once_runner(cfg, load=0.0, *, logdir, victims):
    """Raise SimulationStalled on the first attempt of victim points."""
    if cfg.router_delay in victims:
        marker = _marker(logdir, cfg, load)
        if not marker.exists():
            marker.write_text("stalled")
            raise SimulationStalled(
                StallDiagnosis(
                    cycle=100, window=100, in_flight=1, delivered_packets=0,
                    buffered_flits=1, queued_packets=0,
                )
            )
    return payload_runner(cfg, load)


def serial_baseline():
    return run_sweep(BASE, AXES, payload_runner, extra_axes=EXTRA)


def pick_victims(count: int, salt: int = 0) -> tuple:
    gen = random.Random(CHAOS_SEED + salt)
    return tuple(gen.sample(list(AXES["router_delay"]), count))


# ---------------------------------------------------------------------------
# process-pool path
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestPoolChaos:
    def test_killed_workers_bit_identical_to_serial(self, tmp_path):
        victims = pick_victims(2, salt=1)
        runner = functools.partial(
            kill_once_runner, logdir=str(tmp_path), victims=victims
        )
        records = run_sweep(
            BASE, AXES, runner, extra_axes=EXTRA, n_workers=2, seed_jitter=True
        )
        assert strip_timing(records) == strip_timing(serial_baseline())
        assert records.health.worker_deaths >= 1
        assert records.health.retried >= len(victims) * len(EXTRA["load"])
        assert records.health.failed == 0

    def test_stalled_points_bit_identical_to_serial(self, tmp_path):
        victims = pick_victims(2, salt=2)
        runner = functools.partial(
            stall_once_runner, logdir=str(tmp_path), victims=victims
        )
        records = run_sweep(
            BASE, AXES, runner, extra_axes=EXTRA, n_workers=2, seed_jitter=True
        )
        assert strip_timing(records) == strip_timing(serial_baseline())
        assert records.health.retried == len(victims) * len(EXTRA["load"])
        assert records.health.failed == 0


# ---------------------------------------------------------------------------
# service path
# ---------------------------------------------------------------------------


class ChaosWorker(Worker):
    """A worker that fails leases for victim points, once per point.

    ``mode="kill"`` drops the connection mid-lease without reporting —
    the transport-level signature of a dead machine; the controller must
    re-queue via its disconnect handling.  ``mode="stall"`` reports a
    ``stalled`` failed record — the watchdog-abort signature; the
    controller must re-queue via the transient-retry policy.  ``chaosed``
    is shared across workers so each victim point fails exactly once
    globally and the retry must succeed.
    """

    def __init__(self, *args, victims=(), chaosed=None, mode="kill", **kwargs):
        super().__init__(*args, **kwargs)
        self.victims = set(victims)
        self.chaosed = chaosed if chaosed is not None else set()
        self.chaos_lock = threading.Lock()
        self.mode = mode

    def _execute_with_heartbeats(self, stream, lease, interval):
        index = lease["index"]
        with self.chaos_lock:
            strike = index in self.victims and index not in self.chaosed
            if strike:
                self.chaosed.add(index)
        if strike:
            if self.mode == "kill":
                stream.close()
                raise ConnectionError("chaos: worker killed mid-lease")
            point = SweepPoint(
                index, dict(lease["overrides"]), dict(lease["kwargs"]), lease["seed"]
            )
            return _failed_record(
                point, "SimulationStalled: chaos-injected stall", kind="stalled"
            )
        return super()._execute_with_heartbeats(stream, lease, interval)


def run_service_chaos(mode: str, victims):
    """One chaotic 2-worker sweep; returns its records."""
    opts = ServiceOptions(
        lease_seconds=30.0, heartbeat_timeout=10.0, fallback_after=None
    )
    stop = threading.Event()
    chaosed: set = set()
    with ControllerServer(Controller(opts)) as server:
        host, port = server.address
        workers = [
            ChaosWorker(
                host, port, name=f"chaos{i}", victims=victims, chaosed=chaosed,
                mode=mode, reconnect_backoff=0.1,
            )
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=w.run, args=(stop,), daemon=True) for w in workers
        ]
        for t in threads:
            t.start()
        try:
            return run_remote_sweep(
                f"{host}:{port}",
                BASE,
                AXES,
                payload_runner,
                extra_axes=EXTRA,
                poll_interval=0.05,
            )
        finally:
            stop.set()


@pytest.mark.slow
class TestServiceChaos:
    def test_killed_worker_bit_identical_to_serial(self):
        gen = random.Random(CHAOS_SEED + 3)
        victims = gen.sample(range(8), 2)  # 2 of the 8 point indices
        records = run_service_chaos("kill", victims)
        assert strip_timing(records) == strip_timing(serial_baseline())
        assert records.health.failed == 0
        assert records.health.worker_deaths >= 1
        assert records.health.retried >= len(victims)

    def test_stalled_worker_bit_identical_to_serial(self):
        gen = random.Random(CHAOS_SEED + 4)
        victims = gen.sample(range(8), 3)
        records = run_service_chaos("stall", victims)
        assert strip_timing(records) == strip_timing(serial_baseline())
        assert records.health.failed == 0
        assert records.health.stalled == 0  # every stall retried successfully
        assert records.health.retried >= len(victims)
