"""Tests for the reporting helpers (tables and ASCII plots)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ascii_plot,
    ascii_scatter,
    format_matrix,
    format_records,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.2346" in out  # default precision 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I")

    def test_special_floats(self):
        out = format_table(["v"], [[float("inf")], [float("nan")]])
        assert "inf" in out and "nan" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatRecords:
    def test_renders_dicts(self):
        recs = [{"tr": 1, "lat": 10.0}, {"tr": 2, "lat": 15.5}]
        out = format_records(recs)
        assert "tr" in out and "15.5" in out

    def test_column_selection(self):
        recs = [{"a": 1, "b": 2}]
        out = format_records(recs, columns=["b"])
        assert "b" in out and "a" not in out.splitlines()[0]

    def test_empty(self):
        assert format_records([], title="empty") == "empty"


class TestFormatMatrix:
    def test_shape_and_shading(self):
        m = np.array([[0.0, 1.0], [0.5, 0.0]])
        out = format_matrix(m)
        lines = out.splitlines()
        assert len(lines) == 2
        assert len(lines[0]) == 4  # two chars per cell
        assert "@" in lines[0]  # the 1.0 cell is darkest
        assert lines[1][0] != " "  # 0.5 cell mid-shade

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            format_matrix(np.arange(4))


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=8,
            title="T",
        )
        assert out.startswith("T")
        assert "o a" in out and "x b" in out

    def test_drops_non_finite(self):
        out = ascii_plot({"a": [(0, 1), (1, float("inf")), (2, 2)]}, width=20, height=6)
        assert "inf" not in out.splitlines()[1]

    def test_all_non_finite(self):
        out = ascii_plot({"a": [(0, float("inf"))]})
        assert "no finite points" in out


class TestAsciiScatter:
    def test_plots_points(self):
        out = ascii_scatter([(1, 1), (2, 2), (3, 2.5)], width=20, height=8)
        assert "o" in out

    def test_diagonal_reference(self):
        out = ascii_scatter([(0, 0), (10, 10)], width=20, height=8, diagonal=True)
        assert "." in out

    def test_empty(self):
        assert "no finite points" in ascii_scatter([])
