"""Tests for the parallel sweep executor (repro.core.parallel).

Pool-mode runners must be module-level functions (picklable), which is why
the runners here live at module scope instead of inline lambdas.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import time

import pytest

from repro import rng
from repro.analysis.io import read_jsonl
from repro.config import NetworkConfig
from repro.core.parallel import (
    _MAX_BACKOFF,
    SweepHealth,
    SweepProgress,
    SweepRecords,
    _backoff_seconds,
    enumerate_points,
    run_sweep,
)
from repro.core.resilience import SimulationStalled, StallDiagnosis
from repro.core.sweep import product_configs, sweep

BASE = NetworkConfig(k=4, n=2)
GRID_AXES = {"router_delay": (1, 2, 4, 8)}
GRID_EXTRA = {"injection_rate": (0.05, 0.1, 0.15, 0.2)}  # 4 x 4 = 16 points


def strip_timing(records):
    return [{k: v for k, v in r.items() if k != "wall_seconds"} for r in records]


def seeded_runner(cfg, **kwargs):
    """Deterministic outputs that depend on the point's derived seed."""
    gen = rng.make_generator(cfg.seed, "point")
    rate = kwargs.get("injection_rate", 0.0)
    return {
        "value": cfg.router_delay * 100 + rate,
        "draw": float(gen.random()),
        "seed_seen": cfg.seed,
    }


def config_axes_runner(cfg):
    gen = rng.make_generator(cfg.seed, "point")
    return {"value": cfg.router_delay * cfg.vc_buffer_size, "draw": float(gen.random())}


def tracking_runner(cfg, outdir, **kwargs):
    """Drop a marker file per executed point (visible across processes)."""
    rate = kwargs.get("injection_rate", 0.0)
    marker = pathlib.Path(outdir) / f"tr{cfg.router_delay}-rate{rate}"
    marker.write_text("ran")
    return seeded_runner(cfg, **kwargs)


def faulty_runner(cfg, **kwargs):
    if cfg.router_delay == 4:
        raise ValueError("injected fault at tr=4")
    return seeded_runner(cfg, **kwargs)


def _stall(cycle=100):
    return SimulationStalled(
        StallDiagnosis(
            cycle=cycle, window=100, in_flight=3, delivered_packets=0,
            buffered_flits=3, queued_packets=0,
        )
    )


def logged_runner(cfg, logdir, **kwargs):
    """Append one line per execution attempt to a per-point log file."""
    log = pathlib.Path(logdir) / f"tr{cfg.router_delay}"
    with open(log, "a") as f:
        f.write("attempt\n")
    return seeded_runner(cfg, **kwargs)


def attempts(logdir, router_delay):
    log = pathlib.Path(logdir) / f"tr{router_delay}"
    return len(log.read_text().splitlines()) if log.exists() else 0


def stall_once_runner(cfg, logdir, **kwargs):
    """Stall on the first attempt of each point, succeed afterwards."""
    first = attempts(logdir, cfg.router_delay) == 0
    logged_runner(cfg, logdir, **kwargs)
    if first:
        raise _stall()
    return seeded_runner(cfg, **kwargs)


def always_stalling_runner(cfg, logdir, **kwargs):
    logged_runner(cfg, logdir, **kwargs)
    raise _stall()


def logged_faulty_runner(cfg, logdir, **kwargs):
    logged_runner(cfg, logdir, **kwargs)
    raise ValueError("deterministic failure")


def hang_and_die_runner(cfg, logdir, **kwargs):
    """tr=4/tr=16 hang forever; tr=8 kills its worker on the first attempt."""
    logged_runner(cfg, logdir, **kwargs)
    if cfg.router_delay in (4, 16):
        time.sleep(120)
    if cfg.router_delay == 8 and attempts(logdir, 8) == 1:
        os._exit(13)
    return seeded_runner(cfg, **kwargs)


def interrupting_runner(cfg, **kwargs):
    raise KeyboardInterrupt


class TestEnumeratePoints:
    def test_canonical_order_and_count(self):
        points = enumerate_points(BASE, GRID_AXES, GRID_EXTRA)
        assert len(points) == 16
        assert [p.index for p in points] == list(range(16))
        # outer product over config axes, inner over extra axes
        assert points[0].coords == {"router_delay": 1, "injection_rate": 0.05}
        assert points[1].coords == {"router_delay": 1, "injection_rate": 0.1}
        assert points[4].coords == {"router_delay": 2, "injection_rate": 0.05}

    def test_seeds_distinct_and_coordinate_determined(self):
        points = enumerate_points(BASE, GRID_AXES, GRID_EXTRA)
        seeds = [p.seed for p in points]
        assert len(set(seeds)) == len(seeds)
        again = enumerate_points(BASE, GRID_AXES, GRID_EXTRA)
        assert seeds == [p.seed for p in again]

    def test_explicit_seed_axis_wins(self):
        points = enumerate_points(BASE, {"seed": (7, 9)})
        assert [p.seed for p in points] == [7, 9]

    def test_no_axes_is_single_point(self):
        points = enumerate_points(BASE, {})
        assert len(points) == 1 and points[0].coords == {}

    def test_overlapping_axes_rejected(self):
        with pytest.raises(ValueError):
            enumerate_points(BASE, {"m": (1,)}, {"m": (2,)})


class TestSerialParallelEquivalence:
    def test_grid_with_extra_axes(self):
        serial = run_sweep(
            BASE, GRID_AXES, seeded_runner, extra_axes=GRID_EXTRA, n_workers=1
        )
        parallel = run_sweep(
            BASE, GRID_AXES, seeded_runner, extra_axes=GRID_EXTRA, n_workers=4
        )
        assert len(serial) == 16
        assert strip_timing(serial) == strip_timing(parallel)

    def test_grid_config_axes_only(self):
        axes = {"router_delay": (1, 2, 4, 8), "vc_buffer_size": (2, 4, 8, 16)}
        serial = run_sweep(BASE, axes, config_axes_runner, n_workers=1)
        parallel = run_sweep(BASE, axes, config_axes_runner, n_workers=4)
        assert len(serial) == 16
        assert strip_timing(serial) == strip_timing(parallel)

    def test_sweep_wrapper_routes_through_executor(self):
        serial = sweep(BASE, GRID_AXES, seeded_runner, extra_axes=GRID_EXTRA)
        parallel = sweep(
            BASE, GRID_AXES, seeded_runner, extra_axes=GRID_EXTRA, n_workers=2
        )
        assert strip_timing(serial) == strip_timing(parallel)


class TestCheckpointResume:
    def test_resume_after_truncation_runs_only_missing_points(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        full = run_sweep(
            BASE, GRID_AXES, seeded_runner, extra_axes=GRID_EXTRA, journal=journal
        )
        lines = journal.read_text().splitlines()
        assert len(lines) == 17  # fingerprint header + 16 records
        assert "fingerprint" in lines[0]
        # simulate a kill: header + 5 complete records survive plus half a sixth
        journal.write_text("\n".join(lines[:6]) + "\n" + lines[6][: len(lines[6]) // 2])

        ran_dir = tmp_path / "ran"
        ran_dir.mkdir()
        import functools

        resumed = run_sweep(
            BASE,
            GRID_AXES,
            functools.partial(tracking_runner, outdir=str(ran_dir)),
            extra_axes=GRID_EXTRA,
            journal=journal,
            resume=True,
            n_workers=2,
        )
        assert strip_timing(resumed) == strip_timing(full)
        # only the 11 missing points were executed
        assert len(list(ran_dir.iterdir())) == 11
        # and the journal is whole again (header + 16 records)
        assert sum(1 for e in read_jsonl(journal) if "index" in e) == 16

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner, journal=journal)
        run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner, journal=journal)
        entries = read_jsonl(journal)
        assert sum(1 for e in entries if "index" in e) == 2  # not appended twice
        assert sum(1 for e in entries if "sweep" in e) == 1  # one header

    def test_resume_with_changed_axes_refused(self, tmp_path):
        # The fingerprint header catches the change before any record mixing.
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner, journal=journal)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(
                BASE,
                {"router_delay": (4, 8)},
                seeded_runner,
                journal=journal,
                resume=True,
            )

    def test_resume_pre_header_journal_checks_coordinates(self, tmp_path):
        # Journals from before fingerprints existed have no header; the
        # per-entry coordinate check still refuses cross-sweep mixing.
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner, journal=journal)
        entries = [e for e in read_jsonl(journal) if "index" in e]
        journal.write_text("\n".join(json.dumps(e) for e in entries) + "\n")
        with pytest.raises(ValueError, match="refusing to resume"):
            run_sweep(
                BASE,
                {"router_delay": (4, 8)},
                seeded_runner,
                journal=journal,
                resume=True,
            )

    def test_force_resume_overrides_fingerprint_mismatch(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner, journal=journal)
        # Same axes, different base seed => different fingerprint, but the
        # point *coordinates* are identical, so only the header catches it.
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(
                BASE.with_(seed=99), {"router_delay": (1, 2)}, seeded_runner,
                journal=journal, resume=True,
            )
        forced = run_sweep(
            BASE.with_(seed=99), {"router_delay": (1, 2)}, seeded_runner,
            journal=journal, resume=True, resume_force=True,
        )
        # Forced resume replays the journaled records untouched.
        assert [r["seed_seen"] for r in forced] == [
            e["record"]["seed_seen"] for e in read_jsonl(journal) if "index" in e
        ]

    def test_resume_with_wrapped_runner_allowed(self, tmp_path):
        # The fingerprint deliberately excludes the runner: resuming with an
        # instrumented wrapper over the same sweep is a supported workflow
        # (exercised for real by test_resume_after_truncation above).
        from repro.core.parallel import sweep_fingerprint

        fp = sweep_fingerprint(BASE, GRID_AXES, GRID_EXTRA)
        assert fp == sweep_fingerprint(BASE, GRID_AXES, GRID_EXTRA)
        assert fp != sweep_fingerprint(BASE.with_(seed=2), GRID_AXES, GRID_EXTRA)
        assert fp != sweep_fingerprint(BASE, {"router_delay": (1,)}, GRID_EXTRA)

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError):
            run_sweep(BASE, {"router_delay": (1,)}, seeded_runner, resume=True)


class TestFaultInjection:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_one_bad_point_fails_alone(self, n_workers):
        records = run_sweep(
            BASE, {"router_delay": (1, 2, 4, 8)}, faulty_runner, n_workers=n_workers
        )
        failed = [r for r in records if r.get("failed")]
        assert len(failed) == 1
        assert failed[0]["router_delay"] == 4
        assert "ValueError: injected fault at tr=4" in failed[0]["error"]
        ok = [r for r in records if not r.get("failed")]
        assert len(ok) == 3 and all("draw" in r for r in ok)

    def test_failed_records_match_serial_vs_parallel(self):
        serial = run_sweep(BASE, {"router_delay": (1, 2, 4, 8)}, faulty_runner)
        parallel = run_sweep(
            BASE, {"router_delay": (1, 2, 4, 8)}, faulty_runner, n_workers=3
        )
        assert strip_timing(serial) == strip_timing(parallel)


class TestProgress:
    def test_progress_counts_and_eta(self):
        events: list[SweepProgress] = []
        run_sweep(
            BASE,
            GRID_AXES,
            seeded_runner,
            extra_axes={"injection_rate": (0.05,)},
            progress=events.append,
        )
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)
        assert events[-1].remaining == 0
        assert events[-1].eta == 0.0
        assert events[-1].rate > 0

    def test_progress_counts_resumed_points(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2, 4)}, seeded_runner, journal=journal)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")  # header + 2 records
        events: list[SweepProgress] = []
        run_sweep(
            BASE,
            {"router_delay": (1, 2, 4)},
            seeded_runner,
            journal=journal,
            resume=True,
            progress=events.append,
        )
        # one point left to run; done already includes the 2 journaled ones
        assert [e.done for e in events] == [3]


class TestProductConfigs:
    def test_default_keeps_base_seed(self):
        pairs = product_configs(BASE, {"router_delay": (1, 2)})
        assert [cfg.seed for _, cfg in pairs] == [BASE.seed, BASE.seed]
        assert [pt for pt, _ in pairs] == [{"router_delay": 1}, {"router_delay": 2}]

    def test_derive_seeds_gives_distinct_seeds(self):
        pairs = product_configs(BASE, {"router_delay": (1, 2)}, derive_seeds=True)
        seeds = [cfg.seed for _, cfg in pairs]
        assert len(set(seeds)) == 2 and BASE.seed not in seeds

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep(BASE, {}, seeded_runner, n_workers=0)

    def test_max_retries_validated(self):
        with pytest.raises(ValueError):
            run_sweep(BASE, {}, seeded_runner, max_retries=-1)


class TestHealthSummary:
    def test_all_ok(self):
        records = run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner)
        assert isinstance(records, SweepRecords)
        h = records.health
        assert (h.total, h.ok, h.failed) == (2, 2, 0)
        assert h.summary() == "2/2 ok"

    def test_counts_deterministic_failures(self):
        records = run_sweep(BASE, {"router_delay": (1, 2, 4, 8)}, faulty_runner)
        h = records.health
        assert (h.ok, h.failed, h.retried) == (3, 1, 0)
        assert "3/4 ok" in h.summary() and "1 failed" in h.summary()

    def test_resumed_points_counted(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2, 4)}, seeded_runner, journal=journal)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_sweep(
            BASE, {"router_delay": (1, 2, 4)}, seeded_runner,
            journal=journal, resume=True,
        )
        assert (resumed.health.ok, resumed.health.total) == (3, 3)


class TestTransientRetry:
    def test_backoff_grows_and_caps(self):
        assert _backoff_seconds(1, 0.25) >= 0.25
        for attempt in range(1, 12):
            assert 0 < _backoff_seconds(attempt, 0.25) <= _MAX_BACKOFF * 1.25

    def test_seeded_policy_jitter_deterministic(self):
        from repro.core.resilience import RetryPolicy

        a = RetryPolicy.seeded(7, backoff=0.25)
        b = RetryPolicy.seeded(7, backoff=0.25)
        assert [a.delay(i) for i in range(1, 6)] == [b.delay(i) for i in range(1, 6)]
        c = RetryPolicy.seeded(8, backoff=0.25)
        assert [a.delay(i) for i in range(1, 6)] != [c.delay(i) for i in range(1, 6)]
        # default (unseeded) policies draw from global random: still bounded
        d = RetryPolicy(backoff=0.25)
        assert 0.25 <= d.delay(1) <= 0.25 * 1.25
        assert not RetryPolicy(max_retries=2).should_retry("error", 0)
        assert RetryPolicy(max_retries=2).should_retry("stalled", 1)
        assert not RetryPolicy(max_retries=2).should_retry("stalled", 2)

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_seed_jitter_sweep_runs(self, tmp_path, n_workers):
        # seed_jitter must not change any record, only the retry timeline.
        runner = functools.partial(stall_once_runner, logdir=str(tmp_path / "a"))
        (tmp_path / "a").mkdir()
        seeded = run_sweep(
            BASE, {"router_delay": (1, 2)}, runner,
            n_workers=n_workers, max_retries=2, retry_backoff=0.01, seed_jitter=True,
        )
        (tmp_path / "b").mkdir()
        runner_b = functools.partial(stall_once_runner, logdir=str(tmp_path / "b"))
        plain = run_sweep(
            BASE, {"router_delay": (1, 2)}, runner_b,
            n_workers=n_workers, max_retries=2, retry_backoff=0.01,
        )
        assert strip_timing(seeded) == strip_timing(plain)
        assert seeded.health.retried == plain.health.retried == 2

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_stall_retried_then_succeeds(self, tmp_path, n_workers):
        runner = functools.partial(stall_once_runner, logdir=str(tmp_path))
        records = run_sweep(
            BASE, {"router_delay": (1, 2)}, runner,
            n_workers=n_workers, max_retries=2, retry_backoff=0.01,
        )
        assert all("draw" in r for r in records)
        h = records.health
        assert (h.ok, h.failed, h.retried, h.stalled) == (2, 0, 2, 0)
        assert attempts(tmp_path, 1) == 2 and attempts(tmp_path, 2) == 2

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_retry_cap_respected(self, tmp_path, n_workers):
        runner = functools.partial(always_stalling_runner, logdir=str(tmp_path))
        records = run_sweep(
            BASE, {"router_delay": (1,)}, runner,
            n_workers=n_workers, max_retries=2, retry_backoff=0.01,
        )
        assert attempts(tmp_path, 1) == 3  # initial + 2 retries, no more
        rec = records[0]
        assert rec["failed"] and rec["error_kind"] == "stalled"
        assert "SimulationStalled" in rec["error"]
        h = records.health
        assert (h.ok, h.failed, h.retried, h.stalled) == (0, 1, 2, 1)

    def test_deterministic_errors_not_retried(self, tmp_path):
        runner = functools.partial(logged_faulty_runner, logdir=str(tmp_path))
        records = run_sweep(
            BASE, {"router_delay": (1,)}, runner, max_retries=3, retry_backoff=0.01
        )
        assert attempts(tmp_path, 1) == 1
        assert records.health.retried == 0
        assert records[0]["error_kind"] == "error"


class TestSelfHealingPool:
    def test_hung_point_and_dead_worker_do_not_kill_the_sweep(self, tmp_path):
        """Acceptance: one hard hang + one worker death, sweep completes.

        The dying point (tr=8, first in the queue) kills its worker once and
        succeeds when retried; the hung point (tr=4, last) is killed by the
        point timeout.  The other points ride along unharmed.
        """
        runner = functools.partial(hang_and_die_runner, logdir=str(tmp_path))
        records = run_sweep(
            BASE, {"router_delay": (8, 1, 2, 4)}, runner,
            n_workers=2, point_timeout=1.5, max_retries=1, retry_backoff=0.05,
        )
        by_tr = {r["router_delay"]: r for r in records}
        assert "draw" in by_tr[1] and "draw" in by_tr[2]
        assert "draw" in by_tr[8]  # recovered on retry after its worker died
        assert attempts(tmp_path, 8) == 2  # initial + exactly one retry
        hung = by_tr[4]
        assert hung["failed"] and hung["error_kind"] == "timeout"
        assert "worker killed" in hung["error"]
        # 1 direct execution, +1 only if the hang was in flight during the
        # worker death and got swept into that retry; never more (the
        # timeout itself is not retried)
        assert attempts(tmp_path, 4) in (1, 2)
        h = records.health
        assert h.ok == 3 and h.failed == 1
        assert h.timed_out == 1 and h.worker_deaths >= 1 and h.retried >= 1
        s = h.summary()
        assert "3/4 ok" in s and "timed out" in s and "retries" in s

    def test_timeout_frees_the_pool_slots(self, tmp_path):
        """Timed-out points must not occupy workers for the sweep's rest.

        Both workers hang on the first two points; the remaining points can
        only complete if the hung workers were actually killed and replaced.
        """
        runner = functools.partial(hang_and_die_runner, logdir=str(tmp_path))
        records = run_sweep(
            BASE, {"router_delay": (4, 16, 1, 2)}, runner,
            n_workers=2, point_timeout=1.0, max_retries=0,
        )
        by_tr = {r["router_delay"]: r for r in records}
        assert by_tr[4]["error_kind"] == "timeout"
        assert by_tr[16]["error_kind"] == "timeout"
        assert "draw" in by_tr[1] and "draw" in by_tr[2]
        assert records.health.summary().startswith("2/4 ok")
        # each hung point executed exactly once: timeouts are not retried
        assert attempts(tmp_path, 4) == 1 and attempts(tmp_path, 16) == 1

    def test_point_timeout_requires_pool(self):
        with pytest.raises(ValueError, match="point_timeout"):
            run_sweep(
                BASE, {"router_delay": (1,)}, seeded_runner,
                n_workers=1, point_timeout=1.0,
            )


class TestKeyboardInterrupt:
    def test_health_flushed_to_journal(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                BASE, {"router_delay": (1, 2)}, interrupting_runner, journal=journal
            )
        lines = journal.read_text().splitlines()
        tail = json.loads(lines[-1])
        assert tail["health"]["interrupted"] is True

    def test_health_line_ignored_on_resume(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(BASE, {"router_delay": (1, 2)}, seeded_runner, journal=journal)
        with open(journal, "a") as f:
            f.write(json.dumps({"health": {"interrupted": True}}) + "\n")
        resumed = run_sweep(
            BASE, {"router_delay": (1, 2)}, seeded_runner,
            journal=journal, resume=True,
        )
        assert len(resumed) == 2 and resumed.health.ok == 2
