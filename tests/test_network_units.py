"""Unit tests for network building blocks: packets, VCs, arbiters, buckets."""

from __future__ import annotations

import pytest

from repro.network.arbiters import AgeArbiter, RoundRobinArbiter, build_arbiter
from repro.network.links import TimeBuckets
from repro.network.packet import Packet
from repro.network.vc import InputVC


class TestPacket:
    def test_latency_requires_delivery(self):
        p = Packet(0, 1, 2, 1, 10)
        with pytest.raises(ValueError):
            _ = p.latency
        p.deliver_time = 25
        assert p.latency == 15

    def test_network_latency_excludes_queueing(self):
        p = Packet(0, 1, 2, 1, 10)
        p.inject_time = 14
        p.deliver_time = 25
        assert p.network_latency == 11
        assert p.latency == 15

    def test_current_target_phases(self):
        p = Packet(0, 1, 9, 1, 0)
        assert p.current_target() == 9
        p.intermediate = 4
        assert p.current_target() == 4
        p.phase = 1
        assert p.current_target() == 9

    def test_slots_reject_new_attributes(self):
        p = Packet(0, 1, 2, 1, 0)
        with pytest.raises(AttributeError):
            p.color = "red"


class TestInputVC:
    def test_initial_state(self):
        vc = InputVC(3, 1, 1)
        assert vc.out_port == -1 and vc.out_vc == -1
        assert vc.candidates is None
        assert not vc.fifo

    def test_reset_route(self):
        vc = InputVC(0, 0, 0)
        vc.out_port, vc.out_vc, vc.candidates = 2, 1, []
        vc.reset_route()
        assert vc.out_port == -1 and vc.out_vc == -1 and vc.candidates is None


def reqs(*pairs):
    return [(i, Packet(pid, 0, 1, 1, t)) for i, pid, t in pairs]


class TestRoundRobinArbiter:
    def test_rotates(self):
        arb = RoundRobinArbiter(4)
        r = reqs((0, 0, 0), (2, 1, 0))
        assert arb.pick(r)[0] == 0
        assert arb.pick(r)[0] == 2  # pointer moved past 0
        assert arb.pick(r)[0] == 0  # wrapped

    def test_wraps_pointer(self):
        arb = RoundRobinArbiter(4)
        arb.ptr = 3
        assert arb.pick(reqs((1, 0, 0)))[0] == 1

    def test_all_requesters_served_eventually(self):
        arb = RoundRobinArbiter(8)
        r = reqs((1, 0, 0), (4, 1, 0), (6, 2, 0))
        winners = {arb.pick(r)[0] for _ in range(3)}
        assert winners == {1, 4, 6}


class TestAgeArbiter:
    def test_oldest_wins(self):
        arb = AgeArbiter()
        r = reqs((0, 0, 50), (3, 1, 10), (5, 2, 99))
        assert arb.pick(r)[0] == 3

    def test_tie_breaks_on_pid(self):
        arb = AgeArbiter()
        r = reqs((4, 7, 10), (2, 3, 10))
        assert arb.pick(r)[1].pid == 3


class TestBuildArbiter:
    def test_names(self):
        assert isinstance(build_arbiter("round_robin", 4), RoundRobinArbiter)
        assert isinstance(build_arbiter("age", 4), AgeArbiter)
        with pytest.raises(ValueError):
            build_arbiter("priority", 4)


class TestTimeBuckets:
    def test_schedule_and_pop(self):
        tb = TimeBuckets()
        tb.schedule(5, "a")
        tb.schedule(5, "b")
        tb.schedule(7, "c")
        assert tb.pending == 3
        assert tb.pop(5) == ["a", "b"]
        assert tb.pending == 1
        assert tb.pop(5) is None
        assert tb.pop(6) is None
        assert tb.pop(7) == ["c"]
        assert not tb

    def test_bool_reflects_pending(self):
        tb = TimeBuckets()
        assert not tb
        tb.schedule(1, object())
        assert tb

    def test_clear(self):
        tb = TimeBuckets()
        tb.schedule(1, "x")
        tb.clear()
        assert tb.pending == 0 and tb.pop(1) is None
