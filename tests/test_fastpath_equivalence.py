"""Equivalence suite: the hot path must be bit-identical to the dense loop.

Two independent accelerations share one correctness bar:

* **active-set router scheduling** — the network steps only routers with
  buffered flits instead of iterating all of them every cycle, and
* **idle-cycle fast-forward** — the engine jumps the clock across cycles
  during which the (idle) network provably does nothing.

Both are exercised by default; setting ``REPRO_DISABLE_FAST_FORWARD=1``
forces the dense engine loop through unmodified drivers.  Every test here
runs a driver both ways and asserts *exact* equality of every observable —
latency arrays, per-node distributions, runtimes, probe records, packet
counts — across randomized configurations and with the full instrumentation
stack (probes, watchdog, invariant checker, link faults) enabled.

The golden-record suite (``test_golden_records.py``) independently pins the
fast path to pre-acceleration numbers; this file additionally covers
configurations (bursty traffic, delayed replies, OS timers, faults) beyond
the goldens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.barrier import BarrierSimulator
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.core.osmodel import OSModel
from repro.core.probes import ProbeSet, build_probes
from repro.core.reply import FixedReply, ProbabilisticReply
from repro.core.resilience import Watchdog
from repro.core.tracedriven import (
    Trace,
    TraceDrivenSimulator,
    TraceRecord,
    capture_openloop_trace,
)
from repro.network.network import Network
from repro.traffic.process import Bernoulli, InjectionProcess, MarkovOnOff


@pytest.fixture
def both_paths(monkeypatch):
    """Run a zero-arg driver callable on the fast and the dense path."""

    def run(fn):
        monkeypatch.delenv("REPRO_DISABLE_FAST_FORWARD", raising=False)
        fast = fn()
        monkeypatch.setenv("REPRO_DISABLE_FAST_FORWARD", "1")
        dense = fn()
        monkeypatch.delenv("REPRO_DISABLE_FAST_FORWARD", raising=False)
        return fast, dense

    return run


def _assert_openloop_equal(a, b):
    assert a.num_measured == b.num_measured
    assert a.avg_latency == b.avg_latency
    assert a.worst_node_latency == b.worst_node_latency
    assert a.throughput == b.throughput
    assert a.avg_hops == b.avg_hops
    assert a.saturated == b.saturated
    assert np.array_equal(a.latencies, b.latencies)
    assert np.array_equal(a.per_node_latency, b.per_node_latency, equal_nan=True)
    assert a.probe_records == b.probe_records


class TestOpenLoopEquivalence:
    @pytest.mark.parametrize("rate", [0.005, 0.05, 0.30])
    @pytest.mark.parametrize("seed", [7, 19])
    def test_mesh_rates(self, both_paths, rate, seed):
        cfg = NetworkConfig(k=4, n=2, seed=seed)

        def go():
            sim = OpenLoopSimulator(cfg, warmup=150, measure=300, drain_limit=4000)
            return sim.run(rate)

        fast, dense = both_paths(go)
        _assert_openloop_equal(fast, dense)

    def test_bursty_traffic(self, both_paths):
        # MarkovOnOff produces long idle stretches per node but correlated
        # bursts — the arrivals draw itself is stateful, so lookahead must
        # replay it exactly.
        cfg = NetworkConfig(k=4, n=2, seed=11)

        def go():
            sim = OpenLoopSimulator(
                cfg,
                warmup=150,
                measure=300,
                drain_limit=4000,
                process=lambda n, r: MarkovOnOff.for_average_rate(n, r),
            )
            return sim.run(0.02)

        fast, dense = both_paths(go)
        _assert_openloop_equal(fast, dense)

    def test_with_probes_watchdog_invariants(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=3)

        def go():
            sim = OpenLoopSimulator(
                cfg,
                warmup=100,
                measure=250,
                drain_limit=3000,
                probes=ProbeSet(build_probes("all"), interval=64),
                watchdog=Watchdog(window=500),
                check_invariants=True,
            )
            return sim.run(0.01)

        fast, dense = both_paths(go)
        _assert_openloop_equal(fast, dense)
        # Window records must exist and match record-for-record.
        assert len(fast.probe_records) > 1

    def test_with_faults(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=5, faults="links:2")

        def go():
            sim = OpenLoopSimulator(
                cfg,
                warmup=150,
                measure=300,
                drain_limit=5000,
                watchdog=Watchdog(window=1000),
            )
            return sim.run(0.02)

        fast, dense = both_paths(go)
        _assert_openloop_equal(fast, dense)

    @pytest.mark.parametrize("topology", ["ring", "torus"])
    def test_other_topologies(self, both_paths, topology):
        cfg = NetworkConfig(topology=topology, k=8, n=1 if topology == "ring" else 2, seed=2)

        def go():
            sim = OpenLoopSimulator(cfg, warmup=100, measure=200, drain_limit=3000)
            return sim.run(0.02)

        fast, dense = both_paths(go)
        _assert_openloop_equal(fast, dense)


def _assert_batch_equal(a, b):
    assert a.runtime == b.runtime
    assert a.throughput == b.throughput
    assert a.completed == b.completed
    assert a.total_requests == b.total_requests
    assert a.os_requests == b.os_requests
    assert a.avg_request_latency == b.avg_request_latency
    assert np.array_equal(a.node_finish, b.node_finish)
    assert a.probe_records == b.probe_records


class TestBatchEquivalence:
    def test_baseline(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        fast, dense = both_paths(
            lambda: BatchSimulator(cfg, batch_size=30, max_outstanding=2).run()
        )
        _assert_batch_equal(fast, dense)

    def test_low_nar_engages_fast_forward(self, both_paths):
        # nar=0.02 leaves long gated idle gaps between injections — exactly
        # the case fast-forward accelerates.  Capture the network to prove
        # the fast path really skipped cycles (a vacuous pass would hide a
        # wiring bug), then check bit-identity.
        cfg = NetworkConfig(k=4, n=2, seed=13)
        nets = []

        def go():
            sim = BatchSimulator(
                cfg,
                batch_size=10,
                max_outstanding=1,
                nar=0.02,
                network_factory=lambda c: nets.append(Network(c)) or nets[-1],
            )
            return sim.run()

        fast, dense = both_paths(go)
        _assert_batch_equal(fast, dense)
        assert nets[0].fast_forwarded_cycles > 0
        assert nets[1].fast_forwarded_cycles == 0

    def test_delayed_replies(self, both_paths):
        # FixedReply(40) parks every reply in the pending-replies buckets
        # while the network idles: the lookahead must stop at each release.
        cfg = NetworkConfig(k=4, n=2, seed=9)
        fast, dense = both_paths(
            lambda: BatchSimulator(
                cfg,
                batch_size=15,
                max_outstanding=1,
                reply_model=FixedReply(40),
            ).run()
        )
        _assert_batch_equal(fast, dense)

    def test_probabilistic_replies_and_nar(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=17)
        fast, dense = both_paths(
            lambda: BatchSimulator(
                cfg,
                batch_size=12,
                max_outstanding=2,
                nar=0.1,
                reply_model=ProbabilisticReply(
                    l2_latency=20, memory_latency=300, l2_miss_rate=0.1
                ),
            ).run()
        )
        _assert_batch_equal(fast, dense)

    def test_os_model_timer_interrupts(self, both_paths):
        # Timer ticks add OS mini-batches mid-run: the lookahead must never
        # jump across a tick.
        cfg = NetworkConfig(k=4, n=2, seed=21)
        os_model = OSModel(
            static_fraction=0.25, timer_rate=0.01, timer_batch=2, os_nar=0.5
        )
        fast, dense = both_paths(
            lambda: BatchSimulator(
                cfg,
                batch_size=10,
                max_outstanding=1,
                nar=0.05,
                os_model=os_model,
                reply_model=FixedReply(25),
            ).run()
        )
        _assert_batch_equal(fast, dense)

    def test_with_probes_and_invariants(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=23)
        fast, dense = both_paths(
            lambda: BatchSimulator(
                cfg,
                batch_size=20,
                max_outstanding=2,
                nar=0.3,
                probes=ProbeSet(build_probes("all"), interval=50),
                watchdog=Watchdog(window=2000),
                check_invariants=True,
            ).run()
        )
        _assert_batch_equal(fast, dense)
        assert len(fast.probe_records) > 1


class TestBarrierEquivalence:
    def test_rounds(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        fast, dense = both_paths(
            lambda: BarrierSimulator(cfg, batch_size=25, rounds=3).run()
        )
        assert fast.runtime == dense.runtime
        assert fast.throughput == dense.throughput
        assert np.array_equal(fast.round_times, dense.round_times)


class TestTraceEquivalence:
    def test_sparse_trace_jumps_gaps(self, both_paths):
        # Records thousands of cycles apart: fast-forward jumps straight to
        # each timestamp, and the replay must land every packet identically.
        records = [
            TraceRecord(0, 0, 15, 4),
            TraceRecord(3000, 5, 10, 2),
            TraceRecord(3001, 6, 9, 1),
            TraceRecord(9000, 15, 0, 8),
        ]
        trace = Trace(records, num_nodes=16)
        cfg = NetworkConfig(k=4, n=2, seed=7)
        fast, dense = both_paths(lambda: TraceDrivenSimulator(cfg, trace).run())
        assert fast.runtime == dense.runtime
        assert fast.avg_latency == dense.avg_latency
        assert fast.packets == dense.packets
        assert fast.throughput == dense.throughput

    def test_captured_trace(self, both_paths):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        trace = capture_openloop_trace(cfg, 0.02, cycles=800)

        def go():
            return TraceDrivenSimulator(
                cfg, trace, probes=ProbeSet(build_probes("inflight,channel"), interval=100)
            ).run()

        fast, dense = both_paths(go)
        assert fast.runtime == dense.runtime
        assert fast.avg_latency == dense.avg_latency
        assert fast.packets == dense.packets
        assert fast.probe_records == dense.probe_records


class TestFirstArrivalBlock:
    """Bernoulli's vectorized lookahead must replay the generic one's stream.

    The block-draw implementation rewinds the bit-generator state on a
    mid-block hit, so the offset, the arrivals, AND the generator position
    afterwards must all match a per-cycle ``arrivals()`` loop exactly.
    """

    @pytest.mark.parametrize("rate", [0.0, 0.0004, 0.01, 0.2])
    @pytest.mark.parametrize("limit", [1, 7, 64, 700, 5000])
    def test_matches_generic_scan(self, rate, limit):
        proc = Bernoulli(16, rate)
        g_fast = np.random.default_rng(42)
        g_ref = np.random.default_rng(42)
        fast = proc.first_arrival_block(g_fast, limit)
        ref = InjectionProcess.first_arrival_block(proc, g_ref, limit)
        assert fast[0] == ref[0]
        if ref[1] is None:
            assert fast[1] is None
        else:
            assert np.array_equal(fast[1], ref[1])
        # Stream position afterwards must be identical: the next draws agree.
        assert np.array_equal(g_fast.random(8), g_ref.random(8))

    def test_consecutive_scans_resume_stream(self):
        # Repeated lookahead calls walk the stream exactly like a dense loop.
        proc = Bernoulli(16, 0.003)
        g_fast = np.random.default_rng(7)
        g_ref = np.random.default_rng(7)
        for _ in range(5):
            fast = proc.first_arrival_block(g_fast, 2000)
            ref = InjectionProcess.first_arrival_block(proc, g_ref, 2000)
            assert fast[0] == ref[0]
        assert np.array_equal(g_fast.random(8), g_ref.random(8))


class TestActiveSetScheduling:
    """The active-set step is always on; pin its bookkeeping directly."""

    def test_active_set_matches_busy_routers(self):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        net = Network(cfg)
        for i in range(6):
            net.offer(net.make_packet(i, 15 - i, 4))
        for _ in range(300):
            net.step()
            active = net._active_routers
            busy = {r.node for r in net.routers if r.busy}
            # Routers may linger one pruning pass, but never the reverse:
            # a busy router absent from the active set would stall flits.
            assert busy <= active
            for node in active:
                router = net.routers[node]
                assert all(
                    bool(router.ivcs[i].fifo) for i in router.busy
                )
            if net.is_idle():
                break
        assert net.is_idle()
        assert net.total_packets_delivered == 6

    def test_long_run_drains_active_set(self):
        cfg = NetworkConfig(k=4, n=2, seed=3)
        sim = OpenLoopSimulator(cfg, warmup=100, measure=200, drain_limit=3000)
        res = sim.run(0.1)
        assert res.num_measured > 0
