"""Cross-consistency tests between drivers and substrates.

These tests tie independent components together: the same workload must
tell a consistent story whether measured open-loop, closed-loop, or through
the execution-driven substrate — the paper's whole premise.
"""

from __future__ import annotations

import pytest

from repro.config import CmpConfig, NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.execdriven import CmpSystem, blackscholes, characterize


class TestDriverConsistency:
    def test_batch_m1_latency_matches_openloop_zero_load(self, mesh4):
        """At m=1 the batch model's average request latency is a zero-load
        measurement and must agree with the open-loop one."""
        batch = BatchSimulator(mesh4, batch_size=60, max_outstanding=1).run()
        ol = OpenLoopSimulator(
            mesh4, warmup=150, measure=300, drain_limit=1500
        ).zero_load_latency()
        assert batch.avg_request_latency == pytest.approx(ol, rel=0.15)

    def test_exec_network_time_bounded_by_ideal_gap(self):
        """Mesh runtime minus ideal runtime equals time spent on the
        network; it must be positive and grow with router delay."""
        spec = blackscholes(2500)
        ideal = CmpSystem(spec, ideal=True, seed=3).run().cycles
        gaps = []
        for tr in (1, 8):
            cfg = CmpConfig(
                network=NetworkConfig(
                    k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr
                )
            )
            cycles = CmpSystem(spec, cfg, seed=3).run().cycles
            gaps.append(cycles - ideal)
        assert gaps[0] > 0
        assert gaps[1] > gaps[0]

    def test_exec_flit_totals_independent_of_network(self):
        """The workload's traffic volume is a property of the program, not
        the network: mesh and ideal runs move the same flits (same seed)."""
        spec = blackscholes(2000)
        ideal = CmpSystem(spec, ideal=True, seed=3).run()
        mesh = CmpSystem(spec, ideal=False, seed=3).run()
        assert mesh.total_flits == ideal.total_flits
        assert mesh.requests == ideal.requests

    def test_characterized_nar_bounds_mesh_injection(self):
        """NAR is defined on the ideal network; on a real mesh the same
        program can only inject slower (runtime stretches)."""
        spec = blackscholes(2500)
        ch = characterize(spec, seed=3)
        mesh = CmpSystem(spec, ideal=False, seed=3).run()
        assert mesh.nar <= ch.nar * 1.02

    def test_batch_throughput_bounded_by_openloop_saturation(self, mesh4):
        sat = OpenLoopSimulator(
            mesh4, warmup=200, measure=400, drain_limit=2000
        ).saturation_throughput(tolerance=0.03)
        theta = BatchSimulator(
            mesh4, batch_size=250, max_outstanding=48
        ).run().throughput
        assert theta <= sat * 1.1

    def test_ideal_network_is_a_lower_bound_for_batch(self, mesh4):
        """No mesh configuration beats a 1-cycle fully connected network."""
        from repro.network.ideal import IdealNetwork

        mesh_run = BatchSimulator(mesh4, batch_size=50, max_outstanding=2).run()
        ideal_run = BatchSimulator(
            mesh4,
            batch_size=50,
            max_outstanding=2,
            network_factory=lambda cfg: IdealNetwork(cfg.num_nodes),
        ).run()
        assert ideal_run.completed
        assert ideal_run.runtime < mesh_run.runtime
