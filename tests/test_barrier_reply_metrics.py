"""Tests for the barrier model, reply models, and metrics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.config import NetworkConfig
from repro.core.barrier import BarrierSimulator
from repro.core.metrics import LatencyStats, latency_stats, node_distribution, runtime_map
from repro.core.reply import (
    FixedReply,
    ImmediateReply,
    PerClassReply,
    ProbabilisticReply,
)
from repro.network.packet import Packet


class TestBarrier:
    def test_completes(self, mesh4):
        res = BarrierSimulator(mesh4, batch_size=30).run()
        assert res.completed
        assert res.runtime > 0
        assert res.round_times.shape == (1,)

    def test_throughput_near_saturation(self, mesh4):
        """§II-B2: the barrier model 'essentially measures the throughput
        of the network'."""
        res = BarrierSimulator(mesh4, batch_size=200).run()
        assert 0.3 < res.throughput < 0.7  # ~ open-loop saturation band

    def test_multiple_rounds_monotonic(self, mesh4):
        res = BarrierSimulator(mesh4, batch_size=25, rounds=3).run()
        assert res.completed
        assert list(res.round_times) == sorted(res.round_times)
        assert res.normalized_runtime == res.runtime / 75

    def test_rounds_scale_runtime(self, mesh4):
        one = BarrierSimulator(mesh4, batch_size=40, rounds=1).run()
        three = BarrierSimulator(mesh4, batch_size=40, rounds=3).run()
        assert three.runtime == pytest.approx(3 * one.runtime, rel=0.2)

    def test_incomplete_flagged(self, mesh4):
        res = BarrierSimulator(mesh4, batch_size=100, max_cycles=50).run()
        assert not res.completed

    def test_validation(self, mesh4):
        with pytest.raises(ValueError):
            BarrierSimulator(mesh4, batch_size=0)
        with pytest.raises(ValueError):
            BarrierSimulator(mesh4, rounds=0)


class TestReplyModels:
    def test_immediate(self):
        gen = rng_mod.make_generator(1, "r")
        m = ImmediateReply()
        assert m.delay(gen) == 0
        assert m.mean == 0.0

    def test_fixed(self):
        gen = rng_mod.make_generator(1, "r")
        m = FixedReply(50)
        assert m.delay(gen) == 50
        assert m.mean == 50.0
        with pytest.raises(ValueError):
            FixedReply(-1)

    def test_probabilistic_values_and_mean(self):
        gen = rng_mod.make_generator(1, "r")
        m = ProbabilisticReply(20, 300, 0.1)
        draws = [m.delay(gen) for _ in range(3000)]
        assert set(draws) == {20, 320}
        assert np.mean(draws) == pytest.approx(50, rel=0.2)
        assert m.mean == pytest.approx(50.0)

    def test_probabilistic_extremes(self):
        gen = rng_mod.make_generator(1, "r")
        assert ProbabilisticReply(20, 300, 0.0).delay(gen) == 20
        assert ProbabilisticReply(20, 300, 1.0).delay(gen) == 320

    def test_probabilistic_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticReply(l2_miss_rate=1.5)
        with pytest.raises(ValueError):
            ProbabilisticReply(l2_latency=-1)

    def test_per_class_dispatch(self):
        gen = rng_mod.make_generator(1, "r")
        m = PerClassReply({0: FixedReply(10), 1: FixedReply(99)}, default=FixedReply(5))
        assert m.delay(gen, 0) == 10
        assert m.delay(gen, 1) == 99
        assert m.delay(gen, 7) == 5
        assert m.mean == 10.0


class TestMetrics:
    def _packets(self, latencies):
        out = []
        for i, lat in enumerate(latencies):
            p = Packet(i, 0, 1, 1, 0)
            p.deliver_time = lat
            out.append(p)
        return out

    def test_latency_stats(self):
        stats = latency_stats(self._packets([10, 20, 30, 40]))
        assert stats.count == 4
        assert stats.mean == 25
        assert stats.minimum == 10 and stats.maximum == 40
        assert stats.p50 == 25

    def test_latency_stats_sample_std(self):
        # Regression: std must be the sample estimator (ddof=1), matching
        # confidence_interval/batch_means — not the population formula.
        stats = latency_stats(self._packets([10, 20, 30, 40]))
        assert stats.std == pytest.approx(np.std([10, 20, 30, 40], ddof=1))

    def test_latency_stats_single_value_has_nan_std(self):
        # One sample has no defined spread: NaN, not 0.
        stats = LatencyStats.from_values(np.array([42.0]))
        assert stats.count == 1
        assert stats.mean == 42.0
        assert np.isnan(stats.std)

    def test_latency_stats_empty(self):
        stats = LatencyStats.from_values(np.array([]))
        assert stats.count == 0
        assert np.isnan(stats.mean)

    def test_node_distribution_fractions_sum_to_one(self):
        edges, fracs = node_distribution(np.arange(64, dtype=float), bins=8)
        assert len(edges) == 9
        assert fracs.sum() == pytest.approx(1.0)

    def test_node_distribution_ignores_nan(self):
        vals = np.array([1.0, 2.0, np.nan, 3.0])
        _, fracs = node_distribution(vals, bins=2)
        assert fracs.sum() == pytest.approx(1.0)

    def test_node_distribution_rejects_empty(self):
        with pytest.raises(ValueError):
            node_distribution(np.array([np.nan]))

    def test_runtime_map_shape_and_normalization(self):
        finish = np.arange(1, 17, dtype=np.int64)
        m = runtime_map(finish, 4)
        assert m.shape == (4, 4)
        assert m.max() == 1.0
        assert m[0, 0] == pytest.approx(1 / 16)

    def test_runtime_map_rejects_bad_input(self):
        with pytest.raises(ValueError):
            runtime_map(np.arange(10), 4)
        with pytest.raises(ValueError):
            runtime_map(np.full(16, -1), 4)
