"""Shared fixtures: small, fast configurations used across the suite."""

from __future__ import annotations

import pytest

from repro.config import CmpConfig, NetworkConfig


@pytest.fixture
def mesh4() -> NetworkConfig:
    """4x4 mesh baseline — small enough for fast cycle-level tests."""
    return NetworkConfig(k=4, n=2)


@pytest.fixture
def mesh8() -> NetworkConfig:
    """The paper's 8x8 baseline."""
    return NetworkConfig(k=8, n=2)


@pytest.fixture
def torus4() -> NetworkConfig:
    return NetworkConfig(topology="torus", k=4, n=2)


@pytest.fixture
def ring16() -> NetworkConfig:
    return NetworkConfig(topology="ring", k=4, n=2)


@pytest.fixture
def cmp_small() -> CmpConfig:
    """16-core CMP with small caches so miss behaviour shows up quickly."""
    return CmpConfig(l1_lines=64, l1_assoc=4, l2_lines_per_tile=256, l2_assoc=8)
