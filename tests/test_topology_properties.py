"""Property-based tests on topology invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh, Ring, Torus

ks = st.integers(min_value=2, max_value=6)
ns = st.integers(min_value=1, max_value=3)


@st.composite
def cube_and_pair(draw, wrap: bool):
    k = draw(ks)
    n = draw(ns)
    topo = Torus(k, n) if wrap else Mesh(k, n)
    src = draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    return topo, src, dst


class TestCubeInvariants:
    @given(cube_and_pair(wrap=False))
    @settings(max_examples=60, deadline=None)
    def test_mesh_min_hops_symmetric(self, tsd):
        topo, src, dst = tsd
        assert topo.min_hops(src, dst) == topo.min_hops(dst, src)

    @given(cube_and_pair(wrap=True))
    @settings(max_examples=60, deadline=None)
    def test_torus_min_hops_symmetric(self, tsd):
        topo, src, dst = tsd
        assert topo.min_hops(src, dst) == topo.min_hops(dst, src)

    @given(cube_and_pair(wrap=True))
    @settings(max_examples=60, deadline=None)
    def test_torus_hops_at_most_half_k_per_dim(self, tsd):
        topo, src, dst = tsd
        assert topo.min_hops(src, dst) <= topo.n * (topo.k // 2 + topo.k % 2)

    @given(cube_and_pair(wrap=False))
    @settings(max_examples=60, deadline=None)
    def test_coords_roundtrip(self, tsd):
        topo, src, _ = tsd
        assert topo.node_at(topo.coords(src)) == src

    @given(cube_and_pair(wrap=False))
    @settings(max_examples=40, deadline=None)
    def test_channel_endpoints_reciprocal(self, tsd):
        """Every channel's (dst, in_port) names a port whose own channel
        points straight back at the source."""
        topo, _, _ = tsd
        for ch in topo.channels():
            back = topo.channel(ch.dst, ch.in_port)
            # mesh edges: the reverse port exists because the forward did
            assert back is not None
            assert back.dst == ch.src
            assert back.in_port == ch.out_port

    @given(cube_and_pair(wrap=True))
    @settings(max_examples=30, deadline=None)
    def test_torus_every_port_wired(self, tsd):
        topo, _, _ = tsd
        for node in range(topo.num_nodes):
            for port in range(topo.num_network_ports):
                assert topo.channel(node, port) is not None

    @given(cube_and_pair(wrap=False))
    @settings(max_examples=30, deadline=None)
    def test_direction_moves_closer(self, tsd):
        topo, src, dst = tsd
        if src == dst:
            return
        for dim in range(topo.n):
            d = topo.direction(src, dst, dim)
            if d == 0:
                continue
            c = list(topo.coords(src))
            c[dim] += d
            nxt = topo.node_at(c)
            assert topo.min_hops(nxt, dst) == topo.min_hops(src, dst) - 1

    @given(cube_and_pair(wrap=True))
    @settings(max_examples=30, deadline=None)
    def test_direction_moves_closer_torus(self, tsd):
        topo, src, dst = tsd
        if src == dst:
            return
        for dim in range(topo.n):
            d = topo.direction(src, dst, dim)
            if d == 0:
                continue
            c = list(topo.coords(src))
            c[dim] = (c[dim] + d) % topo.k
            nxt = topo.node_at(c)
            assert topo.min_hops(nxt, dst) == topo.min_hops(src, dst) - 1


class TestRingInvariants:
    @given(st.integers(min_value=3, max_value=65))
    @settings(max_examples=30, deadline=None)
    def test_ring_channel_count(self, n):
        assert sum(1 for _ in Ring(n).channels()) == 2 * n

    @given(
        st.integers(min_value=3, max_value=65),
        st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_ring_distance_bounded(self, n, a):
        r = Ring(n)
        a %= n
        for b in range(n):
            assert r.min_hops(a, b) <= n // 2
