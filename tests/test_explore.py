"""Tests for the NSGA-II design-space explorer (repro.core.explore).

Three layers:

* property-based tests over the pure NSGA-II functions (non-dominated
  sort, crowding, selection, seeded reproducibility of the evolution
  loop) — no simulation involved;
* unit tests for the design-space validation, genome canonicalization,
  the cost proxy, and the Pareto/hypervolume geometry;
* integration tests driving :func:`repro.core.explore.explore` on a tiny
  space: bit-identical fronts across same-seed runs (cold vs warm cache),
  penalty points for infeasible genomes, journal resume after a simulated
  interrupt, and the cache-accounting invariant the explorer shares with
  ``run_sweep`` (resumed work is never re-counted as a cache hit).
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.io import read_jsonl
from repro.analysis.pareto import dominates, hypervolume, pareto_front, pareto_plot
from repro.config import NetworkConfig
from repro.core.explore import (
    DesignSpace,
    ExploreSpec,
    crowding_distances,
    design_cost,
    explore,
    genome_key,
    init_population,
    make_offspring,
    non_dominated_sort,
    nsga2_select,
)
from repro.core.parallel import run_sweep
from repro.rng import make_generator

# ---------------------------------------------------------------------------
# Pure geometry: dominance, front, hypervolume
# ---------------------------------------------------------------------------


def test_dominates_basics():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 1), (1, 1))
    assert not dominates((1, 3), (3, 1))
    assert not dominates((math.inf, 0), (1, 1))
    assert dominates((1, 1), (math.inf, 1))
    with pytest.raises(ValueError):
        dominates((1,), (1, 2))


def test_pareto_front_keeps_nondominated():
    pts = [(1, 1), (2, 2), (0, 3), (3, 0), (1.5, 1.5)]
    assert pareto_front(pts) == [0, 2, 3]
    # duplicates are all kept
    assert pareto_front([(1, 1), (1, 1)]) == [0, 1]


def test_hypervolume_known_boxes():
    assert hypervolume([(0, 0)], (1, 1)) == pytest.approx(1.0)
    assert hypervolume([(0, 0), (0.5, 0.5)], (1, 1)) == pytest.approx(1.0)
    # two staircase steps: 1x0.5 + 0.5x0.5
    assert hypervolume([(0, 0.5), (0.5, 0)], (1, 1)) == pytest.approx(0.75)
    assert hypervolume([(0, 0, 0)], (1, 2, 3)) == pytest.approx(6.0)
    # points at/beyond the reference (and non-finite ones) contribute 0
    assert hypervolume([(1, 1), (math.inf, 0)], (1, 1)) == 0.0
    with pytest.raises(ValueError):
        hypervolume([(0, 0, 0, 0)], (1, 1, 1, 1))


def test_hypervolume_3d_matches_decomposition():
    # Two non-dominated points; inclusion-exclusion by hand.
    pts = [(0, 1, 0), (1, 0, 1)]
    ref = (2.0, 2.0, 2.0)
    # z in [0,1): only (0,1,0) active: area (2-0)*(2-1)=2 -> vol 2
    # z in [1,2): both active: staircase area = 2*1 + 1*(2-... ) compute:
    # points (0,1),(1,0) vs ref (2,2): area = (2-0)*(2-1) + (2-1)*(1-0) = 3
    assert hypervolume(pts, ref) == pytest.approx(2 * 1 + 3 * 1)


def test_pareto_plot_renders_series():
    front = [
        {"cost": 1.0, "latency": 5.0, "topology": "mesh"},
        {"cost": 2.0, "latency": 4.0, "topology": "torus"},
    ]
    fig = pareto_plot(front)
    assert "mesh" in fig and "torus" in fig and "cost" in fig
    assert "(no plottable points)" in pareto_plot([])


# ---------------------------------------------------------------------------
# Property-based NSGA-II core
# ---------------------------------------------------------------------------

objective_vectors = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=1,
    max_size=24,
)


@given(objective_vectors)
@settings(max_examples=60, deadline=None)
def test_front0_never_contains_dominated(objs):
    fronts = non_dominated_sort(objs)
    front0 = set(fronts[0])
    # front 0 is exactly the Pareto front of the input
    assert front0 == set(pareto_front(objs))
    for i in front0:
        assert not any(dominates(objs[j], objs[i]) for j in range(len(objs)))
    # every index lands in exactly one front
    flat = [i for front in fronts for i in front]
    assert sorted(flat) == list(range(len(objs)))


@given(objective_vectors)
@settings(max_examples=60, deadline=None)
def test_crowding_boundary_points_always_kept(objs):
    fronts = non_dominated_sort(objs)
    for front in fronts:
        dist = crowding_distances(objs, front)
        for k in range(3):
            by_obj = sorted(range(len(front)), key=lambda i: objs[front[i]][k])
            assert dist[by_obj[0]] == math.inf
            assert dist[by_obj[-1]] == math.inf
    # selection fills with whole fronts first, then by crowding: anything
    # selected from the overflow front has crowding >= anything rejected.
    k = max(1, len(objs) // 2)
    chosen = nsga2_select(objs, k)
    assert len(chosen) == min(k, len(objs))
    assert len(set(chosen)) == len(chosen)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_identical_seeds_identical_populations(seed):
    """The whole evolution loop is a pure function of the seed."""
    space = DesignSpace.from_mapping(
        {"num_vcs": (2, 4, 8), "topology": ("mesh", "torus"), "vc_buffer_size": (1, 2)}
    )

    def synthetic_objectives(genome):
        # Cheap, deterministic, conflicting objectives.
        vcs = dict(zip(space.names, genome))["num_vcs"]
        q = dict(zip(space.names, genome))["vc_buffer_size"]
        return (100.0 / (vcs * q), float(vcs * q), float(hash(genome) % 97))

    def evolve():
        gen = make_generator(seed, "explore")
        pop = init_population(gen, space, 8)
        history = [list(pop)]
        for _ in range(4):
            objs = [synthetic_objectives(g) for g in pop]
            kids = make_offspring(gen, pop, objs, space, 8)
            union = pop + kids
            union_objs = [synthetic_objectives(g) for g in union]
            pop = [union[i] for i in nsga2_select(union_objs, 8)]
            history.append(list(pop))
        return history

    assert evolve() == evolve()


# ---------------------------------------------------------------------------
# Design space, genomes, cost proxy
# ---------------------------------------------------------------------------


def test_design_space_validation():
    with pytest.raises(ValueError, match="unknown config field"):
        DesignSpace.from_mapping({"bogus": (1, 2)})
    with pytest.raises(ValueError, match="reserved"):
        DesignSpace.from_mapping({"seed": (1, 2)})
    with pytest.raises(ValueError, match="no candidate values"):
        DesignSpace.from_mapping({"num_vcs": ()})
    with pytest.raises(ValueError, match="repeats"):
        DesignSpace.from_mapping({"num_vcs": (2, 2)})
    with pytest.raises(ValueError, match="not in"):
        DesignSpace.from_mapping({"topology": ("mesh", "hypercube")})
    space = DesignSpace.from_mapping({"topology": ("mesh",), "num_vcs": (2, 4)})
    assert space.names == ("num_vcs", "topology")  # sorted
    assert space.size == 2


def test_genome_key_is_order_canonical():
    space = DesignSpace.from_mapping({"num_vcs": (2, 4), "topology": ("mesh", "torus")})
    assert genome_key(space, (2, "mesh")) == "num_vcs=2|topology='mesh'"


def test_design_cost_orders_topologies():
    base = NetworkConfig(k=4, n=2, num_vcs=2)
    mesh = design_cost(base)
    torus = design_cost(base.with_(topology="torus"))
    ring = design_cost(base.with_(topology="ring"))
    # Torus pays wrap wire + extra channels; ring is the cheapest fabric.
    assert ring < mesh < torus
    # More buffering costs more silicon.
    assert design_cost(base.with_(vc_buffer_size=8)) > mesh
    assert design_cost(base.with_(num_vcs=4)) > mesh


def test_explore_spec_validation():
    with pytest.raises(ValueError, match="population"):
        ExploreSpec(population=1)
    with pytest.raises(ValueError, match="rates"):
        ExploreSpec(rates=(0.5, 0.1))
    with pytest.raises(ValueError, match="objectives"):
        ExploreSpec(objectives=("latency",))
    with pytest.raises(ValueError, match="objectives"):
        ExploreSpec(objectives=("latency", "power"))
    spec = ExploreSpec(objectives=("cost", "throughput"))
    # throughput is maximized: negated in the minimized vector
    assert spec.objective_vector({"cost": 3.0, "throughput": 0.5}) == (3.0, -0.5)


# ---------------------------------------------------------------------------
# Integration: the full driver on a tiny space
# ---------------------------------------------------------------------------

BASE = NetworkConfig(k=4, n=2)

TINY_SPACE = DesignSpace.from_mapping(
    {
        "topology": ("mesh", "torus"),
        "num_vcs": (2, 4),
        # val off-mesh raises at validation: exercises the penalty path
        "routing": ("dor", "val"),
    }
)

TINY_SPEC = ExploreSpec(
    space=TINY_SPACE,
    population=6,
    generations=2,
    seed=7,
    rates=(0.1, 0.5),
    warmup=100,
    measure=200,
    drain_limit=2000,
)


def _front_text(result):
    return "\n".join(json.dumps(r, sort_keys=True) for r in result.front)


@pytest.fixture(scope="module")
def explored(tmp_path_factory):
    """One cold explore run, shared by the assertions below."""
    tmp = tmp_path_factory.mktemp("explore")
    res = explore(
        BASE, TINY_SPEC, journal=tmp / "journal.jsonl", cache=tmp / "cache"
    )
    return tmp, res


def test_explore_front_and_penalties(explored):
    _, res = explored
    assert res.front, "tiny space must yield a non-empty front"
    # Front entries are feasible simulated designs with full metadata.
    for rec in res.front:
        assert set(TINY_SPACE.names) <= set(rec)
        assert math.isfinite(rec["cost"])
        assert rec["key"] and "generation" in rec
    # val+torus genomes were drawn and became penalty points, not crashes.
    assert res.infeasible > 0
    assert res.errors == 0
    penalties = [e for e in res.archive if e["source"] == "penalty"]
    assert penalties and all(not e["feasible"] for e in penalties)
    assert all(e["objectives"][0] == math.inf for e in penalties)
    # A penalty genome can never be on the front.
    front_keys = {r["key"] for r in res.front}
    assert front_keys.isdisjoint({e["key"] for e in penalties})


def test_explore_bit_identical_and_warm_cache(explored, tmp_path):
    tmp, res = explored
    res2 = explore(
        BASE, TINY_SPEC, journal=tmp_path / "j2.jsonl", cache=tmp / "cache"
    )
    assert _front_text(res2) == _front_text(res)
    assert res2.populations == res.populations
    h = res2.health
    # Warm run: >= half the evaluation points answered from the cache
    # (failed/penalty points are never cached, so misses stay non-zero).
    assert h.cache_hits >= h.cache_misses
    assert h.cache_hits + h.cache_misses == h.total


def test_explore_resume_after_truncation(explored, tmp_path):
    tmp, res = explored
    lines = (tmp / "journal.jsonl").read_text().splitlines()
    cut = len(lines) - 2
    journal = tmp_path / "resume.jsonl"
    # Drop one full line and leave a half-written one: a mid-write crash.
    journal.write_text("\n".join(lines[:cut]) + "\n" + lines[cut][:15])
    res3 = explore(BASE, TINY_SPEC, journal=journal, resume=True, cache=tmp / "cache")
    assert _front_text(res3) == _front_text(res)
    assert res3.resumed == cut - 1  # every surviving entry replayed
    # The regression the accounting audit pinned down: resumed genomes are
    # answered from the journal archive and never re-submitted to the
    # sweep layer, so the cache-hit summary counts only the fresh points.
    h = res3.health
    fresh_entries = len(res3.archive) - res3.resumed
    assert h.cache_hits + h.cache_misses == h.total
    assert h.total <= 2 * fresh_entries
    # And the rewritten journal holds each genome exactly once.
    keys = [e["key"] for e in read_jsonl(journal) if "key" in e]
    assert len(keys) == len(set(keys)) == len(res3.archive)


def test_explore_resume_refuses_changed_spec(explored, tmp_path):
    tmp, _ = explored
    journal = tmp_path / "stale.jsonl"
    journal.write_text((tmp / "journal.jsonl").read_text())
    changed = ExploreSpec(
        space=TINY_SPACE, population=6, generations=3, seed=7,
        rates=(0.1, 0.5), warmup=100, measure=200, drain_limit=2000,
    )
    with pytest.raises(ValueError, match="fingerprint"):
        explore(BASE, changed, journal=journal, resume=True)
    # force_resume overrides, mirroring the sweep contract
    explore(
        BASE,
        ExploreSpec(
            space=TINY_SPACE, population=6, generations=0, seed=7,
            rates=(0.1, 0.5), warmup=100, measure=200, drain_limit=2000,
        ),
        journal=journal,
        resume=True,
        resume_force=True,
        cache=tmp / "cache",
    )


def test_explore_surrogate_prefilter(tmp_path):
    spec = ExploreSpec(
        space=TINY_SPACE, population=6, generations=2, seed=7,
        rates=(0.1, 0.5), warmup=100, measure=200, drain_limit=2000,
        surrogate=True, screen_fraction=0.5,
    )
    res = explore(BASE, spec, cache=tmp_path / "cache")
    # The surrogate screened some genomes out of simulation entirely...
    assert res.surrogate_only > 0
    surrogate_keys = {
        e["key"] for e in res.archive if e["source"] == "surrogate"
    }
    # ...and those never appear on the (simulated-only) front.
    assert surrogate_keys.isdisjoint({r["key"] for r in res.front})
    # Infeasible genomes are caught for free (no simulation spent).
    assert res.infeasible > 0 and res.errors == 0


def test_explore_remote_matches_local(explored):
    """Evaluation through the sweep service gives the same front.

    ``fallback_after`` makes the workerless controller execute the points
    itself, which still exercises the whole remote path: client-side
    enumeration and seed derivation, the wire protocol, and the
    controller's emit/health bookkeeping.
    """
    from repro.service import Controller, ControllerServer, ServiceOptions

    _, local = explored
    with ControllerServer(Controller(ServiceOptions(fallback_after=0.1))) as server:
        host, port = server.address
        remote = explore(BASE, TINY_SPEC, remote=f"{host}:{port}")
    assert _front_text(remote) == _front_text(local)
    assert remote.populations == local.populations
    assert remote.errors == 0 and remote.infeasible == local.infeasible


# ---------------------------------------------------------------------------
# run_sweep accounting regression (shared by sweep and explore)
# ---------------------------------------------------------------------------


def _counting_runner(cfg, **kwargs):
    gen = make_generator(cfg.seed, "point")
    return {"value": cfg.router_delay + kwargs.get("rate", 0.0), "draw": float(gen.random())}


def test_run_sweep_resumed_points_never_counted_as_cache_hits(tmp_path):
    """A journal-resumed point that is also in the cache is counted once.

    Before the hardening, ``emit`` had no double-emission guard and the
    resumed-entry tally ran *after* the cache replay — correct only as
    long as ``pending`` filtered resumed indices first.  This pins the
    invariant directly: resume half a journal against a fully warm cache
    and check every counter.
    """
    axes = {"router_delay": (1, 2)}
    extra = {"rate": (0.1, 0.2)}
    journal = tmp_path / "j.jsonl"
    cache = tmp_path / "cache"
    run_sweep(BASE, axes, _counting_runner, extra_axes=extra, journal=journal, cache=cache)

    # Truncate the journal to half its points; the cache stays fully warm.
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:3]) + "\n")  # header + 2 of 4 points

    records = run_sweep(
        BASE, axes, _counting_runner, extra_axes=extra,
        journal=journal, resume=True, cache=cache,
    )
    h = records.health
    assert (h.ok, h.failed, h.total) == (4, 0, 4)
    # Only the two non-resumed points touch the cache — both hits.
    assert (h.cache_hits, h.cache_misses) == (2, 0)
    # The journal holds each index exactly once after the resume.
    indices = [e["index"] for e in read_jsonl(journal) if "index" in e]
    assert sorted(indices) == [0, 1, 2, 3]

    # Fully-resumed run: nothing pending, so the cache is never consulted.
    records2 = run_sweep(
        BASE, axes, _counting_runner, extra_axes=extra,
        journal=journal, resume=True, cache=cache,
    )
    h2 = records2.health
    assert (h2.ok, h2.total, h2.cache_hits, h2.cache_misses) == (4, 4, 0, 0)
