"""Statistics applied to real simulation output (end-to-end)."""

from __future__ import annotations

import pytest

from repro.analysis import batch_means, confidence_interval, warmup_cutoff
from repro.core.openloop import OpenLoopSimulator


class TestLatencyStatistics:
    def test_repeated_runs_fall_inside_batch_means_ci(self, mesh4):
        """A CI from one run's latencies should cover another seed's mean —
        using batch means, since per-packet latencies are correlated."""
        sim = OpenLoopSimulator(mesh4, warmup=200, measure=800, drain_limit=3000)
        a = sim.run(0.2, seed=11)
        b = sim.run(0.2, seed=22)
        ci = batch_means(a.latencies, num_batches=10)
        # generous: the two estimates must be statistically compatible
        assert abs(b.avg_latency - ci.mean) < 4 * ci.half_width + 0.5

    def test_batch_means_wider_than_naive_on_latencies(self, mesh4):
        sim = OpenLoopSimulator(mesh4, warmup=200, measure=800, drain_limit=3000)
        res = sim.run(0.45)  # high load: strong temporal correlation
        naive = confidence_interval(res.latencies)
        honest = batch_means(res.latencies, num_batches=10)
        assert honest.half_width >= naive.half_width * 0.9

    def test_warmup_cutoff_on_cold_start_latencies(self, mesh4):
        """A run with no warmup phase shows a cold-start transient that the
        MSER heuristic is allowed to trim; after the configured warmup the
        cutoff should be modest."""
        cold = OpenLoopSimulator(mesh4, warmup=0, measure=1000, drain_limit=3000)
        res = cold.run(0.4)
        cut = warmup_cutoff(res.latencies)
        assert 0 <= cut <= len(res.latencies) // 2
