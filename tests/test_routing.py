"""Unit tests for the routing algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.network.packet import Packet
from repro.routing import DOR, ROMM, MinimalAdaptive, Valiant, build_routing, dor_port, vc_range
from repro.topology import Mesh, Ring, Torus


def mkpkt(src, dst, pid=0):
    return Packet(pid, src, dst, 1, 0)


def walk(routing, topo, pkt, max_hops=200):
    """Follow candidates (taking the first) until ejection; return path."""
    node = pkt.src
    path = [node]
    for _ in range(max_hops):
        cands = routing.route(node, pkt)
        assert cands, "no candidates returned"
        cand = cands[0]
        if cand.out_port == topo.local_port:
            return path
        ch = topo.channel(node, cand.out_port)
        assert ch is not None, f"routed into a missing port at {node}"
        node = ch.dst
        path.append(node)
    raise AssertionError("did not reach destination")


class TestVcRange:
    def test_partitions_evenly(self):
        assert vc_range(0, 2, 4) == (0, 1)
        assert vc_range(1, 2, 4) == (2, 3)

    def test_odd_split_nonempty(self):
        assert vc_range(0, 2, 3) == (0,)
        assert vc_range(1, 2, 3) == (1, 2)

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            vc_range(0, 3, 2)


class TestDorPort:
    def test_x_first(self):
        m = Mesh(4, 2)
        assert dor_port(m, 0, 5) == 0  # +x before +y
        assert dor_port(m, 1, 0) == 1  # -x
        assert dor_port(m, 0, 4) == 2  # +y when x aligned
        assert dor_port(m, 4, 0) == 3  # -y

    def test_arrival(self):
        m = Mesh(4, 2)
        assert dor_port(m, 5, 5) == -1


class TestDORMesh:
    def test_route_is_single_candidate_all_vcs(self):
        m = Mesh(4, 2)
        r = DOR(m, 2)
        cands = r.route(0, mkpkt(0, 5))
        assert len(cands) == 1
        assert cands[0].vcs == (0, 1)

    def test_reaches_destination_minimally(self):
        m = Mesh(8, 2)
        r = DOR(m, 2)
        for src, dst in [(0, 63), (63, 0), (7, 56), (12, 12)]:
            pkt = mkpkt(src, dst)
            path = walk(r, m, pkt)
            assert path[-1] == dst
            assert len(path) - 1 == m.min_hops(src, dst)

    def test_x_then_y_order(self):
        m = Mesh(4, 2)
        r = DOR(m, 2)
        path = walk(r, m, mkpkt(0, 15))
        # x traversal completes before y starts
        xs = [m.coords(n)[0] for n in path]
        ys = [m.coords(n)[1] for n in path]
        assert xs == [0, 1, 2, 3, 3, 3, 3]
        assert ys == [0, 0, 0, 0, 1, 2, 3]

    def test_eject_at_destination(self):
        m = Mesh(4, 2)
        r = DOR(m, 2)
        cands = r.route(5, mkpkt(0, 5))
        assert cands[0].out_port == m.local_port


class TestDORTorus:
    def test_requires_two_vcs(self):
        with pytest.raises(ValueError):
            DOR(Torus(4, 2), 1)

    def test_reaches_destination_minimally(self):
        t = Torus(8, 2)
        r = DOR(t, 2)
        for src, dst in [(0, 63), (0, 7), (7, 0), (0, 36)]:
            path = walk(r, t, mkpkt(src, dst))
            assert path[-1] == dst
            assert len(path) - 1 == t.min_hops(src, dst)

    def test_nonwrapping_leg_uses_class1(self):
        t = Torus(8, 2)
        r = DOR(t, 2)
        cands = r.route(0, mkpkt(0, 2))  # two hops +x, never wraps
        assert cands[0].vcs == (1,)

    def test_wrapping_leg_uses_class0_then_class1(self):
        t = Torus(8, 2)
        r = DOR(t, 2)
        # 2 -> 7 is distance 3 going -x through the wrap at x=0.
        pkt = mkpkt(2, 7)
        c1 = r.route(2, pkt)  # lands on 1: still wraps ahead -> class 0
        assert c1[0].vcs == (0,)
        c2 = r.route(1, pkt)  # lands on 0: wrap still ahead -> class 0
        assert c2[0].vcs == (0,)
        c3 = r.route(0, pkt)  # crossing hop lands on 7 -> class 1
        assert c3[0].vcs == (1,)

    def test_ring_routes(self):
        ring = Ring(16)
        r = DOR(ring, 2)
        for src, dst in [(0, 8), (15, 1), (3, 3)]:
            path = walk(r, ring, mkpkt(src, dst))
            assert path[-1] == dst


class TestValiant:
    def test_two_phases_via_intermediate(self):
        m = Mesh(8, 2)
        r = Valiant(m, 2, seed=3)
        pkt = mkpkt(0, 63)
        r.on_inject(pkt)
        assert pkt.intermediate is not None
        inter = pkt.intermediate
        path = walk(r, m, pkt)
        assert path[-1] == 63
        assert inter in path
        assert pkt.phase == 1

    def test_phase_vc_classes(self):
        m = Mesh(8, 2)
        r = Valiant(m, 4, seed=3)
        pkt = mkpkt(0, 63)
        r.on_inject(pkt)
        pkt.intermediate = 9  # force a known intermediate off the route start
        cands = r.route(0, pkt)
        assert cands[0].vcs == (0, 1)  # phase 0 -> low class
        pkt.phase = 1
        cands = r.route(9, pkt)
        assert cands[0].vcs == (2, 3)  # phase 1 -> high class

    def test_hops_exceed_minimal_for_same_row_pair(self):
        # 0 -> 7 is a same-row pair: most intermediates lie off the row and
        # cost extra hops, so VAL's average path is longer than minimal.
        m = Mesh(8, 2)
        r = Valiant(m, 2, seed=5)
        total = 0
        for pid in range(50):
            pkt = mkpkt(0, 7, pid)
            r.on_inject(pkt)
            total += len(walk(r, m, pkt)) - 1
        assert total / 50 > m.min_hops(0, 7)

    def test_corner_to_corner_stays_minimal_fig12(self):
        # Paper Fig. 12: for the transpose worst-case corner pair, every
        # intermediate falls inside the minimal quadrant (the whole mesh),
        # so VAL degenerates to minimal routing — the reason VAL's higher
        # zero-load latency vanishes in worst-case (closed-loop) metrics.
        m = Mesh(8, 2)
        r = Valiant(m, 2, seed=5)
        for pid in range(30):
            pkt = mkpkt(7, 56, pid)  # (7,0) -> (0,7): transpose corner pair
            r.on_inject(pkt)
            path = walk(r, m, pkt)
            assert len(path) - 1 == m.min_hops(7, 56)

    def test_rejects_wrapped_topologies(self):
        with pytest.raises(TypeError):
            Valiant(Torus(4, 2), 2)

    def test_deterministic_per_seed(self):
        m = Mesh(8, 2)
        a = Valiant(m, 2, seed=11)
        b = Valiant(m, 2, seed=11)
        pa, pb = mkpkt(0, 63), mkpkt(0, 63)
        a.on_inject(pa)
        b.on_inject(pb)
        assert pa.intermediate == pb.intermediate


class TestROMM:
    def test_intermediate_in_minimal_quadrant(self):
        m = Mesh(8, 2)
        r = ROMM(m, 2, seed=7)
        src, dst = 9, 54  # (1,1) -> (6,6)
        for pid in range(40):
            pkt = mkpkt(src, dst, pid)
            r.on_inject(pkt)
            ix, iy = m.coords(pkt.intermediate)
            assert 1 <= ix <= 6 and 1 <= iy <= 6

    def test_route_stays_minimal(self):
        m = Mesh(8, 2)
        r = ROMM(m, 2, seed=7)
        for pid in range(30):
            pkt = mkpkt(9, 54, pid)
            r.on_inject(pkt)
            path = walk(r, m, pkt)
            assert path[-1] == 54
            assert len(path) - 1 == m.min_hops(9, 54)

    def test_rejects_wrapped_topologies(self):
        with pytest.raises(TypeError):
            ROMM(Torus(4, 2), 2)


class TestMinimalAdaptive:
    def test_candidates_cover_productive_dims_plus_escape(self):
        m = Mesh(8, 2)
        r = MinimalAdaptive(m, 4)
        cands = r.route(0, mkpkt(0, 63))
        assert len(cands) == 3  # +x adaptive, +y adaptive, escape
        assert cands[0].vcs == (1, 2, 3)
        assert cands[-1].escape
        assert cands[-1].vcs == (0,)

    def test_single_productive_dim(self):
        m = Mesh(8, 2)
        r = MinimalAdaptive(m, 2)
        cands = r.route(0, mkpkt(0, 7))
        ports = {c.out_port for c in cands}
        assert ports == {0}  # only +x (adaptive and escape share the port)

    def test_all_candidates_minimal(self):
        m = Mesh(8, 2)
        r = MinimalAdaptive(m, 2)
        pkt = mkpkt(0, 63)
        for cand in r.route(0, pkt):
            ch = m.channel(0, cand.out_port)
            assert m.min_hops(ch.dst, 63) == m.min_hops(0, 63) - 1

    def test_escape_walk_reaches_destination(self):
        m = Mesh(8, 2)
        r = MinimalAdaptive(m, 2)
        pkt = mkpkt(0, 63)
        node = 0
        for _ in range(100):
            cands = r.route(node, pkt)
            if cands[0].out_port == m.local_port:
                break
            ch = m.channel(node, cands[-1].out_port)  # always take escape
            node = ch.dst
        assert node == 63


class TestRegistry:
    def test_builds_each(self):
        mesh = Mesh(8, 2)
        for name, cls in (("dor", DOR), ("val", Valiant), ("ma", MinimalAdaptive), ("romm", ROMM)):
            alg = build_routing(NetworkConfig(routing=name), mesh)
            assert isinstance(alg, cls)

    def test_randomized_algorithms_seeded_from_config(self):
        mesh = Mesh(8, 2)
        a = build_routing(NetworkConfig(routing="val", seed=9), mesh)
        b = build_routing(NetworkConfig(routing="val", seed=9), mesh)
        pa, pb = mkpkt(0, 63), mkpkt(0, 63)
        a.on_inject(pa)
        b.on_inject(pb)
        assert pa.intermediate == pb.intermediate
