"""Focused tests on router microarchitecture behaviour."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig
from repro.network import Network


def drain(net, limit=20000):
    for _ in range(limit):
        if net.is_idle():
            return True
        net.step()
    return net.is_idle()


class TestCrossbarConstraints:
    def test_one_flit_per_output_port_per_cycle(self, mesh4):
        # two sources feeding the same destination column must serialize on
        # the shared channel: delivery takes at least one cycle per flit.
        net = Network(mesh4)
        for _ in range(20):
            net.offer(net.make_packet(0, 3, 1))
            net.offer(net.make_packet(4, 3, 1))
        assert drain(net)
        # 40 flits eject at node 3 through one ejection port
        assert net.now >= 40

    def test_input_port_shared_across_outputs(self, mesh4):
        # packets from one source to two different destinations share the
        # injection input port: at most one flit leaves it per cycle.
        net = Network(mesh4)
        for _ in range(15):
            net.offer(net.make_packet(5, 6, 1))
            net.offer(net.make_packet(5, 9, 1))
        assert drain(net)
        assert net.now >= 30  # 30 flits through one injection port


class TestWormhole:
    def test_body_flits_follow_head_vc(self, mesh4):
        """A multi-flit packet streams contiguously: its per-flit ejection
        times at the destination are consecutive."""
        ejections = []
        net = Network(mesh4)
        orig = net.count_ejection

        def spy(node):
            ejections.append(net.now)
            orig(node)

        net.count_ejection = spy
        net.offer(net.make_packet(0, 15, 4))
        assert drain(net)
        assert len(ejections) == 4
        assert ejections == list(range(ejections[0], ejections[0] + 4))

    def test_two_packets_interleave_across_vcs_not_within(self, mesh4):
        # With 2 VCs, two long packets on the same route can be in flight
        # concurrently; total time is less than strict serialization.
        net = Network(mesh4.with_(vc_buffer_size=8))
        serial = Network(mesh4.with_(num_vcs=2, vc_buffer_size=8))
        for n in (net,):
            n.offer(n.make_packet(0, 3, 8))
            n.offer(n.make_packet(4, 7, 8))
        assert drain(net)
        # distinct routes: no conflict, finishes near single-packet time
        single = Network(mesh4.with_(vc_buffer_size=8))
        single.offer(single.make_packet(0, 3, 8))
        assert drain(single)
        assert net.now <= single.now + 8


class TestAdaptiveRouting:
    def test_ma_spreads_over_congested_link(self):
        """MA routes around a congested dimension; DOR cannot."""
        runtimes = {}
        for alg in ("dor", "ma"):
            cfg = NetworkConfig(k=4, n=2, routing=alg, num_vcs=4)
            net = Network(cfg)
            # hammer the x-first path 0->1->...->3 with cross traffic
            for _ in range(30):
                net.offer(net.make_packet(0, 15, 2))  # corner to corner
                net.offer(net.make_packet(1, 3, 2))  # congests row 0
                net.offer(net.make_packet(2, 3, 2))
            assert drain(net)
            runtimes[alg] = net.now
        assert runtimes["ma"] <= runtimes["dor"]


class TestAgeArbitrationEffect:
    def test_age_reduces_worst_case_latency(self, mesh8):
        """Age-based arbitration trades average for tail latency."""
        tails = {}
        for arb in ("round_robin", "age"):
            cfg = mesh8.with_(arbitration=arb)
            net = Network(cfg)
            lat = []
            import numpy as np

            from repro import rng as rng_mod
            from repro.traffic import UniformRandom

            gen = rng_mod.make_generator(3, "arb")
            pat = UniformRandom(64)
            for _ in range(1200):
                for src in np.nonzero(gen.random(64) < 0.35)[0]:
                    src = int(src)
                    net.offer(net.make_packet(src, pat.dest(src, gen), 1))
                for pkt in net.step():
                    lat.append(pkt.latency)
            tails[arb] = float(np.percentile(lat, 99))
        # age-based arbitration should not have a *worse* tail
        assert tails["age"] <= tails["round_robin"] * 1.1


class TestBimodalTraffic:
    def test_long_packets_raise_latency(self, mesh4):
        from repro.core.openloop import OpenLoopSimulator

        short = OpenLoopSimulator(mesh4, warmup=200, measure=400, drain_limit=2500)
        mixed = OpenLoopSimulator(
            mesh4.with_(packet_size="bimodal"),
            warmup=200,
            measure=400,
            drain_limit=2500,
        )
        assert mixed.run(0.2).avg_latency > short.run(0.2).avg_latency

    def test_bimodal_batch_completes(self, mesh4):
        from repro.core.closedloop import BatchSimulator

        res = BatchSimulator(
            mesh4.with_(packet_size="bimodal"), batch_size=40, max_outstanding=4
        ).run()
        assert res.completed
        # flits per op > 2, so flit throughput exceeds 2b/T packets formula
        assert res.throughput > res.packet_throughput


class TestLargerNetworks:
    def test_16x16_mesh_works(self):
        """The paper's 256-node configuration runs (scaled load)."""
        cfg = NetworkConfig(k=16, n=2)
        net = Network(cfg)
        for src in range(0, 256, 16):
            net.offer(net.make_packet(src, 255 - src, 1))
        assert drain(net)
        assert net.total_packets_delivered == 16

    def test_3d_mesh_works(self):
        cfg = NetworkConfig(k=4, n=3)
        net = Network(cfg)
        assert net.num_nodes == 64
        pkt = net.make_packet(0, 63, 1)
        net.offer(pkt)
        assert drain(net)
        assert pkt.hops == 9  # 3+3+3

    def test_3d_torus_works(self):
        cfg = NetworkConfig(topology="torus", k=4, n=3)
        net = Network(cfg)
        pkt = net.make_packet(0, 63, 1)
        net.offer(pkt)
        assert drain(net)
        assert pkt.hops == 3  # single wrap per dimension
