"""Additional branch coverage across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CmpConfig, NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.core.osmodel import OSModel
from repro.execdriven import CmpSystem, characterize, fft
from repro.traffic import FixedSize


class TestBatchVariants:
    def test_reply_sizes_override(self, mesh4):
        """4-flit replies (cache lines) double flit throughput per op."""
        small = BatchSimulator(mesh4, batch_size=30, max_outstanding=2).run()
        data = BatchSimulator(
            mesh4, batch_size=30, max_outstanding=2, reply_sizes=FixedSize(4)
        ).run()
        assert data.completed
        # flits per op: 1+1 vs 1+4
        ratio = (data.throughput * data.runtime) / (small.throughput * small.runtime)
        assert ratio == pytest.approx(2.5, rel=0.05)

    def test_request_sizes_override(self, mesh4):
        res = BatchSimulator(
            mesh4, batch_size=20, max_outstanding=1, sizes=FixedSize(2)
        ).run()
        assert res.completed

    def test_os_model_with_incomplete_run(self, mesh4):
        os_model = OSModel(static_fraction=1.0, timer_rate=0.02, timer_batch=4)
        res = BatchSimulator(
            mesh4,
            batch_size=100,
            max_outstanding=1,
            os_model=os_model,
            max_cycles=300,
        ).run()
        assert not res.completed
        assert res.runtime == 300

    def test_transpose_diagonal_nodes_finish_fast(self):
        """Transpose fixed points talk to themselves: near-zero network
        time, so diagonal nodes finish long before corner pairs."""
        cfg = NetworkConfig(k=4, n=2, traffic="transpose")
        res = BatchSimulator(cfg, batch_size=40, max_outstanding=1).run()
        finish = res.node_finish.reshape(4, 4)
        diagonal = np.diag(finish).mean()
        off = finish[0, 3]
        assert diagonal < off


class TestOpenLoopVariants:
    def test_custom_sizes(self, mesh4):
        sim = OpenLoopSimulator(
            mesh4, sizes=FixedSize(3), warmup=150, measure=300, drain_limit=2000
        )
        res = sim.run(0.15)  # 0.05 packets/cycle/node
        assert res.num_measured == pytest.approx(0.05 * 16 * 300, rel=0.3)
        assert not res.saturated

    def test_seed_override_changes_stream(self, mesh4):
        sim = OpenLoopSimulator(mesh4, warmup=100, measure=200, drain_limit=1000)
        a = sim.run(0.1, seed=1)
        b = sim.run(0.1, seed=2)
        assert a.num_measured != b.num_measured or a.avg_latency != b.avg_latency


class TestCmpSmallCaches:
    def test_small_caches_raise_miss_rates(self, cmp_small):
        spec = fft(1500)
        small = CmpSystem(spec, cmp_small, seed=3).run()
        big = CmpSystem(spec, seed=3).run()
        # same program, smaller caches: strictly more network requests
        assert small.requests > big.requests

    def test_characterize_with_custom_config(self, cmp_small):
        ch = characterize(fft(1200), cmp_small, seed=3)
        assert ch.ideal_cycles > 0
        assert ch.nar > 0


class TestTopologyEdgeCases:
    def test_two_node_ring(self):
        from repro.topology import Ring

        r = Ring(2)
        r.validate()
        assert r.min_hops(0, 1) == 1

    def test_one_dimensional_mesh(self):
        from repro.topology import Mesh

        m = Mesh(8, 1)
        m.validate()
        assert m.num_nodes == 8
        assert m.min_hops(0, 7) == 7

    def test_line_network_routes(self):
        cfg = NetworkConfig(k=8, n=1)
        from repro.network import Network

        net = Network(cfg)
        pkt = net.make_packet(0, 7, 1)
        net.offer(pkt)
        for _ in range(100):
            if net.is_idle():
                break
            net.step()
        assert pkt.hops == 7
