"""Property-based tests on end-to-end network invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.config import NetworkConfig
from repro.network import Network
from repro.traffic import UniformRandom


def run_traffic(cfg, offers, drain_limit=30000):
    """Offer (src, dst, size) packets over the first cycles, then drain."""
    net = Network(cfg)
    packets = []
    for i, (src, dst, size) in enumerate(offers):
        pkt = net.make_packet(src % net.num_nodes, dst % net.num_nodes, size)
        net.offer(pkt)
        packets.append(pkt)
        if i % 4 == 3:
            net.step()
    for _ in range(drain_limit):
        if net.is_idle():
            break
        net.step()
    return net, packets


offers_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=5),
    ),
    min_size=1,
    max_size=60,
)

config_strategy = st.sampled_from(
    [
        NetworkConfig(k=4, n=2),
        NetworkConfig(k=4, n=2, num_vcs=4, vc_buffer_size=2),
        NetworkConfig(k=4, n=2, router_delay=3),
        NetworkConfig(k=4, n=2, arbitration="age"),
        NetworkConfig(topology="torus", k=4, n=2),
        NetworkConfig(topology="ring", k=4, n=2),
        NetworkConfig(k=4, n=2, routing="val"),
        NetworkConfig(k=4, n=2, routing="ma"),
        NetworkConfig(k=4, n=2, routing="romm"),
    ]
)


class TestDeliveryInvariants:
    @given(config_strategy, offers_strategy)
    @settings(max_examples=40, deadline=None)
    def test_every_packet_delivered_exactly_once(self, cfg, offers):
        net, packets = run_traffic(cfg, offers)
        assert net.is_idle(), "network failed to drain (deadlock or loss)"
        assert net.total_packets_delivered == len(packets)
        for pkt in packets:
            assert pkt.deliver_time >= 0
            assert pkt.deliver_time >= pkt.inject_time >= pkt.create_time

    @given(offers_strategy)
    @settings(max_examples=30, deadline=None)
    def test_dor_hops_are_minimal(self, offers):
        cfg = NetworkConfig(k=4, n=2)
        net, packets = run_traffic(cfg, offers)
        assert net.is_idle()
        for pkt in packets:
            assert pkt.hops == net.topology.min_hops(pkt.src, pkt.dst)

    @given(offers_strategy)
    @settings(max_examples=25, deadline=None)
    def test_ma_hops_are_minimal(self, offers):
        cfg = NetworkConfig(k=4, n=2, routing="ma")
        net, packets = run_traffic(cfg, offers)
        assert net.is_idle()
        for pkt in packets:
            assert pkt.hops == net.topology.min_hops(pkt.src, pkt.dst)

    @given(offers_strategy)
    @settings(max_examples=25, deadline=None)
    def test_flit_conservation(self, offers):
        cfg = NetworkConfig(k=4, n=2, num_vcs=2, vc_buffer_size=1)
        net, packets = run_traffic(cfg, offers)
        assert net.is_idle()
        total_flits = sum(p.size for p in packets)
        assert net.total_flits_delivered == total_flits
        assert int(net.flit_injections.sum()) == total_flits
        assert int(net.flit_ejections.sum()) == total_flits

    @given(offers_strategy, st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_latency_at_least_zero_load(self, offers, tr):
        cfg = NetworkConfig(k=4, n=2, router_delay=tr)
        net, packets = run_traffic(cfg, offers)
        assert net.is_idle()
        for pkt in packets:
            h = net.topology.min_hops(pkt.src, pkt.dst)
            floor = h * (tr + 1) + tr + (pkt.size - 1)
            assert pkt.latency >= floor


class TestSaturatedStability:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_overload_then_drain_always_clean(self, seed):
        """Even past saturation, stopping injection must drain everything —
        the no-deadlock property of the VC discipline."""
        cfg = NetworkConfig(k=4, n=2, num_vcs=2, vc_buffer_size=2)
        net = Network(cfg)
        gen = rng_mod.make_generator(seed, "overload")
        pat = UniformRandom(16)
        offered = 0
        for _ in range(400):
            for src in np.nonzero(gen.random(16) < 0.8)[0]:
                src = int(src)
                net.offer(net.make_packet(src, pat.dest(src, gen), 2))
                offered += 1
            net.step()
        for _ in range(60000):
            if net.is_idle():
                break
            net.step()
        assert net.is_idle()
        assert net.total_packets_delivered == offered
