"""Tests for knee detection and model-steered sweeps (repro.core.steering).

The steering layer's contract has two halves: :func:`find_knee` must put
the simulation budget where the curve bends (property-tested on synthetic
curve families), and :func:`steered_sweep` must produce simulated records
*bit-identical* to the dense sweep's — steering decides which points get
cycles, never what a simulated point contains.
"""

from __future__ import annotations

import functools
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng
from repro.__main__ import _openloop_runner
from repro.config import NetworkConfig
from repro.core.parallel import run_sweep
from repro.core.steering import _window, find_knee, steered_sweep

BASE = NetworkConfig(k=4, n=2)
RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def fake_runner(cfg, **kwargs):
    """Cheap deterministic stand-in with an M/M/1-shaped latency curve."""
    rate = kwargs["rate"]
    gen = rng.make_generator(cfg.seed, "steer-test")
    sat = 0.75 / cfg.router_delay
    if rate >= sat:
        latency, saturated = float("inf"), True
    else:
        latency, saturated = 5.0 + 1.0 / (sat - rate), False
    return {
        "latency": latency,
        "worst_node": latency * 1.5,
        "throughput": min(rate, sat),
        "saturated": saturated,
        "draw": float(gen.random()),
    }


# ---------------------------------------------------------------------------
# find_knee properties
# ---------------------------------------------------------------------------


class TestFindKnee:
    @given(
        n=st.integers(3, 40),
        slope=st.floats(0.1, 100.0),
        intercept=st.floats(-50.0, 50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_linear_curves_knee_at_end(self, n, slope, intercept):
        xs = np.linspace(0.0, 1.0, n)
        ys = intercept + slope * xs
        assert find_knee(xs, ys) == n - 1

    @given(n=st.integers(3, 40), scale=st.floats(0.5, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_concave_monotone_curves_knee_at_end(self, n, scale):
        # diminishing-returns growth stays above the chord: no sag, no knee
        xs = np.linspace(0.0, 1.0, n)
        ys = scale * np.sqrt(xs)
        assert find_knee(xs, ys) == n - 1

    @given(n=st.integers(3, 30), value=st.floats(-10.0, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_constant_curves_knee_at_end(self, n, value):
        xs = np.linspace(0.0, 1.0, n)
        assert find_knee(xs, np.full(n, value)) == n - 1

    @given(
        n=st.integers(6, 50),
        data=st.data(),
        lo=st.floats(0.0, 5.0),
        jump=st.floats(10.0, 1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_step_curves_knee_at_step(self, n, data, lo, jump):
        # the flat prefix must be long enough that its sag clears the
        # no-knee tolerance: sag at the last flat point is (step-1)/(n-1)
        lo_step = max(2, math.ceil(0.05 * (n - 1)) + 1)
        step = data.draw(st.integers(lo_step, n - 2))
        xs = np.linspace(0.0, 1.0, n)
        ys = np.where(np.arange(n) < step, lo, lo + jump)
        knee = find_knee(xs, ys)
        # the maximum sag sits on the last flat point before the jump
        assert abs(knee - step) <= 1

    def test_elbow_curve_knee_at_bend(self):
        # flat ramp then steep climb: the knee is the corner
        xs = np.linspace(0.0, 1.0, 21)
        ys = np.where(xs <= 0.6, xs, 0.6 + 25.0 * (xs - 0.6))
        knee = find_knee(xs, ys)
        assert abs(xs[knee] - 0.6) <= 0.05 + 1e-9

    def test_saturated_tail_clipped_not_nan(self):
        # inf latencies (saturated points) register as a bend at the last
        # finite point, not a NaN result
        xs = np.linspace(0.1, 0.8, 8)
        ys = [10.0, 10.5, 11.0, 12.0, 15.0, math.inf, math.inf, math.inf]
        knee = find_knee(xs, ys)
        assert 3 <= knee <= 5

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            find_knee([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="at least one"):
            find_knee([], [])
        assert find_knee([1.0], [5.0]) == 0
        assert find_knee([1.0, 2.0], [5.0, 6.0]) == 1
        assert find_knee([0.5] * 5, list(range(5))) == 4  # zero x-range
        assert find_knee(list(range(5)), [math.inf] * 5) == 4


class TestWindow:
    @given(
        total=st.integers(1, 50),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_contiguous_in_bounds_and_covers_knee(self, total, data):
        knee = data.draw(st.integers(0, total - 1))
        budget = data.draw(st.integers(1, total))
        win = _window(knee, total, budget)
        assert len(win) == budget
        assert win == tuple(range(win[0], win[0] + budget))
        assert 0 <= win[0] and win[-1] < total
        # knee inside the window whenever the clamp allows it
        assert win[0] <= knee <= win[-1] or win[0] == 0 or win[-1] == total - 1


# ---------------------------------------------------------------------------
# steered_sweep machinery (fake runner: fast, deterministic)
# ---------------------------------------------------------------------------


def strip(rec):
    return {k: v for k, v in rec.items() if k not in ("wall_seconds", "source")}


class TestSteeredSweep:
    def test_simulated_records_bit_identical_to_dense(self):
        axes = {"router_delay": (1, 2)}
        dense = run_sweep(BASE, axes, fake_runner, extra_axes={"rate": RATES})
        steered = steered_sweep(BASE, axes, fake_runner, rates=RATES)
        assert len(steered) == len(dense)
        dense_by_key = {
            (r["router_delay"], r["rate"]): r for r in dense
        }
        n_sim = 0
        for rec in steered:
            if rec["source"] == "simulated":
                n_sim += 1
                assert strip(rec) == strip(
                    dense_by_key[(rec["router_delay"], rec["rate"])]
                )
        # at most half the grid simulated, and only half per combination
        assert n_sim <= len(dense) // 2
        for plan in steered.plans:
            assert plan.simulated_fraction <= 0.5

    def test_budget_and_source_tags(self):
        steered = steered_sweep(
            BASE, {}, fake_runner, rates=RATES, sim_fraction=0.5
        )
        sources = [r["source"] for r in steered]
        assert sources.count("simulated") == 4  # int(8 * 0.5)
        assert sources.count("analytical") == 4
        (plan,) = steered.plans
        assert plan.simulated_indices == tuple(
            i for i, s in enumerate(sources) if s == "simulated"
        )
        # window is contiguous and contains the predicted knee
        assert plan.simulated_indices[0] <= plan.knee_index
        assert plan.knee_index <= plan.simulated_indices[-1]

    def test_min_simulated_floor(self):
        steered = steered_sweep(
            BASE, {}, fake_runner, rates=RATES, sim_fraction=0.01,
            min_simulated=2,
        )
        sources = [r["source"] for r in steered]
        assert sources.count("simulated") == 2

    def test_analytical_fill_shape(self):
        steered = steered_sweep(
            BASE, {"router_delay": (2,)}, fake_runner, rates=RATES
        )
        fills = [r for r in steered if r["source"] == "analytical"]
        assert fills
        for rec in fills:
            assert rec["router_delay"] == 2
            assert math.isnan(rec["worst_node"])
            assert rec["latency"] > 0 or math.isinf(rec["latency"])
            assert "wall_seconds" in rec
        # records come back in dense canonical order
        assert [r["rate"] for r in steered] == list(RATES)

    def test_health_counts_every_point(self):
        steered = steered_sweep(BASE, {"router_delay": (1, 2)}, fake_runner,
                                rates=RATES)
        assert steered.health.total == len(RATES) * 2
        assert steered.health.ok == len(RATES) * 2
        assert steered.health.failed == 0

    def test_journal_round_trip(self, tmp_path):
        journal = tmp_path / "steer.jsonl"
        steered = steered_sweep(
            BASE, {}, fake_runner, rates=RATES, journal=journal
        )
        lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        header, *points = lines
        assert header["sweep"]["steered"] is True
        assert header["sweep"]["total"] == len(RATES)
        assert header["sweep"]["sim_fraction"] == 0.5
        assert len(points) == len(steered)
        for entry, rec in zip(points, steered):
            assert entry["record"]["source"] == rec["source"]
            assert entry["point"]["rate"] == rec["rate"]

    def test_validation(self):
        with pytest.raises(ValueError, match="sim_fraction"):
            steered_sweep(BASE, {}, fake_runner, rates=RATES, sim_fraction=0.0)
        with pytest.raises(ValueError, match="min_simulated"):
            steered_sweep(
                BASE, {}, fake_runner, rates=RATES, min_simulated=0
            )
        with pytest.raises(ValueError, match="rates"):
            steered_sweep(BASE, {}, fake_runner, rates=())


# ---------------------------------------------------------------------------
# end-to-end: steering a real (tiny) open-loop sweep
# ---------------------------------------------------------------------------


class TestSteeredOpenLoop:
    def test_knee_within_one_grid_step_of_dense(self):
        rates = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
        runner = functools.partial(
            _openloop_runner, warmup=200, measure=400, drain_limit=4000
        )
        dense = run_sweep(BASE, {}, runner, extra_axes={"rate": rates})
        dense_knee = find_knee(
            rates, [r["latency"] for r in dense]
        )
        steered = steered_sweep(BASE, {}, runner, rates=rates)
        (plan,) = steered.plans
        assert abs(plan.knee_index - dense_knee) <= 1
        # simulated budget respected on the real runner too
        n_sim = sum(1 for r in steered if r["source"] == "simulated")
        assert n_sim <= len(rates) // 2
        # the simulated window brackets the dense knee's neighbourhood
        sim_rates = [
            r["rate"] for r in steered if r["source"] == "simulated"
        ]
        assert min(sim_rates) <= rates[dense_knee] <= max(sim_rates)
