"""Property and analytical tests on the closed-loop models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.core.osmodel import OSModel
from repro.core.reply import FixedReply

CFG = NetworkConfig(k=4, n=2)


class TestConservation:
    @given(
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=1, max_value=8),
        st.sampled_from(["uniform_random", "transpose", "bit_complement"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_total_requests_equals_n_times_b(self, b, m, traffic):
        cfg = CFG.with_(traffic=traffic)
        res = BatchSimulator(cfg, batch_size=b, max_outstanding=m).run()
        assert res.completed
        assert res.total_requests == 16 * b
        assert res.os_requests == 0
        assert (res.node_finish >= 0).all()

    @given(st.integers(min_value=1, max_value=4), st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_static_os_requests_counted(self, m, frac):
        os_model = OSModel(static_fraction=frac, timer_rate=0.0, timer_batch=0)
        res = BatchSimulator(
            CFG, batch_size=20, max_outstanding=m, os_model=os_model
        ).run()
        assert res.completed
        assert res.os_requests == 16 * round(frac * 20)
        assert res.total_requests == 16 * (20 + round(frac * 20))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_runtime_reproducible_per_seed(self, seed):
        a = BatchSimulator(CFG, batch_size=15, max_outstanding=2).run(seed=seed)
        b = BatchSimulator(CFG, batch_size=15, max_outstanding=2).run(seed=seed)
        assert a.runtime == b.runtime


class TestAnalyticalStructure:
    def test_m1_runtime_decomposes_into_gap_plus_rtt(self):
        """At m=1 with NAR, per-op time ~ E[gap] + RTT: the geometric wait
        (mean 1/nar) plus the request+reply round trip."""
        nar = 0.05
        plain = BatchSimulator(CFG, batch_size=80, max_outstanding=1).run()
        rtt = plain.normalized_runtime  # pure round-trip time per op
        gapped = BatchSimulator(
            CFG, batch_size=80, max_outstanding=1, nar=nar
        ).run()
        expected = 1.0 / nar + rtt
        assert gapped.normalized_runtime == pytest.approx(expected, rel=0.12)

    def test_m1_reply_latency_adds_linearly(self):
        base = BatchSimulator(CFG, batch_size=60, max_outstanding=1).run()
        for delay in (25, 100):
            res = BatchSimulator(
                CFG, batch_size=60, max_outstanding=1, reply_model=FixedReply(delay)
            ).run()
            assert res.normalized_runtime == pytest.approx(
                base.normalized_runtime + delay, rel=0.08
            )

    def test_batch_theta_approaches_openloop_saturation(self):
        """The m->inf asymptote of the batch model's achieved throughput is
        the network's saturation throughput (SII-B1)."""
        theta = BatchSimulator(CFG, batch_size=400, max_outstanding=64).run().throughput
        sat = OpenLoopSimulator(
            CFG, warmup=300, measure=600, drain_limit=3000
        ).saturation_throughput(tolerance=0.02)
        assert theta == pytest.approx(sat, rel=0.25)

    def test_runtime_at_least_bandwidth_bound(self):
        """T >= 2b/theta_max: no run can beat the network's capacity."""
        res = BatchSimulator(CFG, batch_size=200, max_outstanding=32).run()
        assert res.throughput < 0.8  # 4x4 mesh capacity ~0.74

    def test_node_finish_monotone_under_larger_batch(self):
        t40 = BatchSimulator(CFG, batch_size=40, max_outstanding=4).run().runtime
        t80 = BatchSimulator(CFG, batch_size=80, max_outstanding=4).run().runtime
        assert t80 > t40
        # near-linear scaling once in steady state
        assert t80 / t40 == pytest.approx(2.0, rel=0.25)


class TestTimerProperties:
    @given(st.sampled_from([0.02, 0.01, 0.005]))
    @settings(max_examples=6, deadline=None)
    def test_os_traffic_proportional_to_runtime(self, rate):
        os_model = OSModel(static_fraction=0.0, timer_rate=rate, timer_batch=1)
        res = BatchSimulator(
            CFG, batch_size=50, max_outstanding=1, os_model=os_model
        ).run()
        assert res.completed
        expected = res.runtime * rate * 16
        assert res.os_requests == pytest.approx(expected, rel=0.35)

    def test_timer_traffic_extends_runtime_superlinearly_at_saturation(self):
        """Timer batches compete for the same m budget: heavy timer rates
        inflate runtime more than their raw request count suggests."""
        base = BatchSimulator(CFG, batch_size=50, max_outstanding=1).run()
        heavy = BatchSimulator(
            CFG,
            batch_size=50,
            max_outstanding=1,
            os_model=OSModel(static_fraction=0.0, timer_rate=0.02, timer_batch=4),
        ).run()
        extra_ops = heavy.os_requests / 16
        assert heavy.runtime > base.runtime + extra_ops  # each op costs >1 cycle
