"""First-class traffic classes: registry, arbiters, and per-class views.

Covers the class registry itself (parsing, validation, round-trips), the
class-aware arbiter family (strict priority and weighted fair queueing),
the per-class measurement surface (OpenLoopResult, stats helpers, the
``classes`` probe with JSONL round-trip), and the closed-loop driver's
registry-based user/OS bookkeeping.  Backend equality on multi-class
configs is enforced separately by the differential harness and the golden
records.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.classes import (
    DEFAULT_CLASSES,
    OS_CLASS,
    USER_CLASS,
    USER_OS_CLASSES,
    class_shares,
    format_classes,
    inject_order,
    parse_classes,
)
from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.core.osmodel import OSModel
from repro.core.probes import ClassLatencyProbe, ProbeSet, build_probes
from repro.core.reply import FixedReply, ImmediateReply, PerClassReply
from repro.analysis.stats import (
    LatencyStats,
    class_breakdown,
    latency_stats,
    per_class_latency_stats,
)
from repro.network.arbiters import (
    StrictPriorityArbiter,
    WeightedArbiter,
    build_arbiter,
)


class _Pkt:
    def __init__(self, pid, traffic_class, create_time=0, size=1, latency=0.0):
        self.pid = pid
        self.traffic_class = traffic_class
        self.create_time = create_time
        self.size = size
        self.latency = latency


# ---------------------------------------------------------------------------
# registry parsing and validation
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_default_is_single_class(self):
        assert parse_classes(None) == DEFAULT_CLASSES
        assert len(DEFAULT_CLASSES) == 1
        assert DEFAULT_CLASSES[0].priority == 0
        assert DEFAULT_CLASSES[0].weight == 1

    def test_parse_spec_round_trip(self):
        spec = "user:share=3:weight=2+os:priority=1"
        classes = parse_classes(spec)
        assert [c.name for c in classes] == ["user", "os"]
        assert classes[0].weight == 2
        assert classes[1].priority == 1
        assert parse_classes(format_classes(classes)) == classes

    def test_parse_count(self):
        classes = parse_classes(3)
        assert len(classes) == 3
        # c0 is the highest-priority class of a numbered registry
        assert classes[0].priority > classes[-1].priority

    def test_config_validates_eagerly(self):
        with pytest.raises(ValueError):
            NetworkConfig(classes="dup+dup")
        with pytest.raises(ValueError):
            NetworkConfig(classes="a:priority=-1")
        with pytest.raises(ValueError):
            NetworkConfig(classes="a:weight=0")
        with pytest.raises(ValueError):
            NetworkConfig(classes="a:pattern=not_a_pattern")

    def test_priority_weighted_need_registry_on_arbiter(self):
        with pytest.raises(ValueError):
            build_arbiter("priority", 4, None)
        with pytest.raises(ValueError):
            build_arbiter("weighted", 4, None)

    def test_shares_and_inject_order(self):
        classes = parse_classes("a:share=3+b:share=1")
        assert class_shares(classes) == (0.75, 0.25)
        assert inject_order(USER_OS_CLASSES) == (OS_CLASS, USER_CLASS)
        assert inject_order(DEFAULT_CLASSES) == (0,)


# ---------------------------------------------------------------------------
# arbiters
# ---------------------------------------------------------------------------


class TestArbiters:
    def test_strict_priority_picks_highest(self):
        arb = build_arbiter("priority", 8, parse_classes("lo+hi:priority=5"))
        assert isinstance(arb, StrictPriorityArbiter)
        reqs = [(0, _Pkt(1, 0, create_time=0)), (3, _Pkt(2, 1, create_time=9))]
        # the younger packet wins because its class outranks
        assert arb.pick(reqs) == reqs[1]

    def test_strict_priority_ties_break_by_age(self):
        arb = build_arbiter("priority", 8, parse_classes("a+b"))
        reqs = [(0, _Pkt(2, 0, create_time=5)), (3, _Pkt(1, 1, create_time=2))]
        assert arb.pick(reqs) == reqs[1]

    def test_out_of_range_class_clamps(self):
        arb = build_arbiter("priority", 8, parse_classes("lo+hi:priority=5"))
        reqs = [(0, _Pkt(1, 7, create_time=9)), (1, _Pkt(2, 0, create_time=0))]
        # class 7 clamps to the last registry class (hi) and outranks lo
        assert arb.pick(reqs) == reqs[0]

    def test_weighted_grants_follow_weights(self):
        classes = parse_classes("a:weight=3+b:weight=1")
        arb = build_arbiter("weighted", 8, classes)
        assert isinstance(arb, WeightedArbiter)
        grants = {0: 0, 1: 0}
        reqs = [(0, _Pkt(1, 0)), (1, _Pkt(2, 1))]
        for _ in range(40):
            winner = arb.pick(reqs)
            grants[winner[1].traffic_class] += 1
            arb.granted(winner[1])
        assert grants[0] == 30 and grants[1] == 10

    def test_weighted_pick_is_pure(self):
        """pick() must not mutate state — only granted() advances it."""
        arb = build_arbiter("weighted", 8, parse_classes("a+b"))
        reqs = [(0, _Pkt(1, 0)), (1, _Pkt(2, 1))]
        first = arb.pick(reqs)
        assert all(arb.pick(reqs) == first for _ in range(5))


# ---------------------------------------------------------------------------
# per-class measurement surface
# ---------------------------------------------------------------------------


class TestPerClassMeasurement:
    def test_empty_inputs_yield_nan_not_raise(self):
        for stats in (
            LatencyStats.from_values([]),
            latency_stats([]),
            *per_class_latency_stats([], [], 2),
            *class_breakdown([], 2),
        ):
            assert stats.count == 0
            assert math.isnan(stats.mean) and math.isnan(stats.p99)

    def test_single_sample_has_nan_std(self):
        s = LatencyStats.from_values([4.0])
        assert s.count == 1 and s.mean == 4.0 and math.isnan(s.std)

    def test_per_class_split(self):
        stats = per_class_latency_stats([1.0, 3.0, 10.0], [0, 0, 1], 3)
        assert stats[0].mean == 2.0
        assert stats[1].mean == 10.0
        assert stats[2].count == 0 and math.isnan(stats[2].mean)

    def test_class_breakdown_clamps(self):
        pkts = [_Pkt(1, 0, latency=2.0), _Pkt(2, 9, latency=6.0)]
        stats = class_breakdown(pkts, 2)
        assert stats[0].mean == 2.0 and stats[1].mean == 6.0

    def test_openloop_result_per_class(self):
        cfg = NetworkConfig(
            k=4, n=2, seed=3, classes="user:share=3+os:priority=1"
        )
        res = OpenLoopSimulator(
            cfg, warmup=100, measure=300, drain_limit=3000
        ).run(0.2)
        assert res.num_classes == 2
        assert len(res.class_ids) == res.num_measured
        per = res.per_class_stats()
        assert sum(s.count for s in per) == res.num_measured
        # shares ~3:1 in packets and throughput
        assert per[0].count > 2 * per[1].count
        assert res.per_class_throughput[0] > 2 * res.per_class_throughput[1]
        assert res.per_class_throughput.sum() == pytest.approx(
            res.throughput, rel=0.15
        )

    def test_single_class_result_shape(self):
        cfg = NetworkConfig(k=4, n=2, seed=3)
        res = OpenLoopSimulator(
            cfg, warmup=100, measure=200, drain_limit=2000
        ).run(0.1)
        assert res.num_classes == 1
        assert res.per_class_stats()[0].count == res.num_measured


class TestClassLatencyProbe:
    def test_probe_records_round_trip_jsonl(self, tmp_path):
        from repro.analysis.io import read_jsonl

        out = tmp_path / "probes.jsonl"
        probes = ProbeSet(build_probes("classes"), interval=100, out=out)
        cfg = NetworkConfig(
            k=4, n=2, seed=5, classes="user+os:priority=1"
        )
        res = OpenLoopSimulator(
            cfg, warmup=100, measure=200, drain_limit=2000, probes=probes
        ).run(0.15)
        records = read_jsonl(out)
        assert records == res.probe_records
        assert all(len(r["class_packets"]) == 2 for r in records)
        assert all(len(r["class_avg_latency"]) == 2 for r in records)
        # empty-class windows serialize as null, not NaN
        for r in records:
            for pkts, lat in zip(r["class_packets"], r["class_avg_latency"]):
                assert (lat is None) == (pkts == 0)

    def test_probe_defaults_to_single_class(self):
        probe = ClassLatencyProbe()
        cfg = NetworkConfig(k=4, n=2, seed=5)
        res = OpenLoopSimulator(
            cfg,
            warmup=50,
            measure=100,
            drain_limit=1000,
            probes=ProbeSet([probe], interval=50),
        ).run(0.1)
        assert all(len(r["class_packets"]) == 1 for r in res.probe_records)


# ---------------------------------------------------------------------------
# closed-loop registry bookkeeping
# ---------------------------------------------------------------------------


class TestClosedLoopRegistry:
    def test_os_model_auto_extends_registry(self):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        sim = BatchSimulator(
            cfg, batch_size=10, max_outstanding=2, os_model=OSModel()
        )
        assert len(sim.config.classes) == 2
        assert sim.config.classes[OS_CLASS].priority == 1
        res = sim.run()
        assert res.completed and res.os_requests > 0

    def test_custom_registry_not_overridden(self):
        cfg = NetworkConfig(
            k=4, n=2, seed=7, classes="user+os:priority=2+rt:priority=3"
        )
        sim = BatchSimulator(
            cfg, batch_size=10, max_outstanding=2, os_model=OSModel()
        )
        assert len(sim.config.classes) == 3

    def test_no_os_model_means_no_os_requests(self):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        res = BatchSimulator(cfg, batch_size=10, max_outstanding=2).run()
        assert res.os_requests == 0

    def test_per_class_reply_from_registry(self):
        pcr = PerClassReply.from_registry(
            USER_OS_CLASSES, {"os": FixedReply(30)}, ImmediateReply()
        )
        rng = np.random.default_rng(0)
        assert pcr.delay(rng, USER_CLASS) == 0
        assert pcr.delay(rng, OS_CLASS) == 30
        with pytest.raises(ValueError, match="unknown traffic class"):
            PerClassReply.from_registry(
                USER_OS_CLASSES, {"gpu": FixedReply(1)}, ImmediateReply()
            )


# ---------------------------------------------------------------------------
# end-to-end separation
# ---------------------------------------------------------------------------


class TestPrioritySeparation:
    def test_high_class_beats_low_class_under_load(self):
        """Near saturation, strict priority must measurably favor the
        high-priority class (the tentpole's acceptance behaviour)."""
        cfg = NetworkConfig(
            k=4,
            n=2,
            seed=9,
            arbitration="priority",
            classes="user:share=4+os:priority=1",
        )
        res = OpenLoopSimulator(
            cfg, warmup=300, measure=600, drain_limit=20000
        ).run(0.65)
        hi = res.per_class_stats()[1]
        lo = res.per_class_stats()[0]
        assert hi.mean < lo.mean
        assert hi.p99 < lo.p99
