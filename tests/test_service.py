"""Tests for the distributed sweep service (repro.service).

Three layers, cheapest first:

* protocol unit tests — encode/decode/framing, including the fuzz cases
  (garbage JSON, truncated frames, oversize frames);
* controller state-machine tests — a :class:`Controller` driven directly
  through ``handle``/``tick``/``session_closed`` with a fake clock, so
  lease expiry, heartbeat liveness, quarantine, stale completions, and
  the fallback trigger are tested without sockets or sleeps;
* socket integration tests — a real :class:`ControllerServer` with real
  :class:`Worker` threads, asserting the headline contract: records
  bit-identical to a serial sweep, through worker kills included.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.config import NetworkConfig
from repro.core import cache as result_cache
from repro.core.parallel import enumerate_points, run_sweep
from repro.service import (
    Controller,
    ControllerServer,
    ProtocolError,
    ServiceOptions,
    Worker,
    parse_address,
    run_remote_sweep,
)
from repro.service.protocol import MAX_LINE_BYTES, MessageStream, decode, encode

BASE = NetworkConfig(k=4, n=2)


def service_runner(cfg, m=0):
    """Module-level (importable, picklable) runner for service tests."""
    return {"value": cfg.k * 1000 + cfg.router_delay * 10 + m, "seed_used": cfg.seed}


def strip_timing(records):
    return [{k: v for k, v in r.items() if k != "wall_seconds"} for r in records]


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        msg = {"type": "lease", "index": 3, "values": [1.5, "x", None]}
        assert decode(encode(msg)) == msg

    def test_numpy_values_stay_numeric(self):
        np = pytest.importorskip("numpy")
        out = decode(encode({"type": "t", "a": np.int64(7), "b": np.float64(0.25)}))
        assert out["a"] == 7 and isinstance(out["a"], int)
        assert out["b"] == 0.25 and isinstance(out["b"], float)

    @pytest.mark.parametrize(
        "line",
        [
            b"not json at all\n",
            b'{"type": "x", unterminated\n',
            b'{"type": "trunc"',  # truncated frame: cut before the brace closed
            b'["a","list"]\n',
            b'"just a string"\n',
            b'{"no_type": 1}\n',
            b'{"type": 42}\n',
            b"\xff\xfe garbage bytes\n",
        ],
    )
    def test_bad_frames_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            decode(line)

    def test_oversize_frame_rejected_both_ways(self):
        big = {"type": "t", "blob": "x" * MAX_LINE_BYTES}
        with pytest.raises(ProtocolError, match="exceeds"):
            encode(big)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode(b"x" * (MAX_LINE_BYTES + 1))

    def test_parse_address(self):
        assert parse_address("example.com:9000") == ("example.com", 9000)
        assert parse_address("7421") == ("127.0.0.1", 7421)
        assert parse_address(":7421") == ("127.0.0.1", 7421)
        with pytest.raises(ValueError, match="port"):
            parse_address("host:notaport")
        with pytest.raises(ValueError, match="range"):
            parse_address("host:99999")

    def test_parse_address_ipv6(self):
        # Regression: the brackets are address syntax, not host — a
        # bracketed host used to come back as "[::1]", which
        # socket.connect rejects.
        assert parse_address("[::1]:9000") == ("::1", 9000)
        assert parse_address("[fe80::1%eth0]:7421") == ("fe80::1%eth0", 7421)
        assert parse_address("[::]:7421") == ("::", 7421)

    def test_parse_address_garbage(self):
        for bad in ("", ":", "host:", "[::1]", "[::1]:", "a:b:c", "host:0"):
            with pytest.raises(ValueError, match="invalid service address"):
                parse_address(bad)

    def test_parse_address_error_has_no_noisy_cause(self):
        # The int() ValueError is implementation detail; the raised error
        # should not chain it (from None).
        try:
            parse_address("host:notaport")
        except ValueError as exc:
            assert exc.__cause__ is None
            assert exc.__suppress_context__


# ---------------------------------------------------------------------------
# controller state machine (fake clock, no sockets)
# ---------------------------------------------------------------------------


class Clock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_controller(clock, **opts) -> Controller:
    defaults = dict(
        lease_seconds=5.0,
        heartbeat_timeout=1000.0,  # liveness tested explicitly where needed
        quarantine_after=3,
        quarantine_seconds=30.0,
        fallback_after=None,
    )
    defaults.update(opts)
    return Controller(ServiceOptions(**defaults), clock=clock)


def submit_job(controller, axes=None, *, options=None, base=BASE):
    points = enumerate_points(base, axes or {"router_delay": (1, 2)})
    payload = [
        {
            "index": p.index,
            "overrides": dict(p.overrides),
            "kwargs": dict(p.kwargs),
            "seed": p.seed,
        }
        for p in points
    ]
    from dataclasses import asdict

    reply = controller.handle(
        {
            "type": "submit",
            "base": asdict(base),
            "points": payload,
            "runner": result_cache.runner_spec(service_runner),
            "options": options or {},
        },
        {},
    )
    assert reply["type"] == "submitted", reply
    return reply, points


def register_worker(controller, name="w1"):
    session: dict = {}
    reply = controller.handle({"type": "hello", "role": "worker", "name": name}, session)
    assert reply["type"] == "welcome"
    return session, reply


class TestControllerStateMachine:
    def test_submit_lease_result_poll(self):
        clock = Clock()
        c = make_controller(clock)
        submitted, points = submit_job(c)
        session, _ = register_worker(c)
        lease = c.handle({"type": "request"}, session)
        assert lease["type"] == "lease"
        assert lease["index"] == 0 and lease["attempt"] == 0
        assert lease["seed"] == points[0].seed
        record = {"router_delay": 1, "value": 41, "wall_seconds": 0.0}
        done = c.handle(
            {"type": "result", "lease_id": lease["lease_id"],
             "job_id": lease["job_id"], "record": record},
            session,
        )
        assert done["type"] == "ok"
        status = c.handle({"type": "poll", "job_id": submitted["job_id"]}, {})
        assert status["done"] == 1 and not status["finished"]
        assert status["records"][0] == {"index": 0, "record": record}
        # incremental poll: already-fetched records are not resent
        assert c.handle(
            {"type": "poll", "job_id": submitted["job_id"], "since": 1}, {}
        )["records"] == []

    def test_request_without_hello_is_an_error(self):
        c = make_controller(Clock())
        assert c.handle({"type": "request"}, {})["type"] == "error"
        assert c.handle({"type": "heartbeat"}, {})["type"] == "error"

    def test_unknown_message_type_is_an_error_and_counted(self):
        c = make_controller(Clock())
        assert c.handle({"type": "frobnicate"}, {})["type"] == "error"
        assert c.stats["bad_messages"] == 1

    def test_submit_rejects_bad_base_and_unimportable_runner(self):
        c = make_controller(Clock())
        from dataclasses import asdict

        bad = c.handle(
            {"type": "submit", "base": {"k": -1}, "points": [], "runner": {"runner": "x:y"}},
            {},
        )
        assert bad["type"] == "error" and "base config" in bad["error"]
        lam = c.handle(
            {
                "type": "submit",
                "base": asdict(BASE),
                "points": [],
                "runner": result_cache.runner_spec(lambda cfg: {}),
            },
            {},
        )
        assert lam["type"] == "error" and "importable" in lam["error"]

    def test_lease_expiry_requeues_with_attempt_charged(self):
        clock = Clock()
        c = make_controller(clock)
        submitted, _ = submit_job(c, {"router_delay": (1,)})
        session, _ = register_worker(c)
        lease = c.handle({"type": "request"}, session)
        assert lease["type"] == "lease"
        clock.advance(6.0)  # past lease_seconds=5
        # keep the worker itself alive: heartbeat before the tick
        c.handle({"type": "heartbeat"}, session)
        c.tick()
        assert c.stats["leases_expired"] == 1
        job = c.jobs[submitted["job_id"]]
        assert job.health.retried == 1
        clock.advance(2.0)  # past the retry backoff
        c.tick()
        lease2 = c.handle({"type": "request"}, session)
        assert lease2["type"] == "lease"
        assert lease2["index"] == 0 and lease2["attempt"] == 1
        # the expired lease's late completion is stale, not double-counted
        stale = c.handle(
            {"type": "result", "lease_id": lease["lease_id"],
             "job_id": lease["job_id"], "record": {"value": 1}},
            session,
        )
        assert stale["type"] == "stale"
        assert job.health.stale_results == 1

    def test_lease_retries_exhaust_to_failed_record(self):
        clock = Clock()
        c = make_controller(clock)
        submitted, _ = submit_job(
            c, {"router_delay": (1,)}, options={"max_retries": 1}
        )
        session, _ = register_worker(c)
        for _ in range(2):  # attempt 0 and the single retry
            clock.advance(2.0)
            c.tick()
            lease = c.handle({"type": "request"}, session)
            assert lease["type"] == "lease"
            clock.advance(6.0)
            c.handle({"type": "heartbeat"}, session)
            c.tick()
        status = c.handle({"type": "poll", "job_id": submitted["job_id"]}, {})
        assert status["finished"]
        (item,) = status["records"]
        assert item["record"]["failed"] is True
        assert item["record"]["error_kind"] == "lease_expired"
        assert "lease expired" in item["record"]["error"]

    def test_duplicate_completion_is_stale(self):
        c = make_controller(Clock())
        submit_job(c, {"router_delay": (1,)})
        session, _ = register_worker(c)
        lease = c.handle({"type": "request"}, session)
        msg = {"type": "result", "lease_id": lease["lease_id"],
               "job_id": lease["job_id"], "record": {"value": 9}}
        assert c.handle(msg, session)["type"] == "ok"
        assert c.handle(msg, session)["type"] == "stale"
        assert c.stats["stale_results"] == 1

    def test_disconnect_requeues_leases(self):
        clock = Clock()
        c = make_controller(clock)
        submitted, _ = submit_job(c, {"router_delay": (1,)})
        session, _ = register_worker(c)
        lease = c.handle({"type": "request"}, session)
        assert lease["type"] == "lease"
        c.session_closed(session)
        assert not c.workers
        job = c.jobs[submitted["job_id"]]
        assert job.health.worker_deaths == 1
        assert job.health.retried == 1  # requeued with one attempt charged
        clock.advance(2.0)
        c.tick()
        session2, _ = register_worker(c, "w2")
        lease2 = c.handle({"type": "request"}, session2)
        assert lease2["type"] == "lease" and lease2["attempt"] == 1

    def test_heartbeat_silence_reaps_worker(self):
        clock = Clock()
        c = make_controller(clock, heartbeat_timeout=3.0, lease_seconds=100.0)
        submitted, _ = submit_job(c, {"router_delay": (1,)})
        session, _ = register_worker(c)
        assert c.handle({"type": "request"}, session)["type"] == "lease"
        clock.advance(2.0)
        assert c.handle({"type": "heartbeat"}, session)["type"] == "ok"
        clock.advance(2.0)
        c.tick()  # heartbeat 2s ago: still alive
        assert c.workers
        clock.advance(2.0)
        c.tick()  # 4s of silence > 3s timeout
        assert not c.workers
        assert c.jobs[submitted["job_id"]].health.worker_deaths == 1
        clock.advance(2.0)  # past the requeued point's retry backoff
        c.tick()
        # the socket is still open; its next message re-registers it
        assert c.handle({"type": "request"}, session)["type"] == "lease"

    def test_quarantine_after_repeated_lease_failures(self):
        clock = Clock()
        c = make_controller(clock, quarantine_after=2, quarantine_seconds=10.0)
        submitted, _ = submit_job(
            c, {"router_delay": (1,)}, options={"max_retries": 10}
        )
        session, _ = register_worker(c)
        for _ in range(2):
            clock.advance(2.0)
            c.tick()
            assert c.handle({"type": "request"}, session)["type"] == "lease"
            clock.advance(6.0)
            c.handle({"type": "heartbeat"}, session)
            c.tick()
        job = c.jobs[submitted["job_id"]]
        assert job.health.quarantined == 1
        idle = c.handle({"type": "request"}, session)
        assert idle["type"] == "idle" and idle["quarantined"] is True
        # a healthy sibling still gets the work
        session2, _ = register_worker(c, "w2")
        clock.advance(2.0)
        c.tick()
        assert c.handle({"type": "request"}, session2)["type"] == "lease"
        # quarantine expires
        clock.advance(10.0)
        c.handle({"type": "heartbeat"}, session)
        reply = c.handle({"type": "request"}, session)
        assert reply.get("quarantined") is not True

    def test_success_clears_failure_streak(self):
        clock = Clock()
        c = make_controller(clock, quarantine_after=2)
        submit_job(c, {"router_delay": (1, 2, 3)}, options={"max_retries": 10})
        session, _ = register_worker(c)
        # one expiry...
        c.handle({"type": "request"}, session)
        clock.advance(6.0)
        c.handle({"type": "heartbeat"}, session)
        c.tick()
        (worker,) = c.workers.values()
        assert worker.consecutive_failures == 1
        # ...then a success resets the streak
        lease = c.handle({"type": "request"}, session)
        c.handle(
            {"type": "result", "lease_id": lease["lease_id"],
             "job_id": lease["job_id"], "record": {"value": 1}},
            session,
        )
        assert worker.consecutive_failures == 0

    def test_fallback_triggers_only_after_quiet_window(self):
        clock = Clock()
        started = []
        c = make_controller(clock, fallback_after=5.0)
        c._start_fallback = lambda job: started.append(job.job_id)
        submitted, _ = submit_job(c)
        c.tick()
        assert not started  # grace window not elapsed
        clock.advance(4.0)
        c.tick()
        assert not started
        clock.advance(2.0)
        c.tick()
        assert started == [submitted["job_id"]]
        assert c.jobs[submitted["job_id"]].fallback_active
        c.tick()
        assert started == [submitted["job_id"]]  # not re-triggered

    def test_fallback_deferred_while_workers_live(self):
        clock = Clock()
        started = []
        c = make_controller(clock, fallback_after=5.0)
        c._start_fallback = lambda job: started.append(job.job_id)
        submit_job(c)
        register_worker(c)
        clock.advance(60.0)
        c.tick()  # a worker exists (freshly registered ⇒ alive): no fallback
        assert not started

    def test_cache_prefill_serves_hits_without_dispatch(self, tmp_path):
        store = result_cache.ResultCache(tmp_path / "cache")
        # Warm the cache through a local sweep with the same runner.
        axes = {"router_delay": (1, 2)}
        serial = run_sweep(BASE, axes, service_runner, cache=store)
        c = Controller(ServiceOptions(fallback_after=None), cache=store, clock=Clock())
        submitted, _ = submit_job(c, axes)
        assert submitted["cache_hits"] == 2
        status = c.handle({"type": "poll", "job_id": submitted["job_id"]}, {})
        assert status["finished"]
        job = c.jobs[submitted["job_id"]]
        assert job.health.cache_hits == 2 and not job.pending
        assert "2/2 cache hits" in status["summary"]
        got = [item["record"] for item in status["records"]]
        assert strip_timing(got) == strip_timing(serial)

    def test_worker_result_written_back_to_shared_store(self, tmp_path):
        store = result_cache.ResultCache(tmp_path / "cache")
        c = Controller(ServiceOptions(fallback_after=None), cache=store, clock=Clock())
        submit_job(c, {"router_delay": (1,)})
        session, _ = register_worker(c)
        lease = c.handle({"type": "request"}, session)
        record = {"router_delay": 1, "value": 4010, "wall_seconds": 0.25}
        c.handle(
            {"type": "result", "lease_id": lease["lease_id"],
             "job_id": lease["job_id"], "record": record},
            session,
        )
        assert len(store) == 1
        # a second identical submission is now all hits
        submitted2, _ = submit_job(c, {"router_delay": (1,)})
        assert submitted2["cache_hits"] == 1

    def test_failed_records_are_not_written_back(self, tmp_path):
        store = result_cache.ResultCache(tmp_path / "cache")
        c = Controller(ServiceOptions(fallback_after=None), cache=store, clock=Clock())
        submit_job(c, {"router_delay": (1,)}, options={"max_retries": 0})
        session, _ = register_worker(c)
        lease = c.handle({"type": "request"}, session)
        c.handle(
            {"type": "result", "lease_id": lease["lease_id"], "job_id": lease["job_id"],
             "record": {"failed": True, "error": "boom", "error_kind": "error",
                        "wall_seconds": 0.0}},
            session,
        )
        assert len(store) == 0

    def test_info_reports_workers_and_jobs(self):
        c = make_controller(Clock())
        submit_job(c)
        register_worker(c, "alpha")
        info = c.handle({"type": "info"}, {})
        assert info["type"] == "service"
        assert [w["worker_id"] for w in info["workers"]] == ["alpha"]
        assert info["jobs"][0]["total"] == 2


# ---------------------------------------------------------------------------
# socket integration
# ---------------------------------------------------------------------------


def start_workers(address, count, *, stop, worker_cls=Worker, **kwargs):
    host, port = address
    workers = [
        worker_cls(host, port, name=f"w{i}", **kwargs) for i in range(count)
    ]
    threads = [
        threading.Thread(target=w.run, args=(stop,), daemon=True) for w in workers
    ]
    for t in threads:
        t.start()
    return workers, threads


class TestServiceIntegration:
    AXES = {"router_delay": (1, 2, 3)}
    EXTRA = {"m": (0, 5)}

    def serial(self):
        return run_sweep(BASE, self.AXES, service_runner, extra_axes=self.EXTRA)

    def test_two_workers_bit_identical_to_serial(self):
        opts = ServiceOptions(lease_seconds=30.0, fallback_after=None)
        stop = threading.Event()
        with ControllerServer(Controller(opts)) as server:
            start_workers(server.address, 2, stop=stop)
            host, port = server.address
            records = run_remote_sweep(
                f"{host}:{port}", BASE, self.AXES, service_runner, extra_axes=self.EXTRA
            )
            stop.set()
        assert strip_timing(records) == strip_timing(self.serial())
        assert records.health.ok == 6 and records.health.failed == 0

    def test_zero_workers_falls_back_to_local_execution(self):
        opts = ServiceOptions(fallback_after=0.1)
        with ControllerServer(Controller(opts)) as server:
            host, port = server.address
            records = run_remote_sweep(
                f"{host}:{port}", BASE, self.AXES, service_runner, extra_axes=self.EXTRA
            )
        assert strip_timing(records) == strip_timing(self.serial())
        assert records.health.ok == 6

    def test_remote_journal_resume_skips_completed_points(self, tmp_path):
        journal = tmp_path / "remote.jsonl"
        opts = ServiceOptions(fallback_after=0.1)
        with ControllerServer(Controller(opts)) as server:
            host, port = server.address
            first = run_remote_sweep(
                f"{host}:{port}", BASE, self.AXES, service_runner,
                extra_axes=self.EXTRA, journal=journal,
            )
            resumed = run_remote_sweep(
                f"{host}:{port}", BASE, self.AXES, service_runner,
                extra_axes=self.EXTRA, journal=journal, resume=True,
            )
        assert strip_timing(resumed) == strip_timing(first)
        assert resumed.health.ok == 6

    def test_remote_resume_refuses_mismatched_fingerprint(self, tmp_path):
        journal = tmp_path / "remote.jsonl"
        opts = ServiceOptions(fallback_after=0.1)
        with ControllerServer(Controller(opts)) as server:
            host, port = server.address
            address = f"{host}:{port}"
            run_remote_sweep(
                address, BASE, self.AXES, service_runner,
                extra_axes=self.EXTRA, journal=journal,
            )
            with pytest.raises(ValueError, match="different sweep"):
                run_remote_sweep(
                    address, BASE.with_(seed=99), self.AXES, service_runner,
                    extra_axes=self.EXTRA, journal=journal, resume=True,
                )

    def test_lambda_runner_rejected_client_side(self):
        with pytest.raises(ValueError, match="importable"):
            run_remote_sweep("127.0.0.1:1", BASE, self.AXES, lambda cfg: {})

    def test_server_survives_protocol_fuzz(self):
        """Garbage, truncation, and stale frames never take the service down."""
        import random

        gen = random.Random(20260808)
        opts = ServiceOptions(fallback_after=0.1)
        with ControllerServer(Controller(opts)) as server:
            host, port = server.address
            # 1) random binary garbage, then hang up mid-"frame"
            for _ in range(10):
                with socket.create_connection((host, port), timeout=5.0) as sock:
                    payload = bytes(gen.randrange(256) for _ in range(gen.randrange(1, 200)))
                    sock.sendall(payload)  # often no trailing newline: truncated
            # 2) structured-but-wrong frames on one connection
            with socket.create_connection((host, port), timeout=5.0) as sock:
                stream = MessageStream(sock)
                for raw in (b"not json\n", b'["list"]\n', b'{"no_type": 1}\n'):
                    sock.sendall(raw)
                    assert stream.recv()["type"] == "error"
                # stale/duplicate lease completion from a worker that never
                # registered a lease
                reply = stream.rpc(
                    {"type": "result", "lease_id": "lease-999999",
                     "job_id": "job-0001", "record": {"value": 0}}
                )
                assert reply["type"] == "stale"
            # 3) the service still works end to end afterwards
            records = run_remote_sweep(
                f"{host}:{port}", BASE, {"router_delay": (1,)}, service_runner
            )
            assert records.health.ok == 1
            assert server.controller.stats["bad_messages"] >= 3

    def test_oversize_frame_drops_connection_not_server(self):
        opts = ServiceOptions(fallback_after=0.1)
        with ControllerServer(Controller(opts)) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(b"x" * (MAX_LINE_BYTES + 2))
                sock.sendall(b"\n")
                stream = MessageStream(sock)
                reply = stream.recv()
                assert reply is None or reply["type"] == "error"
            records = run_remote_sweep(
                f"{host}:{port}", BASE, {"router_delay": (1,)}, service_runner
            )
            assert records.health.ok == 1
