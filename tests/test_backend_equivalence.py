"""Differential equivalence harness: object vs vectorized backend.

The vectorized backend's contract (DESIGN.md "Vectorized backend") is that
every configuration it accepts produces records *bit-identical* to the
object backend's — not statistically close, identical.  This suite enforces
the contract property-style: randomized configurations drawn with stdlib
``random`` from the full supported space (topology x routing x arbitration
— the class-aware priority/weighted family included — x traffic classes
x VC count x buffer depth x traffic x load x seed), both backends run on
each, and the full record — every per-packet latency and class id included
— compared for equality.  The generator is seeded, so a failure is reproducible; on
mismatch the harness greedily shrinks the config toward the simplest one
that still fails and reports it, which is what you paste into a repro.

Configurations registered as *fast profiles* (``repro.network.factory.
FAST_PROFILES`` — currently empty by construction) are instead checked
statistically: latency/throughput within tolerance and per-node latency
correlation r >= 0.97, mirroring the paper's fast-vs-accurate methodology.
The statistical checker itself is exercised here so a future profile entry
lands on tested machinery.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.network.factory import (
    FAST_PROFILES,
    NETWORK_BACKENDS,
    build_network,
    is_fast_profile,
)

# ---------------------------------------------------------------------------
# record extraction
# ---------------------------------------------------------------------------

_WINDOWS = dict(warmup=40, measure=80, drain_limit=200)


def openloop_record(cfg: NetworkConfig, rate: float) -> dict:
    """JSON-native figures of merit, strong enough to detect any drift."""
    res = OpenLoopSimulator(cfg, **_WINDOWS).run(rate)
    return {
        "avg_latency": res.avg_latency,
        "worst_node_latency": res.worst_node_latency,
        "throughput": res.throughput,
        "avg_hops": res.avg_hops,
        "saturated": res.saturated,
        "num_measured": res.num_measured,
        "latencies": res.latencies.tolist(),
        "class_ids": res.class_ids.tolist(),
        "per_class_throughput": res.per_class_throughput.tolist(),
        "per_node": [
            None if math.isnan(x) else x for x in res.per_node_latency.tolist()
        ],
    }


# ---------------------------------------------------------------------------
# randomized config generator + shrinker
# ---------------------------------------------------------------------------

_BIT_PATTERNS = ("bit_reversal", "bit_complement", "transpose")


def draw_config(rng: random.Random) -> tuple[dict, float]:
    """One random supported configuration and an offered load for it."""
    topology = rng.choice(("mesh", "mesh", "torus", "ring"))
    routing = (
        rng.choice(("dor", "dor", "val", "ma", "romm"))
        if topology == "mesh"
        else "dor"
    )
    k = rng.choice((3, 4))
    # bit patterns need a power-of-two node count, transpose a square one:
    # k=4, n=2 (16 nodes) satisfies both.
    traffic = rng.choice(
        ("uniform_random", "uniform_random", "neighbor", "tornado") + _BIT_PATTERNS
    )
    if traffic in _BIT_PATTERNS and k != 4:
        traffic = "uniform_random"
    kw = dict(
        topology=topology,
        k=k,
        n=2,
        num_vcs=rng.choice((2, 3, 4)),
        vc_buffer_size=rng.choice((1, 2, 4)),
        router_delay=rng.choice((1, 1, 2)),
        routing=routing,
        arbitration=rng.choice(("round_robin", "age", "priority", "weighted")),
        link_delay=rng.choice((1, 1, 2)),
        packet_size=rng.choice(("single", "bimodal")),
        traffic=traffic,
        classes=rng.choice(
            (
                None,  # default single class
                None,
                "user+os:priority=1",
                "user:share=3:weight=3+os:priority=1",
                "a:weight=1+b:weight=2:priority=1+c:weight=4:priority=2",
            )
        ),
        dateline=(
            rng.choice(("balanced", "strict"))
            if topology in ("torus", "ring")
            else "balanced"
        ),
        seed=rng.randrange(1, 100_000),
    )
    return kw, rng.choice((0.05, 0.15, 0.30, 0.50))


#: simplest value per field, the shrink targets (tried in this order)
_SHRINK = {
    "topology": "mesh",
    "routing": "dor",
    "traffic": "uniform_random",
    "packet_size": "single",
    "classes": None,
    "arbitration": "round_robin",
    "dateline": "balanced",
    "router_delay": 1,
    "link_delay": 1,
    "num_vcs": 2,
    "vc_buffer_size": 1,
    "k": 3,
}


def _mismatch(kw: dict, rate: float) -> bool:
    """True when the two backends disagree on this config (or it's invalid
    in a way only one backend surfaces — also a contract violation)."""
    try:
        obj = openloop_record(NetworkConfig(backend="object", **kw), rate)
        vec = openloop_record(NetworkConfig(backend="vectorized", **kw), rate)
    except ValueError:
        return False  # invalid config: rejected identically upstream
    return obj != vec


def shrink(kw: dict, rate: float) -> dict:
    """Greedily simplify a failing config while it keeps failing."""
    changed = True
    while changed:
        changed = False
        for field, simple in _SHRINK.items():
            if kw[field] == simple:
                continue
            trial = {**kw, field: simple}
            if _mismatch(trial, rate):
                kw = trial
                changed = True
    return kw


def run_differential(master_seed: int, count: int) -> None:
    rng = random.Random(master_seed)
    for i in range(count):
        kw, rate = draw_config(rng)
        cfg_o = NetworkConfig(backend="object", **kw)
        if is_fast_profile(cfg_o):
            continue  # checked statistically in TestFastProfiles
        obj = openloop_record(cfg_o, rate)
        vec = openloop_record(NetworkConfig(backend="vectorized", **kw), rate)
        if obj != vec:
            minimal = shrink(dict(kw), rate)
            pytest.fail(
                f"backends diverged on config #{i} (master_seed={master_seed});"
                f" shrunk repro: NetworkConfig(**{minimal!r}) at rate {rate}"
            )


# ---------------------------------------------------------------------------
# the differential property suite
# ---------------------------------------------------------------------------


class TestRandomizedEquivalence:
    def test_quick_sample(self):
        """Tier-1 smoke: a couple dozen randomized configs."""
        run_differential(master_seed=20260808, count=24)

    @pytest.mark.slow
    def test_full_sweep_200_configs(self):
        """The acceptance sweep: 200 randomized configs, both backends."""
        run_differential(master_seed=987654321, count=200)

    def test_batch_driver_equivalence(self):
        """Closed-loop driver: same runtime and per-node finish times."""
        for kw in (
            dict(k=4, n=2, seed=7),
            dict(topology="torus", k=4, n=2, num_vcs=4, seed=3),
            dict(
                k=4,
                n=2,
                arbitration="priority",
                classes="user+os:priority=1",
                seed=5,
            ),
        ):
            results = {}
            for backend in NETWORK_BACKENDS:
                cfg = NetworkConfig(backend=backend, **kw)
                res = BatchSimulator(cfg, batch_size=30, max_outstanding=2).run()
                results[backend] = (
                    res.runtime,
                    res.throughput,
                    res.total_requests,
                    res.avg_request_latency,
                    res.node_finish.tolist(),
                )
            assert results["object"] == results["vectorized"], kw

    @pytest.mark.slow
    def test_cmp_driver_equivalence(self):
        """Execution-driven CMP: the network backend must not change a
        single cycle of the full-system run."""
        from repro.config import CmpConfig
        from repro.execdriven import BENCHMARKS, CmpSystem

        outs = {}
        for backend in NETWORK_BACKENDS:
            spec = BENCHMARKS["blackscholes"](1500)
            cmp_cfg = CmpConfig(
                network=NetworkConfig(
                    k=4, n=2, num_vcs=8, vc_buffer_size=4, backend=backend
                )
            )
            res = CmpSystem(spec, cmp_cfg, timer_interval=10000, seed=3).run()
            outs[backend] = (
                res.cycles,
                res.total_flits,
                res.requests,
                res.traffic_matrix.tobytes(),
                res.timeline.tobytes(),
            )
        assert outs["object"] == outs["vectorized"]


# ---------------------------------------------------------------------------
# construction contract
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_factory_dispatch(self, monkeypatch):
        from repro.network.network import Network
        from repro.network.vectorized import VectorizedNetwork

        monkeypatch.delenv("REPRO_DEFAULT_BACKEND", raising=False)
        assert isinstance(build_network(NetworkConfig()), Network)
        assert isinstance(
            build_network(NetworkConfig(backend="vectorized")), VectorizedNetwork
        )

    def test_env_default_backend_override(self, monkeypatch):
        """REPRO_DEFAULT_BACKEND=vectorized upgrades supported configs (the
        CI backend dimension) but never touches unsupported ones."""
        from repro.network.network import Network
        from repro.network.vectorized import VectorizedNetwork

        monkeypatch.setenv("REPRO_DEFAULT_BACKEND", "vectorized")
        assert isinstance(build_network(NetworkConfig()), VectorizedNetwork)
        # outside the vectorized envelope: silently stays on object
        assert isinstance(
            build_network(NetworkConfig(faults="links:1")), Network
        )
        assert isinstance(build_network(NetworkConfig(credit_delay=0)), Network)
        # construction overrides are an object-backend feature
        assert isinstance(build_network(NetworkConfig(), faults=None), Network)

    def test_vectorized_supports_mirrors_constructor(self):
        from repro.network.factory import vectorized_supports

        assert vectorized_supports(NetworkConfig())
        assert not vectorized_supports(NetworkConfig(faults="links:1"))
        assert not vectorized_supports(NetworkConfig(credit_delay=0))
        for kw in (dict(), dict(faults="links:1"), dict(credit_delay=0)):
            cfg = NetworkConfig(backend="vectorized", **kw)
            if vectorized_supports(cfg):
                build_network(cfg)  # must not raise
            else:
                with pytest.raises((ValueError, TypeError)):
                    build_network(cfg)

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="backend"):
            NetworkConfig(backend="warp-drive")

    def test_vectorized_rejects_unsupported(self):
        # fault plans and zero-delay credits run on the reference backend only
        with pytest.raises(ValueError, match="fault"):
            build_network(NetworkConfig(backend="vectorized", faults="links:2"))
        with pytest.raises(ValueError, match="credit_delay"):
            build_network(NetworkConfig(backend="vectorized", credit_delay=0))

    def test_vectorized_rejects_overrides(self):
        with pytest.raises(TypeError, match="overrides"):
            build_network(NetworkConfig(backend="vectorized"), topology=object())


# ---------------------------------------------------------------------------
# fast profiles: the statistical fallback path
# ---------------------------------------------------------------------------


def stats_close(
    a: dict, b: dict, *, tolerance: float = 0.05, min_r: float = 0.97
) -> tuple[bool, str]:
    """Tolerance check for fast-profile configs: scalar figures within
    ``tolerance`` (relative) and per-node latency correlation >= ``min_r``."""
    for name in ("avg_latency", "throughput"):
        x, y = a[name], b[name]
        if x != y and abs(x - y) > tolerance * max(abs(x), abs(y)):
            return False, f"{name}: {x} vs {y} beyond {tolerance:.0%}"
    pa = np.array([x for x in a["per_node"]], dtype=float)
    pb = np.array([x for x in b["per_node"]], dtype=float)
    ok = ~(np.isnan(pa) | np.isnan(pb))
    if ok.sum() >= 3 and np.std(pa[ok]) > 0 and np.std(pb[ok]) > 0:
        r = float(np.corrcoef(pa[ok], pb[ok])[0, 1])
        if r < min_r:
            return False, f"per-node latency correlation {r:.3f} < {min_r}"
    return True, ""


class TestFastProfiles:
    def test_registry_is_empty_by_construction(self):
        """Every accepted config is exact today; this pins that claim so a
        new profile entry is a deliberate, reviewed decision."""
        assert FAST_PROFILES == ()
        assert not is_fast_profile(NetworkConfig(routing="ma", num_vcs=4))

    def test_registered_profiles_statistically_close(self):
        """When profiles exist, they must pass the statistical check."""
        if not FAST_PROFILES:
            pytest.skip("no fast profiles registered (all configs are exact)")
        for profile in FAST_PROFILES:
            kw = dict(profile)
            obj = openloop_record(NetworkConfig(backend="object", **kw), 0.15)
            vec = openloop_record(NetworkConfig(backend="vectorized", **kw), 0.15)
            ok, why = stats_close(obj, vec)
            assert ok, f"profile {profile}: {why}"

    def test_checker_accepts_identical_and_rejects_different(self):
        cfg = NetworkConfig(k=4, n=2, seed=7)
        rec = openloop_record(cfg, 0.15)
        ok, _ = stats_close(rec, rec)
        assert ok
        far = openloop_record(NetworkConfig(topology="ring", k=4, n=2, seed=7), 0.15)
        ok, why = stats_close(rec, far)
        assert not ok and why
