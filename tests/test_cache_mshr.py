"""Tests for cache and MSHR structures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execdriven.cache import SetAssocCache
from repro.execdriven.mshr import MSHRFile


class TestSetAssocCache:
    def test_miss_then_hit(self):
        c = SetAssocCache(16, 4)
        assert not c.access(7)
        assert c.access(7)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_lru_eviction(self):
        c = SetAssocCache(4, 4)  # one set, 4 ways
        for line in (0, 1, 2, 3):
            c.access(line)
        c.access(0)  # 0 becomes MRU; LRU is now 1
        c.access(4)  # evicts 1
        assert c.probe(0)
        assert not c.probe(1)
        assert c.probe(4)

    def test_set_isolation(self):
        c = SetAssocCache(8, 2)  # 4 sets
        c.access(0)
        c.access(4)
        c.access(8)  # same set as 0 and 4: evicts LRU=0
        assert not c.probe(0)
        assert c.probe(4) and c.probe(8)
        assert c.probe(1) is False  # different set untouched

    def test_lookup_does_not_fill(self):
        c = SetAssocCache(8, 2)
        assert not c.lookup(3)
        assert not c.probe(3)
        assert c.stats.misses == 1

    def test_fill_then_lookup_hits(self):
        c = SetAssocCache(8, 2)
        c.fill(3)
        assert c.lookup(3)
        assert c.stats.hits == 1 and c.stats.misses == 0

    def test_fill_respects_capacity(self):
        c = SetAssocCache(4, 2)
        for line in (0, 2, 4):  # all map to set 0? lines%2 sets... 0,2,4 -> set 0
            c.fill(line)
        assert c.occupancy() <= 4

    def test_invalidate(self):
        c = SetAssocCache(8, 2)
        c.fill(5)
        assert c.invalidate(5)
        assert not c.probe(5)
        assert not c.invalidate(5)

    def test_miss_rate(self):
        c = SetAssocCache(8, 2)
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.5)
        c.stats.reset()
        assert c.stats.accesses == 0

    def test_capacity_and_validation(self):
        assert SetAssocCache(512, 4).capacity == 512
        with pytest.raises(ValueError):
            SetAssocCache(10, 4)
        with pytest.raises(ValueError):
            SetAssocCache(0, 1)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = SetAssocCache(16, 4)
        for line in lines:
            c.access(line)
        assert c.occupancy() <= 16
        # every line in a working set <= capacity/sets per set stays resident
        assert c.stats.accesses == len(lines)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_working_set_within_one_way_never_misses_twice(self, lines):
        # 4 distinct lines mapping to 4 sets of a 16-line cache: after the
        # first touch each line stays resident forever.
        c = SetAssocCache(16, 4)
        misses_per_line = {}
        for line in lines:
            if not c.access(line):
                misses_per_line[line] = misses_per_line.get(line, 0) + 1
        assert all(v == 1 for v in misses_per_line.values())


class TestMSHRFile:
    def test_allocate_until_full(self):
        m = MSHRFile(2)
        assert m.allocate(1) == "allocated"
        assert m.allocate(2) == "allocated"
        assert m.allocate(3) == "full"
        assert m.full
        assert m.full_stalls == 1

    def test_merge_secondary_miss(self):
        m = MSHRFile(2)
        m.allocate(1)
        assert m.allocate(1) == "merged"
        assert m.merged == 1
        assert len(m) == 1  # merging consumes no extra entry

    def test_release_frees_entry(self):
        m = MSHRFile(1)
        m.allocate(5)
        m.allocate(5)
        assert m.release(5) == 2  # merged count
        assert not m.full
        assert m.allocate(6) == "allocated"

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            MSHRFile(1).release(42)

    def test_lookup_and_outstanding(self):
        m = MSHRFile(4)
        m.allocate(1)
        m.allocate(9)
        assert m.lookup(1) and m.lookup(9) and not m.lookup(2)
        assert m.outstanding() == [1, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded(self, lines):
        m = MSHRFile(3)
        outstanding = set()
        for line in lines:
            status = m.allocate(line)
            if status == "allocated":
                outstanding.add(line)
            assert len(m) <= 3
            if len(outstanding) == 3 and status == "allocated":
                m.release(line)
                outstanding.discard(line)
