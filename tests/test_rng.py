"""Tests for the deterministic RNG discipline."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro import rng as rng_mod


class TestSpawn:
    def test_deterministic(self):
        assert rng_mod.spawn(1, "a", 2) == rng_mod.spawn(1, "a", 2)

    def test_label_sensitivity(self):
        assert rng_mod.spawn(1, "inject", 3) != rng_mod.spawn(1, "inject", 4)
        assert rng_mod.spawn(1, "inject", 3) != rng_mod.spawn(1, "credit", 3)

    def test_seed_sensitivity(self):
        assert rng_mod.spawn(1, "a") != rng_mod.spawn(2, "a")

    def test_result_is_64_bit(self):
        s = rng_mod.spawn(123456789, "x", "y", 42)
        assert 0 <= s < 2**64

    def test_label_concatenation_is_not_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc"): separator in the hash.
        assert rng_mod.spawn(1, "ab", "c") != rng_mod.spawn(1, "a", "bc")

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=20))
    def test_spawn_total_and_stable(self, seed, label):
        a = rng_mod.spawn(seed, label)
        b = rng_mod.spawn(seed, label)
        assert a == b
        assert 0 <= a < 2**64


_axis_values = st.one_of(
    st.integers(-(10**6), 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.sampled_from(["mesh", "torus", "ring", "dor", "val"]),
    st.booleans(),
)
_points = st.dictionaries(
    st.sampled_from(["router_delay", "vc_buffer_size", "m", "rate", "topology"]),
    _axis_values,
    min_size=1,
    max_size=5,
)


class TestSweepSeed:
    @given(st.integers(min_value=0, max_value=2**63), _points)
    def test_deterministic_and_64_bit(self, seed, point):
        a = rng_mod.sweep_seed(seed, point)
        assert a == rng_mod.sweep_seed(seed, point)
        assert 0 <= a < 2**64

    @given(st.integers(min_value=0, max_value=2**63), _points)
    def test_insertion_order_irrelevant(self, seed, point):
        """Same point → same seed no matter which worker built the dict how."""
        reversed_point = dict(reversed(list(point.items())))
        assert rng_mod.sweep_seed(seed, point) == rng_mod.sweep_seed(
            seed, reversed_point
        )

    @given(
        st.integers(min_value=0, max_value=2**63),
        _points,
        _points,
    )
    def test_distinct_points_get_distinct_seeds(self, seed, a, b):
        if a != b:
            assert rng_mod.sweep_seed(seed, a) != rng_mod.sweep_seed(seed, b)

    def test_distinct_across_a_grid(self):
        seeds = [
            rng_mod.sweep_seed(1, {"router_delay": tr, "injection_rate": rate})
            for tr in (1, 2, 4, 8)
            for rate in (0.05, 0.1, 0.15, 0.2)
        ]
        assert len(set(seeds)) == len(seeds)

    def test_value_type_distinguished(self):
        # the int 1 and the string "1" are different coordinates
        assert rng_mod.sweep_seed(1, {"a": 1}) != rng_mod.sweep_seed(1, {"a": "1"})

    def test_name_value_pairing_unambiguous(self):
        assert rng_mod.sweep_seed(1, {"ab": "c"}) != rng_mod.sweep_seed(1, {"a": "bc"})


class TestMakeGenerator:
    def test_generators_reproduce(self):
        g1 = rng_mod.make_generator(7, "stream")
        g2 = rng_mod.make_generator(7, "stream")
        assert np.array_equal(g1.random(16), g2.random(16))

    def test_different_labels_differ(self):
        g1 = rng_mod.make_generator(7, "a")
        g2 = rng_mod.make_generator(7, "b")
        assert not np.array_equal(g1.random(16), g2.random(16))

    def test_python_randbits_range(self):
        g = rng_mod.make_generator(1, "bits")
        for _ in range(100):
            v = rng_mod.python_randbits(g, 10)
            assert 0 <= v < 1024
            assert isinstance(v, int)
