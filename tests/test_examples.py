"""The example scripts must stay runnable (quickstart exercised fully)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.slow
def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "saturation throughput" in out
    assert "closed-loop batch model" in out


@pytest.mark.parametrize(
    "script",
    [
        "design_space_exploration.py",
        "cmp_system_study.py",
        "os_kernel_effects.py",
        "trace_driven_pitfall.py",
    ],
)
def test_other_examples_compile_and_import(script):
    """Heavier examples are syntax/import-checked here; the benchmark suite
    and integration tests cover their code paths."""
    path = EXAMPLES / script
    source = path.read_text()
    compile(source, str(path), "exec")
    assert '__name__ == "__main__"' in source, "must guard heavy main()"
