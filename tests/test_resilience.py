"""Tests for the resilience layer: fault plans, watchdog, invariants.

Pool-mode runners live at module scope (picklable), like in
test_parallel_sweep.py.
"""

from __future__ import annotations

import functools
import tracemalloc

import pytest

from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator
from repro.core.parallel import run_sweep
from repro.core.resilience import (
    UNREACHABLE,
    FaultPlan,
    FaultState,
    InvariantChecker,
    InvariantViolation,
    LinkFault,
    RandomLinkFaults,
    RouterFault,
    SimulationStalled,
    UnreachableDestination,
    Watchdog,
    diagnose,
)
from repro.network.network import Network
from repro.topology import Mesh


# ---------------------------------------------------------------------------
# FaultPlan: parsing
# ---------------------------------------------------------------------------
class TestFaultPlanParse:
    def test_random_links(self):
        plan = FaultPlan.parse("links:3")
        assert plan.clauses == (RandomLinkFaults(3, 0, None),)

    def test_directed_and_bidirectional_link(self):
        plan = FaultPlan.parse("link:3>4; link:5-6")
        assert plan.clauses == (
            LinkFault(3, 4, 0, None),
            LinkFault(5, 6, 0, None, both=True),
        )

    def test_router(self):
        assert FaultPlan.parse("router:9").clauses == (RouterFault(9, 0, None),)

    def test_windows(self):
        plan = FaultPlan.parse("link:0>1@100; link:0>1@100-500")
        assert plan.clauses[0] == LinkFault(0, 1, 100, None)
        assert plan.clauses[1] == LinkFault(0, 1, 100, 500)

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus",
            "links:x",
            "links:0",
            "link:0?1",
            "teleport:3",
            "link:0>1@500-100",
            "link:0>1@x",
            "",
            " ; ",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_error_names_the_clause(self):
        with pytest.raises(ValueError, match="bad fault clause 'links:x'"):
            FaultPlan.parse("link:0>1;links:x")

    def test_non_clause_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(["link:0>1"])

    def test_truthiness(self):
        assert FaultPlan.parse("links:1")
        assert not FaultPlan()


# ---------------------------------------------------------------------------
# FaultPlan: resolution against a topology
# ---------------------------------------------------------------------------
class TestFaultPlanResolve:
    def test_directed_link(self):
        topo = Mesh(4, 2)
        resolved = FaultPlan.parse("link:0>1").resolve(topo, seed=1)
        assert len(resolved) == 1
        node, port, start, end = resolved[0]
        assert (node, start, end) == (0, 0, None)
        assert topo.channel(node, port).dst == 1

    def test_bidirectional_link_resolves_both_directions(self):
        topo = Mesh(4, 2)
        resolved = FaultPlan.parse("link:0-1").resolve(topo, seed=1)
        assert {(n, topo.channel(n, p).dst) for n, p, _, _ in resolved} == {
            (0, 1),
            (1, 0),
        }

    def test_router_fault_covers_all_its_channels(self):
        topo = Mesh(4, 2)
        resolved = FaultPlan.parse("router:5").resolve(topo, seed=1)
        # interior node of a 4x4 mesh: 4 links in + 4 links out
        assert len(resolved) == 8
        for node, port, _, _ in resolved:
            ch = topo.channel(node, port)
            assert 5 in (ch.src, ch.dst)

    def test_non_adjacent_link_rejected(self):
        with pytest.raises(ValueError, match="no such link"):
            FaultPlan.parse("link:0>5").resolve(Mesh(4, 2), seed=1)

    def test_random_links_deterministic_per_seed(self):
        topo = Mesh(4, 2)
        plan = FaultPlan.parse("links:3")
        assert plan.resolve(topo, seed=7) == plan.resolve(topo, seed=7)
        assert plan.resolve(topo, seed=7) != plan.resolve(topo, seed=8)

    def test_random_links_fail_in_pairs(self):
        resolved = FaultPlan.parse("links:2").resolve(Mesh(4, 2), seed=1)
        assert len(resolved) == 4  # 2 undirected links = 4 directed channels

    def test_random_links_count_bounded_by_topology(self):
        with pytest.raises(ValueError, match="physical links"):
            FaultPlan.parse("links:999").resolve(Mesh(4, 2), seed=1)


# ---------------------------------------------------------------------------
# FaultState: runtime schedule + reachability
# ---------------------------------------------------------------------------
class TestFaultState:
    def _state(self, spec: str) -> tuple[Network, FaultState]:
        net = Network(NetworkConfig(k=4, n=2))
        resolved = FaultPlan.parse(spec).resolve(net.topology, seed=1)
        return net, FaultState(resolved, net)

    def test_transient_window_toggles(self):
        net, fs = self._state("link:0>1@5-10")
        fs.apply(0)
        assert not fs.active
        fs.apply(5)
        assert len(fs.active) == 1
        (node, port), = fs.active
        assert fs.is_faulted(node, port)
        assert net.routers[node].fault_mask == 1 << port
        fs.apply(10)
        assert not fs.active
        assert net.routers[node].fault_mask == 0

    def test_apply_bumps_fault_version(self):
        net, fs = self._state("link:0>1")
        v0 = net._fault_version
        fs.apply(0)
        assert net._fault_version == v0 + 1
        fs.apply(1)  # no event scheduled: no bump
        assert net._fault_version == v0 + 1

    def test_distances_and_reachability(self):
        net, fs = self._state("router:5")
        fs.apply(0)
        dist = fs.distances_to(5)
        assert dist[5] == 0
        assert all(d == UNREACHABLE for i, d in enumerate(dist) if i != 5)
        assert not fs.reachable(0, 5)
        # the rest of the mesh stays connected around the dead router
        assert fs.reachable(4, 6)
        assert fs.distances_to(0)[15] >= 6  # detours cannot shorten paths

    def test_cache_invalidated_on_fault_change(self):
        net, fs = self._state("link:0>1@0-20")
        fs.apply(0)
        d_faulted = fs.distances_to(1)[0]
        fs.apply(20)
        assert fs.distances_to(1)[0] == 1
        assert d_faulted > 1


# ---------------------------------------------------------------------------
# Faulted network end-to-end
# ---------------------------------------------------------------------------
def _run(cfg: NetworkConfig, rate: float = 0.1, **kwargs):
    sim = OpenLoopSimulator(
        cfg, warmup=200, measure=400, drain_limit=4000, **kwargs
    )
    return sim.run(rate)


class TestFaultedRuns:
    def test_faulted_mesh_completes_with_higher_latency(self):
        base = NetworkConfig(k=4, n=2, seed=3)
        healthy = _run(base)
        faulted = _run(NetworkConfig(k=4, n=2, seed=3, faults="links:2"))
        assert faulted.num_measured > 0
        assert faulted.avg_latency > healthy.avg_latency

    def test_faulted_run_is_deterministic(self):
        cfg = NetworkConfig(k=4, n=2, seed=5, faults="links:2")
        a, b = _run(cfg), _run(cfg)
        assert (a.avg_latency, a.throughput, a.num_measured) == (
            b.avg_latency,
            b.throughput,
            b.num_measured,
        )

    def test_unreachable_destination_raises_structured_error(self):
        cfg = NetworkConfig(k=4, n=2, seed=3, faults="router:5")
        with pytest.raises(UnreachableDestination) as exc:
            _run(cfg)
        assert 5 in (exc.value.src, exc.value.dst)
        assert "unreachable" in str(exc.value)

    def test_invariants_hold_on_faulted_run(self):
        cfg = NetworkConfig(k=4, n=2, seed=3, faults="links:2;link:0>1@50-300")
        res = _run(cfg, check_invariants=True)
        assert res.num_measured > 0

    def test_faults_rejected_on_ideal_network(self):
        with pytest.raises(ValueError, match="ideal"):
            NetworkConfig(topology="ideal", faults="links:1")

    def test_bad_spec_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            NetworkConfig(k=4, n=2, faults="nonsense")


# ---------------------------------------------------------------------------
# Golden stability: resilience present but disabled changes nothing
# ---------------------------------------------------------------------------
class TestZeroCostWhenDisabled:
    def test_watchdog_does_not_perturb_results(self):
        cfg = NetworkConfig(k=4, n=2, seed=3)
        plain = _run(cfg, check_invariants=False)
        watched = _run(cfg, watchdog=Watchdog(window=50), check_invariants=True)
        assert plain.avg_latency == watched.avg_latency
        assert plain.throughput == watched.throughput
        assert plain.num_measured == watched.num_measured

    def test_disabled_resilience_allocates_nothing(self):
        """With faults/watchdog off, no code from resilience.py allocates."""
        import repro.core.resilience as resilience_mod
        import repro.routing.fault as fault_mod

        sim = OpenLoopSimulator(
            cfg := NetworkConfig(k=4, n=2, seed=3),
            warmup=50,
            measure=100,
            drain_limit=500,
            check_invariants=False,
        )
        tracemalloc.start()
        try:
            sim.run(0.1)
            snap = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        for mod in (resilience_mod, fault_mod):
            allocs = snap.filter_traces(
                [tracemalloc.Filter(True, mod.__file__)]
            ).statistics("filename")
            assert allocs == []


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------
#: adaptive routing + 1-deep VCs + high load + missing links: deadlocks fast
DEADLOCK_CFG = NetworkConfig(
    k=4, n=2, num_vcs=2, vc_buffer_size=1, routing="ma", seed=1, faults="links:4"
)


class TestWatchdog:
    def test_healthy_run_never_trips(self):
        cfg = NetworkConfig(k=4, n=2, seed=3)
        res = _run(cfg, watchdog=Watchdog(window=100))
        assert res.num_measured > 0

    def test_deadlock_detected_with_diagnosis(self):
        """Acceptance: deadlock-prone config terminates via SimulationStalled."""
        with pytest.raises(SimulationStalled) as exc:
            _run(DEADLOCK_CFG, rate=0.35, watchdog=Watchdog(window=500))
        diag = exc.value.diagnosis
        assert diag.in_flight > 0
        assert diag.blocked, "diagnosis must name at least one blocked VC"
        b = diag.blocked[0]
        assert 0 <= b.node < 16 and b.vc in (0, 1)
        assert f"router {b.node}" in str(exc.value)
        assert "no forward progress" in str(exc.value)
        assert diag.oldest_packet is not None
        assert diag.oldest_packet["age"] >= 500

    def test_deadlock_diagnosis_finds_wait_cycle(self):
        with pytest.raises(SimulationStalled) as exc:
            _run(DEADLOCK_CFG, rate=0.35, watchdog=Watchdog(window=500))
        cycle = exc.value.diagnosis.suspected_cycle
        assert len(cycle) >= 2
        keys = {(b.node, b.in_port, b.vc) for b in exc.value.diagnosis.blocked}
        assert set(cycle) <= keys

    def test_watchdog_reusable_across_runs(self):
        dog = Watchdog(window=100)
        cfg = NetworkConfig(k=4, n=2, seed=3)
        assert _run(cfg, watchdog=dog).num_measured > 0
        assert _run(cfg, watchdog=dog).num_measured > 0

    def test_window_validated(self):
        with pytest.raises(ValueError):
            Watchdog(window=0)


class TestDiagnose:
    def test_idle_network_snapshot(self):
        net = Network(NetworkConfig(k=4, n=2))
        diag = diagnose(net, window=100)
        assert diag.in_flight == 0
        assert diag.blocked == []
        assert diag.oldest_packet is None
        assert "0 packets in flight" in diag.summary()


# ---------------------------------------------------------------------------
# Invariant checker
# ---------------------------------------------------------------------------
class TestInvariantChecker:
    def test_clean_network_passes(self):
        net = Network(NetworkConfig(k=4, n=2))
        InvariantChecker().check(net)

    def test_delivered_counter_tamper_detected(self):
        net = Network(NetworkConfig(k=4, n=2))
        net.total_flits_delivered += 1
        with pytest.raises(InvariantViolation, match="per-node ejections"):
            InvariantChecker().check(net)

    def test_injection_counter_tamper_detected(self):
        net = Network(NetworkConfig(k=4, n=2))
        net.flit_injections[0] += 1
        with pytest.raises(InvariantViolation, match="flit conservation"):
            InvariantChecker().check(net)

    def test_credit_leak_detected(self):
        net = Network(NetworkConfig(k=4, n=2))
        net.routers[0].credits[0][0] -= 1
        with pytest.raises(InvariantViolation, match="credit conservation"):
            InvariantChecker().check(net)

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            InvariantChecker(interval=0)

    def test_env_var_enables_by_default(self, monkeypatch):
        from repro.core.engine import _invariants_default

        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert _invariants_default() is False
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert _invariants_default() is True
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert _invariants_default() is False


# ---------------------------------------------------------------------------
# Faulted sweeps: serial vs parallel identity
# ---------------------------------------------------------------------------
def faulted_point_runner(cfg, **kwargs):
    sim = OpenLoopSimulator(cfg, warmup=100, measure=200, drain_limit=2000)
    res = sim.run(kwargs.get("rate", 0.05))
    return {
        "latency": res.avg_latency,
        "throughput": res.throughput,
        "measured": res.num_measured,
    }


class TestFaultedSweepIdentity:
    def test_same_plan_identical_serial_vs_parallel(self):
        """Acceptance: one FaultPlan seed, identical records either way."""
        base = NetworkConfig(k=4, n=2, faults="links:2")
        extra = {"rate": (0.05, 0.1)}
        serial = run_sweep(base, {"seed": (3, 4)}, faulted_point_runner,
                           extra_axes=extra, n_workers=1)
        parallel = run_sweep(base, {"seed": (3, 4)}, faulted_point_runner,
                             extra_axes=extra, n_workers=2)
        strip = lambda rs: [
            {k: v for k, v in r.items() if k != "wall_seconds"} for r in rs
        ]
        assert strip(serial) == strip(parallel)
        assert all(r["measured"] > 0 for r in serial)
