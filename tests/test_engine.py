"""Unit tests for the unified SimulationEngine and its phase control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.engine import (
    DrainSink,
    EngineResult,
    Injector,
    Phase,
    SimulationEngine,
    Sink,
)
from repro.network.ideal import IdealNetwork
from repro.network.network import Network


class _Burst:
    """Injector offering ``count`` packets on cycle 0, then done."""

    def __init__(self, count: int, size: int = 1):
        self.count = count
        self.size = size
        self.offered = 0

    def inject(self, engine) -> None:
        net = engine.network
        while self.offered < self.count:
            src = self.offered % net.num_nodes
            dst = (src + 1) % net.num_nodes
            net.offer(net.make_packet(src, dst, self.size))
            self.offered += 1

    def done(self, engine) -> bool:
        return self.offered >= self.count


class _PhaseRecorder:
    """Injector that logs the engine phase on every injection cycle."""

    def __init__(self, cycles: int):
        self.cycles = cycles
        self.phases: list[Phase] = []

    def inject(self, engine) -> None:
        self.phases.append(engine.phase)

    def done(self, engine) -> bool:
        return engine.network.now >= self.cycles


class TestProtocols:
    def test_drain_sink_satisfies_protocol(self):
        assert isinstance(DrainSink(), Sink)

    def test_burst_satisfies_injector(self):
        assert isinstance(_Burst(1), Injector)

    def test_sink_required_unless_injector_is_one(self):
        net = IdealNetwork(num_nodes=4)

        class InjectOnly:
            def inject(self, engine):
                pass

            def done(self, engine):
                return True

        with pytest.raises(TypeError, match="Sink protocol"):
            SimulationEngine(net, InjectOnly(), max_cycles=10)

    def test_shared_injector_sink_allowed(self):
        net = IdealNetwork(num_nodes=4)

        class Both:
            def inject(self, engine):
                pass

            def done(self, engine):
                return True

            def on_delivered(self, pkt, engine):
                pass

        engine = SimulationEngine(net, Both(), max_cycles=10)
        assert engine.sink is engine.injector


class TestValidation:
    def test_rejects_negative_knobs(self):
        net = IdealNetwork(num_nodes=4)
        burst = _Burst(0)
        with pytest.raises(ValueError):
            SimulationEngine(net, burst, DrainSink(), warmup=-1, max_cycles=10)
        with pytest.raises(ValueError):
            SimulationEngine(net, burst, DrainSink(), measure=-1, max_cycles=10)
        with pytest.raises(ValueError):
            SimulationEngine(net, burst, DrainSink(), max_cycles=-1)


class TestCompletion:
    def test_runs_to_completion(self):
        net = Network(NetworkConfig(k=4, n=2))
        engine = SimulationEngine(net, _Burst(32), DrainSink(), max_cycles=10_000)
        res = engine.run()
        assert res.completed is True
        assert res.final_phase is Phase.MEASURE
        assert net.is_idle()
        assert net.total_packets_delivered == 32
        assert res.cycles == net.now

    def test_budget_cutoff_reports_incomplete(self):
        net = Network(NetworkConfig(k=4, n=2))
        engine = SimulationEngine(net, _Burst(64, size=4), DrainSink(), max_cycles=3)
        res = engine.run()
        assert res.completed is False
        assert res.cycles == 3
        assert not net.is_idle()

    def test_zero_budget_runs_nothing(self):
        net = Network(NetworkConfig(k=4, n=2))
        engine = SimulationEngine(net, _Burst(8), DrainSink(), max_cycles=0)
        res = engine.run()
        assert res.completed is False
        assert res.cycles == 0

    def test_delivered_packets_reach_the_sink(self):
        net = IdealNetwork(num_nodes=8)
        seen = []

        class Collector:
            def on_delivered(self, pkt, engine):
                seen.append(pkt)

            def done(self, engine):
                return engine.network.is_idle()

        engine = SimulationEngine(net, _Burst(5), Collector(), max_cycles=1000)
        res = engine.run()
        assert res.completed
        assert len(seen) == 5


class TestPhaseControl:
    def test_lifecycle_warmup_measure_drain(self):
        net = IdealNetwork(num_nodes=4)
        rec = _PhaseRecorder(cycles=30)
        engine = SimulationEngine(
            net, rec, DrainSink(), warmup=10, measure=10, max_cycles=100
        )
        engine.run()
        assert rec.phases[:10] == [Phase.WARMUP] * 10
        assert rec.phases[10:20] == [Phase.MEASURE] * 10
        assert rec.phases[20:] == [Phase.DRAIN] * 10

    def test_no_warmup_starts_in_measure(self):
        net = IdealNetwork(num_nodes=4)
        engine = SimulationEngine(net, _Burst(1), DrainSink(), max_cycles=100)
        assert engine.phase is Phase.MEASURE
        assert engine.in_measure and not engine.in_drain

    def test_measured_flits_window(self):
        """Counter snapshots bracket exactly the measurement window."""
        cfg = NetworkConfig(k=4, n=2, seed=5)
        net = Network(cfg)
        gen = np.random.default_rng(9)

        class Steady:
            def inject(self, engine):
                if engine.network.now < 60:
                    src = int(gen.integers(16))
                    dst = int(gen.integers(16))
                    net.offer(net.make_packet(src, dst, 1))

            def done(self, engine):
                return engine.network.now >= 60

        engine = SimulationEngine(
            net, Steady(), DrainSink(), warmup=20, measure=20, max_cycles=1000
        )
        res = engine.run()
        assert res.completed
        assert res.flits_at_measure_start is not None
        assert res.flits_at_measure_end is not None
        assert res.measured_flits == (
            res.flits_at_measure_end - res.flits_at_measure_start
        )
        assert 0 <= res.measured_flits <= net.total_flits_delivered

    def test_unbounded_measure_never_drains(self):
        net = IdealNetwork(num_nodes=4)
        rec = _PhaseRecorder(cycles=20)
        engine = SimulationEngine(
            net, rec, DrainSink(), warmup=5, measure=None, max_cycles=100
        )
        res = engine.run()
        assert res.final_phase is Phase.MEASURE
        assert res.flits_at_measure_end is None
        assert res.measured_flits is None


class TestEngineResult:
    def test_measured_flits_requires_both_snapshots(self):
        r = EngineResult(cycles=1, completed=True, final_phase=Phase.MEASURE)
        assert r.measured_flits is None
        r = EngineResult(
            cycles=1,
            completed=True,
            final_phase=Phase.DRAIN,
            flits_at_measure_start=10,
            flits_at_measure_end=35,
        )
        assert r.measured_flits == 25


class TestNetworkLikeUnification:
    def test_engine_drives_both_backends_identically(self):
        """The same injector/sink code runs unchanged on Network and
        IdealNetwork — the point of the NetworkLike protocol."""
        from repro.network.base import NetworkLike

        for net in (Network(NetworkConfig(k=4, n=2)), IdealNetwork(num_nodes=16)):
            assert isinstance(net, NetworkLike)
            engine = SimulationEngine(net, _Burst(12), DrainSink(), max_cycles=10_000)
            res = engine.run()
            assert res.completed
            assert net.total_packets_delivered == 12
