"""Tests for configuration validation (paper Tables I & II)."""

from __future__ import annotations

import pytest

from repro.config import (
    TABLE_I_PARAMETER_SPACE,
    TABLE_II_PARAMETERS,
    CmpConfig,
    NetworkConfig,
)


class TestNetworkConfigDefaults:
    def test_baseline_is_paper_table1_bold(self):
        cfg = NetworkConfig()
        assert cfg.topology == "mesh"
        assert cfg.k == 8 and cfg.n == 2  # 8x8 2D mesh
        assert cfg.num_vcs == 2
        assert cfg.vc_buffer_size == 4
        assert cfg.router_delay == 1
        assert cfg.routing == "dor"
        assert cfg.arbitration == "round_robin"
        assert cfg.link_delay == 1
        assert cfg.packet_size == "single"
        assert cfg.traffic == "uniform_random"

    def test_num_nodes(self):
        assert NetworkConfig(k=8, n=2).num_nodes == 64
        assert NetworkConfig(k=16, n=2).num_nodes == 256
        assert NetworkConfig(topology="ring", k=8, n=2).num_nodes == 64
        assert NetworkConfig(topology="ideal", k=4, n=2).num_nodes == 16

    def test_mean_packet_size(self):
        assert NetworkConfig().mean_packet_size == 1.0
        bi = NetworkConfig(packet_size="bimodal", bimodal_long_fraction=0.5)
        assert bi.mean_packet_size == pytest.approx(2.5)

    def test_with_returns_modified_copy(self):
        cfg = NetworkConfig()
        cfg2 = cfg.with_(router_delay=4)
        assert cfg2.router_delay == 4
        assert cfg.router_delay == 1
        assert cfg2.k == cfg.k


class TestNetworkConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topology": "hypercube"},
            {"routing": "xy"},
            {"arbitration": "lottery"},
            {"traffic": "hotspot99"},
            {"packet_size": "trimodal"},
            {"k": 1},
            {"n": 0},
            {"num_vcs": 0},
            {"vc_buffer_size": 0},
            {"router_delay": 0},
            {"link_delay": 0},
            {"credit_delay": -1},
            {"bimodal_long_fraction": 1.5},
            {"bimodal_long_size": 1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            NetworkConfig(**kwargs)

    def test_wrapped_topologies_need_two_vcs(self):
        with pytest.raises(ValueError):
            NetworkConfig(topology="torus", num_vcs=1)
        with pytest.raises(ValueError):
            NetworkConfig(topology="ring", num_vcs=1)

    def test_nonminimal_routing_needs_two_vcs(self):
        for alg in ("val", "ma", "romm"):
            with pytest.raises(ValueError):
                NetworkConfig(routing=alg, num_vcs=1)

    def test_routing_algorithms_mesh_only(self):
        # The paper evaluates VAL/MA/ROMM on the mesh only.
        for alg in ("val", "ma", "romm"):
            with pytest.raises(ValueError):
                NetworkConfig(routing=alg, topology="torus")
            NetworkConfig(routing=alg, topology="mesh")  # fine


class TestCmpConfig:
    def test_defaults_match_table2(self):
        cfg = CmpConfig()
        assert cfg.num_cores == 16
        assert cfg.l1_lines * cfg.line_bytes == 32 * 1024  # 32 KB
        assert cfg.l1_assoc == 4
        assert cfg.l1_latency == 2
        assert cfg.l2_lines_per_tile * cfg.line_bytes == 512 * 1024  # 512 KB/tile
        assert cfg.l2_latency == 10
        assert cfg.memory_latency == 300
        assert cfg.network.k == 4 and cfg.network.n == 2  # 4-ary 2-cube
        assert cfg.network.num_vcs == 8
        assert cfg.network.vc_buffer_size == 4

    def test_network_core_count_must_match(self):
        with pytest.raises(ValueError):
            CmpConfig(num_cores=8)

    def test_rejects_non_multiple_assoc(self):
        with pytest.raises(ValueError):
            CmpConfig(l1_lines=100, l1_assoc=3)

    def test_rejects_bad_blocking_fraction(self):
        with pytest.raises(ValueError):
            CmpConfig(blocking_fraction=1.5)

    def test_with_copies(self):
        cfg = CmpConfig()
        cfg2 = cfg.with_(mshrs=4)
        assert cfg2.mshrs == 4 and cfg.mshrs == 8


class TestParameterTables:
    def test_table1_covers_paper_axes(self):
        for key in (
            "topology",
            "virtual_channels",
            "vc_buffer_size",
            "router_delay",
            "routing",
            "arbitration",
            "packet_sizes",
            "traffic",
        ):
            assert key in TABLE_I_PARAMETER_SPACE

    def test_table1_router_delays(self):
        assert TABLE_I_PARAMETER_SPACE["router_delay"] == (1, 2, 4, 8)

    def test_table2_entries(self):
        assert "processor" in TABLE_II_PARAMETERS
        assert "16 in-order" in TABLE_II_PARAMETERS["processor"]
