"""Focused tests on the in-order core model's state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.execdriven import (
    KERNEL,
    USER,
    AddressSpace,
    BenchmarkSpec,
    InOrderCore,
    MSHRFile,
    PhaseSpec,
    SetAssocCache,
)


def make_core(
    phases,
    *,
    mshrs=2,
    blocking=0.0,
    timer=None,
    requests=None,
    num_cores=4,
):
    spec = BenchmarkSpec(
        name="t",
        phases=tuple(phases),
        timer_handler=timer
        or PhaseSpec("timer", 10, 0.5, 0.3, 0.0, traffic_class=KERNEL),
        blocking_fraction=blocking,
    )
    # hot pool sized to fit the 16-line test L1, so "hot" accesses hit
    space = AddressSpace(num_cores, hot_lines=8, mid_lines=1024, cold_lines=4096)
    sent = requests if requests is not None else []

    def send(core_id, line, cls):
        sent.append((core_id, line, cls))

    # mirror CmpSystem's warm start: hot set resident in the L1
    l1 = SetAssocCache(16, 4)
    for off in range(space.hot_lines):
        l1.fill(space.hot_line(0, off))
    core = InOrderCore(
        0,
        spec,
        space,
        l1=l1,
        mshrs=MSHRFile(mshrs),
        send_request=send,
        rng=rng_mod.make_generator(1, "core-test"),
        blocking_fraction=blocking,
    )
    return core, sent


def run_core(core, cycles, on_request=None):
    for now in range(cycles):
        core.step(now)
        if core.done and not core.active:
            return now
    return cycles


class TestExecution:
    def test_pure_compute_one_ipc(self):
        # mem_ratio ~0: every instruction takes 1 cycle
        core, _ = make_core([PhaseSpec("c", 100, 0.0001, 0.0, 0.0)])
        end = run_core(core, 500)
        assert core.done
        assert core.instructions_retired == 100
        assert 99 <= end <= 130  # a stray memory op costs a couple cycles

    def test_hot_memory_costs_l1_latency(self):
        core, sent = make_core([PhaseSpec("m", 50, 1.0, 0.0, 0.0)])
        run_core(core, 500)
        assert core.done
        assert not sent  # hot pool: no network requests
        assert core.l1_misses <= 16  # only compulsory misses to the hot set

    def test_misses_send_requests(self):
        core, sent = make_core([PhaseSpec("m", 80, 1.0, 1.0, 0.0)], mshrs=100)
        run_core(core, 2000)
        assert core.done
        assert len(sent) > 10
        assert all(cls == USER for _, _, cls in sent)

    def test_mshr_full_stalls_until_reply(self):
        core, sent = make_core([PhaseSpec("m", 50, 1.0, 1.0, 0.0)], mshrs=1)
        for now in range(200):
            core.step(now)
        assert not core.done  # wedged on the second distinct miss
        assert core.mshr_stall_cycles > 0
        first = sent[0]
        core.on_reply(first[1], 200)
        progressed = core.instructions_retired
        for now in range(201, 400):
            core.step(now)
            for cid, line, cls in sent[1:]:
                if core.mshrs.lookup(line):
                    core.on_reply(line, now)
        assert core.instructions_retired > progressed

    def test_blocking_load_waits_for_reply(self):
        core, sent = make_core(
            [PhaseSpec("m", 10, 1.0, 1.0, 0.0)], mshrs=8, blocking=1.0
        )
        for now in range(50):
            core.step(now)
        # blocked on the first miss: nothing retires past it
        assert core.instructions_retired <= 1
        assert core.active
        line = sent[0][1]
        core.on_reply(line, 50)
        assert core.instructions_retired >= 1

    def test_nonblocking_continues_past_misses(self):
        core, sent = make_core(
            [PhaseSpec("m", 30, 1.0, 1.0, 0.0)], mshrs=100, blocking=0.0
        )
        for now in range(200):
            core.step(now)
        assert core.done  # never waits for any reply
        assert len(sent) >= 20


class TestInterrupts:
    def test_interrupt_preempts_and_resumes(self):
        core, sent = make_core(
            [PhaseSpec("u", 100, 0.0001, 0.0, 0.0)],
            timer=PhaseSpec("k", 20, 1.0, 1.0, 0.0, traffic_class=KERNEL),
            mshrs=100,
        )
        assert core.interrupt(core.spec.timer_handler)
        run_core(core, 1000)
        assert core.done
        assert core.instructions_retired == 120
        assert any(cls == KERNEL for _, _, cls in sent)

    def test_no_nested_interrupts(self):
        core, _ = make_core([PhaseSpec("u", 1000, 0.0001, 0.0, 0.0)])
        assert core.interrupt(core.spec.timer_handler)
        assert not core.interrupt(core.spec.timer_handler)

    def test_no_interrupts_after_done(self):
        core, _ = make_core([PhaseSpec("u", 5, 0.0001, 0.0, 0.0)])
        run_core(core, 100)
        assert core.done
        assert not core.interrupt(core.spec.timer_handler)


class TestPhaseTransitions:
    def test_phases_execute_in_order(self):
        requests = []
        core, _ = make_core(
            [
                PhaseSpec("k1", 20, 1.0, 1.0, 0.0, traffic_class=KERNEL),
                PhaseSpec("u", 20, 1.0, 1.0, 0.0, traffic_class=USER),
                PhaseSpec("k2", 20, 1.0, 1.0, 0.0, traffic_class=KERNEL),
            ],
            mshrs=100,
            requests=requests,
        )
        run_core(core, 2000)
        assert core.done
        classes = [cls for _, _, cls in requests]
        # kernel first, then user, then kernel again
        first_user = classes.index(USER)
        last_user = len(classes) - 1 - classes[::-1].index(USER)
        assert all(c == KERNEL for c in classes[:first_user])
        assert all(c == KERNEL for c in classes[last_user + 1 :])

    def test_empty_phase_skipped(self):
        core, _ = make_core(
            [
                PhaseSpec("empty", 0, 0.5, 0.0, 0.0),
                PhaseSpec("real", 10, 0.0001, 0.0, 0.0),
            ]
        )
        run_core(core, 100)
        assert core.done
        assert core.instructions_retired == 10
