"""Tests for mesh / torus / ring / ideal topologies."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig
from repro.topology import Ideal, Mesh, Ring, Torus, build_topology


class TestMesh:
    def test_shape(self):
        m = Mesh(8, 2)
        assert m.num_nodes == 64
        assert m.num_dims == 2
        assert m.num_network_ports == 4
        assert m.local_port == 4
        assert m.ports_per_router == 5

    def test_coords_roundtrip(self):
        m = Mesh(8, 2)
        for node in range(64):
            assert m.node_at(m.coords(node)) == node

    def test_coords_x_fastest(self):
        m = Mesh(4, 2)
        assert m.coords(0) == (0, 0)
        assert m.coords(1) == (1, 0)
        assert m.coords(4) == (0, 1)

    def test_edge_ports_absent(self):
        m = Mesh(4, 2)
        # node 3 is the +x edge of row 0.
        assert m.channel(3, 0) is None  # +x
        assert m.channel(3, 1) is not None  # -x
        assert m.channel(0, 1) is None  # -x at origin
        assert m.channel(0, 3) is None  # -y at origin

    def test_channel_wiring_reciprocal(self):
        m = Mesh(4, 2)
        ch = m.channel(5, 0)  # +x from (1,1)
        assert ch.dst == 6
        # arrives at the neighbour's -x input port
        assert ch.in_port == 1
        assert ch.delay == 1

    def test_min_hops_manhattan(self):
        m = Mesh(8, 2)
        assert m.min_hops(0, 63) == 14  # (0,0) -> (7,7)
        assert m.min_hops(0, 0) == 0
        assert m.min_hops(0, 7) == 7

    def test_average_min_hops_known_value(self):
        # 2D mesh average distance = 2 * (k^2-1)/(3k) for uniform pairs
        m = Mesh(8, 2)
        expected = 2 * (64 - 1) / (3 * 8) * (64 / 63)
        assert m.average_min_hops() == pytest.approx(expected, rel=1e-9)

    def test_direction(self):
        m = Mesh(4, 2)
        assert m.direction(0, 3, 0) == 1
        assert m.direction(3, 0, 0) == -1
        assert m.direction(0, 12, 0) == 0  # aligned in x

    def test_validate(self):
        Mesh(4, 2).validate()
        Mesh(8, 2).validate()

    def test_channels_count(self):
        # 2D mesh: 2 * 2 * k * (k-1) directed channels
        m = Mesh(4, 2)
        assert sum(1 for _ in m.channels()) == 2 * 2 * 4 * 3


class TestTorus:
    def test_wrap_channels_exist(self):
        t = Torus(4, 2)
        ch = t.channel(3, 0)  # +x from the edge wraps to x=0
        assert ch is not None
        assert ch.dst == 0

    def test_folded_channel_delay_doubles(self):
        t = Torus(4, 2)
        for ch in t.channels():
            assert ch.delay == 2

    def test_unfolded_option(self):
        t = Torus(4, 2, channel_delay_multiplier=1)
        assert next(iter(t.channels())).delay == 1

    def test_min_hops_wraps(self):
        t = Torus(8, 2)
        assert t.min_hops(0, 7) == 1  # wrap in x
        assert t.min_hops(0, 63) == 2  # (7,7) via both wraps

    def test_lower_average_hops_than_mesh(self):
        assert Torus(8, 2).average_min_hops() < Mesh(8, 2).average_min_hops()

    def test_dateline_crossing(self):
        t = Torus(4, 2)
        assert t.dateline_crossing(3, 0)  # x=3 going +x wraps
        assert not t.dateline_crossing(2, 0)
        assert t.dateline_crossing(0, 1)  # x=0 going -x wraps
        assert not t.dateline_crossing(3, 1)

    def test_direction_tie_breaks_positive(self):
        t = Torus(8, 1)
        assert t.direction(0, 4, 0) == 1  # distance 4 both ways

    def test_validate(self):
        Torus(4, 2).validate()


class TestRing:
    def test_is_one_dimensional_torus(self):
        r = Ring(16)
        assert r.num_nodes == 16
        assert r.num_dims == 1
        assert r.ports_per_router == 3

    def test_min_hops(self):
        r = Ring(64)
        assert r.min_hops(0, 1) == 1
        assert r.min_hops(0, 63) == 1
        assert r.min_hops(0, 32) == 32

    def test_average_min_hops(self):
        r = Ring(64)
        expected = (2 * sum(range(1, 32)) + 32) / 63
        assert r.average_min_hops() == pytest.approx(expected)

    def test_validate(self):
        Ring(16).validate()


class TestIdeal:
    def test_shape(self):
        i = Ideal(64)
        assert i.num_nodes == 64
        assert i.min_hops(0, 5) == 1
        assert i.min_hops(3, 3) == 0

    def test_no_channels(self):
        assert list(Ideal(8).channels()) == []

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Ideal(0)
        with pytest.raises(ValueError):
            Ideal(4, latency=0)


class TestRegistry:
    def test_builds_each_topology(self):
        assert isinstance(build_topology(NetworkConfig(topology="mesh")), Mesh)
        assert isinstance(build_topology(NetworkConfig(topology="torus")), Torus)
        assert isinstance(build_topology(NetworkConfig(topology="ring")), Ring)
        assert isinstance(build_topology(NetworkConfig(topology="ideal")), Ideal)

    def test_ring_node_count_is_k_to_the_n(self):
        topo = build_topology(NetworkConfig(topology="ring", k=8, n=2))
        assert topo.num_nodes == 64

    def test_node_counts_consistent_with_config(self):
        for name in ("mesh", "torus", "ring", "ideal"):
            cfg = NetworkConfig(topology=name, k=4, n=2)
            assert build_topology(cfg).num_nodes == cfg.num_nodes
