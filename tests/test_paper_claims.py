"""Integration tests for the paper's headline claims, at scaled parameters.

Each test pins one qualitative result from the paper; EXPERIMENTS.md maps
the quantitative comparison.  These are the slowest tests in the suite
(several seconds each) but they are the reason the repository exists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CmpConfig, NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.correlation import batch_vs_openloop, pearson
from repro.core.metrics import runtime_map
from repro.core.openloop import OpenLoopSimulator
from repro.core.reply import ProbabilisticReply
from repro.execdriven import CmpSystem, lu

OL = dict(warmup=250, measure=500, drain_limit=2500)


@pytest.mark.slow
class TestSectionIIIRouterParameters:
    def test_mesh_saturates_near_43_percent(self, mesh8):
        """§III-B: 'the network saturates at approximately 43%'."""
        sim = OpenLoopSimulator(mesh8, **OL)
        sat = sim.saturation_throughput(tolerance=0.02)
        assert sat == pytest.approx(0.43, abs=0.04)

    def test_router_delay_does_not_change_saturation(self, mesh8):
        """Fig. 3(a): tr shifts zero-load latency, not throughput."""
        sats = []
        for tr in (1, 4):
            sim = OpenLoopSimulator(mesh8.with_(router_delay=tr), **OL)
            sats.append(sim.saturation_throughput(tolerance=0.03))
        assert sats[1] == pytest.approx(sats[0], abs=0.05)

    def test_small_buffers_cut_throughput(self, mesh8):
        """Fig. 3(b): shallow buffers cost throughput, deep ones stop being
        the bottleneck.  Our router's credit loop is 3 cycles (the paper's
        simulator has a longer pipeline), so the knee sits at a smaller q:
        q=2 is the starved point here where q=4 was in the paper, and
        doubling buffers beyond the knee changes almost nothing.
        """
        sat = {}
        for q in (2, 4, 16, 32):
            sim = OpenLoopSimulator(mesh8.with_(vc_buffer_size=q), **OL)
            sat[q] = sim.saturation_throughput(tolerance=0.02)
        assert sat[2] < sat[16]
        assert 1.0 - sat[2] / sat[16] == pytest.approx(0.155, abs=0.13)
        assert abs(sat[32] - sat[16]) < 0.04  # buffers no longer bottleneck

    def test_batch_high_m_insensitive_to_tr(self, mesh8):
        """Fig. 4(a): at large m (saturated), tr barely matters; at m=1 the
        runtime tracks the zero-load ratio."""
        ratio = {}
        for m in (1, 32):
            r1 = BatchSimulator(mesh8, batch_size=60, max_outstanding=m).run().runtime
            r2 = BatchSimulator(
                mesh8.with_(router_delay=2), batch_size=60, max_outstanding=m
            ).run().runtime
            ratio[m] = r2 / r1
        assert ratio[1] == pytest.approx(1.5, abs=0.12)
        assert ratio[32] < 1.25


@pytest.mark.slow
class TestSectionIIITopology:
    def test_openloop_ordering(self):
        """Fig. 6(a): ring worst in latency and throughput; torus higher
        zero-load latency than mesh (folded links) but more throughput
        headroom when VCs allow."""
        zl = {}
        sat = {}
        for topo in ("mesh", "torus", "ring"):
            cfg = NetworkConfig(topology=topo, num_vcs=4)
            sim = OpenLoopSimulator(cfg, **OL)
            zl[topo] = sim.zero_load_latency()
            sat[topo] = sim.saturation_throughput(tolerance=0.03)
        assert zl["ring"] > zl["torus"] > zl["mesh"]
        assert sat["ring"] < sat["mesh"]
        assert sat["torus"] > sat["mesh"]

    def test_mesh_center_fast_torus_flat_fig7(self):
        """Fig. 7: the mesh's center nodes finish earlier than the edge;
        the edge-symmetric torus is nearly flat."""
        spreads = {}
        for topo in ("mesh", "torus"):
            cfg = NetworkConfig(topology=topo)
            res = BatchSimulator(cfg, batch_size=80, max_outstanding=4).run()
            rmap = runtime_map(res.node_finish, 8)
            spreads[topo] = rmap.max() - rmap.min()
            if topo == "mesh":
                center = rmap[3:5, 3:5].mean()
                corners = np.array(
                    [rmap[0, 0], rmap[0, 7], rmap[7, 0], rmap[7, 7]]
                ).mean()
                assert center < corners
        assert spreads["torus"] < spreads["mesh"]


class TestSectionIIIRouting:
    def test_val_doubles_zero_load_latency_uniform(self, mesh8):
        """Fig. 9(a): VAL's two-phase route costs ~2x latency at low load."""
        lat = {}
        for alg in ("dor", "val"):
            sim = OpenLoopSimulator(mesh8.with_(routing=alg), **OL)
            lat[alg] = sim.zero_load_latency()
        assert lat["val"] / lat["dor"] == pytest.approx(2.0, abs=0.35)

    def test_val_negligible_at_m1_transpose_fig10(self):
        """Fig. 10(b)/§III-D: under transpose at m=1, VAL's higher average
        latency costs almost nothing (~1.7% in the paper) because the
        corner-to-corner worst case is minimal either way."""
        runtimes = {}
        for alg in ("dor", "val"):
            cfg = NetworkConfig(routing=alg, traffic="transpose")
            runtimes[alg] = BatchSimulator(
                cfg, batch_size=80, max_outstanding=1
            ).run().runtime
        gap = runtimes["val"] / runtimes["dor"] - 1.0
        assert abs(gap) < 0.08

    def test_val_average_latency_much_higher_at_m1_transpose(self):
        """Fig. 11: the same experiment's *average* request latency is far
        higher under VAL — the worst-case runtime just doesn't care."""
        lat = {}
        for alg in ("dor", "val"):
            cfg = NetworkConfig(routing=alg, traffic="transpose")
            lat[alg] = BatchSimulator(
                cfg, batch_size=80, max_outstanding=1
            ).run().avg_request_latency
        assert lat["val"] > 1.25 * lat["dor"]


@pytest.mark.slow
class TestSectionIIICorrelation:
    def test_fig5_router_delay_correlation(self, mesh8):
        """Fig. 5: batch runtime vs open-loop latency at matched load
        correlates highly for small m."""
        configs = [(tr, mesh8.with_(router_delay=tr)) for tr in (1, 2, 4)]
        res = batch_vs_openloop(
            configs, m_values=(1, 2, 4), batch_size=80, openloop_kwargs=OL
        )
        assert res.r > 0.97


class TestSectionIVValidation:
    def test_enhanced_models_shrink_tr_impact_toward_execdriven(self):
        """§IV-D: the baseline batch model wildly overpredicts the impact
        of tr (4.2x at tr=8 vs ~1.2-1.7x measured); NAR+reply modelling
        pulls it into range."""
        cfg = NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4)
        cfg8 = cfg.with_(router_delay=8)

        def ratio(**kw):
            a = BatchSimulator(cfg, batch_size=60, max_outstanding=8, **kw).run()
            b = BatchSimulator(cfg8, batch_size=60, max_outstanding=8, **kw).run()
            return b.runtime / a.runtime

        base = ratio()
        enhanced = ratio(nar=0.02, reply_model=ProbabilisticReply(10, 300, 0.2))
        exec_ratio = {}
        for tr in (1, 8):
            ccfg = CmpConfig(network=cfg.with_(router_delay=tr))
            exec_ratio[tr] = CmpSystem(lu(4000), ccfg, seed=2).run().cycles
        measured = exec_ratio[8] / exec_ratio[1]
        assert base > 2.0  # baseline batch model overpredicts
        assert abs(enhanced - measured) < abs(base - measured)

    def test_enhanced_correlation_beats_baseline(self):
        """Figs. 15 vs 19 in miniature: correlating exec-driven runtimes
        against the batch model improves when the batch model gains the
        NAR + reply extensions."""
        trs = (1, 4, 8)
        exec_rt = []
        for tr in trs:
            ccfg = CmpConfig(
                network=NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
            )
            exec_rt.append(CmpSystem(lu(4000), ccfg, seed=2).run().cycles)
        base_rt, enh_rt = [], []
        for tr in trs:
            cfg = NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
            base_rt.append(
                BatchSimulator(cfg, batch_size=60, max_outstanding=8).run().runtime
            )
            enh_rt.append(
                BatchSimulator(
                    cfg,
                    batch_size=60,
                    max_outstanding=8,
                    nar=0.02,
                    reply_model=ProbabilisticReply(10, 300, 0.2),
                ).run().runtime
            )
        exec_n = np.array(exec_rt) / exec_rt[0]
        base_n = np.array(base_rt) / base_rt[0]
        enh_n = np.array(enh_rt) / enh_rt[0]
        # the enhanced model's *slope* against exec-driven is closer to 1
        base_slope = np.polyfit(exec_n, base_n, 1)[0]
        enh_slope = np.polyfit(exec_n, enh_n, 1)[0]
        assert abs(enh_slope - 1) < abs(base_slope - 1)
