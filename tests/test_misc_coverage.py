"""Coverage for smaller API surfaces and paper side-claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.openloop import OpenLoopSimulator
from repro.execdriven import CmpSystem, blackscholes
from repro.network import Network


class TestNetworkMisc:
    def test_run_convenience(self, mesh4):
        net = Network(mesh4)
        net.offer(net.make_packet(0, 15, 1))
        delivered = net.run(100)
        assert len(delivered) == 1

    def test_buffered_flits_tracks_occupancy(self, mesh4):
        net = Network(mesh4)
        for _ in range(5):
            net.offer(net.make_packet(0, 3, 4))
        net.run(3)
        assert net.buffered_flits() > 0
        net.run(500)
        assert net.buffered_flits() == 0

    def test_in_flight_property(self, mesh4):
        net = Network(mesh4)
        net.offer(net.make_packet(0, 1, 1))
        assert net.in_flight == 1
        net.run(50)
        assert net.in_flight == 0


class TestOpenLoopMisc:
    def test_p99_on_healthy_run(self, mesh4):
        sim = OpenLoopSimulator(mesh4, warmup=150, measure=300, drain_limit=1500)
        res = sim.run(0.1)
        assert res.avg_latency <= res.p99_latency < float("inf")

    def test_custom_pattern_injection(self, mesh4):
        from repro.traffic import Neighbor

        sim = OpenLoopSimulator(
            mesh4,
            pattern=Neighbor(16),
            warmup=150,
            measure=300,
            drain_limit=1500,
        )
        res = sim.run(0.2)
        # (src+1) mod 16 on a 4x4 mesh: 12 single-hop pairs, 3 row-wrap
        # pairs at 4 hops, one corner pair at 6 -> average 1.875 hops
        assert res.avg_hops == pytest.approx(1.875, abs=0.15)
        assert res.avg_latency < 10


class TestPaperSideClaims:
    def test_packet_size_mix_does_not_change_tr_comparison(self, mesh4):
        """§III-B: 'Simulations using different packet sizes (such as a
        mixture of short and long packets) did not impact the comparisons.'"""
        ratios = {}
        for size in ("single", "bimodal"):
            cfg = mesh4.with_(packet_size=size)
            r1 = BatchSimulator(cfg, batch_size=40, max_outstanding=1).run().runtime
            r2 = BatchSimulator(
                cfg.with_(router_delay=2), batch_size=40, max_outstanding=1
            ).run().runtime
            ratios[size] = r2 / r1
        assert ratios["bimodal"] == pytest.approx(ratios["single"], abs=0.15)

    def test_256_node_network_functional(self):
        """Paper: 'A 256-node on-chip network using a 16-ary 2-cube topology
        is also evaluated ... show[ing] a similar trend.'"""
        cfg = NetworkConfig(k=16, n=2)
        res = BatchSimulator(cfg, batch_size=5, max_outstanding=4).run()
        assert res.completed
        assert res.total_requests == 256 * 5

    def test_simulation_speed_claim(self, mesh8):
        """The methodology exists because synthetic simulation is fast:
        a full 64-node batch run must finish in seconds, not hours."""
        import time

        t0 = time.perf_counter()
        BatchSimulator(mesh8, batch_size=100, max_outstanding=4).run()
        assert time.perf_counter() - t0 < 30


class TestCmpMisc:
    def test_max_cycles_cutoff(self):
        res = CmpSystem(blackscholes(5000), ideal=True, seed=2).run(max_cycles=200)
        assert not res.completed
        assert res.cycles == 200

    def test_seed_changes_results(self):
        a = CmpSystem(blackscholes(1200), ideal=True, seed=1).run()
        b = CmpSystem(blackscholes(1200), ideal=True, seed=2).run()
        assert a.cycles != b.cycles

    def test_timeline_bucket_resolution(self):
        res = CmpSystem(
            blackscholes(1200), ideal=True, seed=2, timeline_bucket=100
        ).run()
        assert res.timeline.shape[1] == res.cycles // 100 + 1


class TestAnalysisMisc:
    def test_format_matrix_unnormalized(self):
        from repro.analysis import format_matrix

        out = format_matrix(np.array([[0.0, 0.5]]), normalize=False)
        assert len(out.splitlines()) == 1

    def test_format_matrix_custom_shades(self):
        from repro.analysis import format_matrix

        out = format_matrix(np.array([[1.0]]), shades=" X")
        assert "X" in out
