"""Tests for temporal injection processes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.traffic import Bernoulli, MarkovOnOff


def measured_rate(proc, cycles=20000, seed=1):
    gen = rng_mod.make_generator(seed, "proc")
    total = sum(len(proc.arrivals(gen)) for _ in range(cycles))
    return total / (cycles * proc.num_nodes)


class TestBernoulli:
    def test_average_rate(self):
        proc = Bernoulli(16, 0.2)
        assert measured_rate(proc) == pytest.approx(0.2, rel=0.05)

    def test_zero_and_one(self):
        gen = rng_mod.make_generator(1, "b")
        assert len(Bernoulli(8, 0.0).arrivals(gen)) == 0
        assert len(Bernoulli(8, 1.0).arrivals(gen)) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            Bernoulli(0, 0.5)
        with pytest.raises(ValueError):
            Bernoulli(4, 1.5)


class TestMarkovOnOff:
    def test_average_rate_matches_formula(self):
        proc = MarkovOnOff(16, alpha=0.02, beta=0.05, on_rate=0.5)
        expected = 0.5 * 0.02 / 0.07
        assert proc.average_rate == pytest.approx(expected)
        assert measured_rate(proc) == pytest.approx(expected, rel=0.1)

    def test_for_average_rate_hits_target(self):
        proc = MarkovOnOff.for_average_rate(16, 0.15, burst_length=25)
        assert proc.average_rate == pytest.approx(0.15, rel=1e-9)
        assert measured_rate(proc) == pytest.approx(0.15, rel=0.1)

    def test_burstier_than_bernoulli_over_windows(self):
        """Same average rate and similar instantaneous variance, but the
        on/off process is temporally correlated: arrival counts summed over
        50-cycle windows have far higher variance (index of dispersion)."""
        gen_a = rng_mod.make_generator(2, "a")
        gen_b = rng_mod.make_generator(2, "b")
        bern = Bernoulli(64, 0.1)
        burst = MarkovOnOff.for_average_rate(64, 0.1, burst_length=40)

        def window_var(proc, gen, windows=300, width=50):
            sums = []
            for _ in range(windows):
                sums.append(sum(len(proc.arrivals(gen)) for _ in range(width)))
            return np.var(sums)

        assert window_var(burst, gen_b) > 3 * window_var(bern, gen_a)

    def test_burst_lengths_geometric(self):
        proc = MarkovOnOff(1, alpha=0.5, beta=0.1, on_rate=1.0)
        gen = rng_mod.make_generator(3, "g")
        lengths = []
        run = 0
        for _ in range(30000):
            if len(proc.arrivals(gen)):
                run += 1
            elif run:
                lengths.append(run)
                run = 0
        assert np.mean(lengths) == pytest.approx(1 / 0.1, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovOnOff(4, alpha=0.0, beta=0.1, on_rate=0.5)
        with pytest.raises(ValueError):
            MarkovOnOff.for_average_rate(4, 0.5, on_rate=0.4)
        with pytest.raises(ValueError):
            MarkovOnOff.for_average_rate(4, 0.2, burst_length=0.5)
        with pytest.raises(ValueError):
            # p_on -> 1 with a short burst makes alpha > 1
            MarkovOnOff.for_average_rate(4, 0.999, burst_length=2, on_rate=1.0)

    @given(
        st.floats(min_value=0.02, max_value=0.4),
        st.floats(min_value=2.0, max_value=100.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_for_average_rate_always_feasible_in_band(self, rate, burst):
        proc = MarkovOnOff.for_average_rate(8, rate, burst_length=burst)
        assert 0 < proc.alpha <= 1
        assert 0 < proc.beta <= 1
        assert proc.average_rate == pytest.approx(rate, rel=1e-6)


class TestOpenLoopIntegration:
    def test_bursty_traffic_raises_latency_at_same_load(self, mesh4):
        from repro.core.openloop import OpenLoopSimulator

        smooth = OpenLoopSimulator(mesh4, warmup=200, measure=600, drain_limit=3000)
        bursty = OpenLoopSimulator(
            mesh4,
            process=lambda n, r: MarkovOnOff.for_average_rate(n, r, burst_length=30),
            warmup=200,
            measure=600,
            drain_limit=3000,
        )
        a, b = smooth.run(0.3), bursty.run(0.3)
        assert b.throughput == pytest.approx(a.throughput, abs=0.05)
        assert b.avg_latency > a.avg_latency
