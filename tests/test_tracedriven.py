"""Tests for trace-driven simulation (paper §II methodology #2)."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig
from repro.core.closedloop import BatchSimulator
from repro.core.tracedriven import (
    Trace,
    TraceDrivenSimulator,
    TraceRecord,
    capture_batch_trace,
    capture_openloop_trace,
)


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 0, 1, 1)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, 1, 0)


class TestTrace:
    def _records(self):
        return [TraceRecord(0, 0, 5, 1), TraceRecord(3, 1, 2, 4), TraceRecord(3, 2, 0, 1)]

    def test_properties(self):
        tr = Trace(self._records(), num_nodes=16)
        assert len(tr) == 3
        assert tr.duration == 3
        assert tr.total_flits == 6
        assert tr.injection_rate() == pytest.approx(6 / (3 * 16))

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            Trace([TraceRecord(5, 0, 1, 1), TraceRecord(2, 0, 1, 1)], num_nodes=4)

    def test_validates_node_range(self):
        with pytest.raises(ValueError):
            Trace([TraceRecord(0, 0, 99, 1)], num_nodes=16)

    def test_csv_roundtrip(self):
        tr = Trace(self._records(), num_nodes=16)
        again = Trace.from_csv(tr.to_csv(), num_nodes=16)
        assert again.records == tr.records

    def test_csv_rejects_garbage(self):
        with pytest.raises(ValueError):
            Trace.from_csv("a,b\n1,2\n", num_nodes=4)

    def test_empty_trace(self):
        tr = Trace([], num_nodes=4)
        assert tr.duration == 0
        assert tr.injection_rate() == 0.0


class TestCapture:
    def test_openloop_capture_rate(self, mesh4):
        tr = capture_openloop_trace(mesh4, 0.1, cycles=800)
        assert tr.injection_rate() == pytest.approx(0.1, abs=0.02)
        assert all(r.src != r.dst for r in tr)  # uniform random excludes self

    def test_batch_capture_counts_requests_and_replies(self, mesh4):
        tr = capture_batch_trace(mesh4, batch_size=20, max_outstanding=2)
        assert len(tr) == 2 * 20 * 16  # request + reply per operation

    def test_capture_deterministic(self, mesh4):
        a = capture_batch_trace(mesh4, batch_size=10, max_outstanding=1, seed=5)
        b = capture_batch_trace(mesh4, batch_size=10, max_outstanding=1, seed=5)
        assert a.records == b.records


class TestReplay:
    def test_replay_same_config_reproduces_runtime(self, mesh4):
        """Replaying a batch trace on the SAME configuration lands close to
        the original closed-loop runtime (injection times already encode the
        feedback)."""
        batch = BatchSimulator(mesh4, batch_size=40, max_outstanding=1)
        ref = batch.run()
        tr = capture_batch_trace(mesh4, batch_size=40, max_outstanding=1)
        rep = TraceDrivenSimulator(mesh4, tr).run()
        assert rep.completed
        assert rep.runtime == pytest.approx(ref.runtime, rel=0.05)

    def test_replay_misses_closed_loop_slowdown(self, mesh4):
        """The paper's causality point: replaying a tr=1 trace on a tr=8
        network shows only a small latency increase, while the true
        closed-loop slowdown is ~4x."""
        tr = capture_batch_trace(mesh4, batch_size=30, max_outstanding=1)
        slow_cfg = mesh4.with_(router_delay=8)
        replay_ratio = (
            TraceDrivenSimulator(slow_cfg, tr).run().runtime
            / TraceDrivenSimulator(mesh4, tr).run().runtime
        )
        true_ratio = (
            BatchSimulator(slow_cfg, batch_size=30, max_outstanding=1).run().runtime
            / BatchSimulator(mesh4, batch_size=30, max_outstanding=1).run().runtime
        )
        assert replay_ratio < 1.3
        assert true_ratio > 3.0

    def test_replay_latency_rises_with_tr(self, mesh4):
        """Replay does capture *latency* effects — just not runtime ones."""
        tr = capture_openloop_trace(mesh4, 0.1, cycles=600)
        lat1 = TraceDrivenSimulator(mesh4, tr).run().avg_latency
        lat8 = TraceDrivenSimulator(mesh4.with_(router_delay=8), tr).run().avg_latency
        assert lat8 > 2 * lat1

    def test_node_count_mismatch_rejected(self, mesh4):
        tr = Trace([TraceRecord(0, 0, 1, 1)], num_nodes=16)
        with pytest.raises(ValueError):
            TraceDrivenSimulator(NetworkConfig(k=8, n=2), tr)

    def test_incomplete_replay_flagged(self, mesh4):
        # an overload trace replayed with a tiny drain budget
        records = [TraceRecord(0, s, (s + 1) % 16, 4) for s in range(16)] * 10
        records.sort(key=lambda r: r.time)
        tr = Trace(records, num_nodes=16)
        res = TraceDrivenSimulator(mesh4, tr).run(drain_limit=5)
        assert not res.completed
