"""Tests for simulation statistics and record persistence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.analysis import (
    batch_means,
    confidence_interval,
    index_of_dispersion,
    load_records,
    records_from_csv,
    records_to_csv,
    save_records,
    warmup_cutoff,
)
from repro.traffic import Bernoulli, MarkovOnOff


class TestConfidenceInterval:
    def test_basic_properties(self):
        rng = np.random.default_rng(0)
        ci = confidence_interval(rng.normal(10, 2, size=5000))
        assert ci.contains(10.0)
        assert ci.low < ci.mean < ci.high
        assert ci.relative_half_width < 0.02
        assert ci.n == 5000

    def test_confidence_widens_interval(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 1, 1000)
        narrow = confidence_interval(data, confidence=0.90)
        wide = confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_coverage_approximately_nominal(self):
        rng = np.random.default_rng(2)
        hits = sum(
            confidence_interval(rng.normal(5, 1, 200)).contains(5.0)
            for _ in range(300)
        )
        assert hits / 300 == pytest.approx(0.95, abs=0.04)

    def test_overlap(self):
        rng = np.random.default_rng(3)
        a = confidence_interval(rng.normal(0, 1, 500))
        b = confidence_interval(rng.normal(0, 1, 500))
        c = confidence_interval(rng.normal(10, 1, 500))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=0.5)
        # parameter errors raise even when the sample is degenerate
        with pytest.raises(ValueError):
            confidence_interval([], confidence=0.5)

    def test_degenerate_samples_degrade_to_nan(self):
        # The module contract: degenerate *data* never raises (a saturated
        # run's all-NaN latency column is a result, not an error).
        ci = confidence_interval([1.0])
        assert ci.mean == 1.0
        assert np.isnan(ci.half_width)
        assert ci.n == 1
        for sample in ([], [float("nan")] * 5, [float("nan"), float("inf")]):
            ci = confidence_interval(sample)
            assert np.isnan(ci.mean)
            assert np.isnan(ci.half_width)
            assert ci.n == 0

    def test_drops_non_finite(self):
        ci = confidence_interval([1.0, 2.0, float("inf"), 3.0, float("nan")])
        assert ci.n == 3


class TestBatchMeans:
    def test_correlated_series_gets_wider_ci_than_naive(self):
        # an AR(1)-like correlated series
        rng = np.random.default_rng(4)
        x = np.zeros(20000)
        for i in range(1, x.size):
            x[i] = 0.95 * x[i - 1] + rng.normal()
        naive = confidence_interval(x)
        honest = batch_means(x, num_batches=20)
        assert honest.half_width > 2 * naive.half_width

    def test_iid_series_similar_either_way(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, 20000)
        naive = confidence_interval(x)
        bm = batch_means(x, num_batches=20)
        assert bm.half_width == pytest.approx(naive.half_width, rel=0.5)

    def test_validation(self):
        # num_batches and confidence are parameter errors: still raise,
        # even on degenerate data.
        with pytest.raises(ValueError):
            batch_means(np.arange(100), num_batches=1)
        with pytest.raises(ValueError):
            batch_means([], num_batches=2, confidence=0.5)

    def test_short_samples_degrade_to_nan(self):
        # Too few samples for the batch count is a data problem, not a
        # parameter one — degrade to NaN like confidence_interval.
        ci = batch_means(np.arange(10), num_batches=20)
        assert ci.mean == pytest.approx(4.5)
        assert np.isnan(ci.half_width)
        assert ci.n == 10
        ci = batch_means([float("nan")] * 100, num_batches=20)
        assert np.isnan(ci.mean)
        assert np.isnan(ci.half_width)
        assert ci.n == 0


class TestWarmupCutoff:
    def test_detects_transient(self):
        rng = np.random.default_rng(6)
        transient = np.linspace(100, 10, 400)  # decaying start
        steady = rng.normal(10, 1, 4000)
        cut = warmup_cutoff(np.concatenate([transient, steady]))
        assert 150 <= cut <= 900

    def test_no_transient_small_cut(self):
        rng = np.random.default_rng(7)
        cut = warmup_cutoff(rng.normal(5, 1, 4000))
        assert cut < 2000  # capped at max_fraction anyway

    def test_short_series(self):
        assert warmup_cutoff([1.0, 2.0]) == 0

    def test_fine_scan_finds_off_grid_minimum(self):
        # Regression: the coarse pass scans cuts at stride limit//64 (=31
        # for n=4000), so a transient whose end falls between grid points
        # used to be mislocated by up to stride-1 samples.  Exactly cutting
        # the 517-sample spike block is the unique MSER minimum (517 is not
        # a multiple of 31): any shorter cut keeps spike variance, any
        # longer cut only shrinks the sample at steady variance.
        c = 517
        n = 4000
        transient = np.full(c, 1000.0)
        steady = 10.0 + np.tile([1.0, -1.0], n)[: n - c]
        series = np.concatenate([transient, steady])
        cut = warmup_cutoff(series)
        assert cut == c
        # And the result matches an exhaustive scan over every cut.
        limit = n // 2
        scores = [series[k:].var() / (n - k) for k in range(limit + 1)]
        assert cut == int(np.argmin(scores))


class TestIndexOfDispersion:
    def test_bernoulli_near_one(self):
        gen = rng_mod.make_generator(8, "iod")
        proc = Bernoulli(64, 0.1)
        counts = [len(proc.arrivals(gen)) for _ in range(12000)]
        assert index_of_dispersion(counts) == pytest.approx(1.0, abs=0.3)

    def test_bursty_much_greater_than_one(self):
        gen = rng_mod.make_generator(8, "iod2")
        proc = MarkovOnOff.for_average_rate(64, 0.1, burst_length=40)
        counts = [len(proc.arrivals(gen)) for _ in range(12000)]
        assert index_of_dispersion(counts) > 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            index_of_dispersion([1, 2, 3], window=50)
        with pytest.raises(ValueError):
            index_of_dispersion(np.ones(200), window=0)

    def test_sample_variance_regression(self):
        # Regression: sums.var() (ddof=0) biased the ratio low by a factor
        # of (B-1)/B over B windows — with 4 windows a seeded Poisson
        # stream read as IoD ≈ 0.75, i.e. spuriously sub-Poisson.
        rng = np.random.default_rng(9)
        counts = rng.poisson(5.0, size=200)  # 4 windows of 50
        sums = counts.reshape(-1, 50).sum(axis=1).astype(np.float64)
        expected = float(sums.var(ddof=1) / sums.mean())
        biased = float(sums.var(ddof=0) / sums.mean())
        iod = index_of_dispersion(counts)
        assert iod == pytest.approx(expected)
        assert iod > biased  # ddof=1 strictly exceeds ddof=0


class TestRecordPersistence:
    RECORDS = [
        {"topology": "mesh", "tr": 1, "latency": 11.5, "saturated": False},
        {"topology": "torus", "tr": 2, "latency": 19.0, "saturated": True},
    ]

    def test_csv_roundtrip_types(self):
        out = records_from_csv(records_to_csv(self.RECORDS))
        assert out == self.RECORDS

    def test_csv_union_of_keys(self):
        recs = [{"a": 1}, {"b": 2}]
        out = records_from_csv(records_to_csv(recs))
        assert out[0] == {"a": 1, "b": ""}
        assert out[1] == {"a": "", "b": 2}

    def test_empty(self):
        assert records_to_csv([]) == ""
        assert records_from_csv("") == []

    def test_save_load_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        save_records(self.RECORDS, path)
        assert load_records(path) == self.RECORDS

    def test_save_load_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_records(self.RECORDS, path)
        assert load_records(path) == self.RECORDS

    def test_unsupported_suffix(self, tmp_path):
        with pytest.raises(ValueError):
            save_records(self.RECORDS, tmp_path / "sweep.parquet")
        with pytest.raises(ValueError):
            load_records(tmp_path / "sweep.parquet")

    def test_nan_and_inf_cells_roundtrip_as_floats(self):
        recs = [{"x": float("nan"), "y": float("inf"), "z": float("-inf")}]
        out = records_from_csv(records_to_csv(recs))
        assert isinstance(out[0]["x"], float) and out[0]["x"] != out[0]["x"]
        assert out[0]["y"] == float("inf")
        assert out[0]["z"] == float("-inf")

    def test_bool_cells_not_shadowed(self):
        recs = [{"a": True, "b": False}]
        out = records_from_csv(records_to_csv(recs))
        assert out[0]["a"] is True
        assert out[0]["b"] is False

    def test_empty_string_cell_stays_empty_string(self):
        out = records_from_csv(records_to_csv([{"a": "", "b": 1}]))
        assert out[0] == {"a": "", "b": 1}

    def test_mixed_column_roundtrip(self):
        recs = [
            {"v": 1, "note": "ok"},
            {"v": float("nan"), "note": ""},
            {"v": True, "note": "inf"},
            {"v": 2.5, "note": "False"},
        ]
        out = records_from_csv(records_to_csv(recs))
        assert out[0] == recs[0]
        assert out[1]["v"] != out[1]["v"]  # NaN survives as float
        assert out[1]["note"] == ""
        assert out[2]["v"] is True
        # string cells spelling a float/bool are coerced on read: CSV cannot
        # distinguish "inf" the string from inf the float (documented lossiness)
        assert out[2]["note"] == float("inf")
        assert out[3] == {"v": 2.5, "note": False}

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.one_of(
                    st.integers(-1000, 1000),
                    st.booleans(),
                    st.floats(allow_nan=False, width=32),
                ),
                min_size=1,
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_csv_roundtrip_property(self, records):
        out = records_from_csv(records_to_csv(records))
        assert len(out) == len(records)
        for orig, round_tripped in zip(records, out):
            for k, v in orig.items():
                assert round_tripped[k] == v


class TestJsonl:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        from repro.analysis import append_jsonl, read_jsonl

        append_jsonl({"index": 0, "value": 1.5}, path)
        append_jsonl([{"index": 1}, {"index": 2, "nested": {"a": [1, 2]}}], path)
        out = read_jsonl(path)
        assert out == [
            {"index": 0, "value": 1.5},
            {"index": 1},
            {"index": 2, "nested": {"a": [1, 2]}},
        ]

    def test_read_tolerates_truncated_tail_and_blanks(self, tmp_path):
        from repro.analysis import read_jsonl

        path = tmp_path / "journal.jsonl"
        path.write_text('{"index": 0}\n\n{"index": 1}\n{"index": 2, "val')
        assert read_jsonl(path) == [{"index": 0}, {"index": 1}]

    def test_read_missing_file_is_empty(self, tmp_path):
        from repro.analysis import read_jsonl

        assert read_jsonl(tmp_path / "absent.jsonl") == []
