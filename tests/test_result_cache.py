"""Tests for the content-addressed result cache (repro.core.cache).

Covers the ISSUE 5 checklist: hit-after-warm equivalence against a cold
run (sha256 record digests), invalidation on fingerprint change,
corrupt-index tolerance (a truncated tail recovers, like the sweep
journal), the ``REPRO_NO_CACHE=1`` bypass — plus the acceptance-criteria
demonstration that a warm rerun of a representative latency-load grid is
>= 10x faster than cold while bit-identical, recorded BENCH-style.
"""

from __future__ import annotations

import functools
import json
import pathlib
import time

import pytest

from repro.__main__ import _openloop_runner
from repro.analysis.io import read_jsonl, record_digest
from repro.config import NetworkConfig
from repro.core import cache as cache_mod
from repro.core.cache import (
    ResultCache,
    cache_disabled,
    cache_salt,
    code_fingerprint,
    fingerprint,
    point_key,
    provenance,
    resolve_cache,
    runner_spec,
    verify_entries,
)
from repro.core.parallel import run_sweep

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "perf"

#: A small-but-real latency-load grid (fig01 shape): 4x4 mesh, three loads.
GRID_CFG = NetworkConfig(k=4, n=2, seed=5)
GRID_AXES = {"router_delay": (1, 2)}
GRID_EXTRA = {"rate": (0.05, 0.1, 0.2)}
GRID_RUNNER = functools.partial(_openloop_runner, warmup=100, measure=200, drain_limit=2000)


def grid_sweep(cache=None, **kw):
    return run_sweep(
        GRID_CFG, GRID_AXES, GRID_RUNNER, extra_axes=GRID_EXTRA, cache=cache, **kw
    )


class TestFingerprints:
    def test_code_fingerprint_covers_hot_paths(self):
        digests = code_fingerprint()
        assert "config.py" in digests
        assert "rng.py" in digests
        assert "core/engine.py" in digests
        assert "network/router.py" in digests
        # plotting/CLI wiring cannot change a record: deliberately unsalted
        assert not any(p.startswith("analysis/") for p in digests)
        assert "__main__.py" not in digests

    def test_salt_is_stable_and_env_pinnable(self, monkeypatch):
        assert cache_salt() == cache_salt()
        monkeypatch.setenv("REPRO_CACHE_SALT", "pinned")
        assert cache_salt() == "pinned"

    def test_fingerprint_changes_with_payload_and_salt(self):
        a = fingerprint({"x": 1}, salt="s")
        assert a == fingerprint({"x": 1}, salt="s")
        assert a != fingerprint({"x": 2}, salt="s")
        assert a != fingerprint({"x": 1}, salt="t")

    def test_fingerprint_is_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}, salt="s") == fingerprint(
            {"b": 2, "a": 1}, salt="s"
        )

    def test_runner_spec_distinguishes_runners(self):
        def f(cfg):
            return {}

        def g(cfg):
            return {"other": 1}

        assert runner_spec(f) != runner_spec(g)

    def test_runner_spec_partial_and_provenance(self):
        part = functools.partial(_openloop_runner, warmup=10, measure=20, drain_limit=30)
        spec = runner_spec(part)
        dotted, kwargs = provenance(spec)
        assert dotted == "repro.__main__:_openloop_runner"
        assert kwargs == {"warmup": 10, "measure": 20, "drain_limit": 30}
        # outer partial bindings shadow inner ones, like partial.__call__
        outer = functools.partial(part, warmup=99)
        _, merged = provenance(runner_spec(outer))
        assert merged["warmup"] == 99
        # positional partial args are not reconstructible from keywords
        assert provenance(runner_spec(functools.partial(_openloop_runner, 1))) == (None, {})

    def test_point_key_varies_with_config_kwargs_runner(self):
        spec = {"runner": "m:f"}
        base = point_key({"k": 4}, {"rate": 0.1}, spec, salt="s")
        assert base == point_key({"k": 4}, {"rate": 0.1}, spec, salt="s")
        assert base != point_key({"k": 8}, {"rate": 0.1}, spec, salt="s")
        assert base != point_key({"k": 4}, {"rate": 0.2}, spec, salt="s")
        assert base != point_key({"k": 4}, {"rate": 0.1}, {"runner": "m:g"}, salt="s")


class TestResultCacheStore:
    def test_put_get_roundtrip_jsonable(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k1", {"latency": 1.5, "coords": (1, 2), "ok": True})
        rec = cache.get("k1")
        assert rec == {"latency": 1.5, "coords": [1, 2], "ok": True}
        # reopened store sees the same entry (JSONL persisted)
        rec2 = ResultCache(tmp_path / "c").get("k1")
        assert rec2 == rec

    def test_get_returns_private_copy(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"nested": {"a": 1}})
        cache.get("k")["nested"]["a"] = 99
        assert cache.get("k")["nested"]["a"] == 1

    def test_miss_and_hit_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get("nope") is None
        cache.put("k", {"v": 1})
        cache.get("k")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1
        assert cache.stats.bytes_written > 0

    def test_duplicate_key_newest_wins(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        assert len(cache) == 1
        assert ResultCache(tmp_path / "c").get("k") == {"v": 2}

    def test_corrupt_tail_recovers(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        store = cache.store_path
        # simulate a crash mid-append: truncate the last line in half
        text = store.read_text()
        store.write_text(text + '{"key": "k3", "rec')
        reopened = ResultCache(tmp_path / "c")
        assert len(reopened) == 2
        assert reopened.get("k1") == {"v": 1}
        assert reopened.get("k2") == {"v": 2}
        # and writes after recovery still parse cleanly
        reopened.put("k4", {"v": 4})
        assert len(ResultCache(tmp_path / "c")) == 3

    def test_gc_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(10):
            cache.put(f"k{i}", {"v": i, "pad": "x" * 50})
        res = cache.gc(cache.total_bytes // 2)
        assert res.kept + res.dropped == 10
        assert 0 < res.kept < 10
        assert res.bytes_after <= cache.total_bytes
        # survivors are the newest entries
        assert cache.get("k9") == {"v": 9, "pad": "x" * 50}
        assert cache.get("k0") is None
        assert len(ResultCache(tmp_path / "c")) == res.kept

    def test_gc_zero_budget_empties(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"v": 1})
        res = cache.gc(0)
        assert res.kept == 0 and res.dropped == 1
        assert len(cache) == 0 and cache.total_bytes == 0

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "c").gc(-1)

    def test_flush_stats_accumulates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.flush_stats()
        cache.get("k")
        cache.flush_stats()
        totals = cache.cumulative_stats()
        assert totals["hits"] == 2
        assert totals["writes"] == 1
        assert cache.stats.hits == 0  # counters reset after the fold

    def test_corrupt_stats_tolerated(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        (tmp_path / "c" / "stats.json").write_text("{not json")
        assert cache.cumulative_stats() == {}
        cache.get("missing")
        cache.flush_stats()
        assert cache.cumulative_stats()["misses"] == 1

    def test_resolve_cache(self, tmp_path, monkeypatch):
        assert resolve_cache(None) is None
        store = resolve_cache(tmp_path / "c")
        assert isinstance(store, ResultCache)
        assert resolve_cache(store) is store
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_disabled()
        assert resolve_cache(tmp_path / "c") is None


class TestSweepIntegration:
    def test_warm_equals_cold_sha256(self, tmp_path):
        cdir = tmp_path / "cache"
        cold = grid_sweep(cache=cdir)
        warm = grid_sweep(cache=cdir)
        # bit-identical including wall_seconds: hits replay the cold record
        assert record_digest(list(cold)) == record_digest(list(warm))
        assert cold.health.cache_hits == 0
        assert cold.health.cache_misses == len(cold)
        assert warm.health.cache_hits == len(warm)
        assert warm.health.cache_misses == 0
        assert "cache hits" in warm.health.summary()

    def test_cache_off_matches_modulo_wall_seconds(self, tmp_path):
        def strip(records):
            return [{k: v for k, v in r.items() if k != "wall_seconds"} for r in records]

        cold = grid_sweep(cache=tmp_path / "cache")
        warm = grid_sweep(cache=tmp_path / "cache")
        off = grid_sweep(cache=None)
        assert record_digest(strip(cold)) == record_digest(strip(off))
        assert record_digest(strip(warm)) == record_digest(strip(off))

    def test_no_cache_env_bypasses(self, tmp_path, monkeypatch):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        store_size = ResultCache(cdir).total_bytes
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        rec = grid_sweep(cache=cdir)
        assert rec.health.cache_hits == 0 and rec.health.cache_misses == 0
        assert ResultCache(cdir).total_bytes == store_size  # no writes either

    def test_salt_change_invalidates(self, tmp_path, monkeypatch):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        monkeypatch.setenv("REPRO_CACHE_SALT", "a-different-code-version")
        warm = grid_sweep(cache=cdir)
        assert warm.health.cache_hits == 0
        assert warm.health.cache_misses == len(warm)

    def test_failed_points_never_cached(self, tmp_path):
        def runner(cfg, *, rate):
            if rate > 0.1:
                raise RuntimeError("boom")
            return {"latency": 1.0}

        cdir = tmp_path / "cache"
        kw = dict(extra_axes={"rate": (0.05, 0.2)}, cache=cdir)
        first = run_sweep(GRID_CFG, {}, runner, **kw)
        assert first.health.failed == 1
        second = run_sweep(GRID_CFG, {}, runner, **kw)
        # the good point hits; the failed one re-runs (and fails again)
        assert second.health.cache_hits == 1
        assert second.health.cache_misses == 1
        assert second.health.failed == 1
        entries = ResultCache(cdir).entries()
        assert len(entries) == 1
        assert not entries[0]["record"].get("failed")

    def test_journal_sees_cache_hits(self, tmp_path):
        cdir = tmp_path / "cache"
        journal = tmp_path / "sweep.jsonl"
        grid_sweep(cache=cdir)
        warm = grid_sweep(cache=cdir, journal=str(journal))
        entries = [e for e in read_jsonl(journal) if "record" in e]
        assert len(entries) == len(warm)
        by_index = {e["index"]: e["record"] for e in entries}
        assert record_digest([by_index[i] for i in sorted(by_index)]) == record_digest(
            list(warm)
        )

    def test_pool_mode_shares_cache(self, tmp_path):
        cdir = tmp_path / "cache"
        cold = grid_sweep(cache=cdir, n_workers=2)
        warm = grid_sweep(cache=cdir)  # serial warm run against pool-built cache
        assert record_digest(list(cold)) == record_digest(list(warm))
        assert warm.health.cache_hits == len(warm)

    def test_entries_carry_provenance(self, tmp_path):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        entry = ResultCache(cdir).entries()[0]
        assert entry["context"] == "sweep"
        assert entry["runner_spec"]["runner"] == "repro.__main__:_openloop_runner"
        assert entry["runner_kwargs"] == {"warmup": 100, "measure": 200, "drain_limit": 2000}
        assert entry["config"]["k"] == 4
        assert set(entry["coords"]) == {"router_delay", "rate"}


class TestBackendIdentity:
    """A record produced under one network backend must never be keyed,
    hit, or verified as if it came from the other."""

    def test_point_key_differs_across_backends(self):
        import dataclasses

        spec = runner_spec(GRID_RUNNER)
        keys = {
            point_key(
                dataclasses.asdict(GRID_CFG.with_(backend=b)),
                {"rate": 0.1},
                spec,
                salt="s",
            )
            for b in ("object", "vectorized")
        }
        assert len(keys) == 2

    def test_backend_sweeps_store_disjoint_entries(self, tmp_path):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        vec = run_sweep(
            GRID_CFG.with_(backend="vectorized"),
            GRID_AXES,
            GRID_RUNNER,
            extra_axes=GRID_EXTRA,
            cache=cdir,
        )
        # the vectorized sweep missed everywhere despite identical results
        assert vec.health.cache_hits == 0
        cache = ResultCache(cdir)
        backends = sorted(e["config"]["backend"] for e in cache.entries())
        assert backends == ["object"] * len(vec) + ["vectorized"] * len(vec)

    def test_verify_reruns_under_recorded_backend(self, tmp_path):
        cdir = tmp_path / "cache"
        run_sweep(
            GRID_CFG.with_(backend="vectorized"),
            GRID_AXES,
            GRID_RUNNER,
            extra_axes=GRID_EXTRA,
            cache=cdir,
        )
        results = verify_entries(ResultCache(cdir), sample=2, seed=0)
        assert all(r.status == "ok" for r in results)


class TestVerify:
    def test_verify_ok_on_real_entries(self, tmp_path):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        cache = ResultCache(cdir)
        results = verify_entries(cache, sample=2, seed=0)
        assert len(results) == 2
        assert all(r.status == "ok" for r in results)

    def test_verify_sampling_is_deterministic(self, tmp_path):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        cache = ResultCache(cdir)
        a = [r.key for r in verify_entries(cache, sample=3, seed=7)]
        b = [r.key for r in verify_entries(cache, sample=3, seed=7)]
        assert a == b

    def test_verify_detects_tampering(self, tmp_path):
        cdir = tmp_path / "cache"
        grid_sweep(cache=cdir)
        cache = ResultCache(cdir)
        entry = dict(cache.entries()[0])
        record = dict(entry["record"])
        record["latency"] = record["latency"] + 1.0
        cache.put(entry["key"], record, {k: v for k, v in entry.items() if k not in ("key", "record")})
        results = verify_entries(ResultCache(cdir), sample=len(cache), seed=0)
        statuses = {r.key: r.status for r in results}
        assert statuses[entry["key"]] == "mismatch"
        assert sum(1 for s in statuses.values() if s == "mismatch") == 1

    def test_verify_skips_unverifiable_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k", {"v": 1}, {"context": "benchmarks.characterizations"})
        (res,) = verify_entries(cache, sample=1)
        assert res.status == "skipped"

    def test_verify_sample_validation(self, tmp_path):
        with pytest.raises(ValueError):
            verify_entries(ResultCache(tmp_path / "c"), sample=0)

    def test_verify_empty_cache(self, tmp_path):
        assert verify_entries(ResultCache(tmp_path / "c")) == []


class TestWarmSpeedupAcceptance:
    """ISSUE 5 acceptance: warm >= 10x cold on a fig01-style grid, recorded
    BENCH-style so the claim is auditable like every other perf number."""

    def test_warm_rerun_10x_and_bench_record(self, tmp_path):
        cdir = tmp_path / "cache"
        t0 = time.perf_counter()
        cold = grid_sweep(cache=cdir)
        cold_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = grid_sweep(cache=cdir)
        warm_wall = time.perf_counter() - t0
        identical = record_digest(list(cold)) == record_digest(list(warm))
        speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")
        record = {
            "name": "cache_warm_sweep",
            "description": "fig01-style latency-load grid (4x4 mesh, "
            "2 router delays x 3 loads), cold vs warm result cache",
            "points": len(cold),
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "speedup_warm_vs_cold": speedup,
            "byte_identical_records": identical,
        }
        BENCH_DIR.mkdir(parents=True, exist_ok=True)
        with open(BENCH_DIR / "BENCH_cache_warm_sweep.json", "w") as f:
            json.dump(record, f, indent=1, sort_keys=True)
            f.write("\n")
        assert identical
        assert speedup >= 10.0, f"warm rerun only {speedup:.1f}x faster than cold"
