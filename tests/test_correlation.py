"""Tests for the correlation methodology (paper §III-B steps 1-4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.correlation import (
    CorrelationResult,
    ScatterPair,
    batch_vs_openloop,
    correlate,
    normalize_per_group,
    pearson,
)
from repro.core.sweep import product_configs, sweep


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_is_small(self):
        rng = np.random.default_rng(0)
        x = rng.random(500)
        y = rng.random(500)
        assert abs(pearson(x, y)) < 0.15

    def test_drops_non_finite(self):
        r = pearson([1, 2, 3, float("inf")], [2, 4, 6, 8])
        assert r == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson([1], [1])
        with pytest.raises(ValueError):
            pearson([1, float("nan")], [1, 2])

    def test_constant_series_is_nan(self):
        # Regression: zero-variance input used to fabricate r=1.0 (identical
        # constants) or r=0.0 — correlation is undefined there, so NaN.
        assert math.isnan(pearson([1, 1, 1], [1, 1, 1]))
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))
        assert math.isnan(pearson([1, 2, 3], [5, 5, 5]))

    def test_constant_series_surfaces_through_correlate(self):
        # A degenerate scatter must report NaN from the driver too, not a
        # silently perfect correlation.
        res = correlate(
            [1.0, 1.0, 1.0],
            [1.0, 2.0, 3.0],
            keys=[("a",), ("b",), ("c",)],
            groups=[0, 0, 0],
            baselines=[True, False, False],
        )
        assert math.isnan(res.r)
        assert len(res.pairs) == 3


class TestNormalizePerGroup:
    def test_paper_fig5_normalization(self):
        # two m groups, baseline tr=1 in each; values normalize per group
        values = [10, 15, 40, 100, 150, 380]
        groups = [1, 1, 1, 4, 4, 4]
        base = [True, False, False, True, False, False]
        out = normalize_per_group(values, groups, base)
        assert list(out) == [1.0, 1.5, 4.0, 1.0, 1.5, 3.8]

    def test_missing_baseline_raises(self):
        with pytest.raises(ValueError):
            normalize_per_group([1, 2], [1, 2], [True, False])

    def test_duplicate_baseline_raises(self):
        with pytest.raises(ValueError):
            normalize_per_group([1, 2], [1, 1], [True, True])


class TestCorrelate:
    def test_builds_pairs_and_r(self):
        res = correlate(
            [10, 20, 5, 12],
            [100, 210, 50, 115],
            keys=[("a", 1), ("b", 1), ("a", 2), ("b", 2)],
            groups=[1, 1, 2, 2],
            baselines=[True, False, True, False],
        )
        assert isinstance(res, CorrelationResult)
        assert len(res.pairs) == 4
        assert res.r > 0.95
        assert res.pairs[0].x == 1.0 and res.pairs[0].y == 1.0

    def test_filtered_recomputes(self):
        pairs = [
            ScatterPair(("a", m), m, float(m), float(m)) for m in (1, 2, 3, 4)
        ] + [ScatterPair(("bad", 9), 9, 1.0, 9.0)]
        full = CorrelationResult(tuple(pairs), 0.5)
        res = full.filtered(lambda p: p.group != 9)
        assert len(res.pairs) == 4
        assert res.r == pytest.approx(1.0)


class TestBatchVsOpenLoop:
    def test_router_delay_study_correlates(self, mesh4):
        """Miniature Fig. 5(a): tr in {1,2}, m in {1,4}: r should be high."""
        configs = [(tr, mesh4.with_(router_delay=tr)) for tr in (1, 2)]
        res = batch_vs_openloop(
            configs,
            m_values=(1, 4),
            batch_size=60,
            openloop_kwargs=dict(warmup=200, measure=400, drain_limit=2000),
        )
        assert len(res.pairs) == 4
        assert res.r > 0.85  # paper reaches 0.995 at b=1000; this is scaled

    def test_worst_case_option(self, mesh4):
        configs = [(tr, mesh4.with_(router_delay=tr)) for tr in (1, 2)]
        res = batch_vs_openloop(
            configs,
            m_values=(1,),
            batch_size=30,
            worst_case=True,
            openloop_kwargs=dict(warmup=150, measure=300, drain_limit=2000),
        )
        assert res.r == pytest.approx(1.0, abs=0.2)


class TestSweep:
    def test_product_configs(self, mesh4):
        pts = product_configs(mesh4, {"router_delay": (1, 2), "vc_buffer_size": (4, 8)})
        assert len(pts) == 4
        assert {p[0]["router_delay"] for p in pts} == {1, 2}
        assert all(isinstance(c, NetworkConfig) for _, c in pts)

    def test_sweep_runs_runner(self, mesh4):
        records = sweep(
            mesh4,
            {"router_delay": (1, 2)},
            lambda cfg: {"tr_seen": cfg.router_delay},
        )
        assert [r["tr_seen"] for r in records] == [1, 2]
        assert all("wall_seconds" in r for r in records)

    def test_sweep_extra_axes(self, mesh4):
        records = sweep(
            mesh4,
            {"router_delay": (1, 2)},
            lambda cfg, m: {"product": cfg.router_delay * m},
            extra_axes={"m": (1, 4)},
        )
        assert len(records) == 4
        assert {r["product"] for r in records} == {1, 4, 2, 8}
