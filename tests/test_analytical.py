"""Tests for the analytical surrogate backend (repro.analytical).

The model is a zero-cycle estimator, so most tests are closed-form checks
against the simulator's own analytic formulas; the correlation-ladder tests
at the bottom validate it against the closed-loop batch driver the way the
paper validates each methodology against the next more faithful one.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analytical import (
    DEFAULT_CAPACITY_FACTOR,
    AnalyticalModel,
    analytical_vs_batch,
    estimate,
    estimate_curve,
    sweep_record,
)
from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator
from repro.network.base import BackendUnsupported
from repro.network.factory import build_network


class TestZeroLoad:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=8, n=2),
            dict(k=4, n=2, topology="torus"),
            dict(k=8, n=1, topology="ring"),
            dict(k=4, n=2, router_delay=3),
            dict(k=4, n=2, packet_size="bimodal"),
        ],
    )
    def test_matches_openloop_analytic_formula(self, kwargs):
        # analytic_zero_load_latency is defined for uniform random traffic;
        # the model must reproduce it exactly on that pattern.
        cfg = NetworkConfig(**kwargs)
        model = AnalyticalModel(cfg)
        sim = OpenLoopSimulator(cfg)
        est = model.estimate(1e-6)
        assert est.zero_load_latency == pytest.approx(
            sim.analytic_zero_load_latency()
        )
        # at (numerically) zero load, latency is the zero-load latency
        assert est.avg_latency == pytest.approx(est.zero_load_latency, rel=1e-3)

    def test_transpose_hops_are_pattern_aware(self):
        # Unlike the simulator's uniform-only formula, the model walks the
        # actual traffic matrix: on a k x k mesh transpose packets travel
        # 2|x - y| hops (fixed points bypass the network at 0 hops), so the
        # mean is 4 * sum_d d*(k-d) / k^2.
        k = 4
        model = AnalyticalModel(NetworkConfig(k=k, n=2, traffic="transpose"))
        expected = 4.0 * sum(d * (k - d) for d in range(1, k)) / (k * k)
        est = model.estimate(1e-6)
        assert est.avg_hops == pytest.approx(expected)
        # T0 = path delay (H * link) + H * tr + tr + serialization
        assert est.zero_load_latency == pytest.approx(expected * 2 + 1)


class TestCurveShape:
    def test_latency_monotone_and_diverges_at_saturation(self):
        model = AnalyticalModel(NetworkConfig(k=8, n=2))
        rates = np.linspace(0.02, 1.0, 50)
        curve = model.curve(rates)
        lat = [e.avg_latency for e in curve]
        assert all(b >= a for a, b in zip(lat, lat[1:]))
        for e in curve:
            assert e.saturated == (e.injection_rate >= model.saturation_rate)
            assert math.isinf(e.avg_latency) == e.saturated
            # throughput never exceeds the saturation bound
            assert e.throughput <= model.saturation_rate + 1e-12

    def test_mesh_saturation_near_measured_knee(self):
        # The paper's 8x8 mesh saturates around 0.42 flits/cycle/node;
        # capacity_factor=0.85 over the theoretical 0.49 bound lands there.
        model = AnalyticalModel(NetworkConfig(k=8, n=2))
        assert model.saturation_rate == pytest.approx(0.418, abs=0.01)

    def test_torus_beats_mesh(self):
        mesh = AnalyticalModel(NetworkConfig(k=8, n=2))
        torus = AnalyticalModel(NetworkConfig(k=8, n=2, topology="torus"))
        assert torus.saturation_rate > mesh.saturation_rate

    def test_capacity_factor_scales_saturation(self):
        cfg = NetworkConfig(k=8, n=2)
        full = AnalyticalModel(cfg, capacity_factor=1.0)
        derated = AnalyticalModel(cfg, capacity_factor=0.5)
        assert derated.saturation_rate == pytest.approx(
            0.5 * full.saturation_rate
        )
        with pytest.raises(ValueError, match="capacity_factor"):
            AnalyticalModel(cfg, capacity_factor=0.0)

    def test_rate_validation(self):
        model = AnalyticalModel(NetworkConfig(k=4, n=2))
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="rate"):
                model.estimate(bad)


class TestPriorityClasses:
    CFG = NetworkConfig(
        k=8, n=2, classes="user+os:priority=1", arbitration="priority"
    )

    def test_high_priority_waits_less(self):
        model = AnalyticalModel(self.CFG)
        est = model.estimate(0.8 * model.saturation_rate)
        by_name = {c.name: c for c in est.classes}
        assert by_name["os"].avg_latency < by_name["user"].avg_latency
        assert by_name["os"].zero_load_latency == pytest.approx(
            by_name["user"].zero_load_latency
        )

    def test_low_class_saturates_first(self):
        model = AnalyticalModel(self.CFG)
        # scan upward: whenever exactly one class is saturated it must be
        # the low-priority one, and overall saturation reports inf latency
        seen_split = False
        for rate in np.linspace(0.05, 1.0, 40):
            est = model.estimate(float(rate))
            by_name = {c.name: c for c in est.classes}
            if by_name["user"].saturated and not by_name["os"].saturated:
                seen_split = True
                assert math.isinf(est.avg_latency)
                assert est.saturated
        assert seen_split

    def test_fcfs_arbiters_share_one_queue(self):
        cfg = NetworkConfig(k=8, n=2, classes="a+b:priority=3")
        model = AnalyticalModel(cfg)  # round_robin arbitration
        est = model.estimate(0.5 * model.saturation_rate)
        a, b = est.classes
        # same pattern + shared FCFS queue -> identical per-class latency
        assert a.avg_latency == pytest.approx(b.avg_latency)


class TestBackendWiring:
    def test_config_accepts_analytical_backend(self):
        cfg = NetworkConfig(k=4, n=2, backend="analytical")
        assert cfg.backend == "analytical"

    def test_build_network_rejects_analytical(self):
        cfg = NetworkConfig(k=4, n=2, backend="analytical")
        with pytest.raises(BackendUnsupported, match="zero-cycle estimator"):
            build_network(cfg)

    def test_faults_rejected(self):
        cfg = NetworkConfig(k=4, n=2, faults="link:0-1")
        with pytest.raises(BackendUnsupported, match="fault"):
            AnalyticalModel(cfg)

    def test_sweep_record_shape(self):
        model = AnalyticalModel(NetworkConfig(k=4, n=2))
        rec = sweep_record(model, 0.1)
        assert rec["source"] == "analytical"
        assert math.isnan(rec["worst_node"])
        assert rec["saturated"] is False
        assert rec["latency"] > 0
        assert rec["throughput"] == pytest.approx(0.1)

    def test_module_level_conveniences(self):
        cfg = NetworkConfig(k=4, n=2)
        one = estimate(cfg, 0.1)
        curve = estimate_curve(cfg, [0.1, 0.2])
        assert one == curve[0]
        assert curve[1].avg_latency >= curve[0].avg_latency
        assert one.saturation_rate == pytest.approx(
            AnalyticalModel(cfg, capacity_factor=DEFAULT_CAPACITY_FACTOR)
            .saturation_rate
        )


class TestCorrelationLadder:
    """Acceptance: analytical vs closed-loop batch, r >= 0.8 on the
    pre-saturation points of the seeded 8x8 mesh (single and 2-class)."""

    def test_single_class_r(self):
        res = analytical_vs_batch(NetworkConfig(k=8, n=2, seed=7))
        assert len(res.pre_saturation) >= 3
        assert res.r >= 0.8

    def test_two_class_r(self):
        cfg = NetworkConfig(
            k=8, n=2, seed=7,
            classes="user+os:priority=1", arbitration="priority",
        )
        res = analytical_vs_batch(cfg)
        assert len(res.pre_saturation) >= 3
        assert res.r >= 0.8

    def test_near_saturation_rungs_excluded(self):
        # Past the knee the batch machine's achieved load plateaus while
        # latency climbs; those rungs are dropped from r, the paper's own
        # m=16,32 exclusion.
        res = analytical_vs_batch(NetworkConfig(k=8, n=2, seed=7))
        sat = [rung for rung in res.rungs if rung.saturated]
        assert sat, "expected the largest m rungs to be excluded"
        assert max(r.m for r in res.pre_saturation) < min(r.m for r in sat)
