"""Tests for the open-loop measurement harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.core.openloop import OpenLoopSimulator


@pytest.fixture
def sim(mesh4):
    return OpenLoopSimulator(mesh4, warmup=200, measure=400, drain_limit=2500)


class TestRun:
    def test_low_load_latency_near_zero_load(self, sim):
        res = sim.run(0.02)
        assert not res.saturated
        analytic = sim.analytic_zero_load_latency()
        assert res.avg_latency == pytest.approx(analytic, rel=0.15)

    def test_latency_monotonic_in_load(self, sim):
        lats = [sim.run(r).avg_latency for r in (0.05, 0.25, 0.40)]
        assert lats[0] < lats[1] < lats[2]

    def test_throughput_tracks_offered_below_saturation(self, sim):
        res = sim.run(0.2)
        assert res.throughput == pytest.approx(0.2, abs=0.03)

    def test_saturation_reports_infinite_latency(self, mesh8):
        # The 8x8 baseline saturates at ~0.43 (paper §III-B), so 0.9 offered
        # cannot drain: the run must flag saturation and report inf latency.
        sim = OpenLoopSimulator(mesh8, warmup=150, measure=300, drain_limit=600)
        res = sim.run(0.9)
        assert res.saturated
        assert res.avg_latency == float("inf")
        assert res.p99_latency == float("inf")

    def test_per_node_latency_populated(self, sim):
        res = sim.run(0.1)
        assert res.per_node_latency.shape == (16,)
        assert np.isfinite(res.per_node_latency).all()
        assert res.worst_node_latency == pytest.approx(np.nanmax(res.per_node_latency))

    def test_measured_count_matches_rate(self, sim):
        res = sim.run(0.1)
        expected = 0.1 * 16 * 400
        assert res.num_measured == pytest.approx(expected, rel=0.25)

    def test_deterministic_per_seed(self, sim):
        a = sim.run(0.1, seed=42)
        b = sim.run(0.1, seed=42)
        assert a.avg_latency == b.avg_latency
        assert a.num_measured == b.num_measured

    def test_rejects_bad_rate(self, sim):
        with pytest.raises(ValueError):
            sim.run(0.0)
        with pytest.raises(ValueError):
            sim.run(1.5)

    def test_bimodal_rate_accounts_for_packet_size(self, mesh4):
        cfg = mesh4.with_(packet_size="bimodal")
        sim = OpenLoopSimulator(cfg, warmup=200, measure=400, drain_limit=3000)
        res = sim.run(0.2)  # 0.2 flits => 0.08 packets/cycle/node
        assert res.num_measured == pytest.approx(0.08 * 16 * 400, rel=0.25)

    def test_avg_hops_reported(self, sim):
        res = sim.run(0.05)
        # 4x4 mesh uniform average minimal distance = 2*(k-1/ ... ) ~ 2.5
        assert 2.0 < res.avg_hops < 3.0


class TestSweeps:
    def test_sweep_stops_after_saturation(self, mesh8):
        sim = OpenLoopSimulator(mesh8, warmup=150, measure=300, drain_limit=600)
        results = sim.latency_load_sweep([0.05, 0.2, 0.9, 0.95])
        assert len(results) == 3  # 0.9 saturates; 0.95 skipped
        assert results[-1].saturated

    def test_sweep_full_when_requested(self, mesh4):
        sim = OpenLoopSimulator(mesh4, warmup=100, measure=200, drain_limit=400)
        results = sim.latency_load_sweep([0.9, 0.95], stop_after_saturation=False)
        assert len(results) == 2

    def test_zero_load_latency(self, sim):
        zl = sim.zero_load_latency()
        assert zl == pytest.approx(sim.analytic_zero_load_latency(), rel=0.15)

    def test_saturation_throughput_in_plausible_band(self, mesh4):
        sim = OpenLoopSimulator(mesh4, warmup=200, measure=400, drain_limit=2000)
        sat = sim.saturation_throughput(tolerance=0.03)
        # small meshes saturate high: 4x4 DOR uniform random lands ~0.7
        assert 0.5 < sat < 0.9

    def test_analytic_zero_load_scales_with_tr(self, mesh4):
        s1 = OpenLoopSimulator(mesh4)
        s2 = OpenLoopSimulator(mesh4.with_(router_delay=2))
        # exact ratio is (3h+2)/(2h+1); it approaches the paper's 1.5 as
        # the hop count grows (8x8's 14-hop corner routes dominate there)
        h = 2.5  # 4x4 uniform average minimal hops
        ratio = s2.analytic_zero_load_latency() / s1.analytic_zero_load_latency()
        assert ratio == pytest.approx((3 * h + 2) / (2 * h + 1), abs=0.02)
