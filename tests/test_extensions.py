"""Tests for the extension features: hotspot traffic, strict dateline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.config import NetworkConfig
from repro.network import Network
from repro.routing import DOR
from repro.topology import Torus
from repro.traffic import HotSpot, UniformRandom, build_pattern


class TestHotSpot:
    def test_fraction_of_traffic_hits_hotspot(self):
        p = HotSpot(16, hotspots=(3,), fraction=0.3)
        gen = rng_mod.make_generator(1, "h")
        d = np.array([p.dest(0, gen) for _ in range(4000)])
        share = (d == 3).mean()
        assert share == pytest.approx(0.3 + 0.7 / 15, abs=0.04)

    def test_multiple_hotspots(self):
        p = HotSpot(16, hotspots=(1, 2), fraction=1.0)
        gen = rng_mod.make_generator(1, "h")
        d = {p.dest(0, gen) for _ in range(200)}
        assert d == {1, 2}

    def test_zero_fraction_is_uniform(self):
        p = HotSpot(16, fraction=0.0)
        u = UniformRandom(16)
        gen1 = rng_mod.make_generator(1, "h")
        # distribution check: all destinations except src appear
        seen = {p.dest(5, gen1) for _ in range(600)}
        assert 5 not in seen
        assert len(seen) == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            HotSpot(16, hotspots=())
        with pytest.raises(ValueError):
            HotSpot(16, hotspots=(99,))
        with pytest.raises(ValueError):
            HotSpot(16, fraction=1.5)

    def test_registry(self):
        p = build_pattern(NetworkConfig(traffic="hotspot", k=4, n=2))
        assert isinstance(p, HotSpot)

    def test_hotspot_saturates_below_uniform(self):
        """Hotspot traffic is ejection-limited at the hot node: capacity is
        far below uniform random."""
        from repro.core.openloop import OpenLoopSimulator

        cfg = NetworkConfig(k=4, n=2, traffic="hotspot")
        sim = OpenLoopSimulator(cfg, warmup=200, measure=400, drain_limit=2000)
        sat_hot = sim.saturation_throughput(tolerance=0.03)
        uni = OpenLoopSimulator(
            NetworkConfig(k=4, n=2), warmup=200, measure=400, drain_limit=2000
        ).saturation_throughput(tolerance=0.03)
        assert sat_hot < 0.75 * uni


class TestStrictDateline:
    def test_config_accepts_modes(self):
        NetworkConfig(topology="torus", dateline="strict")
        NetworkConfig(topology="torus", dateline="balanced")
        with pytest.raises(ValueError):
            NetworkConfig(dateline="diagonal")

    def test_dor_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DOR(Torus(4, 2), 2, dateline_mode="spiral")

    def test_strict_nonwrapping_stays_class0(self):
        from repro.network.packet import Packet

        t = Torus(8, 2)
        r = DOR(t, 2, dateline_mode="strict")
        pkt = Packet(0, 0, 2, 1, 0)
        assert r.route(0, pkt)[0].vcs == (0,)
        assert r.route(1, pkt)[0].vcs == (0,)

    def test_strict_wrapping_switches_at_crossing(self):
        from repro.network.packet import Packet

        t = Torus(8, 2)
        r = DOR(t, 2, dateline_mode="strict")
        pkt = Packet(0, 6, 1, 1, 0)  # +x through the wrap: 6,7,0,1
        assert r.route(6, pkt)[0].vcs == (0,)  # lands 7, pre-crossing
        assert r.route(7, pkt)[0].vcs == (1,)  # lands 0: crossed
        assert r.route(0, pkt)[0].vcs == (1,)  # stays high class

    @pytest.mark.parametrize("topo", ["torus", "ring"])
    def test_strict_mode_deadlock_free_under_load(self, topo):
        cfg = NetworkConfig(topology=topo, k=4, n=2, dateline="strict")
        net = Network(cfg)
        gen = rng_mod.make_generator(9, "strict")
        pat = UniformRandom(16)
        offered = 0
        for _ in range(600):
            for src in np.nonzero(gen.random(16) < 0.4)[0]:
                src = int(src)
                net.offer(net.make_packet(src, pat.dest(src, gen), 2))
                offered += 1
            net.step()
        for _ in range(60000):
            if net.is_idle():
                break
            net.step()
        assert net.is_idle()
        assert net.total_packets_delivered == offered

    def test_strict_routes_remain_minimal(self):
        cfg = NetworkConfig(topology="torus", k=4, n=2, dateline="strict")
        net = Network(cfg)
        pkt = net.make_packet(0, 15, 1)
        net.offer(pkt)
        for _ in range(200):
            if net.is_idle():
                break
            net.step()
        assert pkt.hops == net.topology.min_hops(0, 15)
