"""Tests for the command-line interface."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.__main__ import _parse_axis, _parse_reply, build_parser, main
from repro.analysis.io import read_jsonl
from repro.core.reply import FixedReply, ImmediateReply, ProbabilisticReply


class TestParseReply:
    def test_immediate(self):
        assert isinstance(_parse_reply("immediate"), ImmediateReply)

    def test_fixed(self):
        m = _parse_reply("fixed:50")
        assert isinstance(m, FixedReply)
        assert m.latency == 50

    def test_probabilistic(self):
        m = _parse_reply("prob:20:300:0.1")
        assert isinstance(m, ProbabilisticReply)
        assert m.mean == pytest.approx(50.0)

    def test_bad_spec(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_reply("zipf:3")


class TestParseAxis:
    def test_int_values(self):
        assert _parse_axis("router-delay=1,2,4") == ("router_delay", (1, 2, 4))

    def test_string_values(self):
        assert _parse_axis("topology=mesh,torus") == ("topology", ("mesh", "torus"))

    def test_bad_spec(self):
        import argparse

        for spec in ("router_delay", "=1,2", "name="):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_axis(spec)


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out

    def test_version_is_real(self):
        import repro

        assert repro.__version__
        assert repro.__version__[0].isdigit()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_openloop_args(self):
        args = build_parser().parse_args(
            ["openloop", "--rate", "0.1", "--topology", "torus", "--num-vcs", "4"]
        )
        assert args.rate == 0.1
        assert args.topology == "torus"

    def test_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["openloop", "--rate", "0.1", "--topology", "fat-tree"])


class TestCommands:
    def test_openloop(self, capsys):
        rc = main(
            [
                "openloop", "--k", "4", "--rate", "0.1",
                "--warmup", "100", "--measure", "200", "--drain", "1000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "saturated=False" in out

    def test_sweep(self, capsys):
        rc = main(
            [
                "sweep", "--k", "4", "--rates", "0.05,0.2",
                "--warmup", "100", "--measure", "200", "--drain", "1000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.05" in out and "0.2" in out

    def test_sweep_with_axis_and_journal_resume(self, capsys, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        argv = [
            "sweep", "--k", "4", "--rates", "0.05,0.2",
            "--warmup", "50", "--measure", "100", "--drain", "500",
            "--axis", "router-delay=1,2", "--journal", str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # one fingerprint-header line plus one line per point
        entries = read_jsonl(journal)
        assert len([e for e in entries if "index" in e]) == 4
        assert "fingerprint" in entries[0].get("sweep", {})
        # drop the last journal line, resume, and get the same table back
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first
        assert len([e for e in read_jsonl(journal) if "index" in e]) == 4

    def test_sweep_resume_without_journal_errors(self, capsys):
        rc = main(["sweep", "--k", "4", "--rates", "0.05", "--resume"])
        assert rc == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_batch(self, capsys):
        rc = main(["batch", "--k", "4", "-b", "20", "-m", "2"])
        assert rc == 0
        assert "completed=True" in capsys.readouterr().out

    def test_batch_with_models(self, capsys):
        rc = main(
            ["batch", "--k", "4", "-b", "15", "-m", "1", "--nar", "0.2",
             "--reply", "fixed:30"]
        )
        assert rc == 0
        assert "completed=True" in capsys.readouterr().out

    def test_barrier(self, capsys):
        rc = main(["batch", "--k", "4", "-b", "20", "--barrier"])
        assert rc == 0
        assert "barrier model" in capsys.readouterr().out

    def test_cmp_ideal(self, capsys):
        rc = main(
            ["cmp", "--benchmark", "fft", "--instructions", "1500", "--ideal"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fft on ideal" in out
        assert "completed=True" in out

    def test_openloop_probes_jsonl(self, capsys, tmp_path):
        """Acceptance: --probes emits valid JSONL readable by analysis.io."""
        out = tmp_path / "probes.jsonl"
        rc = main(
            [
                "openloop", "--k", "4", "--rate", "0.1",
                "--warmup", "100", "--measure", "200", "--drain", "1000",
                "--probes", "all", "--probe-interval", "50",
                "--probe-out", str(out),
            ]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "window records" in stdout
        assert "per_node_ejected" in stdout  # the heatmap rendered
        records = read_jsonl(out)
        assert records
        for rec in records:
            assert rec["window_end"] > rec["window_start"]
            assert "link_util" in rec and "vc_occ_peak" in rec

    def test_batch_probes_jsonl(self, capsys, tmp_path):
        out = tmp_path / "probes.jsonl"
        rc = main(
            [
                "batch", "--k", "4", "-b", "20", "-m", "2",
                "--probes", "channel,stall", "--probe-out", str(out),
            ]
        )
        assert rc == 0
        assert "window records" in capsys.readouterr().out
        records = read_jsonl(out)
        assert records
        assert all("injection_stalls" in rec for rec in records)

    def test_barrier_probes(self, capsys):
        rc = main(
            ["batch", "--k", "4", "-b", "20", "--barrier", "--probes", "inflight"]
        )
        assert rc == 0
        assert "window records" in capsys.readouterr().out

    def test_bad_probe_name_errors(self, capsys):
        rc = main(["openloop", "--k", "4", "--rate", "0.1", "--probes", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown probe" in err

    def test_characterize_single(self, capsys):
        rc = main(
            ["characterize", "--benchmark", "blackscholes", "--instructions", "1500"]
        )
        assert rc == 0
        assert "blackscholes" in capsys.readouterr().out


def _repro_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return env


class TestFaultFlags:
    def test_openloop_with_faults(self, capsys):
        rc = main(
            [
                "openloop", "--k", "4", "--rate", "0.05",
                "--warmup", "100", "--measure", "200", "--drain", "1000",
                "--faults", "links:1", "--watchdog", "5000",
            ]
        )
        assert rc == 0
        assert "avg latency" in capsys.readouterr().out

    def test_openloop_check_invariants(self, capsys):
        rc = main(
            [
                "openloop", "--k", "4", "--rate", "0.05",
                "--warmup", "50", "--measure", "100", "--drain", "500",
                "--faults", "link:0>1", "--check-invariants",
            ]
        )
        assert rc == 0

    def test_sweep_health_summary(self, capsys):
        rc = main(
            [
                "sweep", "--k", "4", "--rates", "0.05",
                "--warmup", "50", "--measure", "100", "--drain", "500",
            ]
        )
        assert rc == 0
        assert "health: 1/1 ok" in capsys.readouterr().err

    def test_bad_fault_spec_exits_2(self, capsys):
        rc = main(["openloop", "--k", "4", "--rate", "0.1", "--faults", "bogus"])
        assert rc == 2
        assert "bad fault clause" in capsys.readouterr().err

    def test_faults_rejected_on_ideal_topology(self, capsys):
        from repro.config import NetworkConfig

        with pytest.raises(ValueError, match="ideal"):
            NetworkConfig(topology="ideal", faults="links:1")


class TestExploreCLI:
    """The `repro explore` subcommand (NSGA-II design-space search)."""

    # Quick profile shrunk via --gene overrides: 2x1x1x2x1 = 4 genomes.
    TINY = [
        "explore", "--quick", "--population", "4", "--generations", "1",
        "--gene", "topology=mesh,torus", "--gene", "num-vcs=2",
        "--gene", "vc-buffer-size=2", "--gene", "routing=dor,val",
        "--gene", "arbitration=round_robin",
        "--warmup", "80", "--measure", "160", "--drain", "1600",
    ]

    def test_resume_requires_journal(self, capsys):
        assert main(["explore", "--quick", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_check_requires_quick(self, capsys):
        assert main(["explore", "--check"]) == 2
        assert "--check requires --quick" in capsys.readouterr().err

    def test_bad_gene_exits_2(self, capsys):
        rc = main(["explore", "--quick", "--gene", "topology=hypercube"])
        assert rc == 2
        assert "explore error" in capsys.readouterr().err

    def test_bad_objectives_exit_2(self, capsys):
        rc = main(["explore", "--quick", "--objectives", "latency,power"])
        assert rc == 2
        assert "objectives" in capsys.readouterr().err

    def test_tiny_explore_end_to_end(self, capsys, tmp_path):
        journal = tmp_path / "explore.jsonl"
        out = tmp_path / "out"
        rc = main(
            self.TINY
            + ["--journal", str(journal), "--cache", str(tmp_path / "cache"),
               "--out", str(out)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "latency" in captured.out and "cost" in captured.out
        assert "explore:" in captured.err
        # Journal carries the fingerprint header + one line per genome.
        entries = read_jsonl(journal)
        assert "fingerprint" in entries[0]["sweep"]
        assert entries[0]["sweep"]["explore"]["population"] == 4
        keys = [e["key"] for e in entries[1:]]
        assert keys and len(keys) == len(set(keys))
        # Artifacts: one JSON record per front design, plus the figure.
        front = read_jsonl(out / "explore_front.jsonl")
        assert front and all("objectives" in r for r in front)
        assert "pareto front" in (out / "explore_front.txt").read_text()

    def test_same_seed_same_front_table(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(self.TINY + ["--cache", cache]) == 0
        first = capsys.readouterr().out
        assert main(self.TINY + ["--cache", cache]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestErrorBoundarySubprocess:
    def test_value_error_is_one_line_exit_2(self):
        """Acceptance: a config mistake prints one line and exits 2."""
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "openloop",
                "--k", "4", "--rate", "0.1", "--faults", "link:0?1",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=_repro_env(),
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        err_lines = [l for l in proc.stderr.splitlines() if l.strip()]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error:")


class TestParallelCliSmoke:
    def test_sweep_workers_2_subprocess(self):
        """Exercise the real `python -m repro ... --workers 2` pool path."""
        env = _repro_env()
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "sweep",
                "--k", "4", "--rates", "0.05,0.2",
                "--warmup", "50", "--measure", "100", "--drain", "500",
                "--workers", "2", "--progress",
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "0.05" in proc.stdout and "0.2" in proc.stdout
        assert "latency" in proc.stdout
        assert "[2/2]" in proc.stderr  # progress reached completion


class TestCacheCLI:
    """The `repro cache` subcommand and the sweep `--cache` flag."""

    SWEEP = [
        "sweep", "--k", "4", "--rates", "0.05,0.2",
        "--warmup", "50", "--measure", "100", "--drain", "500",
    ]

    def test_sweep_cache_warm_hits(self, capsys, tmp_path):
        cdir = str(tmp_path / "cache")
        assert main(self.SWEEP + ["--cache", cdir]) == 0
        cold = capsys.readouterr()
        assert "0/2 cache hits" in cold.err
        assert main(self.SWEEP + ["--cache", cdir]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # identical table, replayed from disk
        assert "2/2 cache hits" in warm.err

    def test_sweep_cache_default_dir_from_env(self, capsys, tmp_path, monkeypatch):
        cdir = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cdir))
        assert main(self.SWEEP + ["--cache"]) == 0
        assert (cdir / "store.jsonl").exists()

    def test_stats_verify_gc_cycle(self, capsys, tmp_path):
        cdir = str(tmp_path / "cache")
        main(self.SWEEP + ["--cache", cdir])
        capsys.readouterr()

        assert main(["cache", "stats", "--dir", cdir]) == 0
        out = capsys.readouterr().out
        assert "entries  2" in out
        assert "context  sweep: 2 entries" in out

        assert main(["cache", "verify", "--dir", cdir, "--sample", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count(" ok") == 2
        assert "0 mismatch(es)" in out

        assert main(["cache", "gc", "--dir", cdir, "--max-bytes", "0"]) == 0
        assert "dropped 2" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", cdir]) == 0
        assert "entries  0" in capsys.readouterr().out

    def test_verify_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "verify", "--dir", str(tmp_path / "c")]) == 0
        assert "nothing to verify" in capsys.readouterr().out

    def test_verify_detects_mismatch_exit_1(self, capsys, tmp_path):
        from repro.core.cache import ResultCache

        cdir = str(tmp_path / "cache")
        main(self.SWEEP + ["--cache", cdir])
        capsys.readouterr()
        cache = ResultCache(cdir)
        entry = dict(cache.entries()[0])
        record = dict(entry["record"])
        record["latency"] = -1.0
        meta = {k: v for k, v in entry.items() if k not in ("key", "record")}
        cache.put(entry["key"], record, meta)
        assert main(["cache", "verify", "--dir", cdir, "--sample", "2"]) == 1
        assert "mismatch" in capsys.readouterr().out

    def test_gc_requires_max_bytes(self, capsys, tmp_path):
        assert main(["cache", "gc", "--dir", str(tmp_path / "c")]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_no_cache_env_bypasses_cli(self, capsys, tmp_path, monkeypatch):
        cdir = str(tmp_path / "cache")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert main(self.SWEEP + ["--cache", cdir]) == 0
        err = capsys.readouterr().err
        assert "cache hits" not in err
        assert not (tmp_path / "cache" / "store.jsonl").exists()


class TestBenchUpdateBaselines:
    def _fake_scenarios(self, monkeypatch):
        from repro.core import bench

        fake = bench.BenchScenario(
            "fake", "constant scenario", lambda quick: (1000, 0, {"fom": 1.0})
        )
        monkeypatch.setattr(bench, "SCENARIOS", {"fake": fake})
        return bench

    def test_update_baselines_writes_seed_baseline(self, tmp_path, monkeypatch):
        import json

        bench = self._fake_scenarios(monkeypatch)
        rc = bench.run_bench(
            quick=True, out_dir=tmp_path, repeats=1,
            update_baselines=True, echo=lambda s: None,
        )
        assert rc == 0
        data = json.loads((tmp_path / "seed_baseline.json").read_text())
        assert "fake" in data["quick"]
        assert data["quick"]["fake"]["cps"] > 0
        # the baseline records the backend it was measured on
        assert data["quick"]["fake"]["backend"] == "object"
        # a later plain run reads it back as the speedup_vs_seed reference
        bench.run_bench(quick=True, out_dir=tmp_path, repeats=1, echo=lambda s: None)
        record = json.loads((tmp_path / "BENCH_fake.quick.json").read_text())
        assert record["seed_baseline_cps"] == data["quick"]["fake"]["cps"]
        assert record["backend"] == "object"

    def test_baseline_from_other_backend_never_gates(self, tmp_path, monkeypatch):
        """A baseline measured under one backend must not validate (or
        fail) a scenario running under another."""
        import json

        bench = self._fake_scenarios(monkeypatch)
        (tmp_path / "seed_baseline.json").write_text(
            json.dumps({"quick": {"fake": {"cps": 1e9, "backend": "vectorized"}}})
        )
        bench.run_bench(quick=True, out_dir=tmp_path, repeats=1, echo=lambda s: None)
        record = json.loads((tmp_path / "BENCH_fake.quick.json").read_text())
        assert record["seed_baseline_cps"] is None
        assert record["speedup_vs_seed"] is None

    def test_legacy_bare_float_baseline_reads_as_object(self, tmp_path, monkeypatch):
        import json

        bench = self._fake_scenarios(monkeypatch)
        (tmp_path / "seed_baseline.json").write_text(
            json.dumps({"quick": {"fake": 0.001}})
        )
        bench.run_bench(quick=True, out_dir=tmp_path, repeats=1, echo=lambda s: None)
        record = json.loads((tmp_path / "BENCH_fake.quick.json").read_text())
        assert record["seed_baseline_cps"] == 0.001
        assert record["speedup_vs_seed"] > 0

    def test_plain_run_leaves_baselines_alone(self, tmp_path, monkeypatch):
        bench = self._fake_scenarios(monkeypatch)
        bench.run_bench(quick=True, out_dir=tmp_path, repeats=1, echo=lambda s: None)
        assert not (tmp_path / "seed_baseline.json").exists()

    def test_update_preserves_other_modes_and_names(self, tmp_path, monkeypatch):
        import json

        bench = self._fake_scenarios(monkeypatch)
        (tmp_path / "seed_baseline.json").write_text(
            json.dumps({"full": {"other": 123.0}, "quick": {"legacy": 1.0}})
        )
        bench.run_bench(
            quick=True, out_dir=tmp_path, repeats=1,
            update_baselines=True, echo=lambda s: None,
        )
        data = json.loads((tmp_path / "seed_baseline.json").read_text())
        assert data["full"] == {"other": 123.0}
        assert data["quick"]["legacy"] == 1.0
        assert "fake" in data["quick"]

    def test_cli_flag_parses(self):
        args = build_parser().parse_args(["bench", "--quick", "--update-baselines"])
        assert args.update_baselines is True
