"""Full methodology loop: characterize a workload, derive batch-model
parameters, and predict system performance — then check the prediction
against the execution-driven simulator.

This is the paper's SIV-D / SV parameter flow end to end:

1. run the `canneal` surrogate on the *ideal* network to measure its NAR,
   L2 miss rates, and kernel-traffic profile (Tables III/IV),
2. feed those observables into the enhanced batch model
   (NAR injection + probabilistic reply + OS extension),
3. predict the runtime impact of doubling/quadrupling router delay,
4. compare against the real execution-driven runs.

Run:  python examples/cmp_system_study.py   (~1-2 minutes)
"""

from __future__ import annotations

from repro import BatchSimulator
from repro.analysis import format_table
from repro.config import CmpConfig, NetworkConfig
from repro.execdriven import (
    TIMER_INTERVAL_3GHZ,
    CmpSystem,
    canneal,
    characterize,
    derive_batch_params,
)

INSTRUCTIONS = 8000
TRS = (1, 2, 4, 8)


def cmp_config(tr: int) -> CmpConfig:
    return CmpConfig(
        network=NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=tr)
    )


def main() -> None:
    spec = canneal(INSTRUCTIONS)

    # 1. characterize on the ideal network
    ch = characterize(spec, seed=2)
    print(
        f"characterization of {spec.name}: NAR {ch.nar:.3f} "
        f"(user {ch.user_nar:.3f}), user L2 miss {ch.user_l2_miss:.2f}, "
        f"kernel static fraction {ch.static_kernel_fraction:.2f}, "
        f"ideal cycles {ch.ideal_cycles}\n"
    )

    # 2. derive enhanced batch-model parameters
    params = derive_batch_params(ch, timer_rate=1.0 / TIMER_INTERVAL_3GHZ)
    print(
        f"derived batch parameters: nar={params['nar']:.4f}, reply model "
        f"mean {params['reply_model'].mean:.0f} cycles, OS static "
        f"{params['os_model'].static_fraction:.2f}\n"
    )

    # 3/4. predict with baseline + enhanced batch, measure with exec-driven
    rows = []
    base = {}
    for tr in TRS:
        net_cfg = cmp_config(tr).network
        ba = BatchSimulator(net_cfg, batch_size=100, max_outstanding=1).run()
        # in-order cores block on loads: effective MLP ~1, so the enhanced
        # batch model runs at m=1 (see the paper's SII-B2 argument)
        enh = BatchSimulator(
            net_cfg,
            batch_size=100,
            max_outstanding=1,
            nar=params["nar"],
            reply_model=params["reply_model"],
            os_model=params["os_model"],
        ).run()
        sysm = CmpSystem(
            spec, cmp_config(tr), timer_interval=TIMER_INTERVAL_3GHZ, seed=2
        ).run()
        base[tr] = (ba.runtime, enh.runtime, sysm.cycles)
        rows.append(
            [
                tr,
                ba.runtime / base[1][0],
                enh.runtime / base[1][1],
                sysm.cycles / base[1][2],
            ]
        )
    print(
        format_table(
            ["tr", "baseline batch", "enhanced batch", "exec-driven"],
            rows,
            precision=2,
            title="normalized runtime vs router delay",
        )
    )
    ba8, enh8, ex8 = (rows[-1][1], rows[-1][2], rows[-1][3])
    print(
        f"\nat tr=8: baseline batch predicts {ba8:.2f}x, enhanced batch "
        f"{enh8:.2f}x, measured {ex8:.2f}x\n"
        f"enhanced-model error {abs(enh8 - ex8) / ex8 * 100:.0f}% vs "
        f"baseline error {abs(ba8 - ex8) / ex8 * 100:.0f}% "
        "(the paper's SIV-D improvement, reproduced)"
    )


if __name__ == "__main__":
    main()
