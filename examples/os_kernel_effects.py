"""Kernel-traffic effects: why the OS matters for NoC evaluation (paper SV).

Shows, for the blackscholes surrogate:

1. the kernel share of network traffic at 75 MHz (Simics default) vs 3 GHz,
2. the injection-rate timeline with its start/end syscall bursts and
   periodic timer-interrupt peaks,
3. how the OS-extended batch model changes the predicted router-delay
   sensitivity at each clock.

Run:  python examples/os_kernel_effects.py   (~1-2 minutes)
"""

from __future__ import annotations

import numpy as np

from repro import BatchSimulator
from repro.analysis import ascii_plot, format_table
from repro.config import CmpConfig, NetworkConfig
from repro.core.osmodel import OSModel
from repro.execdriven import (
    KERNEL,
    TIMER_INTERVAL_3GHZ,
    TIMER_INTERVAL_75MHZ,
    USER,
    CmpSystem,
    blackscholes,
    characterize,
    derive_batch_params,
)

SPEC = blackscholes(8000)
NET = NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4)


def main() -> None:
    # 1-2: execution-driven kernel traffic at both clocks
    for label, interval in (("75 MHz", TIMER_INTERVAL_75MHZ), ("3 GHz", TIMER_INTERVAL_3GHZ)):
        res = CmpSystem(
            SPEC, CmpConfig(network=NET), timer_interval=interval, seed=2
        ).run()
        t = np.arange(res.timeline.shape[1]) * res.timeline_bucket
        print(
            ascii_plot(
                {
                    "user": list(zip(t, res.timeline[USER] / res.timeline_bucket)),
                    "kernel": list(zip(t, res.timeline[KERNEL] / res.timeline_bucket)),
                },
                width=70,
                height=10,
                title=f"{label}: injection rate over time "
                f"({res.interrupts} timer interrupts, kernel share "
                f"{res.kernel_fraction:.0%})",
                xlabel="cycle",
                ylabel="flits/cycle",
            )
        )
        print()

    # 3: the OS-extended batch model at each clock
    ch = characterize(SPEC, seed=2)
    rows = []
    for label, interval in (("75 MHz", TIMER_INTERVAL_75MHZ), ("3 GHz", TIMER_INTERVAL_3GHZ)):
        params = derive_batch_params(ch, timer_rate=1.0 / interval)
        runtimes = {}
        for tr in (1, 8):
            cfg = NET.with_(router_delay=tr)
            runtimes[tr] = BatchSimulator(
                cfg,
                batch_size=100,
                max_outstanding=1,
                nar=params["nar"],
                reply_model=params["reply_model"],
                os_model=params["os_model"],
            ).run().runtime
        rows.append([label, runtimes[1], runtimes[8], runtimes[8] / runtimes[1]])
    print(
        format_table(
            ["clock", "T(tr=1)", "T(tr=8)", "ratio"],
            rows,
            precision=2,
            title="OS-extended batch model: router-delay sensitivity by clock",
        )
    )
    print(
        "\nthe 75 MHz configuration injects ~40x more timer batches per "
        "cycle, so kernel\ntraffic dominates and system behaviour changes - "
        "the paper's warning about\nevaluating NoCs under the Simics default "
        "clock (SV, Fig. 20-22)."
    )


if __name__ == "__main__":
    main()
