"""The trace-driven pitfall (paper SII): why replay misleads.

Captures a trace from a closed-loop batch run on the baseline network,
then replays it on networks with larger router delays.  The replay's
*latency* rises faithfully, but its *runtime* barely moves — the trace
keeps injecting on the reference schedule, ignoring the feedback a real
(or closed-loop) system would experience.  The true closed-loop runtime
ratio is shown alongside.

Run:  python examples/trace_driven_pitfall.py   (~1 minute)
"""

from __future__ import annotations

from repro import BatchSimulator, NetworkConfig
from repro.analysis import format_table
from repro.core.tracedriven import TraceDrivenSimulator, capture_batch_trace


def main() -> None:
    base = NetworkConfig()  # 8x8 mesh baseline
    print("capturing a closed-loop trace on the tr=1 baseline...")
    trace = capture_batch_trace(base, batch_size=60, max_outstanding=1)
    print(
        f"trace: {len(trace)} packets over {trace.duration} cycles "
        f"({trace.injection_rate():.4f} flits/cycle/node)\n"
    )

    rows = []
    ref_replay = ref_closed = None
    for tr in (1, 2, 4, 8):
        cfg = base.with_(router_delay=tr)
        replay = TraceDrivenSimulator(cfg, trace).run()
        closed = BatchSimulator(cfg, batch_size=60, max_outstanding=1).run()
        if tr == 1:
            ref_replay, ref_closed = replay, closed
        rows.append(
            [
                tr,
                replay.runtime / ref_replay.runtime,
                replay.avg_latency / ref_replay.avg_latency,
                closed.runtime / ref_closed.runtime,
            ]
        )
    print(
        format_table(
            ["tr", "replay runtime", "replay latency", "true closed-loop runtime"],
            rows,
            precision=2,
            title="normalized to tr=1",
        )
    )
    print(
        "\nthe replayed runtime is nearly flat while the closed-loop system "
        "slows ~4x at tr=8:\ntraces ignore message causality (paper SII) - "
        "use them for latency probes, never for\nsystem-performance "
        "conclusions."
    )


if __name__ == "__main__":
    main()
