"""Design-space exploration: the workflow the paper's framework exists for.

An architect wants to pick a 64-node on-chip network.  Full-system
simulation takes days per point (88.5 hours per GEMS run, per the paper);
this script sweeps 12 design points in about a minute with the closed-loop
batch model, because — as the paper shows — its runtime metric tracks
system-level ordering far better than open-loop averages alone.

The sweep crosses topology x routing x router delay, evaluates each point
at a "few outstanding misses" operating point (m = 4, the realistic CMP
regime per SII-B2), and ranks by worst-case runtime.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import os
import pathlib
import tempfile

from repro import BatchSimulator, NetworkConfig
from repro.analysis import format_records, save_records
from repro.core.sweep import sweep

BASE = NetworkConfig(num_vcs=4)  # 8x8, 64 nodes
BATCH = 150
M = 4
# evaluate() is module-level (picklable), so the sweeps can fan out over a
# process pool; each point gets its own derived seed either way.
WORKERS = min(4, os.cpu_count() or 1)


def evaluate(config: NetworkConfig) -> dict:
    res = BatchSimulator(config, batch_size=BATCH, max_outstanding=M).run()
    return {
        "runtime": res.runtime,
        "theta": round(res.throughput, 3),
        "worst_node": int(res.node_finish.max()),
        "spread": round(
            float(res.node_finish.max() - res.node_finish.min()) / res.runtime, 3
        ),
    }


def main() -> None:
    # a journal checkpoints each completed point; rerunning this script with
    # the file intact would resume instead of recomputing (resume=True).
    journal = pathlib.Path(tempfile.gettempdir()) / "noc_design_sweep.jsonl"
    # axis 1: topology (routing fixed to DOR, which all of them support)
    topo_records = sweep(
        BASE,
        {"topology": ("mesh", "torus", "ring")},
        evaluate,
        n_workers=WORKERS,
        journal=journal,
    )
    # axis 2: routing on the mesh, under the adversarial transpose pattern
    routing_records = sweep(
        BASE.with_(traffic="transpose"),
        {"routing": ("dor", "ma", "romm", "val")},
        evaluate,
        n_workers=WORKERS,
    )
    # axis 3: how much router pipeline can we afford?
    tr_records = sweep(BASE, {"router_delay": (1, 2, 4)}, evaluate, n_workers=WORKERS)

    print(format_records(topo_records, ["topology", "runtime", "theta", "spread", "wall_seconds"],
                         precision=2, title="topology (uniform random, m=4)"))
    print()
    print(format_records(routing_records, ["routing", "runtime", "theta", "wall_seconds"],
                         precision=2, title="routing (transpose, m=4)"))
    print()
    print(format_records(tr_records, ["router_delay", "runtime", "theta", "wall_seconds"],
                         precision=2, title="router delay (uniform random, m=4)"))

    best_topo = min(topo_records, key=lambda r: r["runtime"])
    best_alg = min(routing_records, key=lambda r: r["runtime"])
    total = sum(
        r["wall_seconds"] for r in topo_records + routing_records + tr_records
    )
    out = pathlib.Path(tempfile.gettempdir()) / "noc_design_sweep.csv"
    save_records(topo_records + routing_records + tr_records, out)
    print(
        f"\npick: {best_topo['topology']} + {best_alg['routing'].upper()}; "
        f"{len(topo_records) + len(routing_records) + len(tr_records)} design "
        f"points evaluated in {total:.0f}s of simulation\n"
        f"records saved to {out}\n"
        "(the paper's point: an execution-driven sweep of the same space "
        "would take weeks)"
    )


if __name__ == "__main__":
    main()
