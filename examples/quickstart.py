"""Quickstart: measure a network open-loop and closed-loop in ~30 seconds.

Builds the paper's baseline 8x8 mesh (Table I), then:

1. runs one open-loop point and a short latency-load curve,
2. finds the saturation throughput,
3. runs the closed-loop batch model at a few MSHR counts (m),
4. shows how the two methodologies tell the same story (SIII of the paper).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BatchSimulator, NetworkConfig, OpenLoopSimulator
from repro.analysis import ascii_plot, format_table

# the paper's Table I baseline: 8x8 mesh, DOR, 2 VCs x 4-flit buffers,
# 1-cycle routers, uniform random single-flit traffic
config = NetworkConfig()
print(f"network: {config.k}x{config.k} {config.topology}, "
      f"{config.routing.upper()} routing, {config.num_vcs} VCs x "
      f"{config.vc_buffer_size} flits, tr={config.router_delay}\n")

# ---- open loop -------------------------------------------------------------
sim = OpenLoopSimulator(config, warmup=300, measure=700, drain_limit=4000)

point = sim.run(injection_rate=0.1)
print(f"open loop @ 0.1 flits/cycle/node: "
      f"avg latency {point.avg_latency:.1f} cycles "
      f"(zero-load analytic {sim.analytic_zero_load_latency():.1f}), "
      f"throughput {point.throughput:.3f}")

curve = sim.latency_load_sweep([0.05, 0.15, 0.25, 0.35, 0.41])
print(ascii_plot(
    {"latency": [(r.injection_rate, r.avg_latency) for r in curve]},
    width=50, height=12,
    title="\nlatency vs offered load",
    xlabel="offered load", ylabel="latency",
))

saturation = sim.saturation_throughput(tolerance=0.02)
print(f"\nsaturation throughput: {saturation:.3f} flits/cycle/node "
      f"(paper: ~0.43)\n")

# ---- closed loop (batch model) ----------------------------------------------
rows = []
for m in (1, 4, 16):
    res = BatchSimulator(config, batch_size=200, max_outstanding=m).run()
    rows.append([m, res.runtime, res.normalized_runtime, res.throughput])
print(format_table(
    ["m (MSHRs)", "runtime T", "T/b", "achieved theta"],
    rows, precision=3,
    title="closed-loop batch model (b=200 requests per node)",
))
print("\nnote how achieved throughput at high m approaches the open-loop "
      "saturation\nthroughput - the two methodologies agree (paper SIII).")
