"""Synthetic traffic: spatial patterns and packet-size distributions."""

from .patterns import (
    BitComplement,
    BitReversal,
    HotSpot,
    Neighbor,
    PermutationPattern,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
)
from .process import Bernoulli, InjectionProcess, MarkovOnOff
from .registry import build_pattern, build_sizes
from .sizes import Bimodal, FixedSize, SingleFlit, SizeDistribution

__all__ = [
    "TrafficPattern",
    "PermutationPattern",
    "UniformRandom",
    "Transpose",
    "BitComplement",
    "BitReversal",
    "Neighbor",
    "Tornado",
    "HotSpot",
    "InjectionProcess",
    "Bernoulli",
    "MarkovOnOff",
    "SizeDistribution",
    "SingleFlit",
    "FixedSize",
    "Bimodal",
    "build_pattern",
    "build_sizes",
]
