"""Traffic registries: build patterns / size distributions from config."""

from __future__ import annotations

from ..config import NetworkConfig
from .patterns import (
    BitComplement,
    BitReversal,
    HotSpot,
    Neighbor,
    Tornado,
    TrafficPattern,
    Transpose,
    UniformRandom,
)
from .sizes import Bimodal, SingleFlit, SizeDistribution

__all__ = ["build_pattern", "build_sizes"]

_PATTERNS = {
    "uniform_random": UniformRandom,
    "transpose": Transpose,
    "bit_complement": BitComplement,
    "bit_reversal": BitReversal,
    "neighbor": Neighbor,
    "tornado": Tornado,
    "hotspot": HotSpot,
}


def build_pattern(config: NetworkConfig) -> TrafficPattern:
    """Construct the spatial pattern named by ``config.traffic``."""
    try:
        cls = _PATTERNS[config.traffic]
    except KeyError:
        raise ValueError(f"unknown traffic pattern {config.traffic!r}") from None
    return cls(config.num_nodes)


def build_sizes(config: NetworkConfig) -> SizeDistribution:
    """Construct the packet-size distribution named by ``config.packet_size``."""
    if config.packet_size == "single":
        return SingleFlit()
    if config.packet_size == "bimodal":
        return Bimodal(
            1, config.bimodal_long_size, long_fraction=config.bimodal_long_fraction
        )
    raise ValueError(f"unknown packet_size {config.packet_size!r}")
