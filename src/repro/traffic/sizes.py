"""Packet-size distributions (paper Table I: 1 flit, or bimodal 1/4 flit).

The bimodal mix models a cache-coherent CMP's traffic: short control packets
(requests, acknowledgements) and long data packets (cache lines).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["SizeDistribution", "SingleFlit", "Bimodal", "FixedSize"]


class SizeDistribution(ABC):
    """Draws packet sizes in flits."""

    name: str = "abstract"

    @abstractmethod
    def draw(self, rng: np.random.Generator) -> int:
        """Size in flits of the next packet."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected flits per packet."""


class SingleFlit(SizeDistribution):
    """Every packet is one flit (the paper's default)."""

    name = "single"

    def draw(self, rng: np.random.Generator) -> int:
        return 1

    @property
    def mean(self) -> float:
        return 1.0


class FixedSize(SizeDistribution):
    """Every packet is exactly ``size`` flits."""

    name = "fixed"

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def draw(self, rng: np.random.Generator) -> int:
        return self.size

    @property
    def mean(self) -> float:
        return float(self.size)


class Bimodal(SizeDistribution):
    """Mix of short and long packets (default 1-flit / 4-flit, 50/50)."""

    name = "bimodal"

    def __init__(self, short: int = 1, long: int = 4, long_fraction: float = 0.5):
        if short < 1 or long < short:
            raise ValueError("need 1 <= short <= long")
        if not 0.0 <= long_fraction <= 1.0:
            raise ValueError("long_fraction must be in [0, 1]")
        self.short = short
        self.long = long
        self.long_fraction = long_fraction

    def draw(self, rng: np.random.Generator) -> int:
        return self.long if rng.random() < self.long_fraction else self.short

    @property
    def mean(self) -> float:
        f = self.long_fraction
        return (1.0 - f) * self.short + f * self.long
