"""Temporal injection processes (paper §II-A's "temporal distribution").

Open-loop traffic is defined by spatial distribution, *temporal
distribution*, and message size (§II-A).  The conventional temporal process
is Bernoulli — each node flips an independent coin per cycle — but real
workloads are bursty.  :class:`MarkovOnOff` implements the standard 2-state
burst model: a node alternates between an ON state (injecting at
``on_rate``) and a silent OFF state, with geometric state holding times.
Its average rate is ``on_rate · p_on`` where ``p_on = E[on] / (E[on] +
E[off])``; :meth:`MarkovOnOff.for_average_rate` solves the inverse problem
so burstiness can vary at a fixed offered load.

Processes draw per cycle for all nodes at once (vectorized) and return the
indices of nodes that generate a packet this cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["InjectionProcess", "Bernoulli", "MarkovOnOff"]


class InjectionProcess(ABC):
    """Decides, per cycle, which nodes generate a packet."""

    name: str = "abstract"

    def __init__(self, num_nodes: int, rate: float):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate (packets/cycle/node) must be in [0, 1]")
        self.num_nodes = num_nodes
        self.rate = rate

    @abstractmethod
    def arrivals(self, rng: np.random.Generator) -> np.ndarray:
        """Indices of nodes generating a packet this cycle."""

    def first_arrival_block(
        self, rng: np.random.Generator, limit: int
    ) -> tuple[int, "np.ndarray | None"]:
        """Offset and arrivals of the first non-empty cycle within ``limit``.

        Consumes the RNG stream exactly as ``limit`` (or ``offset + 1``, on a
        hit) successive :meth:`arrivals` calls would, so a caller alternating
        between this and per-cycle draws stays bit-identical to a pure
        per-cycle loop.  Returns ``(offset, arrivals)`` on a hit and
        ``(limit, None)`` when every cycle in the window is empty.

        This generic implementation just loops :meth:`arrivals`; memoryless
        subclasses may vectorize (see :meth:`Bernoulli.first_arrival_block`).
        """
        for offset in range(limit):
            arrivals = self.arrivals(rng)
            if len(arrivals):
                return offset, arrivals
        return limit, None

    @property
    def average_rate(self) -> float:
        """Long-run packets/cycle/node."""
        return self.rate


class Bernoulli(InjectionProcess):
    """Independent coin flip per node per cycle — the open-loop default."""

    name = "bernoulli"

    def arrivals(self, rng: np.random.Generator) -> np.ndarray:
        return np.nonzero(rng.random(self.num_nodes) < self.rate)[0]

    def first_arrival_block(
        self, rng: np.random.Generator, limit: int
    ) -> tuple[int, "np.ndarray | None"]:
        """Vectorized lookahead: draw whole blocks of cycles in one call.

        ``Generator.random(k * n)`` consumes the same doubles, in the same
        order, as ``k`` successive ``random(n)`` calls, so a block draw scans
        ``k`` cycles at once.  When an arrival lands mid-block the generator
        state saved before the block is restored and exactly ``offset + 1``
        cycle-rows are redrawn — the stream position afterwards matches a
        per-cycle loop that stopped on the same hit, bit for bit.  Block
        sizes grow geometrically so short gaps don't pay for large draws.
        """
        n = self.num_nodes
        p = self.rate
        offset = 0
        # Short gaps are common at moderate load: scan the first cycles
        # with plain per-cycle draws (a hit there needs no block draw or
        # state rewind) before escalating to blocks.
        while offset < limit and offset < 2:
            row = rng.random(n)
            hit = np.nonzero(row < p)[0]
            if len(hit):
                return offset, hit
            offset += 1
        block_cycles = 16
        while offset < limit:
            k = min(block_cycles, limit - offset)
            state = rng.bit_generator.state
            block = rng.random(k * n).reshape(k, n)
            hits = (block < p).any(axis=1)
            if hits.any():
                j = int(np.argmax(hits))
                # Rewind and redraw up to the hit so the stream position is
                # exactly where a per-cycle loop would have left it.
                rng.bit_generator.state = state
                rows = rng.random((j + 1) * n)
                row = rows[j * n :]
                return offset + j, np.nonzero(row < p)[0]
            offset += k
            block_cycles = min(block_cycles * 4, 512)
        return limit, None


class MarkovOnOff(InjectionProcess):
    """2-state Markov-modulated Bernoulli process (bursty traffic).

    ``alpha`` = P(OFF→ON) per cycle, ``beta`` = P(ON→OFF) per cycle,
    ``on_rate`` = injection probability while ON.  Mean burst length is
    1/``beta`` cycles; the long-run average rate is
    ``on_rate · alpha / (alpha + beta)``.
    """

    name = "markov_on_off"

    def __init__(
        self,
        num_nodes: int,
        *,
        alpha: float,
        beta: float,
        on_rate: float,
    ):
        for label, v in (("alpha", alpha), ("beta", beta), ("on_rate", on_rate)):
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{label} must be in (0, 1]")
        avg = on_rate * alpha / (alpha + beta)
        super().__init__(num_nodes, avg)
        self.alpha = alpha
        self.beta = beta
        self.on_rate = on_rate
        self._on = np.zeros(num_nodes, dtype=bool)

    @classmethod
    def for_average_rate(
        cls,
        num_nodes: int,
        average_rate: float,
        *,
        burst_length: float = 20.0,
        on_rate: float = 1.0,
    ) -> "MarkovOnOff":
        """Construct a process with a given long-run average rate.

        ``burst_length`` is the mean ON duration in cycles; ``on_rate`` the
        intensity inside a burst.  Must satisfy ``average_rate < on_rate``.
        """
        if not 0.0 < average_rate < on_rate:
            raise ValueError("need 0 < average_rate < on_rate")
        if burst_length < 1.0:
            raise ValueError("burst_length must be >= 1 cycle")
        beta = 1.0 / burst_length
        p_on = average_rate / on_rate
        # p_on = alpha / (alpha + beta)  =>  alpha = beta * p_on / (1 - p_on)
        alpha = beta * p_on / (1.0 - p_on)
        if alpha > 1.0:
            raise ValueError(
                "infeasible: average too close to on_rate for this burst length"
            )
        return cls(num_nodes, alpha=alpha, beta=beta, on_rate=on_rate)

    def arrivals(self, rng: np.random.Generator) -> np.ndarray:
        draws = rng.random(self.num_nodes)
        on = self._on
        # state transitions first, then emission from the (new) state
        turning_on = ~on & (draws < self.alpha)
        turning_off = on & (draws < self.beta)
        on ^= turning_on | turning_off
        emit = rng.random(self.num_nodes) < self.on_rate
        return np.nonzero(on & emit)[0]

    @property
    def p_on(self) -> float:
        """Stationary probability of the ON state."""
        return self.alpha / (self.alpha + self.beta)
