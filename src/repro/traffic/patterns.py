"""Spatial traffic patterns (paper Table I).

A pattern maps a source node to a destination for each generated packet.
Permutation patterns (transpose, bit reversal, bit complement) are fixed
functions of the source; uniform random draws a fresh destination per packet
(excluding the source itself, as is conventional).  Fixed points of a
permutation (e.g. the transpose diagonal) send to themselves — such packets
enter and leave through the local port without using the network, matching
standard network-simulator behaviour.

Bit-based patterns require a power-of-two node count; transpose requires a
square 2D layout (node id = x + k·y).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "Transpose",
    "BitComplement",
    "BitReversal",
    "Neighbor",
    "Tornado",
    "HotSpot",
    "PermutationPattern",
]


class TrafficPattern(ABC):
    """Maps sources to destinations, one packet at a time."""

    name: str = "abstract"

    def __init__(self, num_nodes: int):
        if num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.num_nodes = num_nodes

    @abstractmethod
    def dest(self, src: int, rng: np.random.Generator) -> int:
        """Destination of the next packet from ``src``."""

    def is_permutation(self) -> bool:
        """True if the pattern is a fixed function of the source."""
        return False


class UniformRandom(TrafficPattern):
    """Each packet picks a destination uniformly among the other nodes."""

    name = "uniform_random"

    def dest(self, src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(0, self.num_nodes - 1))
        return d if d < src else d + 1

    def dests(self, src: int, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorized draw of ``count`` destinations for ``src``."""
        d = rng.integers(0, self.num_nodes - 1, size=count)
        return np.where(d < src, d, d + 1)


class PermutationPattern(TrafficPattern):
    """Base for fixed source→destination permutations."""

    def __init__(self, num_nodes: int):
        super().__init__(num_nodes)
        self.table = np.array(
            [self._map(src) for src in range(num_nodes)], dtype=np.int64
        )
        if sorted(self.table.tolist()) != list(range(num_nodes)):
            raise ValueError(f"{self.name} mapping is not a permutation")

    @abstractmethod
    def _map(self, src: int) -> int:
        """The permutation function."""

    def dest(self, src: int, rng: np.random.Generator) -> int:
        return int(self.table[src])

    def is_permutation(self) -> bool:
        return True


def _require_power_of_two(num_nodes: int, name: str) -> int:
    bits = num_nodes.bit_length() - 1
    if 1 << bits != num_nodes:
        raise ValueError(f"{name} requires a power-of-two node count, got {num_nodes}")
    return bits


class Transpose(PermutationPattern):
    """(x, y) → (y, x) on a square 2D layout: worst case for DOR meshes."""

    name = "transpose"

    def __init__(self, num_nodes: int):
        k = int(round(num_nodes**0.5))
        if k * k != num_nodes:
            raise ValueError(f"transpose requires a square node count, got {num_nodes}")
        self.k = k
        super().__init__(num_nodes)

    def _map(self, src: int) -> int:
        x, y = src % self.k, src // self.k
        return y + x * self.k


class BitComplement(PermutationPattern):
    """Destination is the bitwise complement of the source id."""

    name = "bit_complement"

    def __init__(self, num_nodes: int):
        self.bits = _require_power_of_two(num_nodes, self.name)
        super().__init__(num_nodes)

    def _map(self, src: int) -> int:
        return (~src) & (self.num_nodes - 1)


class BitReversal(PermutationPattern):
    """Destination reverses the bit order of the source id."""

    name = "bit_reversal"

    def __init__(self, num_nodes: int):
        self.bits = _require_power_of_two(num_nodes, self.name)
        super().__init__(num_nodes)

    def _map(self, src: int) -> int:
        out = 0
        for b in range(self.bits):
            if src & (1 << b):
                out |= 1 << (self.bits - 1 - b)
        return out


class Neighbor(PermutationPattern):
    """Destination is (src + 1) mod N: maximal locality reference pattern."""

    name = "neighbor"

    def _map(self, src: int) -> int:
        return (src + 1) % self.num_nodes


class Tornado(PermutationPattern):
    """Destination is (src + ceil(N/2) - 1) mod N: adversarial for rings/tori."""

    name = "tornado"

    def _map(self, src: int) -> int:
        return (src + (self.num_nodes + 1) // 2 - 1) % self.num_nodes


class HotSpot(TrafficPattern):
    """Uniform random with a fraction of traffic aimed at hotspot nodes.

    Models shared-structure contention (locks, directories, memory
    controllers): with probability ``fraction`` a packet targets one of the
    ``hotspots``; otherwise it draws uniformly among the other nodes.  Not
    part of the paper's Table I, but a standard extension for stressing
    ejection bandwidth and tree saturation.
    """

    name = "hotspot"

    def __init__(self, num_nodes: int, hotspots=(0,), fraction: float = 0.2):
        super().__init__(num_nodes)
        hotspots = tuple(int(h) for h in hotspots)
        if not hotspots:
            raise ValueError("need at least one hotspot")
        for h in hotspots:
            if not 0 <= h < num_nodes:
                raise ValueError(f"hotspot {h} out of range")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.hotspots = hotspots
        self.fraction = fraction
        self._uniform = UniformRandom(num_nodes)

    def dest(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.fraction:
            return self.hotspots[int(rng.integers(0, len(self.hotspots)))]
        return self._uniform.dest(src, rng)
