"""First-class traffic classes: the registry behind ``NetworkConfig.classes``.

A :class:`TrafficClass` names one priority/weight level of traffic.  The
tuple of classes configured on a :class:`~repro.config.NetworkConfig` is the
*class registry* of a run: traffic generators tag every packet with its
class index, the priority/weighted switch arbiters read per-class priority
and weight from it, and metrics/probes break results down by it.

The default registry is a single class whose behaviour is bit-identical to
the pre-class code: class index 0, priority 0, weight 1, the config's own
traffic pattern, and the full injection rate.  Multi-class behaviour only
engages when more than one class is configured (per-class injection
sub-streams) or a class-aware arbitration is selected.

Spec grammar (CLI ``--classes`` and string configs)::

    classes ::= entry (("+" | ",") entry)*
    entry   ::= name (":" key "=" value)*     keys: priority, weight,
                                              share, pattern
    classes ::= <integer N>                   N classes c0..c{N-1}, c0
                                              highest priority

``"+"`` and ``","`` both separate entries; sweep axes use ``"+"`` because
``","`` already separates axis values (``--axis "classes=hi+lo,hi:share=0.5+lo"``).

This module sits below :mod:`repro.config` in the import graph and must not
import anything from the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isfinite
from typing import Iterable, Optional, Union

__all__ = [
    "TrafficClass",
    "DEFAULT_CLASSES",
    "USER_OS_CLASSES",
    "USER_CLASS",
    "OS_CLASS",
    "parse_classes",
    "format_classes",
    "class_shares",
    "inject_order",
]

#: Index of user (application) traffic in every registry; request/reply
#: models and the closed-loop batch machine treat class 0 as user work.
USER_CLASS = 0
#: Index of OS (kernel) traffic in registries that model it (paper §V).
OS_CLASS = 1

_SEPARATORS = ",+:= \t"


@dataclass(frozen=True)
class TrafficClass:
    """One traffic class of the registry.

    ``priority`` orders classes under strict-priority arbitration (higher
    wins); ``weight`` is the integer service weight under weighted-fair
    arbitration; ``share`` is this class's relative slice of the offered
    injection rate (normalized over the registry); ``pattern`` optionally
    overrides the config's spatial traffic pattern for this class only.
    """

    name: str = "default"
    priority: int = 0
    weight: int = 1
    share: float = 1.0
    pattern: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"class name must be a non-empty string, got {self.name!r}")
        if any(ch in self.name for ch in _SEPARATORS):
            raise ValueError(
                f"class name {self.name!r} may not contain any of {_SEPARATORS!r}"
            )
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ValueError(f"class {self.name!r}: priority must be an int")
        if self.priority < 0:
            raise ValueError(f"class {self.name!r}: priority must be >= 0")
        if not isinstance(self.weight, int) or isinstance(self.weight, bool):
            raise ValueError(f"class {self.name!r}: weight must be an int")
        if self.weight < 1:
            raise ValueError(f"class {self.name!r}: weight must be >= 1")
        share = float(self.share)
        if not isfinite(share) or share <= 0.0:
            raise ValueError(f"class {self.name!r}: share must be finite and > 0")
        object.__setattr__(self, "share", share)


#: The single-class default registry: bit-identical to the pre-class code.
DEFAULT_CLASSES: tuple[TrafficClass, ...] = (TrafficClass(),)

#: The paper's §V kernel-model registry: user traffic (class 0) plus OS
#: traffic (class 1) at higher priority, so strict-priority arbitration and
#: the batch model's OS-preempts-user injection order both fall out of the
#: registry instead of hard-coded constants.
USER_OS_CLASSES: tuple[TrafficClass, ...] = (
    TrafficClass("user"),
    TrafficClass("os", priority=1),
)

ClassesSpec = Union[
    None, int, str, TrafficClass, Iterable[Union[TrafficClass, dict, str]]
]

_ENTRY_KEYS = ("priority", "weight", "share", "pattern")


def _parse_entry(entry: str) -> TrafficClass:
    parts = entry.split(":")
    kwargs: dict = {"name": parts[0].strip()}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _ENTRY_KEYS:
            raise ValueError(
                f"bad class spec {entry!r}: expected name[:key=value]* with "
                f"keys from {_ENTRY_KEYS}"
            )
        value = value.strip()
        if key in ("priority", "weight"):
            kwargs[key] = int(value)
        elif key == "share":
            kwargs[key] = float(value)
        else:
            kwargs[key] = value
    return TrafficClass(**kwargs)


def _numbered(count: int) -> tuple[TrafficClass, ...]:
    if count < 1:
        raise ValueError("class count must be >= 1")
    # c0 gets the highest priority so ``--classes 2`` demonstrates
    # latency separation out of the box.
    return tuple(
        TrafficClass(f"c{i}", priority=count - 1 - i) for i in range(count)
    )


def parse_classes(spec: ClassesSpec) -> tuple[TrafficClass, ...]:
    """Normalize any accepted ``classes=`` spec into a registry tuple.

    Accepts ``None`` (the default single class), an integer count, a spec
    string (grammar above), a single :class:`TrafficClass`, or an iterable
    mixing :class:`TrafficClass` instances, dicts of constructor kwargs, and
    single-entry spec strings.  Raises :class:`ValueError` on anything
    malformed — eagerly, so a bad sweep point fails before simulation.
    """
    if spec is None:
        return DEFAULT_CLASSES
    if isinstance(spec, TrafficClass):
        return (spec,)
    if isinstance(spec, bool):
        raise ValueError(f"bad classes spec {spec!r}")
    if isinstance(spec, int):
        return _numbered(spec)
    if isinstance(spec, str):
        text = spec.strip()
        if not text:
            return DEFAULT_CLASSES
        try:
            return _numbered(int(text))
        except ValueError:
            pass
        entries = [e for e in text.replace("+", ",").split(",") if e.strip()]
        classes = tuple(_parse_entry(e) for e in entries)
    else:
        items = list(spec)
        classes = tuple(
            item
            if isinstance(item, TrafficClass)
            else TrafficClass(**item)
            if isinstance(item, dict)
            else _parse_entry(str(item))
            for item in items
        )
    if not classes:
        raise ValueError("classes must name at least one traffic class")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate class names in {names}")
    return classes


def format_classes(classes: Iterable[TrafficClass]) -> str:
    """Round-trippable spec string for a registry (inverse of parsing)."""
    entries = []
    for c in classes:
        entry = c.name
        if c.priority:
            entry += f":priority={c.priority}"
        if c.weight != 1:
            entry += f":weight={c.weight}"
        if c.share != 1.0:
            entry += f":share={c.share}"
        if c.pattern is not None:
            entry += f":pattern={c.pattern}"
        entries.append(entry)
    return ",".join(entries)


def class_shares(classes: Iterable[TrafficClass]) -> tuple[float, ...]:
    """Per-class fraction of the offered rate (shares normalized to 1)."""
    raw = [c.share for c in classes]
    total = sum(raw)
    return tuple(s / total for s in raw)


def inject_order(classes: Iterable[TrafficClass]) -> tuple[int, ...]:
    """Class indices in injection-preference order: priority desc, index asc.

    The closed-loop batch machine serves a node's pending work in this
    order; for :data:`USER_OS_CLASSES` it reproduces the paper's
    OS-preempts-user rule.
    """
    cls = list(classes)
    return tuple(sorted(range(len(cls)), key=lambda i: (-cls[i].priority, i)))
