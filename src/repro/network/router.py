"""Cycle-level input-queued virtual-channel router.

Pipeline model: a flit arriving at cycle ``t`` is eligible for switch
allocation at ``t + tr`` (``tr`` = the paper's router delay), so the per-hop
cost is ``tr + link_delay`` — which reproduces the paper's observation that
raising tr from 1 to 2/4 scales zero-load latency by exactly 1.5×/2.5× on a
1-cycle-link mesh.

Per cycle, for each input VC whose head flit has cleared the pipeline:

1. **RC** — head flits compute their route candidates once per hop.
2. **VA** — the head flit claims a downstream VC: among candidate
   (port, VC-class) options it takes the free VC with the most credits
   (this is what makes MA adaptive); escape candidates are tried only if no
   adaptive VC is free.  Allocation is non-atomic: a VC whose previous
   packet's tail has departed upstream may be re-claimed while its buffer
   drains, as in Garnet.
3. **SA** — input VCs with an allocated VC and downstream credit (ejection
   needs neither) request the switch; one arbiter per output port
   (round-robin, age-based, or the class-aware priority/weighted family —
   the packet's ``traffic_class`` rides through the VC buffers to here)
   picks winners, under one-flit-per-input-port and
   one-flit-per-output-port crossbar constraints.
4. **ST** — winners traverse: credits decrement, the freed input-buffer slot
   returns a credit upstream, tail flits release the VC.

All state mutation goes through the owning :class:`Network`'s event buckets,
so routers never observe partially-updated same-cycle state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..routing.base import RoutingAlgorithm
from .arbiters import build_arbiter
from .vc import InputVC

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

__all__ = ["Router"]


class Router:
    """One router of the network; owned and stepped by :class:`Network`."""

    __slots__ = (
        "node",
        "network",
        "routing",
        "tr",
        "num_vcs",
        "local_port",
        "num_ports",
        "ivcs",
        "busy",
        "credits",
        "vc_owner",
        "out_channels",
        "arbiters",
        "fault_mask",
        "_reqs",
        "_notify_grant",
    )

    def __init__(
        self,
        node: int,
        network: "Network",
        routing: RoutingAlgorithm,
        *,
        num_vcs: int,
        buf_size: int,
        router_delay: int,
        arbitration: str,
        classes: "tuple | None" = None,
    ):
        topo = network.topology
        self.node = node
        self.network = network
        self.routing = routing
        self.tr = router_delay
        self.num_vcs = num_vcs
        self.local_port = topo.local_port
        self.num_ports = topo.ports_per_router
        nivcs = self.num_ports * num_vcs
        self.ivcs = [
            InputVC(i, i // num_vcs, i % num_vcs) for i in range(nivcs)
        ]
        self.busy: set[int] = set()
        # Per output port: channel (None for missing ports and the ejection
        # port), downstream credits, downstream-VC ownership, arbiter.
        self.out_channels = [
            topo.channel(node, p) if p != self.local_port else None
            for p in range(self.num_ports)
        ]
        self.credits = [
            [buf_size] * num_vcs if self.out_channels[p] is not None else None
            for p in range(self.num_ports)
        ]
        self.vc_owner = [
            [None] * num_vcs if self.out_channels[p] is not None else None
            for p in range(self.num_ports)
        ]
        self.arbiters = [
            build_arbiter(arbitration, nivcs, classes) for _ in range(self.num_ports)
        ]
        # Only the weighted arbiter carries grant-advanced state; skipping
        # the granted() call otherwise keeps the default hot path unchanged.
        self._notify_grant = arbitration == "weighted"
        #: bitmask of currently-faulted output ports (maintained by the
        #: network's FaultState; 0 on a healthy router)
        self.fault_mask = 0
        self._reqs: list[list] = [[] for _ in range(self.num_ports)]

    # -- buffer plumbing (called by Network) --------------------------------
    def enqueue(self, in_port: int, vc: int, packet, fidx: int, arrive: int) -> None:
        """Buffer a flit arriving at ``arrive`` on (in_port, vc)."""
        idx = in_port * self.num_vcs + vc
        self.ivcs[idx].fifo.append((packet, fidx, arrive + self.tr))
        self.busy.add(idx)
        self.network._active_routers.add(self.node)

    def free_space(self, in_port: int, vc: int, buf_size: int) -> int:
        """Free flit slots in the (in_port, vc) buffer (injection-side check)."""
        return buf_size - len(self.ivcs[in_port * self.num_vcs + vc].fifo)

    # -- VC allocation -------------------------------------------------------
    def _try_alloc(self, ivc: InputVC) -> bool:
        """Attempt VC allocation for the routed head flit in ``ivc``."""
        local = self.local_port
        fm = self.fault_mask
        best_port = -1
        best_vc = -1
        best_credit = -1
        for cand in ivc.candidates:
            op = cand.out_port
            if op == local:
                ivc.out_port = local
                ivc.out_vc = -1
                ivc.candidates = None
                return True
            if cand.escape:
                continue  # escape paths tried only in the fallback pass
            if fm and fm >> op & 1:
                continue  # faulted channel: never claim its VCs
            owners = self.vc_owner[op]
            creds = self.credits[op]
            for vc in cand.vcs:
                if owners[vc] is None and creds[vc] > best_credit:
                    best_credit = creds[vc]
                    best_port = op
                    best_vc = vc
        if best_port < 0:
            for cand in ivc.candidates:
                if not cand.escape:
                    continue
                op = cand.out_port
                if fm and fm >> op & 1:
                    continue
                owners = self.vc_owner[op]
                creds = self.credits[op]
                for vc in cand.vcs:
                    if owners[vc] is None and creds[vc] > best_credit:
                        best_credit = creds[vc]
                        best_port = op
                        best_vc = vc
        if best_port < 0:
            return False
        ivc.out_port = best_port
        ivc.out_vc = best_vc
        ivc.candidates = None
        self.vc_owner[best_port][best_vc] = ivc
        return True

    # -- main per-cycle work --------------------------------------------------
    def step(self, now: int) -> None:
        """RC + VA + SA + ST for this router at cycle ``now``."""
        ivcs = self.ivcs
        reqs = self._reqs
        local = self.local_port
        fm = self.fault_mask
        fv = self.network._fault_version
        active_ports = []
        # RC / VA / SA-request gathering.  Scanning all input VCs in index
        # order visits exactly the members of ``self.busy`` ascending (the
        # set tracks non-empty FIFOs) without the per-cycle sort/allocation.
        for idx, ivc in enumerate(ivcs):
            if not ivc.fifo:
                continue
            head = ivc.fifo[0]
            if head[2] > now:
                continue
            if ivc.out_port < 0:
                if ivc.candidates is None or ivc.route_version != fv:
                    # RC: head flits compute their candidates once per hop,
                    # again whenever the fault set changed under them.
                    ivc.candidates = self.routing.route(self.node, head[0])
                    ivc.route_version = fv
                if not self._try_alloc(ivc):
                    continue
            op = ivc.out_port
            if op != local and (
                self.credits[op][ivc.out_vc] <= 0 or (fm and fm >> op & 1)
            ):
                continue
            if not reqs[op]:
                active_ports.append(op)
            reqs[op].append((idx, head[0]))
        if not active_ports:
            return
        # SA arbitration + ST, one winner per output port, one grant per
        # input port per cycle.
        used_inputs = 0  # bitmask over input ports
        num_vcs = self.num_vcs
        notify = self._notify_grant
        for op in active_ports:
            requests = reqs[op]
            while requests:
                winner = (
                    requests[0] if len(requests) == 1 else self.arbiters[op].pick(requests)
                )
                in_port_bit = 1 << (winner[0] // num_vcs)
                if used_inputs & in_port_bit:
                    requests.remove(winner)
                    continue
                used_inputs |= in_port_bit
                self._traverse(winner[0], now)
                if notify:
                    self.arbiters[op].granted(winner[1])
                break
            reqs[op].clear()

    def _traverse(self, idx: int, now: int) -> None:
        """ST: move the head-of-VC flit of input VC ``idx`` out of the router."""
        ivc = self.ivcs[idx]
        pkt, fidx, _ = ivc.fifo.popleft()
        if not ivc.fifo:
            self.busy.discard(idx)
        net = self.network
        in_port = ivc.in_port
        if in_port != self.local_port:
            # The freed buffer slot returns one credit upstream.
            net.send_credit(self.node, in_port, ivc.vc, now)
        op = ivc.out_port
        is_tail = fidx == pkt.size - 1
        if op == self.local_port:
            net.count_ejection(self.node)
            if is_tail:
                pkt.deliver_time = now
                ivc.reset_route()
                net.on_delivered(pkt)
        else:
            ovc = ivc.out_vc
            self.credits[op][ovc] -= 1
            ch = self.out_channels[op]
            if fidx == 0:
                pkt.hops += 1
            net.send_flit(ch, ovc, pkt, fidx, now)
            if is_tail:
                self.vc_owner[op][ovc] = None
                ivc.reset_route()

    # -- introspection ---------------------------------------------------------
    def buffered_flits(self) -> int:
        """Total flits currently buffered in this router."""
        return sum(len(ivc.fifo) for ivc in self.ivcs)
