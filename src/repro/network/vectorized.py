"""Vectorized struct-of-arrays network backend (``backend="vectorized"``).

This module re-implements the cycle-level VC-router network of
:mod:`repro.network.network` as a *struct-of-arrays* (SoA) model: per-router
VC state, credit counters, and every in-flight flit live in preallocated
numpy buffers, and one network-wide pipeline step (route -> VC-allocate ->
switch-arbitrate -> traverse) is computed with vectorized masks instead of
per-flit Python objects.  It satisfies the same :class:`NetworkLike`
protocol, so all drivers, the engine's phase control, probes, and the
active-set / fast-forward scheduling work unchanged.

Equivalence contract
--------------------
The backend is **bit-identical** to the object backend on every
configuration it accepts.  That is possible because, with ``credit_delay >=
1`` (the default), routers are fully decoupled within a cycle: every
cross-router effect (link traversal, credit return) is scheduled at least
one cycle into the future, so the object backend's per-router sequential
scan can be replayed as whole-network array phases without changing any
outcome.  The only sequential couplings *inside* a router — VC allocation
order and switch-arbiter state — are reproduced exactly:

* **VC allocation** commits picks in ivc-index order via prefix rounds:
  all routers pick in parallel against the pre-round state, then each
  router commits the longest prefix of its picks free of duplicate
  (port, vc) claims and recomputes the rest.  A committed claim only
  *removes* options from later ivcs, and removing a non-chosen option never
  changes a strict-``>`` first-max pick, so the result equals the
  sequential scan.
* **Switch arbitration** exploits that arbiters are per *output port*:
  the only cross-port coupling is the used-input-port mask.  Routers whose
  first-round winners already have pairwise distinct input ports (the
  overwhelmingly common case) grant fully vectorized; the rest fall back to
  an exact scalar replay of the object backend's retry loop, including its
  round-robin pointer updates.

Configurations the backend cannot reproduce exactly are rejected at
construction: ``credit_delay == 0`` (couples routers within a cycle) and
fault plans (the fault layer hooks per-object router internals).  Those are
the *fast profiles* of DESIGN.md — currently an empty set, so every
supported config is exact and there is nothing to check statistically.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ..classes import inject_order
from ..config import NetworkConfig
from ..routing.registry import build_routing
from ..topology.mesh import KAryNCube
from ..topology.registry import build_topology
from .base import BackendUnsupported, BaseNetwork
from .packet import Packet

__all__ = ["VectorizedNetwork"]

_I64_MAX = np.iinfo(np.int64).max
_EMPTY_I64 = np.empty(0, dtype=np.int64)


class VectorizedNetwork(BaseNetwork):
    """Numpy struct-of-arrays network, bit-identical to :class:`Network`."""

    def __init__(self, config: NetworkConfig):
        if config.topology == "ideal":
            raise ValueError(
                "the ideal network is contention-free; use IdealNetwork"
            )
        if config.faults is not None:
            raise BackendUnsupported(
                "vectorized",
                "fault injection (config.faults)",
                "the fault layer hooks per-object router internals that the "
                "struct-of-arrays model does not expose",
            )
        if config.credit_delay == 0:
            raise BackendUnsupported(
                "vectorized",
                "credit_delay=0",
                "zero-delay credit return couples routers within a cycle, "
                "which the whole-network array phases cannot replay "
                "bit-exactly (credit_delay >= 1 keeps routers decoupled)",
            )
        self.config = config
        self.topology = build_topology(config)
        if not isinstance(self.topology, KAryNCube):
            raise TypeError(
                "the vectorized backend supports k-ary n-cube topologies only"
            )
        self.routing = build_routing(config, self.topology)
        topo = self.topology
        super().__init__(topo.num_nodes)

        N = topo.num_nodes
        self._ndim = topo.n
        self._k = topo.k
        self._wrap = topo.wrap
        V = self._V = config.num_vcs
        D = self._D = config.vc_buffer_size
        P = self._P = topo.ports_per_router
        L = self._L = topo.local_port
        PV = self._PV = P * V
        NIVC = N * PV
        self._tr = config.router_delay
        self._cd = config.credit_delay
        self._dly = topo.channel_delay

        # -- static topology tables ---------------------------------------
        self._coords = np.array(
            [topo.coords(i) for i in range(N)], dtype=np.int64
        )
        # arr_base[node, out_port]: flat ivc base (dst*PV + in_port*V) the
        # channel lands on; up_base[node, in_port]: flat credit base
        # (upstream_node*PV + upstream_port*V) for returned credits.
        self._arr_base = np.full((N, P), -1, dtype=np.int64)
        self._up_base = np.full((N, P), -1, dtype=np.int64)
        self._chan = [[None] * P for _ in range(N)]
        for ch in topo.channels():
            self._arr_base[ch.src, ch.out_port] = ch.dst * PV + ch.in_port * V
            self._up_base[ch.dst, ch.in_port] = ch.src * PV + ch.out_port * V
            self._chan[ch.src][ch.out_port] = ch

        # -- router state (flat ivc index g = node*P*V + port*V + vc) -----
        self._credits = np.zeros(NIVC, dtype=np.int64)
        cr = self._credits.reshape(N, P, V)
        cr[self._arr_base >= 0, :] = D  # only real channels carry credits
        self._owner = np.full(NIVC, -1, dtype=np.int64)
        self._ptr = np.zeros((N, P), dtype=np.int64)  # round-robin pointers
        self._age = config.arbitration == "age"
        self._used = np.zeros((N, P), dtype=bool)  # SA input-port scoreboard

        # -- traffic classes / class-aware arbitration ---------------------
        # Class-aware arbiters read per-class priority (and weight) from the
        # registry; class indices beyond it clamp to the last class, the
        # same rule the object arbiters apply.
        classes = config.classes
        C = self._C = len(classes)
        self._cls_prio = np.array([c.priority for c in classes], dtype=np.int64)
        self._prio_arb = config.arbitration == "priority"
        self._wfq = config.arbitration == "weighted"
        if self._wfq:
            from math import lcm

            base = lcm(*(c.weight for c in classes))
            self._wstep = np.array(
                [base // c.weight for c in classes], dtype=np.int64
            )
            # Virtual clocks per (router, output port, class) — the exact
            # integer state of one WeightedArbiter per output port.  Clocks
            # advance only after grants are fixed (mirroring granted()), so
            # the cycle's single sort order replays every per-port pick.
            self._wvt = np.zeros((N, P, C), dtype=np.int64)

        # Ring-buffer flit FIFOs, one row per input VC.
        self._f_pkt = np.zeros((NIVC, D), dtype=np.int64)
        self._f_fidx = np.zeros((NIVC, D), dtype=np.int64)
        self._f_ready = np.zeros((NIVC, D), dtype=np.int64)
        self._f_head = np.zeros(NIVC, dtype=np.int64)
        self._f_len = np.zeros(NIVC, dtype=np.int64)
        self._buffered = 0

        # Per-ivc allocated route (matches InputVC.out_port / out_vc).
        self._ivc_port = np.full(NIVC, -1, dtype=np.int64)
        self._ivc_vc = np.full(NIVC, -1, dtype=np.int64)

        # Route cache for the flit at each FIFO front (mirrors the object
        # backend's InputVC.candidates memo): filled by _route, invalidated
        # whenever the front flit pops.  A still-blocked head then re-enters
        # VC allocation each cycle without redoing the coordinate math.
        self._rc_valid = np.zeros(NIVC, dtype=bool)
        self._rc_eject = np.zeros(NIVC, dtype=bool)
        if config.routing == "ma":
            self._rc_ports = np.full((NIVC, topo.n), -1, dtype=np.int64)
            self._rc_esc = np.full(NIVC, -1, dtype=np.int64)
        else:
            self._rc_port = np.full(NIVC, -1, dtype=np.int64)
            self._rc_vlo = np.zeros(NIVC, dtype=np.int64)
            self._rc_vhi = np.zeros(NIVC, dtype=np.int64)

        # -- packet slot SoA ----------------------------------------------
        cap = 256
        self._p_src = np.zeros(cap, dtype=np.int64)
        self._p_dst = np.zeros(cap, dtype=np.int64)
        self._p_size = np.zeros(cap, dtype=np.int64)
        self._p_create = np.zeros(cap, dtype=np.int64)
        self._p_inject = np.zeros(cap, dtype=np.int64)
        self._p_deliver = np.zeros(cap, dtype=np.int64)
        self._p_pid = np.zeros(cap, dtype=np.int64)
        self._p_phase = np.zeros(cap, dtype=np.int64)
        self._p_inter = np.zeros(cap, dtype=np.int64)
        self._p_hops = np.zeros(cap, dtype=np.int64)
        self._p_cls = np.zeros(cap, dtype=np.int64)  # clamped arbitration class
        self._p_obj: list[Optional[Packet]] = [None] * cap
        self._free = list(range(cap - 1, -1, -1))

        # -- source queues -------------------------------------------------
        # Per-class FIFOs per node, drained in descending-priority order
        # (packet-boundary preemption), mirroring Network.src_queues.
        # _qhead caches the slot the priority walk would pick next; it is
        # refreshed on every offer/pop so _inject_all reads it vectorized.
        self._inject_order = inject_order(classes)
        self._queues: list[list[deque]] = [
            [deque() for _ in range(C)] for _ in range(N)
        ]
        self._qhead = np.full(N, -1, dtype=np.int64)  # slot of next pick
        self._inj_slot = np.full(N, -1, dtype=np.int64)  # streaming packet
        self._inj_fidx = np.zeros(N, dtype=np.int64)
        self._inj_vc = np.zeros(N, dtype=np.int64)
        self._active_sources: set[int] = set()
        self._act_arr = np.empty(0, dtype=np.int64)
        self._act_dirty = False

        # -- event buckets (absolute cycle -> arrays) ----------------------
        self._arrq: dict[int, tuple] = {}
        self._crq: dict[int, np.ndarray] = {}

        # -- routing-algorithm constants ----------------------------------
        rt = self.routing.name
        if rt not in ("dor", "val", "romm", "ma"):  # pragma: no cover
            raise ValueError(f"unsupported routing {rt!r} for vectorized backend")
        self._rt = rt
        self._strict = (
            rt == "dor" and getattr(self.routing, "dateline_mode", "") == "strict"
        )
        if rt == "dor" and self._wrap:
            from ..routing.base import vc_range

            c0, c1 = vc_range(0, 2, V), vc_range(1, 2, V)
            self._cls_lo = np.array([c0[0], c1[0]], dtype=np.int64)
            self._cls_hi = np.array([c0[-1] + 1, c1[-1] + 1], dtype=np.int64)
        elif rt in ("val", "romm"):
            from ..routing.base import vc_range

            c0, c1 = vc_range(0, 2, V), vc_range(1, 2, V)
            self._ph_lo = np.array([c0[0], c1[0]], dtype=np.int64)
            self._ph_hi = np.array([c0[-1] + 1, c1[-1] + 1], dtype=np.int64)
        self._arV = np.arange(V, dtype=np.int64)

    # ------------------------------------------------------------------
    # driver API
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue ``packet`` at its source (identical contract to Network)."""
        self.routing.on_inject(packet)
        s = self._alloc_slot()
        self._p_src[s] = packet.src
        self._p_dst[s] = packet.dst
        self._p_size[s] = packet.size
        self._p_create[s] = packet.create_time
        self._p_inject[s] = -1
        self._p_deliver[s] = -1
        self._p_pid[s] = packet.pid
        self._p_phase[s] = packet.phase
        self._p_inter[s] = -1 if packet.intermediate is None else packet.intermediate
        self._p_hops[s] = 0
        c = packet.traffic_class
        c = c if c < self._C else self._C - 1
        self._p_cls[s] = c
        self._p_obj[s] = packet
        self._queues[packet.src][c].append(s)
        self._refresh_qhead(packet.src)
        if packet.src not in self._active_sources:
            self._active_sources.add(packet.src)
            self._act_dirty = True
        self._inflight += 1

    def step(self) -> list[Packet]:
        now = self.now
        self._delivered = []
        creds = self._crq.pop(now, None)
        if creds is not None:
            self._credits[creds] += 1
        arr = self._arrq.pop(now, None)
        if arr is not None:
            ga, slots, fidxs = arr
            pos = (self._f_head[ga] + self._f_len[ga]) % self._D
            self._f_pkt[ga, pos] = slots
            self._f_fidx[ga, pos] = fidxs
            self._f_ready[ga, pos] = now + self._tr
            self._f_len[ga] += 1
            self._buffered += ga.size
        if self._active_sources:
            self._inject_all(now)
        if self._buffered:
            self._router_step(now)
        self.now = now + 1
        return self._delivered

    def next_internal_event_cycle(self) -> Optional[int]:
        t = min(self._arrq) if self._arrq else None
        if self._crq:
            c = min(self._crq)
            t = c if t is None or c < t else t
        return t

    def buffered_flits(self) -> int:
        return self._buffered

    # -- probe support --------------------------------------------------
    def probe_channels(self):
        return self.topology.channels()

    def probe_vc_occupancy(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        occ = self._f_len.reshape(self.num_nodes, self._PV).max(axis=1)
        if out is None:
            return occ
        out[:] = occ
        return out

    # ------------------------------------------------------------------
    # packet slots
    # ------------------------------------------------------------------
    def _refresh_qhead(self, node: int) -> None:
        """Point ``_qhead[node]`` at the first packet in priority order."""
        for cls in self._inject_order:
            q = self._queues[node][cls]
            if q:
                self._qhead[node] = q[0]
                return
        self._qhead[node] = -1

    def _alloc_slot(self) -> int:
        if not self._free:
            self._grow()
        return self._free.pop()

    def _grow(self) -> None:
        old = len(self._p_obj)
        ext = np.zeros(old, dtype=np.int64)
        for name in (
            "_p_src", "_p_dst", "_p_size", "_p_create", "_p_inject",
            "_p_deliver", "_p_pid", "_p_phase", "_p_inter", "_p_hops",
            "_p_cls",
        ):
            setattr(self, name, np.concatenate([getattr(self, name), ext]))
        self._p_obj.extend([None] * old)
        self._free.extend(range(2 * old - 1, old - 1, -1))

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def _sched_credits(self, t: int, idx: np.ndarray) -> None:
        cur = self._crq.get(t)
        self._crq[t] = idx if cur is None else np.concatenate([cur, idx])

    def _sched_arrivals(
        self, t: int, ga: np.ndarray, slots: np.ndarray, fidxs: np.ndarray
    ) -> None:
        cur = self._arrq.get(t)
        if cur is None:
            self._arrq[t] = (ga, slots, fidxs)
        else:  # pragma: no cover - single link delay keeps buckets disjoint
            self._arrq[t] = (
                np.concatenate([cur[0], ga]),
                np.concatenate([cur[1], slots]),
                np.concatenate([cur[2], fidxs]),
            )

    # ------------------------------------------------------------------
    # injection (mirrors Network._inject_all bit for bit)
    # ------------------------------------------------------------------
    def _inject_all(self, now: int) -> None:
        if self._act_dirty:
            self._act_arr = np.fromiter(
                self._active_sources, dtype=np.int64, count=len(self._active_sources)
            )
            self._act_arr.sort()
            self._act_dirty = False
        act = self._act_arr
        V, D, PV, L = self._V, self._D, self._PV, self._L
        empty_nodes: np.ndarray = act[
            (self._inj_slot[act] < 0) & (self._qhead[act] < 0)
        ]
        need = act[(self._inj_slot[act] < 0) & (self._qhead[act] >= 0)]
        if need.size:
            # Head-of-queue VC choice: most free space, strict >, skipping
            # VCs whose newest flit belongs to an unfinished packet.
            gm = (need * PV + L * V)[:, None] + self._arV[None, :]
            lens = self._f_len[gm]
            heads = self._f_head[gm]
            lastpos = (heads + lens - 1) % D
            lslot = self._f_pkt[gm, lastpos]
            lfidx = self._f_fidx[gm, lastpos]
            busy = (lens > 0) & (lfidx != self._p_size[lslot] - 1)
            free = np.where(busy, 0, D - lens)
            best = free.argmax(axis=1)
            got = free[np.arange(need.size), best] > 0
            self.injection_stalls += int(need.size - np.count_nonzero(got))
            ok = need[got]
            self._inj_slot[ok] = self._qhead[ok]
            self._inj_fidx[ok] = 0
            self._inj_vc[ok] = best[got]
        s = act[self._inj_slot[act] >= 0]
        if s.size:
            gl = s * PV + L * V + self._inj_vc[s]
            room = self._f_len[gl] < D
            self.injection_stalls += int(s.size - np.count_nonzero(room))
            s = s[room]
            gl = gl[room]
        if s.size:
            slots = self._inj_slot[s]
            f = self._inj_fidx[s]
            first = f == 0
            if first.any():
                self._p_inject[slots[first]] = now
            pos = (self._f_head[gl] + self._f_len[gl]) % D
            self._f_pkt[gl, pos] = slots
            self._f_fidx[gl, pos] = f
            self._f_ready[gl, pos] = now + self._tr
            self._f_len[gl] += 1
            self._buffered += s.size
            self.flit_injections[s] += 1
            self._inj_fidx[s] = f + 1
            done = (f + 1) == self._p_size[slots]
            for nd, slot in zip(s[done].tolist(), slots[done].tolist()):
                self._queues[nd][self._p_cls[slot]].popleft()
                self._refresh_qhead(nd)
                self._inj_slot[nd] = -1
                if self._qhead[nd] < 0:
                    self._active_sources.discard(nd)
                    self._act_dirty = True
        for nd in empty_nodes.tolist():
            self._active_sources.discard(nd)
            self._act_dirty = True

    # ------------------------------------------------------------------
    # routing (vectorized RC)
    # ------------------------------------------------------------------
    def _dor_scan(self, nodes, targets, want_class, srcs=None):
        """First unaligned dimension's port (and dateline class if asked)."""
        m = nodes.size
        port = np.full(m, -1, dtype=np.int64)
        cls = np.zeros(m, dtype=np.int64)
        undecided = np.ones(m, dtype=bool)
        k = self._k
        coords = self._coords
        for dim in range(self._ndim):
            if not undecided.any():
                break
            a = coords[nodes, dim]
            b = coords[targets, dim]
            if self._wrap:
                fwd = (b - a) % k
                dirn = np.where(a == b, 0, np.where(fwd <= (a - b) % k, 1, -1))
            else:
                dirn = np.sign(b - a)
            take = undecided & (dirn != 0)
            if take.any():
                port = np.where(
                    take, np.where(dirn > 0, 2 * dim, 2 * dim + 1), port
                )
                if want_class:
                    up = dirn > 0
                    landing = np.where(
                        up,
                        np.where(a == k - 1, 0, a + 1),
                        np.where(a == 0, k - 1, a - 1),
                    )
                    if self._strict:
                        sc = coords[srcs, dim]
                        leg = np.where(up, b < sc, b > sc)
                        crossed = leg & np.where(up, landing <= b, landing >= b)
                        c = np.where(crossed, 1, 0)
                    else:
                        c = np.where(np.where(up, b < landing, b > landing), 0, 1)
                    cls = np.where(take, c, cls)
                undecided &= dirn == 0
        return port, cls

    def _route(self, g, nodes, slots) -> None:
        """Route-compute pending head flits into the per-ivc route cache.

        Phase advances (VAL/ROMM/overlay DOR) are applied to the packet SoA
        as a side effect — they are idempotent, so the object backend's
        route-once-per-head contract is preserved whether or not the cache
        was invalidated in between.
        """
        V, PV = self._V, self._PV
        rt = self._rt
        dst = self._p_dst[slots]
        self._rc_valid[g] = True
        if rt == "ma":
            eject = nodes == dst
            n = self._ndim
            coords = self._coords
            pm = np.full((nodes.size, n), -1, dtype=np.int64)
            for dim in range(n):
                a = coords[nodes, dim]
                b = coords[dst, dim]
                dirn = np.sign(b - a)
                pm[:, dim] = np.where(
                    dirn > 0, 2 * dim, np.where(dirn < 0, 2 * dim + 1, -1)
                )
            ep, _ = self._dor_scan(nodes, dst, False)
            self._rc_eject[g] = eject
            self._rc_ports[g] = pm
            self._rc_esc[g] = ep
            return

        if rt in ("val", "romm"):
            inter = self._p_inter[slots]
            phase = self._p_phase[slots]
            adv = (phase == 0) & (nodes == inter)
            if adv.any():
                self._p_phase[slots[adv]] = 1
            ph = np.where(adv, 1, phase)
            target = np.where(ph == 1, dst, inter)
            port, _ = self._dor_scan(nodes, target, False)
            sec = (port < 0) & (ph == 0)
            if sec.any():
                self._p_phase[slots[sec]] = 1
                ph = np.where(sec, 1, ph)
                p2, _ = self._dor_scan(nodes[sec], dst[sec], False)
                port[sec] = p2
            eject = port < 0
            vlo = self._ph_lo[ph]
            vhi = self._ph_hi[ph]
        else:  # dor
            inter = self._p_inter[slots]
            phase = self._p_phase[slots]
            target = np.where((phase == 0) & (inter >= 0), inter, dst)
            adv = (nodes == target) & (phase == 0) & (inter >= 0)
            if adv.any():
                self._p_phase[slots[adv]] = 1
                target = np.where(adv, dst, target)
            eject = nodes == target
            port, cls = self._dor_scan(
                nodes, target, self._wrap, srcs=self._p_src[slots]
            )
            if self._wrap:
                vlo = self._cls_lo[cls]
                vhi = self._cls_hi[cls]
            else:
                vlo = np.zeros(nodes.size, dtype=np.int64)
                vhi = np.full(nodes.size, V, dtype=np.int64)
        self._rc_eject[g] = eject
        self._rc_port[g] = port
        self._rc_vlo[g] = vlo
        self._rc_vhi[g] = vhi

    def _candidates(self, g, nodes):
        """(eject, main_idx, main_valid, esc_idx, esc_valid) matrices from
        the route cache, enumerating (candidate, vc) pairs in the object
        backend's allocation order."""
        V, PV = self._V, self._PV
        eject = self._rc_eject[g]
        if self._rt == "ma":
            port_e = np.repeat(self._rc_ports[g], V - 1, axis=1)
            vc_e = np.tile(np.arange(1, V, dtype=np.int64), self._ndim)
            main_valid = (port_e >= 0) & ~eject[:, None]
            main_idx = np.where(
                main_valid, nodes[:, None] * PV + port_e * V + vc_e[None, :], 0
            )
            ep = self._rc_esc[g]
            esc_valid = (ep >= 0)[:, None] & ~eject[:, None]
            esc_idx = np.where(esc_valid, (nodes * PV + ep * V)[:, None], 0)
            return eject, main_idx, main_valid, esc_idx, esc_valid
        port = self._rc_port[g]
        vcm = self._rc_vlo[g][:, None] + self._arV[None, :]
        main_valid = (
            (vcm < self._rc_vhi[g][:, None]) & ~eject[:, None] & (port >= 0)[:, None]
        )
        main_idx = np.where(
            main_valid, (nodes * PV + port * V)[:, None] + vcm, 0
        )
        return eject, main_idx, main_valid, None, None

    # ------------------------------------------------------------------
    # per-cycle router pipeline
    # ------------------------------------------------------------------
    def _router_step(self, now: int) -> None:
        nonempty = np.flatnonzero(self._f_len)
        ready = self._f_ready[nonempty, self._f_head[nonempty]] <= now
        rg = nonempty[ready]
        if rg.size == 0:
            return
        pend = rg[self._ivc_port[rg] < 0]
        if pend.size:
            self._va(pend)
        self._sa_st(rg, now)

    def _va(self, g: np.ndarray) -> None:
        """Route-compute + VC-allocate, committing in ivc-index order."""
        PV, V, P = self._PV, self._V, self._P
        nodes = g // PV
        fresh = ~self._rc_valid[g]
        if fresh.any():
            gf = g[fresh]
            self._route(gf, nodes[fresh], self._f_pkt[gf, self._f_head[gf]])
        eject, midx, mval, eidx, eval_ = self._candidates(g, nodes)
        ge = g[eject]
        if ge.size:
            self._ivc_port[ge] = self._L
            self._ivc_vc[ge] = -1
        rows = np.flatnonzero(~eject)
        owner, credits = self._owner, self._credits
        while rows.size:
            im = midx[rows]
            sc = np.where(mval[rows] & (owner[im] < 0), credits[im], -1)
            pick = sc.argmax(axis=1)
            ar = np.arange(rows.size)
            ok = sc[ar, pick] >= 0
            key = im[ar, pick]
            if eidx is not None:
                ne = ~ok
                if ne.any():
                    er = rows[ne]
                    ie = eidx[er]
                    sce = np.where(eval_[er] & (owner[ie] < 0), credits[ie], -1)
                    pe = sce.argmax(axis=1)
                    are = np.arange(er.size)
                    key[ne] = ie[are, pe]
                    ok[ne] = sce[are, pe] >= 0
            win = rows[ok]
            if win.size == 0:
                break
            wkey = key[ok]
            wg = g[win]
            order = np.argsort(wkey, kind="stable")
            sk = wkey[order]
            dup = np.flatnonzero(sk[1:] == sk[:-1]) + 1
            if dup.size == 0:
                self._commit_va(wg, wkey)
                break
            # Per conflicted router, commit picks below the first duplicate
            # claim and recompute the rest against the updated owners.
            first_bad = np.full(self.num_nodes, _I64_MAX, dtype=np.int64)
            dup_g = wg[order[dup]]
            np.minimum.at(first_bad, dup_g // PV, dup_g)
            defer = wg >= first_bad[wg // PV]
            self._commit_va(wg[~defer], wkey[~defer])
            rows = win[defer]

    def _commit_va(self, wg: np.ndarray, wkey: np.ndarray) -> None:
        if wg.size == 0:
            return
        self._ivc_port[wg] = (wkey // self._V) % self._P
        self._ivc_vc[wg] = wkey % self._V
        self._owner[wkey] = wg

    def _sa_st(self, rg: np.ndarray, now: int) -> None:
        """Switch-arbitrate ready allocated heads, then traverse winners.

        The object router's per-port retry loop (pick a winner, drop it if
        its input port is already used, repick) has a closed form: picks
        happen in arbitration order — round-robin cyclic order from the
        cycle-start pointer, or the pure key order of the age / priority /
        weighted arbiters — and the grant goes to the first request in that
        order whose input port is free, the round-robin pointer advancing
        on every consulted pick exactly as ``Arbiter.pick`` does.
        Output ports are visited in first-requester order per router, so
        grouping requests per (router, port) and walking groups in
        per-router rank rounds arbitrates every router concurrently with a
        handful of vectorized passes and no per-request Python.
        """
        PV, V, P, L = self._PV, self._V, self._P, self._L
        op = self._ivc_port[rg]
        routed = op >= 0
        rg = rg[routed]
        if rg.size == 0:
            return
        op = op[routed]
        ovc = self._ivc_vc[rg]
        is_ej = op == L
        cred_ok = is_ej.copy()
        ne = np.flatnonzero(~is_ej)
        if ne.size:
            cf = (rg[ne] // PV) * PV + op[ne] * V + ovc[ne]
            cred_ok[ne] = self._credits[cf] > 0
        req = np.flatnonzero(cred_ok)
        if req.size == 0:
            return
        req_g = rg[req]  # ascending: object scan order
        rop = op[req]
        rnode = req_g // PV
        li = req_g % PV
        key = rnode * P + rop
        # Round-robin is the only arbiter whose state mutates *during*
        # arbitration (the pointer advances per consulted pick); the other
        # three are pure functions of cycle-start state, so one lexsort per
        # cycle reproduces every per-port pick sequence exactly: age by
        # (create, pid, ivc), priority by (-prio, create, pid, ivc),
        # weighted by (vt, -prio, create, pid, ivc) with the clocks frozen
        # until grants are fixed (see WeightedArbiter.granted).
        rr = not (self._age or self._prio_arb or self._wfq)
        if rr:
            kr = (li - self._ptr[rnode, rop]) % PV
            order = np.argsort(key * PV + kr)  # (key, kr) pairs are unique
        else:
            hs = self._f_pkt[req_g, self._f_head[req_g]]
            pid = self._p_pid[hs]
            create = self._p_create[hs]
            if self._age:
                order = np.lexsort((li, pid, create, key))
            else:
                negp = -self._cls_prio[self._p_cls[hs]]
                if self._prio_arb:
                    order = np.lexsort((li, pid, create, negp, key))
                else:
                    vt = self._wvt[rnode, rop, self._p_cls[hs]]
                    order = np.lexsort((li, pid, create, negp, vt, key))
        g_s = req_g[order]
        sk = key[order]
        li_s = li[order]
        ip_s = li_s // V
        neq = np.empty(sk.size, dtype=bool)
        neq[0] = True
        np.not_equal(sk[1:], sk[:-1], out=neq[1:])
        starts = np.flatnonzero(neq)
        G = starts.size
        sizes = np.empty(G, dtype=np.int64)
        sizes[:-1] = starts[1:] - starts[:-1]
        sizes[-1] = sk.size - starts[-1]
        # Group rank: the first requester's flat ivc index embeds the router
        # id, so sorting groups by it yields (router, first-requester) order.
        first_g = np.minimum.reduceat(g_s, starts)
        gnode = first_g // PV
        gport = rop[order[starts]]
        gorder = np.argsort(first_g)
        gn = gnode[gorder]
        nb = np.empty(G, dtype=bool)
        nb[0] = True
        np.not_equal(gn[1:], gn[:-1], out=nb[1:])
        # gorder is router-major, so each router's groups form a contiguous
        # run in rank order.  Walk every router's chain concurrently: one
        # active group per router, advancing to the next group on grant or
        # exhaustion, to the next pick on an input-port conflict.
        a_pos = np.flatnonzero(nb)  # current group, as index into gorder
        a_end = np.empty(a_pos.size, dtype=np.int64)
        a_end[:-1] = a_pos[1:]
        a_end[-1] = G
        a_t = np.zeros(a_pos.size, dtype=np.int64)
        used = self._used
        used[:] = False
        ptr = self._ptr
        parts: list[np.ndarray] = []
        while a_pos.size:
            gidx = gorder[a_pos]
            sz = sizes[gidx]
            pos = starts[gidx] + a_t
            ipw = ip_s[pos]
            nd = gnode[gidx]
            free = ~used[nd, ipw]
            if rr:
                # pick() consults (and advances) the pointer whenever two
                # or more requests remain in the group
                consult = sz - a_t >= 2
                ptr[nd[consult], gport[gidx[consult]]] = (
                    li_s[pos[consult]] + 1
                ) % PV
            used[nd[free], ipw[free]] = True
            parts.append(g_s[pos[free]])
            nxt = free | (a_t + 1 >= sz)  # grant or exhausted: next group
            a_pos += nxt
            a_t = np.where(nxt, 0, a_t + 1)
            live = a_pos < a_end
            if not live.all():
                a_pos = a_pos[live]
                a_t = a_t[live]
                a_end = a_end[live]
        grants = np.concatenate(parts) if parts else _EMPTY_I64
        if grants.size:
            grants.sort()
            if self._wfq:
                # Advance the granted classes' virtual clocks exactly as
                # Router.step calls granted() once per traversal (ejection
                # grants included).  Read heads before _st pops them.
                gh = self._f_pkt[grants, self._f_head[grants]]
                gc = self._p_cls[gh]
                np.add.at(
                    self._wvt,
                    (grants // PV, self._ivc_port[grants], gc),
                    self._wstep[gc],
                )
            self._st(grants, now)

    def _st(self, g: np.ndarray, now: int) -> None:
        """Switch traversal for this cycle's grants (ascending ivc order)."""
        PV, V, D, L = self._PV, self._V, self._D, self._L
        node = g // PV
        li = g % PV
        ip = li // V
        ivcvc = li % V
        h = self._f_head[g]
        slot = self._f_pkt[g, h]
        fidx = self._f_fidx[g, h]
        self._f_head[g] = (h + 1) % D
        self._f_len[g] -= 1
        self._buffered -= g.size
        self._rc_valid[g] = False  # the front flit changed; routes are stale
        ub = self._up_base[node, ip]
        um = ub >= 0  # non-local input: return the buffer credit upstream
        if um.any():
            self._sched_credits(now + self._cd, ub[um] + ivcvc[um])
        opp = self._ivc_port[g]
        tail = fidx == self._p_size[slot] - 1
        ej = opp == L
        if ej.any():
            en = node[ej]
            self.flit_ejections[en] += 1
            self.total_flits_delivered += int(np.count_nonzero(ej))
            done = ej & tail
            if done.any():
                dg = g[done]
                self._ivc_port[dg] = -1
                self._ivc_vc[dg] = -1
                self._finalize(self._f_pkt[dg, h[done]], now)
        fwd = ~ej
        if fwd.any():
            gf = g[fwd]
            nf = node[fwd]
            pf = opp[fwd]
            sf = slot[fwd]
            ff = fidx[fwd]
            vf = self._ivc_vc[gf]
            cf = nf * PV + pf * V + vf
            self._credits[cf] -= 1
            first = ff == 0
            if first.any():
                self._p_hops[sf[first]] += 1
            self._sched_arrivals(
                now + self._dly, self._arr_base[nf, pf] + vf, sf, ff
            )
            self.total_flit_traversals += int(gf.size)
            hook = self._flit_hook
            if hook is not None:
                chan, pobj = self._chan, self._p_obj
                for i in range(gf.size):
                    hook(
                        chan[int(nf[i])][int(pf[i])],
                        int(vf[i]),
                        pobj[int(sf[i])],
                        int(ff[i]),
                        now,
                    )
            tl = tail[fwd]
            if tl.any():
                self._owner[cf[tl]] = -1
                self._ivc_port[gf[tl]] = -1
                self._ivc_vc[gf[tl]] = -1

    def _finalize(self, slots: np.ndarray, now: int) -> None:
        """Write SoA results back into the Packet objects and deliver them.

        ``slots`` arrive in ascending node order — at most one ejection per
        router per cycle, so this matches the object backend's sorted
        active-router scan."""
        self._p_deliver[slots] = now
        for s in slots.tolist():
            pkt = self._p_obj[s]
            pkt.inject_time = int(self._p_inject[s])
            pkt.deliver_time = now
            pkt.hops = int(self._p_hops[s])
            pkt.phase = int(self._p_phase[s])
            self._p_obj[s] = None
            self._free.append(s)
            self._delivered.append(pkt)
        self.total_packets_delivered += slots.size
        self._inflight -= slots.size
