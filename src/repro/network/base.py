"""The driver-facing network contract shared by every network backend.

Every workload driver in this repo — open-loop, closed-loop batch, barrier,
trace-driven, and the execution-driven CMP — talks to the network through
the same four calls (``make_packet`` / ``offer`` / ``step`` / ``is_idle``),
so the contract lives here once:

* :class:`NetworkLike` is the structural :class:`~typing.Protocol` the
  simulation engine (:mod:`repro.core.engine`) is written against.  Anything
  that satisfies it — including third-party backends — can be driven by any
  driver unchanged.
* :class:`BaseNetwork` is the concrete shared half: packet-id allocation,
  in-flight accounting, delivered/ejected flit counters, and the ``run`` /
  ``is_idle`` conveniences that :class:`repro.network.network.Network` and
  :class:`repro.network.ideal.IdealNetwork` previously each hand-rolled.

Probing hooks: ``_flit_hook`` (called per link traversal when a
:class:`~repro.core.probes.ChannelUtilizationProbe` is attached) and the
always-on ``injection_stalls`` counter are part of the base state so the
probe layer works against any backend; both are inert — a single ``None``
check / integer increment — when no probe is attached.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np

from .packet import Packet

__all__ = ["NetworkLike", "BaseNetwork", "BackendUnsupported"]


class BackendUnsupported(ValueError):
    """A backend rejecting, at construction, a feature it cannot reproduce.

    Subclasses :class:`ValueError` so existing ``except ValueError`` guards
    keep working, and carries the pieces — backend, feature, suggested
    alternative — structured, so CLIs and the sweep service can render
    actionable messages instead of pattern-matching strings.
    """

    def __init__(
        self, backend: str, feature: str, detail: str, *, suggestion: str = "object"
    ) -> None:
        self.backend = backend
        self.feature = feature
        self.suggestion = suggestion
        super().__init__(
            f"backend={backend!r} does not support {feature}: {detail}; "
            f"use backend={suggestion!r} for this configuration"
        )


@runtime_checkable
class NetworkLike(Protocol):
    """Structural protocol every engine-drivable network satisfies."""

    num_nodes: int
    now: int
    total_packets_delivered: int
    total_flits_delivered: int

    def make_packet(self, src: int, dst: int, size: int, **kwargs: Any) -> Packet: ...

    def offer(self, packet: Packet) -> None: ...

    def step(self) -> list: ...

    def is_idle(self) -> bool: ...


class BaseNetwork:
    """Shared state and conveniences for cycle-steppable networks.

    Subclasses implement :meth:`offer` and :meth:`step`; everything a driver
    or probe reads — cycle clock, in-flight count, per-node flit counters —
    is initialised and maintained here.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.now = 0
        self._delivered: list[Packet] = []
        self._inflight = 0
        self._next_pid = 0
        self.total_packets_delivered = 0
        self.total_flits_delivered = 0
        #: flit link traversals (watchdog forward-progress signal)
        self.total_flit_traversals = 0
        self.flit_ejections = np.zeros(num_nodes, dtype=np.int64)
        self.flit_injections = np.zeros(num_nodes, dtype=np.int64)
        #: cycles a source spent unable to stream a queued flit (backpressure)
        self.injection_stalls = 0
        #: idle cycles skipped by the engine's fast-forward (diagnostics)
        self.fast_forwarded_cycles = 0
        #: per-link-traversal probe callback; None == probing disabled
        self._flit_hook = None

    # -- driver API -----------------------------------------------------------
    def make_packet(
        self,
        src: int,
        dst: int,
        size: int,
        *,
        is_reply: bool = False,
        traffic_class: int = 0,
        measured: bool = True,
        meta=None,
    ) -> Packet:
        """Create a packet stamped with the current cycle and a fresh id."""
        pkt = Packet(
            self._next_pid,
            src,
            dst,
            size,
            self.now,
            is_reply=is_reply,
            traffic_class=traffic_class,
            measured=measured,
            meta=meta,
        )
        self._next_pid += 1
        return pkt

    def offer(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> list[Packet]:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, cycles: int) -> list[Packet]:
        """Step ``cycles`` times, returning all deliveries (convenience)."""
        out: list[Packet] = []
        for _ in range(cycles):
            out.extend(self.step())
        return out

    def is_idle(self) -> bool:
        """True when no packet is queued, buffered, or on a link."""
        return self._inflight == 0

    # -- idle-cycle fast-forward -------------------------------------------------
    def next_internal_event_cycle(self) -> Optional[int]:
        """Earliest future cycle at which this network has scheduled work.

        The engine's idle-cycle fast-forward may only jump the clock up to
        (and including) this cycle: anything scheduled inside the fabric —
        in-flight credits, link arrivals, fault activations — must still be
        delivered on its exact cycle.  ``None`` means the fabric is fully
        quiescent and the clock may jump arbitrarily far.
        """
        return None

    def advance_to(self, cycle: int) -> None:
        """Jump the clock to ``cycle`` without executing the idle cycles.

        Only legal when every skipped cycle would have been a no-op: the
        caller (the engine) guarantees ``is_idle()`` and that no internal
        event (see :meth:`next_internal_event_cycle`) lies strictly before
        ``cycle``.  Stepping an idle network only increments ``now``, so the
        jump is bit-identical to stepping ``cycle - now`` times.
        """
        if cycle < self.now:
            raise ValueError(f"cannot advance backwards: {cycle} < {self.now}")
        self.fast_forwarded_cycles += cycle - self.now
        self.now = cycle

    @property
    def in_flight(self) -> int:
        """Packets offered but not yet fully delivered."""
        return self._inflight

    def buffered_flits(self) -> int:
        """Flits currently buffered inside the fabric (0 for bufferless)."""
        return 0

    # -- probe support ----------------------------------------------------------
    def probe_channels(self):
        """Directed channels for per-link probes (empty for ideal fabrics)."""
        return ()

    def probe_vc_occupancy(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-node buffered-flit occupancy snapshot (zeros for bufferless)."""
        if out is None:
            return np.zeros(self.num_nodes, dtype=np.int64)
        out[:] = 0
        return out
