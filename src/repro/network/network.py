"""Network assembly and the cycle loop.

:class:`Network` owns the routers, the per-node source queues, and the two
delayed-event streams (flit arrivals over links, credits returning
upstream).  External drivers — open-loop, closed-loop, or the
execution-driven CMP — interact through three calls:

* :meth:`offer` — hand a packet to its source node's (infinite) queue,
* :meth:`step` — advance one cycle; returns the packets whose tail flit was
  ejected this cycle,
* :meth:`is_idle` — True when no packet is queued or in flight (drain done).

Injection bandwidth is one flit per node per cycle: each node streams its
current packet into the injection-port VC with the most free space, whole
packets at a time, and stalls on backpressure — which is exactly the
feedback path that differentiates closed-loop from open-loop measurement.

Source queues are per traffic class: ``src_queues[node][cls]`` is a FIFO,
and each node picks its next packet by walking the classes in
``inject_order`` (descending priority), so a high-priority packet bypasses
a lower-priority backlog at the source.  Preemption happens only at packet
boundaries — a packet that has started streaming finishes first.  With a
single class this degenerates to the one-FIFO behaviour exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from .. import rng as rng_mod
from ..classes import inject_order
from ..config import NetworkConfig
from ..routing.base import RoutingAlgorithm
from ..routing.registry import build_routing
from ..topology.base import Channel, Topology
from ..topology.registry import build_topology
from .base import BaseNetwork
from .links import TimeBuckets
from .packet import Packet
from .router import Router

__all__ = ["Network"]


class Network(BaseNetwork):
    """A cycle-level NoC built from a :class:`NetworkConfig`.

    ``faults`` accepts a :class:`~repro.core.resilience.FaultPlan` or a spec
    string (see :meth:`FaultPlan.parse`); it defaults to ``config.faults``.
    A faulted network wraps its routing algorithm in
    :class:`~repro.routing.fault.FaultAwareRouting` and maintains per-router
    fault masks; an unfaulted network runs the identical code path with
    ``faults is None`` and a constant fault version of 0.
    """

    def __init__(
        self,
        config: NetworkConfig,
        *,
        topology: Optional[Topology] = None,
        routing: Optional[RoutingAlgorithm] = None,
        faults=None,
    ):
        if config.topology == "ideal":
            raise ValueError("use repro.network.ideal.IdealNetwork for the ideal topology")
        self.config = config
        self.topology = topology if topology is not None else build_topology(config)
        self.routing = routing if routing is not None else build_routing(config, self.topology)
        n = self.topology.num_nodes
        super().__init__(n)
        self._fault_version = 0
        self.faults = None
        plan = faults if faults is not None else config.faults
        if plan:
            from ..core.resilience import FaultPlan, FaultState
            from ..routing.fault import FaultAwareRouting

            if isinstance(plan, str):
                plan = FaultPlan.parse(plan)
            resolved = plan.resolve(
                self.topology, rng_mod.spawn(config.seed, "faults")
            )
            self.faults = FaultState(resolved, self)
            self.routing = FaultAwareRouting(self.routing, self.faults)
        self.routers = [
            Router(
                node,
                self,
                self.routing,
                num_vcs=config.num_vcs,
                buf_size=config.vc_buffer_size,
                router_delay=config.router_delay,
                arbitration=config.arbitration,
                classes=config.classes,
            )
            for node in range(n)
        ]
        # Reverse channel map: [downstream node][in_port] -> (upstream
        # router, its out_port), used to return credits.  Indexed lists beat
        # a dict in the per-flit hot path; the local (injection) port entry
        # stays None — its buffer is checked directly by the source.
        ports = self.topology.ports_per_router
        self._upstream: list[list] = [[None] * ports for _ in range(n)]
        for ch in self.topology.channels():
            self._upstream[ch.dst][ch.in_port] = (self.routers[ch.src], ch.out_port)
        self._arrivals = TimeBuckets()
        self._credits = TimeBuckets()
        self._credit_delay = config.credit_delay
        self._num_classes = len(config.classes)
        self._inject_order = inject_order(config.classes)
        self.src_queues: list[list[deque]] = [
            [deque() for _ in range(self._num_classes)] for _ in range(n)
        ]
        self._inj_state: list[Optional[list]] = [None] * n
        self._active_sources: set[int] = set()
        # Active-set scheduling: only routers holding buffered flits are
        # stepped each cycle.  A router enters the set when a flit is
        # buffered into one of its input VCs (Router.enqueue) and leaves
        # when its last buffer drains; on a near-idle fabric the per-cycle
        # router work collapses from O(num_nodes) to O(|active|).
        self._active_routers: set[int] = set()
        if self.faults is not None:
            # Faults starting at cycle 0 take effect before the first step.
            self.faults.apply(0)

    # -- driver API -----------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue ``packet`` at its source node (infinite source queue)."""
        self.routing.on_inject(packet)
        c = packet.traffic_class
        if c >= self._num_classes:
            c = self._num_classes - 1
        self.src_queues[packet.src][c].append(packet)
        self._active_sources.add(packet.src)
        self._inflight += 1

    def step(self) -> list[Packet]:
        """Advance one cycle; return packets delivered during it."""
        now = self.now
        delivered = self._delivered = []
        routers = self.routers
        # 0. Fault activations/deactivations scheduled for this cycle.
        fs = self.faults
        if fs is not None and fs.has_events:
            fs.apply(now)
        # 1. Credits land (usable this cycle).
        bucket = self._credits.pop(now)
        if bucket is not None:
            for router, op, vc in bucket:
                router.credits[op][vc] += 1
        # 2. Link arrivals buffer into downstream input VCs.
        bucket = self._arrivals.pop(now)
        if bucket is not None:
            for node, in_port, vc, pkt, fidx in bucket:
                routers[node].enqueue(in_port, vc, pkt, fidx, now)
        # 3. Sources stream flits into injection ports (1 flit/node/cycle).
        if self._active_sources:
            self._inject_all(now)
        # 4. Routers allocate and traverse.  Only routers with buffered
        #    flits can do work; ascending node order is load-bearing when
        #    credit_delay == 0 (same-cycle credit returns are visible to
        #    higher-numbered routers), so the active set is sorted.
        active = self._active_routers
        if active:
            retired: Optional[list[int]] = None
            for node in sorted(active):
                router = routers[node]
                router.step(now)
                if not router.busy:
                    if retired is None:
                        retired = [node]
                    else:
                        retired.append(node)
            if retired is not None:
                active.difference_update(retired)
        self.now = now + 1
        return delivered

    def buffered_flits(self) -> int:
        """Flits currently buffered across all routers (diagnostics)."""
        return sum(r.buffered_flits() for r in self.routers)

    def next_internal_event_cycle(self) -> Optional[int]:
        """Earliest in-flight credit/arrival delivery or fault event.

        Caps the engine's idle-cycle fast-forward: an idle fabric can still
        owe itself a credit return (tail delivered, credit in flight) or a
        scheduled fault activation, and skipping either would corrupt
        buffer accounting or the fault timeline.
        """
        nxt = self._credits.next_time()
        t = self._arrivals.next_time()
        if t is not None and (nxt is None or t < nxt):
            nxt = t
        fs = self.faults
        if fs is not None:
            t = fs.next_event_cycle()
            if t is not None and (nxt is None or t < nxt):
                nxt = t
        return nxt

    # -- probe support ----------------------------------------------------------
    def probe_channels(self):
        """The topology's directed channels (per-link probe domain)."""
        return self.topology.channels()

    def probe_vc_occupancy(self, out=None) -> np.ndarray:
        """Per-node maximum single-VC buffer occupancy (flits).

        A sampled snapshot for the VC-occupancy probe; by construction no
        entry can exceed ``config.vc_buffer_size``.
        """
        if out is None:
            out = np.zeros(self.num_nodes, dtype=np.int64)
        for node, router in enumerate(self.routers):
            worst = 0
            for ivc in router.ivcs:
                depth = len(ivc.fifo)
                if depth > worst:
                    worst = depth
            out[node] = worst
        return out

    # -- internals --------------------------------------------------------------
    def _inject_all(self, now: int) -> None:
        buf_size = self.config.vc_buffer_size
        num_vcs = self.config.num_vcs
        done: list[int] = []
        for node in self._active_sources:
            st = self._inj_state[node]
            router = self.routers[node]
            if st is None:
                queues = self.src_queues[node]
                pkt = None
                cls = 0
                for cls in self._inject_order:
                    if queues[cls]:
                        pkt = queues[cls][0]
                        break
                if pkt is None:
                    done.append(node)
                    continue
                # Choose the injection VC with most free space that is not
                # mid-packet; whole packets stream into a single VC.
                base = router.local_port * num_vcs
                best_vc = -1
                best_free = 0
                for vc in range(num_vcs):
                    ivc = router.ivcs[base + vc]
                    if ivc.fifo and ivc.fifo[-1][1] != ivc.fifo[-1][0].size - 1:
                        continue  # a packet is still streaming into this VC
                    free = buf_size - len(ivc.fifo)
                    if free > best_free:
                        best_free = free
                        best_vc = vc
                if best_vc < 0:
                    self.injection_stalls += 1
                    continue  # all VCs full or busy: injection backpressure
                st = self._inj_state[node] = [pkt, 0, best_vc, cls]
            pkt, fidx, vc, cls = st
            if router.free_space(router.local_port, vc, buf_size) <= 0:
                self.injection_stalls += 1
                continue
            if fidx == 0:
                pkt.inject_time = now
            router.enqueue(router.local_port, vc, pkt, fidx, now)
            self.flit_injections[node] += 1
            fidx += 1
            if fidx == pkt.size:
                self.src_queues[node][cls].popleft()
                self._inj_state[node] = None
                if not any(self.src_queues[node]):
                    done.append(node)
            else:
                st[1] = fidx
        for node in done:
            if not any(self.src_queues[node]) and self._inj_state[node] is None:
                self._active_sources.discard(node)

    def send_flit(self, ch: Channel, vc: int, pkt: Packet, fidx: int, now: int) -> None:
        """Schedule a flit's arrival at the downstream router."""
        self._arrivals.schedule(now + ch.delay, (ch.dst, ch.in_port, vc, pkt, fidx))
        self.total_flit_traversals += 1
        hook = self._flit_hook
        if hook is not None:
            hook(ch, vc, pkt, fidx, now)

    def send_credit(self, node: int, in_port: int, vc: int, now: int) -> None:
        """Return a credit to the router feeding (node, in_port)."""
        upstream = self._upstream[node][in_port]
        if upstream is None:
            return  # injection buffers are checked directly by the source
        router, op = upstream
        if self._credit_delay == 0:
            router.credits[op][vc] += 1
        else:
            self._credits.schedule(now + self._credit_delay, (router, op, vc))

    def count_ejection(self, node: int) -> None:
        """One flit left the network at ``node`` (called per ejected flit)."""
        self.flit_ejections[node] += 1
        self.total_flits_delivered += 1

    def on_delivered(self, pkt: Packet) -> None:
        """Tail flit ejected: complete the packet."""
        self.total_packets_delivered += 1
        self._inflight -= 1
        self._delivered.append(pkt)
