"""Backend selection: config -> concrete network instance.

``NetworkConfig.backend`` picks the implementation behind the shared
:class:`~repro.network.base.NetworkLike` protocol:

* ``"object"`` — :class:`~repro.network.network.Network`, the per-flit
  Python-object reference model (supports every feature, incl. faults).
* ``"vectorized"`` — :class:`~repro.network.vectorized.VectorizedNetwork`,
  the struct-of-arrays numpy model, bit-identical on every configuration it
  accepts (see DESIGN.md "Vectorized backend").
* ``"analytical"`` — no network at all: the zero-cycle queueing estimator
  of :mod:`repro.analytical`.  :func:`build_network` rejects it with
  :class:`~repro.network.base.BackendUnsupported` naming the estimator
  API, since cycle drivers cannot simulate a closed-form model.

Every driver builds its network through :func:`build_network` so the flag
works uniformly across open-loop, closed-loop, barrier, trace-driven and
execution-driven simulations.
"""

from __future__ import annotations

import os

from ..config import NetworkConfig
from .network import Network

__all__ = [
    "build_network",
    "NETWORK_BACKENDS",
    "FAST_PROFILES",
    "is_fast_profile",
    "vectorized_supports",
]

NETWORK_BACKENDS = ("object", "vectorized")

#: Configurations where the vectorized backend is a *fast profile* — close
#: but not bit-exact — each entry a dict of NetworkConfig fields that marks
#: the profile (a config matches when every listed field compares equal).
#: The differential harness checks members statistically (latency and
#: throughput within tolerance, per-node correlation r >= 0.97) instead of
#: exactly, mirroring the paper's fast-vs-accurate methodology.
#:
#: Currently EMPTY by construction: every configuration the vectorized
#: backend accepts — including adaptive (MA) and oblivious (VAL/ROMM)
#: routing, whose tie-breaks replay the object backend's enumeration order
#: — is bit-exact, and unsupported configs (fault plans, credit_delay=0)
#: are rejected at construction rather than approximated.  The registry and
#: the statistical checker stay wired so a future profile only needs an
#: entry here.
FAST_PROFILES: tuple[dict, ...] = ()


def is_fast_profile(config: NetworkConfig) -> bool:
    """True when ``config`` matches a registered fast profile (see above)."""
    return any(
        all(getattr(config, field, None) == value for field, value in profile.items())
        for profile in FAST_PROFILES
    )


def vectorized_supports(config: NetworkConfig) -> bool:
    """True when ``config`` is inside the vectorized backend's exact
    envelope (mirrors :class:`VectorizedNetwork`'s constructor checks)."""
    return (
        config.topology in ("mesh", "torus", "ring")
        and config.faults is None
        and config.credit_delay >= 1
    )


def build_network(config: NetworkConfig, **kwargs):
    """Instantiate the network backend selected by ``config.backend``.

    ``kwargs`` (``topology=``, ``routing=``, ``faults=`` overrides) are
    accepted by the object backend only; the ideal topology is rejected
    here exactly as :class:`Network` rejects it — callers that want the
    contention-free fabric construct :class:`IdealNetwork` explicitly.

    ``REPRO_DEFAULT_BACKEND=vectorized`` upgrades default-backend configs
    inside the vectorized envelope (:func:`vectorized_supports`) to the
    vectorized backend.  Because accepted configs are bit-exact, results
    are unchanged; CI uses this to run the whole quick suite as one large
    backend-equivalence check.  An explicit ``backend=`` always wins, and
    unsupported configs (faults, ``credit_delay=0``, ideal) silently stay
    on the object backend.
    """
    backend = getattr(config, "backend", "object")
    if (
        backend == "object"
        and not kwargs
        and os.environ.get("REPRO_DEFAULT_BACKEND") == "vectorized"
        and vectorized_supports(config)
    ):
        backend = "vectorized"
    if backend == "object":
        return Network(config, **kwargs)
    if backend == "vectorized":
        if kwargs:
            raise TypeError(
                "the vectorized backend takes no construction overrides; "
                f"got {sorted(kwargs)}"
            )
        from .vectorized import VectorizedNetwork

        return VectorizedNetwork(config)
    if backend == "analytical":
        # The zero-cycle estimator has no network to build: it answers in
        # closed form.  Cycle drivers that reach this point were asked to
        # simulate a model — point the user at the estimator API instead.
        from .base import BackendUnsupported

        raise BackendUnsupported(
            "analytical",
            "cycle-level simulation",
            "the analytical backend is a zero-cycle estimator with no "
            "network to step; query it with repro.analytical.estimate() "
            "(CLI: 'repro estimate') or steer a sweep with it "
            "('repro sweep --steer')",
        )
    raise ValueError(
        f"unknown network backend {backend!r}; pick from {NETWORK_BACKENDS}"
    )
