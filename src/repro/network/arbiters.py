"""Switch arbitration policies (paper Table I plus the class-aware family).

One arbiter instance serves one output port.  ``pick`` receives the input
VCs requesting that port this cycle (as ``(ivc_index, packet)`` pairs,
sorted by ivc_index for determinism) and returns the winning pair.

Two families:

* class-blind (Table I): ``round_robin`` (rotating pointer) and ``age``
  (oldest packet first);
* class-aware (Mandal et al.'s priority-class dimension): ``priority``
  (strict priority by the packet's traffic class, age tie-break) and
  ``weighted`` (integer virtual-time weighted-fair queueing over classes).

The class-aware arbiters keep ``pick`` pure — their state (the weighted
virtual clocks) advances only through :meth:`Arbiter.granted`, which the
router calls when a winner actually traverses the switch.  Because each
output port grants at most one flit per cycle, the per-port state is frozen
for the whole arbitration pass, which is what lets the vectorized backend
replay the same decisions from a single precomputed sort order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from math import lcm

__all__ = [
    "Arbiter",
    "RoundRobinArbiter",
    "AgeArbiter",
    "StrictPriorityArbiter",
    "WeightedArbiter",
    "build_arbiter",
]


class Arbiter(ABC):
    """Selects one winner among requesting input VCs."""

    name: str = "abstract"

    @abstractmethod
    def pick(self, requests: list) -> tuple:
        """Return the winning ``(ivc_index, packet)`` pair.

        ``requests`` is non-empty and sorted by ivc_index.
        """

    def granted(self, packet) -> None:
        """Notify that ``packet`` won this port and traversed the switch.

        Called once per actual grant (including the single-request shortcut
        that bypasses :meth:`pick`).  Default: no state.
        """


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: fair, stateful, O(len(requests))."""

    name = "round_robin"

    __slots__ = ("size", "ptr")

    def __init__(self, size: int):
        self.size = size
        self.ptr = 0

    def pick(self, requests: list) -> tuple:
        winner = None
        for req in requests:
            if req[0] >= self.ptr:
                winner = req
                break
        if winner is None:
            winner = requests[0]
        self.ptr = (winner[0] + 1) % self.size
        return winner


class AgeArbiter(Arbiter):
    """Oldest-packet-first arbiter (global age = creation time).

    Age-based arbitration reduces latency variance and starvation; ties
    break on packet id, then ivc index, keeping runs deterministic.
    """

    name = "age"

    __slots__ = ()

    def pick(self, requests: list) -> tuple:
        return min(requests, key=_age_key)


def _age_key(req: tuple) -> tuple:
    pkt = req[1]
    return (pkt.create_time, pkt.pid, req[0])


class StrictPriorityArbiter(Arbiter):
    """Higher-priority traffic class always wins; age breaks ties.

    Stateless: the key is a pure function of the request, so the vectorized
    backend reproduces it with one lexsort.  A packet whose class index
    falls outside the registry is treated as the last registered class
    (both backends apply the same clamp).
    """

    name = "priority"

    __slots__ = ("_prio",)

    def __init__(self, priorities: tuple):
        self._prio = tuple(priorities)

    def pick(self, requests: list) -> tuple:
        return min(requests, key=self._key)

    def _key(self, req: tuple) -> tuple:
        pkt = req[1]
        prio = self._prio
        c = pkt.traffic_class
        if c >= len(prio):
            c = len(prio) - 1
        return (-prio[c], pkt.create_time, pkt.pid, req[0])


class WeightedArbiter(Arbiter):
    """Weighted-fair arbiter over traffic classes (integer virtual time).

    Each class ``c`` has a virtual clock ``vt[c]`` that advances by
    ``LCM(weights) // weight[c]`` per grant, so over a busy period the
    grant counts converge to the configured weight ratio exactly (all
    arithmetic is integer — bit-identical across backends).  The request
    with the smallest class clock wins; ties break by class priority
    (descending), then age.  Clocks advance only in :meth:`granted`, never
    inside :meth:`pick`.
    """

    name = "weighted"

    __slots__ = ("_prio", "_step", "vt")

    def __init__(self, weights: tuple, priorities: tuple):
        base = lcm(*weights)
        self._step = tuple(base // w for w in weights)
        self._prio = tuple(priorities)
        self.vt = [0] * len(self._step)

    def _cls(self, pkt) -> int:
        c = pkt.traffic_class
        return c if c < len(self._step) else len(self._step) - 1

    def pick(self, requests: list) -> tuple:
        return min(requests, key=self._key)

    def _key(self, req: tuple) -> tuple:
        pkt = req[1]
        c = self._cls(pkt)
        return (self.vt[c], -self._prio[c], pkt.create_time, pkt.pid, req[0])

    def granted(self, packet) -> None:
        c = self._cls(packet)
        self.vt[c] += self._step[c]


def build_arbiter(name: str, size: int, classes: "tuple | None" = None) -> Arbiter:
    """Construct the arbiter named in the config (one per output port).

    The class-aware arbiters need the traffic-class registry
    (``config.classes``) for per-class priorities and weights.
    """
    if name == "round_robin":
        return RoundRobinArbiter(size)
    if name == "age":
        return AgeArbiter()
    if name in ("priority", "weighted"):
        if not classes:
            raise ValueError(
                f"arbitration {name!r} needs the traffic-class registry "
                "(pass classes=config.classes)"
            )
        priorities = tuple(c.priority for c in classes)
        if name == "priority":
            return StrictPriorityArbiter(priorities)
        return WeightedArbiter(tuple(c.weight for c in classes), priorities)
    raise ValueError(f"unknown arbitration {name!r}")
