"""Switch arbitration policies (paper Table I: round robin, age-based).

One arbiter instance serves one output port.  ``pick`` receives the input
VCs requesting that port this cycle (as ``(ivc_index, packet)`` pairs,
sorted by ivc_index for determinism) and returns the winning pair.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["Arbiter", "RoundRobinArbiter", "AgeArbiter", "build_arbiter"]


class Arbiter(ABC):
    """Selects one winner among requesting input VCs."""

    name: str = "abstract"

    @abstractmethod
    def pick(self, requests: list) -> tuple:
        """Return the winning ``(ivc_index, packet)`` pair.

        ``requests`` is non-empty and sorted by ivc_index.
        """


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: fair, stateful, O(len(requests))."""

    name = "round_robin"

    __slots__ = ("size", "ptr")

    def __init__(self, size: int):
        self.size = size
        self.ptr = 0

    def pick(self, requests: list) -> tuple:
        winner = None
        for req in requests:
            if req[0] >= self.ptr:
                winner = req
                break
        if winner is None:
            winner = requests[0]
        self.ptr = (winner[0] + 1) % self.size
        return winner


class AgeArbiter(Arbiter):
    """Oldest-packet-first arbiter (global age = creation time).

    Age-based arbitration reduces latency variance and starvation; ties
    break on packet id, then ivc index, keeping runs deterministic.
    """

    name = "age"

    __slots__ = ()

    def pick(self, requests: list) -> tuple:
        return min(requests, key=_age_key)


def _age_key(req: tuple) -> tuple:
    pkt = req[1]
    return (pkt.create_time, pkt.pid, req[0])


def build_arbiter(name: str, size: int) -> Arbiter:
    """Construct the arbiter named in the config (one per output port)."""
    if name == "round_robin":
        return RoundRobinArbiter(size)
    if name == "age":
        return AgeArbiter()
    raise ValueError(f"unknown arbitration {name!r}")
