"""Input virtual-channel state.

Each router input port owns ``num_vcs`` of these.  The FIFO holds buffered
flits as ``(packet, flit_index, ready_time)`` tuples; ``ready_time`` is the
cycle at which the flit has cleared the router pipeline (arrival + tr) and
may traverse the switch.  The packet reference carries its
``traffic_class`` through the buffer, so VC allocation and the class-aware
switch arbiters (priority/weighted) read the class straight off the
buffered head flit — flits need no separate class field.

The VC's routing state machine is encoded compactly:

* ``out_port == -1`` and ``candidates is None`` — idle / not yet routed,
* ``candidates is not None``                    — routed, waiting for VC
  allocation downstream (retried every cycle),
* ``out_port >= 0``                             — allocated; ``out_vc`` is
  the downstream VC, or ``-1`` when the output is the ejection port.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["InputVC"]


class InputVC:
    """One input virtual channel (buffer + wormhole routing state)."""

    __slots__ = (
        "index",
        "in_port",
        "vc",
        "fifo",
        "out_port",
        "out_vc",
        "candidates",
        "route_version",
    )

    def __init__(self, index: int, in_port: int, vc: int):
        self.index = index
        self.in_port = in_port
        self.vc = vc
        self.fifo: deque = deque()
        self.out_port: int = -1
        self.out_vc: int = -1
        self.candidates: Optional[list] = None
        #: network fault version the candidates were computed under; a head
        #: flit still awaiting VC allocation re-routes when this goes stale.
        self.route_version: int = 0

    def reset_route(self) -> None:
        """Clear routing state after the tail flit departs."""
        self.out_port = -1
        self.out_vc = -1
        self.candidates = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InputVC(port={self.in_port}, vc={self.vc}, depth={len(self.fifo)},"
            f" out={self.out_port}/{self.out_vc})"
        )
