"""Ideal network: fully connected, infinite bandwidth, fixed 1-cycle latency.

The paper defines the network access rate (NAR) of an application as its
injection rate "under an ideal on-chip network ... a fully connected network
with infinite bandwidth between the nodes and single cycle latency"
(§IV-C1).  This class implements that reference network with the same driver
API as :class:`repro.network.network.Network`, so any workload driver can be
pointed at it unchanged to measure NAR or ideal cycle counts (Table III).
"""

from __future__ import annotations

import numpy as np

from .links import TimeBuckets
from .packet import Packet

__all__ = ["IdealNetwork"]


class IdealNetwork:
    """Driver-compatible ideal network on ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int, *, latency: int = 1):
        if latency < 1:
            raise ValueError("latency must be >= 1")
        self.num_nodes = num_nodes
        self.latency = latency
        self.now = 0
        self._events = TimeBuckets()
        self._delivered: list[Packet] = []
        self._inflight = 0
        self._next_pid = 0
        self.total_packets_delivered = 0
        self.total_flits_delivered = 0
        self.flit_ejections = np.zeros(num_nodes, dtype=np.int64)
        self.flit_injections = np.zeros(num_nodes, dtype=np.int64)

    def make_packet(
        self,
        src: int,
        dst: int,
        size: int,
        *,
        is_reply: bool = False,
        traffic_class: int = 0,
        measured: bool = True,
        meta=None,
    ) -> Packet:
        """Create a packet stamped with the current cycle and a fresh id."""
        pkt = Packet(
            self._next_pid,
            src,
            dst,
            size,
            self.now,
            is_reply=is_reply,
            traffic_class=traffic_class,
            measured=measured,
            meta=meta,
        )
        self._next_pid += 1
        return pkt

    def offer(self, packet: Packet) -> None:
        """Inject immediately; delivery after the fixed latency."""
        packet.inject_time = self.now
        self.flit_injections[packet.src] += packet.size
        self._events.schedule(self.now + self.latency, packet)
        self._inflight += 1

    def step(self) -> list[Packet]:
        """Advance one cycle; return packets delivered during it."""
        now = self.now
        delivered: list[Packet] = []
        bucket = self._events.pop(now)
        if bucket is not None:
            for pkt in bucket:
                pkt.deliver_time = now
                pkt.hops = 0 if pkt.src == pkt.dst else 1
                self.flit_ejections[pkt.dst] += pkt.size
                self.total_flits_delivered += pkt.size
                self.total_packets_delivered += 1
                self._inflight -= 1
                delivered.append(pkt)
        self.now = now + 1
        return delivered

    def run(self, cycles: int) -> list[Packet]:
        """Step ``cycles`` times, returning all deliveries (convenience)."""
        out: list[Packet] = []
        for _ in range(cycles):
            out.extend(self.step())
        return out

    def is_idle(self) -> bool:
        """True when nothing is in flight."""
        return self._inflight == 0

    @property
    def in_flight(self) -> int:
        """Packets offered but not yet delivered."""
        return self._inflight
