"""Ideal network: fully connected, infinite bandwidth, fixed 1-cycle latency.

The paper defines the network access rate (NAR) of an application as its
injection rate "under an ideal on-chip network ... a fully connected network
with infinite bandwidth between the nodes and single cycle latency"
(§IV-C1).  This class implements that reference network with the same driver
API (:class:`repro.network.base.NetworkLike`) as
:class:`repro.network.network.Network`, so any workload driver can be
pointed at it unchanged to measure NAR or ideal cycle counts (Table III).
"""

from __future__ import annotations

from typing import Optional

from .base import BaseNetwork
from .links import TimeBuckets
from .packet import Packet

__all__ = ["IdealNetwork"]


class IdealNetwork(BaseNetwork):
    """Driver-compatible ideal network on ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int, *, latency: int = 1):
        if latency < 1:
            raise ValueError("latency must be >= 1")
        super().__init__(num_nodes)
        self.latency = latency
        self._events = TimeBuckets()

    def offer(self, packet: Packet) -> None:
        """Inject immediately; delivery after the fixed latency."""
        packet.inject_time = self.now
        self.flit_injections[packet.src] += packet.size
        self._events.schedule(self.now + self.latency, packet)
        self._inflight += 1

    def step(self) -> list[Packet]:
        """Advance one cycle; return packets delivered during it."""
        now = self.now
        delivered: list[Packet] = []
        bucket = self._events.pop(now)
        if bucket is not None:
            for pkt in bucket:
                pkt.deliver_time = now
                pkt.hops = 0 if pkt.src == pkt.dst else 1
                self.flit_ejections[pkt.dst] += pkt.size
                self.total_flits_delivered += pkt.size
                self.total_packets_delivered += 1
                self._inflight -= 1
                delivered.append(pkt)
        self.now = now + 1
        return delivered

    def next_internal_event_cycle(self) -> Optional[int]:
        """Earliest scheduled delivery (empty whenever the network is idle)."""
        return self._events.next_time()
