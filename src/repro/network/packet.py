"""Packet representation.

Packets are the unit of routing and measurement; flits are the unit of flow
control.  To avoid per-flit object churn in the hot loop, flits are *not*
objects — a buffered flit is the tuple ``(packet, flit_index, ready_time)``
and the packet carries everything a flit needs (size, routing state, age).

Routing state lives on the packet because wormhole routing computes the
route once per hop for the head flit only:

* ``phase`` / ``intermediate`` — two-phase algorithms (VAL, ROMM),
* ``vc_class`` — dateline discipline on rings/tori,
* ``route_dim`` — the dimension DOR is currently traversing (dateline reset).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Packet"]


class Packet:
    """A network packet of ``size`` flits from ``src`` to ``dst``.

    ``create_time`` is when the source *generated* the packet (open-loop
    latency includes source-queue time, per Dally & Towles); ``inject_time``
    is when the head flit entered the injection port; ``deliver_time`` is
    when the tail flit was ejected at the destination.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "create_time",
        "inject_time",
        "deliver_time",
        "is_reply",
        "traffic_class",
        "measured",
        "phase",
        "intermediate",
        "vc_class",
        "route_dim",
        "hops",
        "misroutes",
        "meta",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        size: int,
        create_time: int,
        *,
        is_reply: bool = False,
        traffic_class: int = 0,
        measured: bool = True,
        meta: Any = None,
    ):
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size = size
        self.create_time = create_time
        self.inject_time: int = -1
        self.deliver_time: int = -1
        self.is_reply = is_reply
        self.traffic_class = traffic_class
        self.measured = measured
        # routing state
        self.phase: int = 0
        self.intermediate: Optional[int] = None
        self.vc_class: int = 0
        self.route_dim: int = -1
        self.hops: int = 0
        self.misroutes: int = 0
        self.meta = meta

    @property
    def latency(self) -> int:
        """Creation-to-delivery latency; valid only after delivery."""
        if self.deliver_time < 0:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.deliver_time - self.create_time

    @property
    def network_latency(self) -> int:
        """Injection-to-delivery latency (excludes source-queue time)."""
        if self.deliver_time < 0 or self.inject_time < 0:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.deliver_time - self.inject_time

    def current_target(self) -> int:
        """Routing target for the current phase (intermediate, then dst)."""
        if self.phase == 0 and self.intermediate is not None:
            return self.intermediate
        return self.dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.pid} {self.src}->{self.dst} size={self.size}"
            f" t={self.create_time}{' reply' if self.is_reply else ''})"
        )
