"""Cycle-level network-on-chip simulator (flits, VCs, credits)."""

from .arbiters import AgeArbiter, Arbiter, RoundRobinArbiter, build_arbiter
from .base import BackendUnsupported, BaseNetwork, NetworkLike
from .factory import NETWORK_BACKENDS, build_network
from .ideal import IdealNetwork
from .links import TimeBuckets
from .network import Network
from .packet import Packet
from .router import Router
from .vc import InputVC
from .vectorized import VectorizedNetwork

__all__ = [
    "Packet",
    "InputVC",
    "Arbiter",
    "RoundRobinArbiter",
    "AgeArbiter",
    "build_arbiter",
    "TimeBuckets",
    "Router",
    "BackendUnsupported",
    "BaseNetwork",
    "NetworkLike",
    "Network",
    "VectorizedNetwork",
    "IdealNetwork",
    "build_network",
    "NETWORK_BACKENDS",
]
