"""Time-bucketed event delivery for links and credits.

Link traversal and credit return are the only delayed events in the
simulator, and their delays are tiny constants (1-2 cycles), so a dict of
per-cycle buckets beats a priority queue: scheduling is an append, and each
cycle pops at most one bucket per event kind.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["TimeBuckets"]


class TimeBuckets:
    """Events grouped by delivery cycle.

    ``schedule(t, ev)`` files ``ev`` under cycle ``t``; ``pop(t)`` removes
    and returns the bucket for cycle ``t`` (or None).  ``pending`` counts
    undelivered events, used for drain/idle detection.
    """

    __slots__ = ("_buckets", "pending")

    def __init__(self) -> None:
        self._buckets: dict[int, list] = {}
        self.pending = 0

    def schedule(self, t: int, event: Any) -> None:
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [event]
        else:
            bucket.append(event)
        self.pending += 1

    def pop(self, t: int) -> Optional[list]:
        bucket = self._buckets.pop(t, None)
        if bucket is not None:
            self.pending -= len(bucket)
        return bucket

    def clear(self) -> None:
        self._buckets.clear()
        self.pending = 0

    def next_time(self) -> Optional[int]:
        """Earliest cycle with an undelivered event (None when empty).

        Used by the idle-cycle fast-forward to bound clock jumps: the
        simulator may never skip past a scheduled delivery.  The bucket
        count is tiny (delays are 1-2 cycles), so ``min`` over the keys is
        cheaper than maintaining a heap.
        """
        if not self._buckets:
            return None
        return min(self._buckets)

    def events(self):
        """Iterate over every undelivered event (order unspecified).

        Used by the invariant checker to count in-flight flits/credits;
        never called from the hot loop.
        """
        for bucket in self._buckets.values():
            yield from bucket

    def __bool__(self) -> bool:
        return self.pending > 0
