"""Measurement statistics shared by the harnesses.

Implements the paper's derived views of raw packet/runtime data: latency
summary statistics, the per-node distributions of Fig. 11, and the spatial
runtime map of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencyStats",
    "latency_stats",
    "node_distribution",
    "runtime_map",
]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency (or runtime) sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "LatencyStats":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan)
        # Sample standard deviation (ddof=1): these are finite samples of
        # the latency population, and the population formula (ddof=0)
        # systematically under-reports spread on small windows.  A single
        # sample has no defined spread — report NaN, not 0.
        std = float(values.std(ddof=1)) if values.size > 1 else float("nan")
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            std=std,
            minimum=float(values.min()),
            maximum=float(values.max()),
            p50=float(np.percentile(values, 50)),
            p95=float(np.percentile(values, 95)),
            p99=float(np.percentile(values, 99)),
        )


def latency_stats(packets) -> LatencyStats:
    """Latency statistics over delivered packets."""
    return LatencyStats.from_values(np.array([p.latency for p in packets], dtype=np.float64))


def node_distribution(
    per_node_values: np.ndarray, bins: int = 10, range_: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of a per-node metric as *fraction of nodes* per bin.

    This is the paper's Fig. 11 view: x = metric value (average latency or
    runtime), y = % of nodes.  Returns ``(bin_edges, fractions)``.
    """
    values = np.asarray(per_node_values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("no finite per-node values to histogram")
    counts, edges = np.histogram(values, bins=bins, range=range_)
    return edges, counts / values.size


def runtime_map(node_finish: np.ndarray, k: int) -> np.ndarray:
    """Per-node runtime normalized to the slowest node, as a k×k grid.

    Row y, column x hold node ``x + k*y`` — the layout of the paper's Fig. 7
    surface plots.  On an edge-asymmetric mesh the center of the grid
    finishes first; on a torus the map is flat.
    """
    finish = np.asarray(node_finish, dtype=np.float64)
    if finish.size != k * k:
        raise ValueError(f"expected {k * k} nodes, got {finish.size}")
    if (finish < 0).any():
        raise ValueError("run did not complete: some nodes never finished")
    return (finish / finish.max()).reshape(k, k)
