"""Measurement statistics shared by the harnesses.

Implements the paper's derived views of raw packet/runtime data: the
per-node distributions of Fig. 11 and the spatial runtime map of Fig. 7.
The latency summary statistics (:class:`LatencyStats`, including the
per-class variants) live canonically in :mod:`repro.analysis.stats` and are
re-exported here for compatibility — the analysis package imports nothing
from :mod:`repro.core`, so the dependency points one way.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import (  # noqa: F401  (compatibility re-exports)
    LatencyStats,
    class_breakdown,
    latency_stats,
    per_class_latency_stats,
)

__all__ = [
    "LatencyStats",
    "latency_stats",
    "per_class_latency_stats",
    "class_breakdown",
    "node_distribution",
    "runtime_map",
]


def node_distribution(
    per_node_values: np.ndarray, bins: int = 10, range_: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of a per-node metric as *fraction of nodes* per bin.

    This is the paper's Fig. 11 view: x = metric value (average latency or
    runtime), y = % of nodes.  Returns ``(bin_edges, fractions)``.
    """
    values = np.asarray(per_node_values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("no finite per-node values to histogram")
    counts, edges = np.histogram(values, bins=bins, range=range_)
    return edges, counts / values.size


def runtime_map(node_finish: np.ndarray, k: int) -> np.ndarray:
    """Per-node runtime normalized to the slowest node, as a k×k grid.

    Row y, column x hold node ``x + k*y`` — the layout of the paper's Fig. 7
    surface plots.  On an edge-asymmetric mesh the center of the grid
    finishes first; on a torus the map is flat.
    """
    finish = np.asarray(node_finish, dtype=np.float64)
    if finish.size != k * k:
        raise ValueError(f"expected {k * k} nodes, got {finish.size}")
    if (finish < 0).any():
        raise ValueError("run did not complete: some nodes never finished")
    return (finish / finish.max()).reshape(k, k)
