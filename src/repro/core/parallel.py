"""Parallel sweep executor: process pools, journaling, checkpoint/resume.

The paper's whole pitch is cheap bulk evaluation of design points (minutes
of synthetic simulation against 88.5-hour GEMS runs), and the sweep driver
is the hot path that delivers it.  This module runs the cartesian product
of sweep axes through a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Determinism.**  Every point gets a child seed derived from the base
  config's seed and the point's coordinates via :func:`repro.rng.sweep_seed`.
  The derivation is independent of enumeration order and worker assignment,
  so a parallel run produces records bit-identical to a serial run (modulo
  the per-point ``wall_seconds`` timing field), returned in the canonical
  enumeration order regardless of completion order.
* **Checkpoint/resume.**  With ``journal=`` set, each completed point is
  appended to a JSON-lines file as it finishes (via
  :func:`repro.analysis.io.append_jsonl`).  Re-running with ``resume=True``
  reloads the journal, skips every journaled point, and executes only the
  missing ones; a journal truncated mid-line by a crash parses cleanly.
* **Fault isolation.**  A runner that raises — or a worker process that
  dies, or a point that exceeds ``point_timeout`` — yields a record marked
  ``failed=True`` with the exception string under ``"error"`` instead of
  killing the sweep; every other point still completes.
* **Observability.**  A ``progress`` callback receives a
  :class:`SweepProgress` (points done/total/failed, rate, ETA) after every
  completed point.

``n_workers=1`` (the default) runs everything in-process with no pool, so
lambdas and closures keep working for quick interactive sweeps; with
``n_workers > 1`` the runner and its outputs must be picklable (a
module-level function, or :func:`functools.partial` over one).
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from .. import rng
from ..analysis.io import append_jsonl, read_jsonl
from ..config import NetworkConfig

__all__ = ["SweepPoint", "SweepProgress", "enumerate_points", "run_sweep"]

#: Seconds between pool polls; bounds timeout-detection latency.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: its canonical index, coordinates, and seed."""

    #: Position in the canonical enumeration order (journal key).
    index: int
    #: Config-field overrides applied via ``base.with_(**overrides)``.
    overrides: Mapping[str, Any]
    #: Extra-axis values passed to the runner as keyword arguments.
    kwargs: Mapping[str, Any]
    #: Seed the point's config carries (derived or explicit).
    seed: int

    @property
    def coords(self) -> dict[str, Any]:
        """All axis coordinates (config overrides then extra axes)."""
        return {**self.overrides, **self.kwargs}


@dataclass(frozen=True)
class SweepProgress:
    """Progress snapshot handed to the ``progress`` callback per point.

    ``rate`` and ``eta`` are computed over points completed in *this* run
    (resumed journal entries count toward ``done`` but not the rate, so the
    ETA stays honest after a resume).  ``eta`` is ``inf`` until the first
    point of the run completes.
    """

    done: int
    total: int
    failed: int
    elapsed: float
    rate: float
    eta: float

    @property
    def remaining(self) -> int:
        return self.total - self.done


def _jsonable(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """A mapping as it will read back from a JSON journal (tuples→lists…)."""
    return json.loads(json.dumps(dict(mapping), default=str))


def enumerate_points(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
    *,
    derive_seeds: bool = True,
) -> list[SweepPoint]:
    """The cartesian product of ``axes`` × ``extra_axes`` in canonical order.

    The order is the one the serial driver has always used: the outer
    product walks the config axes in mapping order, the inner product walks
    the extra axes.  With ``derive_seeds`` each point's seed comes from
    :func:`repro.rng.sweep_seed` over its full coordinates — unless
    ``"seed"`` is itself a swept config axis, in which case the explicit
    value wins (sweeping over seeds means the caller wants exactly those
    seeds).
    """
    axes = dict(axes)
    extra_axes = dict(extra_axes or {})
    overlap = set(axes) & set(extra_axes)
    if overlap:
        raise ValueError(f"axes and extra_axes share names: {sorted(overlap)}")
    names = list(axes)
    extra_names = list(extra_axes)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo))
        for extra_combo in itertools.product(*(extra_axes[n] for n in extra_names)):
            kwargs = dict(zip(extra_names, extra_combo))
            if "seed" in overrides:
                seed = int(overrides["seed"])
            elif derive_seeds:
                seed = rng.sweep_seed(base.seed, {**overrides, **kwargs})
            else:
                seed = base.seed
            points.append(SweepPoint(len(points), overrides, kwargs, seed))
    return points


def _failed_record(point: SweepPoint, error: str, elapsed: float = 0.0) -> dict[str, Any]:
    rec = dict(point.coords)
    rec["failed"] = True
    rec["error"] = error
    rec["wall_seconds"] = elapsed
    return rec


def _execute_point(
    runner: Callable[..., Mapping[str, Any]],
    base: NetworkConfig,
    point: SweepPoint,
) -> dict[str, Any]:
    """Run one point; exceptions become a failed record, never propagate."""
    start = time.perf_counter()
    try:
        cfg = base.with_(**{**point.overrides, "seed": point.seed})
        out = runner(cfg, **point.kwargs) if point.kwargs else runner(cfg)
        rec = dict(point.coords)
        rec.update(out)
    except Exception as exc:
        return _failed_record(
            point, f"{type(exc).__name__}: {exc}", time.perf_counter() - start
        )
    rec["wall_seconds"] = time.perf_counter() - start
    return rec


def _load_journal(journal, points: Sequence[SweepPoint]) -> dict[int, dict[str, Any]]:
    """Completed records from a journal, keyed by point index.

    Entries are validated against the current enumeration: an index outside
    the sweep or coordinates that no longer match mean the journal belongs
    to a different sweep, and resuming from it would silently mix records —
    refuse instead.
    """
    by_index = {p.index: p for p in points}
    completed: dict[int, dict[str, Any]] = {}
    for entry in read_jsonl(journal):
        if "index" not in entry or "record" not in entry:
            continue
        index = entry["index"]
        point = by_index.get(index)
        if point is None:
            raise ValueError(
                f"journal {journal} has point index {index} outside this "
                f"{len(points)}-point sweep; it belongs to a different sweep"
            )
        if entry.get("point") != _jsonable(point.coords):
            raise ValueError(
                f"journal {journal} point {index} has coordinates "
                f"{entry.get('point')!r}, but this sweep's point {index} is "
                f"{_jsonable(point.coords)!r}; refusing to resume across "
                "changed axes"
            )
        completed[index] = entry["record"]
    return completed


def _run_pool(
    pending: Sequence[SweepPoint],
    runner: Callable[..., Mapping[str, Any]],
    base: NetworkConfig,
    n_workers: int,
    point_timeout: float | None,
    emit: Callable[[SweepPoint, dict[str, Any]], None],
) -> None:
    """Execute ``pending`` on a process pool, emitting records as they land.

    Submissions are windowed to ``2 * n_workers`` outstanding futures so a
    submitted point starts (almost) immediately — which is what makes the
    per-point ``point_timeout`` meaningful — and so huge sweeps don't pin
    every argument tuple in memory at once.
    """
    queue = deque(pending)
    inflight: dict[Future, tuple[SweepPoint, float]] = {}
    broken: str | None = None
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        while queue or inflight:
            while queue and len(inflight) < 2 * n_workers and broken is None:
                point = queue.popleft()
                try:
                    future = pool.submit(_execute_point, runner, base, point)
                except BrokenProcessPool as exc:
                    broken = f"worker pool broke: {exc}"
                    emit(point, _failed_record(point, broken))
                    break
                inflight[future] = (point, time.monotonic())
            if broken is not None:
                # The pool is unusable; fail everything still queued/running.
                for future, (point, _) in inflight.items():
                    future.cancel()
                    emit(point, _failed_record(point, broken))
                inflight.clear()
                for point in queue:
                    emit(point, _failed_record(point, broken))
                queue.clear()
                break
            done, _ = wait(
                list(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for future in done:
                point, _ = inflight.pop(future)
                try:
                    record = future.result()
                except BrokenProcessPool as exc:
                    broken = f"worker process died: {exc}"
                    record = _failed_record(point, broken)
                except Exception as exc:  # e.g. unpicklable runner output
                    record = _failed_record(point, f"{type(exc).__name__}: {exc}")
                emit(point, record)
            if point_timeout is not None:
                for future, (point, submitted) in list(inflight.items()):
                    if now - submitted <= point_timeout or future.done():
                        continue
                    # Can't preempt a running worker; abandon its eventual
                    # result and record the timeout.
                    future.cancel()
                    del inflight[future]
                    emit(
                        point,
                        _failed_record(
                            point,
                            f"TimeoutError: point exceeded {point_timeout:g}s",
                            now - submitted,
                        ),
                    )


def run_sweep(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, Any]],
    *,
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
    n_workers: int = 1,
    journal=None,
    resume: bool = False,
    point_timeout: float | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    derive_seeds: bool = True,
) -> list[dict[str, Any]]:
    """Run ``runner`` over every sweep point; collect records in canonical order.

    Parameters mirror :func:`repro.core.sweep.sweep` plus the executor
    knobs described in the module docstring.  ``journal`` names the
    JSON-lines checkpoint file; with ``resume=False`` an existing journal
    is truncated (a fresh sweep), with ``resume=True`` its points are
    skipped and only missing ones run.  ``point_timeout`` (seconds, pool
    mode only) marks an overlong point failed without killing the sweep.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    points = enumerate_points(base, axes, extra_axes, derive_seeds=derive_seeds)
    results: dict[int, dict[str, Any]] = {}
    by_index = {p.index: p for p in points}
    if journal is not None:
        if resume:
            results.update(_load_journal(journal, points))
            # Rewrite the journal with only the valid entries: a partial
            # trailing line left by a crash has no newline, and appending
            # straight after it would corrupt the next record.
            open(journal, "w").close()
            append_jsonl(
                (
                    {
                        "index": index,
                        "point": _jsonable(by_index[index].coords),
                        "record": record,
                    }
                    for index, record in sorted(results.items())
                ),
                journal,
            )
        else:
            open(journal, "w").close()
    pending = [p for p in points if p.index not in results]

    start = time.monotonic()
    completed_in_run = 0

    def emit(point: SweepPoint, record: dict[str, Any]) -> None:
        nonlocal completed_in_run
        results[point.index] = record
        completed_in_run += 1
        if journal is not None:
            append_jsonl(
                {"index": point.index, "point": _jsonable(point.coords), "record": record},
                journal,
            )
        if progress is not None:
            elapsed = time.monotonic() - start
            rate = completed_in_run / elapsed if elapsed > 0 else 0.0
            left = len(points) - len(results)
            progress(
                SweepProgress(
                    done=len(results),
                    total=len(points),
                    failed=sum(1 for r in results.values() if r.get("failed")),
                    elapsed=elapsed,
                    rate=rate,
                    eta=left / rate if rate > 0 else float("inf"),
                )
            )

    if n_workers == 1:
        for point in pending:
            emit(point, _execute_point(runner, base, point))
    else:
        _run_pool(pending, runner, base, n_workers, point_timeout, emit)
    return [results[p.index] for p in points]
