"""Parallel sweep executor: process pools, journaling, checkpoint/resume.

The paper's whole pitch is cheap bulk evaluation of design points (minutes
of synthetic simulation against 88.5-hour GEMS runs), and the sweep driver
is the hot path that delivers it.  This module runs the cartesian product
of sweep axes through a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Determinism.**  Every point gets a child seed derived from the base
  config's seed and the point's coordinates via :func:`repro.rng.sweep_seed`.
  The derivation is independent of enumeration order and worker assignment,
  so a parallel run produces records bit-identical to a serial run (modulo
  the per-point ``wall_seconds`` timing field), returned in the canonical
  enumeration order regardless of completion order.
* **Checkpoint/resume.**  With ``journal=`` set, each completed point is
  appended to a JSON-lines file as it finishes (via
  :func:`repro.analysis.io.append_jsonl`).  Re-running with ``resume=True``
  reloads the journal, skips every journaled point, and executes only the
  missing ones; a journal truncated mid-line by a crash parses cleanly.
* **Fault isolation.**  A runner that raises — or a worker process that
  dies, or a point that exceeds ``point_timeout`` — yields a record marked
  ``failed=True`` with the exception string under ``"error"`` instead of
  killing the sweep; every other point still completes.
* **Self-healing.**  *Transient* failures — a worker process dying, or a
  run aborted by the engine watchdog (:class:`SimulationStalled`) — are
  retried up to ``max_retries`` times with capped exponential backoff and
  jitter before the point is recorded as failed.  Deterministic runner
  exceptions are **not** retried: the same config and seed would fail the
  same way, so retrying only burns CPU.  A point that exceeds
  ``point_timeout`` gets its worker *killed* (the whole pool is torn down
  and rebuilt; innocent in-flight points are resubmitted and re-run
  deterministically), so a hung simulation cannot occupy a pool slot for
  the rest of the sweep.  The returned :class:`SweepRecords` carries a
  :class:`SweepHealth` summary (ok / failed / retried / timed-out /
  worker-death counts), and a KeyboardInterrupt flushes that summary to
  the journal before re-raising so a killed sweep remains resumable.
* **Observability.**  A ``progress`` callback receives a
  :class:`SweepProgress` (points done/total/failed, rate, ETA) after every
  completed point.

``n_workers=1`` (the default) runs everything in-process with no pool, so
lambdas and closures keep working for quick interactive sweeps; with
``n_workers > 1`` the runner and its outputs must be picklable (a
module-level function, or :func:`functools.partial` over one).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from .. import rng
from ..analysis.io import append_jsonl, canonical_json, read_jsonl
from ..config import NetworkConfig
from . import cache as result_cache
from .resilience import RetryPolicy, SimulationStalled

__all__ = [
    "SweepPoint",
    "SweepProgress",
    "SweepHealth",
    "SweepRecords",
    "enumerate_points",
    "run_sweep",
    "sweep_fingerprint",
    "check_journal_fingerprint",
]

#: Seconds between pool polls; bounds timeout-detection latency.
_POLL_SECONDS = 0.05

#: Upper bound on a single retry backoff sleep (seconds).
_MAX_BACKOFF = 5.0

#: ``error_kind`` values eligible for retry (transient by nature).
_TRANSIENT_KINDS = frozenset({"stalled", "worker_death"})


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: its canonical index, coordinates, and seed."""

    #: Position in the canonical enumeration order (journal key).
    index: int
    #: Config-field overrides applied via ``base.with_(**overrides)``.
    overrides: Mapping[str, Any]
    #: Extra-axis values passed to the runner as keyword arguments.
    kwargs: Mapping[str, Any]
    #: Seed the point's config carries (derived or explicit).
    seed: int

    @property
    def coords(self) -> dict[str, Any]:
        """All axis coordinates (config overrides then extra axes)."""
        return {**self.overrides, **self.kwargs}


@dataclass(frozen=True)
class SweepProgress:
    """Progress snapshot handed to the ``progress`` callback per point.

    ``rate`` and ``eta`` are computed over points completed in *this* run
    (resumed journal entries count toward ``done`` but not the rate, so the
    ETA stays honest after a resume).  ``eta`` is ``inf`` until the first
    point of the run completes.
    """

    done: int
    total: int
    failed: int
    elapsed: float
    rate: float
    eta: float

    @property
    def remaining(self) -> int:
        return self.total - self.done


@dataclass
class SweepHealth:
    """Per-sweep health summary: how the run degraded, if it did.

    ``ok + failed == total`` for a sweep that ran to the end; ``retried``
    counts retry *attempts* (a point retried twice adds two), ``timed_out``
    and ``stalled`` break the failures down by cause, ``worker_deaths``
    counts pool-rebuild events, and ``interrupted`` marks a sweep cut short
    by KeyboardInterrupt (the summary is flushed to the journal first).
    """

    total: int = 0
    ok: int = 0
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    stalled: int = 0
    worker_deaths: int = 0
    interrupted: bool = False
    #: points satisfied from / missed by the result cache (0/0 = no cache)
    cache_hits: int = 0
    cache_misses: int = 0
    #: service-mode counters: worker quarantine events, and completions for
    #: leases that had already expired or been re-assigned (dropped — the
    #: re-leased run's record is authoritative, and identical anyway).
    quarantined: int = 0
    stale_results: int = 0

    def summary(self) -> str:
        parts = [f"{self.ok}/{self.total} ok"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.timed_out:
            parts.append(f"{self.timed_out} timed out")
        if self.stalled:
            parts.append(f"{self.stalled} stalled")
        if self.retried:
            parts.append(f"{self.retried} retries")
        if self.worker_deaths:
            parts.append(f"{self.worker_deaths} worker deaths")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantines")
        if self.stale_results:
            parts.append(f"{self.stale_results} stale results")
        if self.cache_hits or self.cache_misses:
            parts.append(f"{self.cache_hits}/{self.cache_hits + self.cache_misses} cache hits")
        if self.interrupted:
            parts.append("interrupted")
        return ", ".join(parts)


class SweepRecords(list):
    """The records of one sweep (a plain list) plus its health summary.

    Subclassing ``list`` keeps every existing consumer working — indexing,
    iteration, ``len`` — while ``.health`` carries the
    :class:`SweepHealth` for callers that want it.
    """

    def __init__(self, records=(), health: SweepHealth | None = None):
        super().__init__(records)
        self.health = health if health is not None else SweepHealth()


def _jsonable(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """A mapping as it will read back from a JSON journal (tuples→lists…)."""
    return json.loads(json.dumps(dict(mapping), default=str))


def enumerate_points(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
    *,
    derive_seeds: bool = True,
) -> list[SweepPoint]:
    """The cartesian product of ``axes`` × ``extra_axes`` in canonical order.

    The order is the one the serial driver has always used: the outer
    product walks the config axes in mapping order, the inner product walks
    the extra axes.  With ``derive_seeds`` each point's seed comes from
    :func:`repro.rng.sweep_seed` over its full coordinates — unless
    ``"seed"`` is itself a swept config axis, in which case the explicit
    value wins (sweeping over seeds means the caller wants exactly those
    seeds).
    """
    axes = dict(axes)
    extra_axes = dict(extra_axes or {})
    overlap = set(axes) & set(extra_axes)
    if overlap:
        raise ValueError(f"axes and extra_axes share names: {sorted(overlap)}")
    names = list(axes)
    extra_names = list(extra_axes)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo))
        for extra_combo in itertools.product(*(extra_axes[n] for n in extra_names)):
            kwargs = dict(zip(extra_names, extra_combo))
            if "seed" in overrides:
                seed = int(overrides["seed"])
            elif derive_seeds:
                seed = rng.sweep_seed(base.seed, {**overrides, **kwargs})
            else:
                seed = base.seed
            points.append(SweepPoint(len(points), overrides, kwargs, seed))
    return points


def _failed_record(
    point: SweepPoint, error: str, elapsed: float = 0.0, kind: str = "error"
) -> dict[str, Any]:
    rec = dict(point.coords)
    rec["failed"] = True
    rec["error"] = error
    rec["error_kind"] = kind
    rec["wall_seconds"] = elapsed
    return rec


def _execute_point(
    runner: Callable[..., Mapping[str, Any]],
    base: NetworkConfig,
    point: SweepPoint,
) -> dict[str, Any]:
    """Run one point; exceptions become a failed record, never propagate.

    ``error_kind`` classifies failures for the retry policy: ``"stalled"``
    (the engine watchdog aborted the run — transient, retried) versus
    ``"error"`` (a deterministic runner exception — never retried).  The
    stall record keeps only the first diagnosis line; the full snapshot is
    multi-line and belongs in logs, not in every journal record.
    """
    start = time.perf_counter()
    try:
        cfg = base.with_(**{**point.overrides, "seed": point.seed})
        out = runner(cfg, **point.kwargs) if point.kwargs else runner(cfg)
        rec = dict(point.coords)
        rec.update(out)
    except SimulationStalled as exc:
        first_line = str(exc).splitlines()[0]
        return _failed_record(
            point,
            f"SimulationStalled: {first_line}",
            time.perf_counter() - start,
            kind="stalled",
        )
    except Exception as exc:
        return _failed_record(
            point, f"{type(exc).__name__}: {exc}", time.perf_counter() - start
        )
    rec["wall_seconds"] = time.perf_counter() - start
    return rec


def _backoff_seconds(attempt: int, retry_backoff: float) -> float:
    """Capped exponential backoff with jitter for retry ``attempt`` (1-based).

    Kept as the unseeded historical entry point; the executor itself goes
    through a :class:`~repro.core.resilience.RetryPolicy`, whose jitter can
    be seeded (``run_sweep(seed_jitter=True)``).
    """
    return RetryPolicy(backoff=retry_backoff, max_backoff=_MAX_BACKOFF).delay(attempt)


def sweep_fingerprint(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
) -> str:
    """Identity of one sweep: resolved base config × axes × code version.

    The sha256 covers the base configuration, every axis (names and
    values), and the code-version salt of the simulation hot paths — so a
    journal written by one sweep is recognized (and a mismatched resume
    refused) after the config, the axes, or the simulator itself changed.
    The runner is deliberately *not* part of the identity: resuming with a
    wrapped or instrumented runner that produces the same records is a
    supported workflow (and the per-entry coordinate check still guards
    the points themselves).
    """
    payload = {
        "config": _jsonable(asdict(base)),
        "axes": _jsonable({k: list(v) for k, v in dict(axes).items()}),
        "extra_axes": _jsonable({k: list(v) for k, v in dict(extra_axes or {}).items()}),
        "salt": result_cache.cache_salt(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def check_journal_fingerprint(journal, fingerprint: str, *, force: bool = False) -> None:
    """Refuse to resume a journal recorded under a different fingerprint.

    The header is the ``{"sweep": {...}}`` line a journaling sweep writes
    first.  Journals from before fingerprints existed have no header and
    resume as they always did; a mismatched header means the config, axes,
    runner, or simulation code changed since the journal was written, and
    mixing old records with new runs would corrupt the sweep silently —
    fail with the reason instead, unless ``force`` explicitly overrides.
    """
    for entry in read_jsonl(journal):
        header = entry.get("sweep")
        if not isinstance(header, Mapping):
            continue
        recorded = header.get("fingerprint")
        if recorded is not None and recorded != fingerprint and not force:
            raise ValueError(
                f"journal {journal} was written by a different sweep "
                f"(fingerprint {str(recorded)[:12]}… != {fingerprint[:12]}…): "
                "the config, axes, runner, or simulation code changed since "
                "it was recorded; pass resume_force=True (CLI --force-resume) "
                "to resume anyway, or start fresh with resume=False"
            )
        return


def _journal_header(fingerprint: str, total: int) -> dict[str, Any]:
    from .. import __version__

    return {"sweep": {"fingerprint": fingerprint, "total": total, "version": __version__}}


def _load_journal(journal, points: Sequence[SweepPoint]) -> dict[int, dict[str, Any]]:
    """Completed records from a journal, keyed by point index.

    Entries are validated against the current enumeration: an index outside
    the sweep or coordinates that no longer match mean the journal belongs
    to a different sweep, and resuming from it would silently mix records —
    refuse instead.
    """
    by_index = {p.index: p for p in points}
    completed: dict[int, dict[str, Any]] = {}
    for entry in read_jsonl(journal):
        if "index" not in entry or "record" not in entry:
            continue
        index = entry["index"]
        point = by_index.get(index)
        if point is None:
            raise ValueError(
                f"journal {journal} has point index {index} outside this "
                f"{len(points)}-point sweep; it belongs to a different sweep"
            )
        if entry.get("point") != _jsonable(point.coords):
            raise ValueError(
                f"journal {journal} point {index} has coordinates "
                f"{entry.get('point')!r}, but this sweep's point {index} is "
                f"{_jsonable(point.coords)!r}; refusing to resume across "
                "changed axes"
            )
        completed[index] = entry["record"]
    return completed


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, terminating its worker processes.

    ``ProcessPoolExecutor`` has no way to cancel one running task, so
    killing a hung worker means killing them all and rebuilding — the
    callers resubmit the innocent in-flight points, whose re-runs are
    deterministic (per-point derived seeds), so no result changes.
    """
    procs = getattr(pool, "_processes", None)
    processes = list(procs.values()) if procs else []
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.join(timeout=5.0)


def _run_pool(
    pending: Sequence[SweepPoint],
    runner: Callable[..., Mapping[str, Any]],
    base: NetworkConfig,
    n_workers: int,
    point_timeout: float | None,
    emit: Callable[[SweepPoint, dict[str, Any]], None],
    health: SweepHealth,
    policy: RetryPolicy,
    pending_attempts: Optional[Sequence[int]] = None,
) -> None:
    """Execute ``pending`` on a process pool, emitting records as they land.

    Submissions are windowed so huge sweeps don't pin every argument tuple
    in memory at once.  With ``point_timeout`` set the window shrinks to
    exactly ``n_workers`` outstanding futures, so every in-flight future is
    actually *executing* — timing a future from submission would otherwise
    falsely expire points merely queued behind a slow sibling.

    Self-healing behavior:

    * a point over ``point_timeout`` → its worker is killed (pool teardown
      + rebuild), the point is recorded as timed out (no retry — the same
      deterministic run would hang again), innocent in-flight points are
      resubmitted at their current attempt count;
    * a dead worker (``BrokenProcessPool``) → pool rebuild; every point
      that was in flight is retried with backoff, since any of them may
      have been the victim and re-running a completed-but-unreported point
      is deterministic;
    * a record with a transient ``error_kind`` (``"stalled"``) → retried
      with backoff up to ``max_retries`` times.
    """
    # Queue entries are (point, attempt); ``delayed`` holds backoff retries
    # as (ready_monotonic, point, attempt).  ``pending_attempts`` lets the
    # service's local-fallback path resume points mid-retry-budget.
    attempts = pending_attempts if pending_attempts is not None else [0] * len(pending)
    queue: deque[tuple[SweepPoint, int]] = deque(zip(pending, attempts))
    delayed: list[tuple[float, SweepPoint, int]] = []
    inflight: dict[Future, tuple[SweepPoint, int, float]] = {}
    window = n_workers if point_timeout is not None else 2 * n_workers
    pool = ProcessPoolExecutor(max_workers=n_workers)

    def retry_or_fail(
        point: SweepPoint, attempt: int, record: dict[str, Any], *, now: float
    ) -> None:
        """Requeue a transient failure with backoff, or emit it as final."""
        if attempt < policy.max_retries:
            health.retried += 1
            delayed.append((now + policy.delay(attempt + 1), point, attempt + 1))
        else:
            emit(point, record)

    def rebuild_pool(reason_points: list[tuple[SweepPoint, int]]) -> None:
        """Kill the pool, requeue ``reason_points`` at their attempts, rebuild."""
        nonlocal pool
        _kill_pool(pool)
        inflight.clear()
        queue.extendleft(reversed(reason_points))
        pool = ProcessPoolExecutor(max_workers=n_workers)

    try:
        while queue or inflight or delayed:
            now = time.monotonic()
            if delayed:
                ready = [e for e in delayed if e[0] <= now]
                if ready:
                    delayed = [e for e in delayed if e[0] > now]
                    for _, point, attempt in ready:
                        queue.append((point, attempt))
            while queue and len(inflight) < window:
                point, attempt = queue.popleft()
                try:
                    future = pool.submit(_execute_point, runner, base, point)
                except BrokenProcessPool:
                    # Same treatment as a death detected at result time:
                    # every in-flight point may be the victim, retry them.
                    health.worker_deaths += 1
                    for p, a, _ in list(inflight.values()):
                        retry_or_fail(
                            p,
                            a,
                            _failed_record(p, "worker process died", kind="worker_death"),
                            now=time.monotonic(),
                        )
                    rebuild_pool([(point, attempt)])
                    break
                inflight[future] = (point, attempt, time.monotonic())
            if not inflight:
                if delayed:
                    time.sleep(
                        min(max(min(e[0] for e in delayed) - now, 0.0), 0.5)
                    )
                continue
            done, _ = wait(
                list(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            broken = False
            for future in done:
                point, attempt, _ = inflight.pop(future)
                try:
                    record = future.result()
                except BrokenProcessPool:
                    # Handled below together with the other in-flight points.
                    broken = True
                    inflight[future] = (point, attempt, now)
                    break
                except Exception as exc:  # e.g. unpicklable runner output
                    record = _failed_record(point, f"{type(exc).__name__}: {exc}")
                if policy.is_transient(record.get("error_kind")):
                    retry_or_fail(point, attempt, record, now=now)
                else:
                    emit(point, record)
            if broken:
                # A worker died.  Any in-flight point may be the victim;
                # retry them all (deterministic re-runs), each charged one
                # attempt so a point that reliably kills its worker — e.g.
                # an OOM — converges to a failed record instead of cycling.
                health.worker_deaths += 1
                for point, attempt, _ in list(inflight.values()):
                    record = _failed_record(
                        point, "worker process died", kind="worker_death"
                    )
                    retry_or_fail(point, attempt, record, now=now)
                rebuild_pool([])
                continue
            if point_timeout is not None:
                overdue = [
                    (future, point, attempt, started)
                    for future, (point, attempt, started) in inflight.items()
                    if now - started > point_timeout and not future.done()
                ]
                if overdue:
                    # Kill the hung worker(s): tear the pool down and
                    # resubmit the innocent in-flight points.
                    for future, point, attempt, started in overdue:
                        del inflight[future]
                        emit(
                            point,
                            _failed_record(
                                point,
                                f"TimeoutError: point exceeded {point_timeout:g}s"
                                " (worker killed)",
                                now - started,
                                kind="timeout",
                            ),
                        )
                    innocents = [
                        (point, attempt) for point, attempt, _ in inflight.values()
                    ]
                    rebuild_pool(innocents)
    finally:
        _kill_pool(pool)


def run_sweep(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, Any]],
    *,
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
    n_workers: int = 1,
    journal=None,
    resume: bool = False,
    resume_force: bool = False,
    point_timeout: float | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    derive_seeds: bool = True,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    seed_jitter: bool = False,
    cache=None,
) -> SweepRecords:
    """Run ``runner`` over every sweep point; collect records in canonical order.

    Parameters mirror :func:`repro.core.sweep.sweep` plus the executor
    knobs described in the module docstring.  ``journal`` names the
    JSON-lines checkpoint file; with ``resume=False`` an existing journal
    is truncated (a fresh sweep), with ``resume=True`` its points are
    skipped and only missing ones run.  ``point_timeout`` (seconds, pool
    mode only) kills the hung worker and marks the point failed without
    killing the sweep.  Transient failures (worker death, watchdog stalls)
    are retried up to ``max_retries`` times with capped exponential backoff
    starting at ``retry_backoff`` seconds; the returned
    :class:`SweepRecords` list carries the sweep's :class:`SweepHealth`
    under ``.health``.

    ``cache`` names a content-addressed result store (a directory path or
    a :class:`repro.core.cache.ResultCache`).  Each point is looked up by
    its fingerprint — resolved config, kwargs, runner identity, code salt
    — *before* it is dispatched; hits replay the stored record (journal
    and progress included, counted in ``health.cache_hits``), misses run
    and are written back on success only.  ``REPRO_NO_CACHE=1`` disables
    the cache regardless of this argument; records are bit-identical with
    the cache cold, warm, or off.

    A journaling sweep writes a header line first — the sweep's
    :func:`sweep_fingerprint` over config × axes × runner × code salt —
    and a resume against a journal whose header differs fails with the
    reason instead of silently mixing records; ``resume_force=True``
    overrides the check (pre-header journals resume as they always did).
    ``seed_jitter=True`` derives the retry backoff jitter from the sweep's
    seed (via :func:`repro.rng.spawn`) instead of the process-global
    :mod:`random`, making self-healing retry timelines deterministic; the
    default keeps the historical unseeded jitter.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if point_timeout is not None and n_workers == 1:
        raise ValueError(
            "point_timeout needs a process pool (n_workers > 1): the serial "
            "driver runs points in-process and cannot kill a hung one"
        )
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    points = enumerate_points(base, axes, extra_axes, derive_seeds=derive_seeds)
    results: dict[int, dict[str, Any]] = {}
    by_index = {p.index: p for p in points}
    fingerprint = sweep_fingerprint(base, axes, extra_axes)
    if journal is not None:
        if resume:
            check_journal_fingerprint(journal, fingerprint, force=resume_force)
            results.update(_load_journal(journal, points))
            # Rewrite the journal with only the valid entries: a partial
            # trailing line left by a crash has no newline, and appending
            # straight after it would corrupt the next record.
            open(journal, "w").close()
            append_jsonl(_journal_header(fingerprint, len(points)), journal)
            append_jsonl(
                (
                    {
                        "index": index,
                        "point": _jsonable(by_index[index].coords),
                        "record": record,
                    }
                    for index, record in sorted(results.items())
                ),
                journal,
            )
        else:
            open(journal, "w").close()
            append_jsonl(_journal_header(fingerprint, len(points)), journal)
    pending = [p for p in points if p.index not in results]
    health = SweepHealth(total=len(points))

    # Resumed journal entries are counted exactly once, HERE — before any
    # cache prefill or replay runs.  The invariant the cache-hit summary
    # depends on: ``pending`` excludes every resumed index, so a resumed
    # point can never appear in ``cache_hit_records`` and be re-counted as
    # a cache hit ("N/M cache hits" covers fresh points only).
    for record in results.values():
        if record.get("failed"):
            health.failed += 1
        else:
            health.ok += 1

    # Cache lookup happens before dispatch: hits never touch the pool.
    # Misses remember their key so ``emit`` can write back on success.
    store = result_cache.resolve_cache(cache)
    cache_keys: dict[int, str] = {}
    cache_meta: dict[int, dict[str, Any]] = {}
    cache_hit_records: list[tuple[SweepPoint, dict[str, Any]]] = []
    if store is not None:
        salt = result_cache.cache_salt()
        spec = result_cache.runner_spec(runner)
        dotted, runner_kwargs = result_cache.provenance(spec)
        misses: list[SweepPoint] = []
        for point in pending:
            cfg_dict = asdict(base.with_(**{**point.overrides, "seed": point.seed}))
            key = result_cache.point_key(cfg_dict, point.kwargs, spec, salt=salt)
            hit = store.get(key)
            if hit is not None:
                cache_hit_records.append((point, hit))
                continue
            misses.append(point)
            cache_keys[point.index] = key
            cache_meta[point.index] = {
                "context": "sweep",
                "runner_spec": {"runner": dotted} if dotted else {},
                "runner_kwargs": runner_kwargs,
                "config": cfg_dict,
                "kwargs": dict(point.kwargs),
                "coords": sorted(point.coords),
            }
        health.cache_hits = len(cache_hit_records)
        health.cache_misses = len(misses)
        pending = misses

    start = time.monotonic()
    completed_in_run = 0

    def emit(point: SweepPoint, record: dict[str, Any]) -> None:
        nonlocal completed_in_run
        if point.index in results:
            # A record for this index was already accounted (journal
            # resume, or a duplicate replay): emitting again would
            # double-count ok/failed and the "N/M cache hits" summary.
            # Mirrors the service controller's ``_emit`` guard.
            return
        results[point.index] = record
        completed_in_run += 1
        if record.get("failed"):
            health.failed += 1
            kind = record.get("error_kind")
            if kind == "timeout":
                health.timed_out += 1
            elif kind == "stalled":
                health.stalled += 1
        else:
            health.ok += 1
            # Write-back on success only: failed/stalled/timed-out points
            # must re-run next time, never replay.  Cache hits carry no
            # pending key, so they naturally skip the write.
            if store is not None:
                key = cache_keys.pop(point.index, None)
                if key is not None:
                    store.put(key, record, cache_meta.pop(point.index, None))
        if journal is not None:
            append_jsonl(
                {"index": point.index, "point": _jsonable(point.coords), "record": record},
                journal,
            )
        if progress is not None:
            elapsed = time.monotonic() - start
            rate = completed_in_run / elapsed if elapsed > 0 else 0.0
            left = len(points) - len(results)
            progress(
                SweepProgress(
                    done=len(results),
                    total=len(points),
                    failed=sum(1 for r in results.values() if r.get("failed")),
                    elapsed=elapsed,
                    rate=rate,
                    eta=left / rate if rate > 0 else float("inf"),
                )
            )

    # Replay cache hits through ``emit`` so the journal, progress callback,
    # and health counters see them exactly like freshly computed points.
    for point, record in cache_hit_records:
        emit(point, record)

    policy = (
        RetryPolicy.seeded(base.seed, max_retries=max_retries, backoff=retry_backoff)
        if seed_jitter
        else RetryPolicy(max_retries=max_retries, backoff=retry_backoff)
    )
    try:
        if n_workers == 1:
            for point in pending:
                record = _execute_point(runner, base, point)
                attempt = 0
                while policy.should_retry(record.get("error_kind"), attempt):
                    attempt += 1
                    health.retried += 1
                    time.sleep(policy.delay(attempt))
                    record = _execute_point(runner, base, point)
                emit(point, record)
        else:
            _run_pool(
                pending,
                runner,
                base,
                n_workers,
                point_timeout,
                emit,
                health,
                policy,
            )
    except KeyboardInterrupt:
        # Flush the health summary so the journal tells the whole story;
        # per-point records are already flushed as they land, which is what
        # makes ``resume=True`` after a Ctrl-C work.
        health.interrupted = True
        if journal is not None:
            append_jsonl({"health": asdict(health)}, journal)
        raise
    finally:
        if store is not None:
            store.flush_stats()
    return SweepRecords((results[p.index] for p in points), health)
