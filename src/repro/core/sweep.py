"""Design-space sweep driver.

The framework's reason to exist is fast design-space exploration (the paper
contrasts minutes of synthetic simulation against 88.5-hour GEMS runs).
:func:`sweep` runs a callable over the cartesian product of configuration
overrides and collects flat result records, ready for tabulation or
correlation.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Mapping, Sequence

from ..config import NetworkConfig

__all__ = ["sweep", "product_configs"]


def product_configs(
    base: NetworkConfig, axes: Mapping[str, Sequence[Any]]
) -> list[tuple[dict[str, Any], NetworkConfig]]:
    """All configurations in the cartesian product of ``axes`` overrides.

    Returns ``(point, config)`` pairs where ``point`` maps axis name to the
    chosen value — e.g. ``axes={"router_delay": (1, 2, 4)}`` yields three
    configs differing only in tr.
    """
    names = list(axes)
    out = []
    for combo in itertools.product(*(axes[name] for name in names)):
        point = dict(zip(names, combo))
        out.append((point, base.with_(**point)))
    return out


def sweep(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    runner: Callable[[NetworkConfig], Mapping[str, Any]],
    *,
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
) -> list[dict[str, Any]]:
    """Run ``runner`` over every configuration point; collect records.

    ``axes`` vary :class:`NetworkConfig` fields.  ``extra_axes`` vary
    non-config parameters (e.g. the batch model's ``m``): their values are
    passed to ``runner`` as keyword arguments.  Each record contains the
    point's coordinates, the runner's outputs, and the wall-clock seconds
    the point took (the paper's speed claim is itself an experiment).
    """
    extra_axes = dict(extra_axes or {})
    extra_names = list(extra_axes)
    records: list[dict[str, Any]] = []
    for point, cfg in product_configs(base, axes):
        for combo in itertools.product(*(extra_axes[name] for name in extra_names)):
            kwargs = dict(zip(extra_names, combo))
            start = time.perf_counter()
            out = runner(cfg, **kwargs) if kwargs else runner(cfg)
            elapsed = time.perf_counter() - start
            rec = dict(point)
            rec.update(kwargs)
            rec.update(out)
            rec["wall_seconds"] = elapsed
            records.append(rec)
    return records
