"""Design-space sweep driver.

The framework's reason to exist is fast design-space exploration (the paper
contrasts minutes of synthetic simulation against 88.5-hour GEMS runs).
:func:`sweep` runs a callable over the cartesian product of configuration
overrides and collects flat result records, ready for tabulation or
correlation.

Execution is delegated to :mod:`repro.core.parallel`: ``n_workers`` fans
points out over a process pool (with per-point seeds derived via
:func:`repro.rng.sweep_seed`, so serial and parallel runs agree
bit-for-bit), ``journal``/``resume`` checkpoint completed points to a
JSON-lines file, and ``progress`` observes completion rate and ETA.  The
default ``n_workers=1`` runs in-process, where any callable (lambdas
included) works; pool mode needs a picklable runner.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..config import NetworkConfig
from .parallel import SweepProgress, enumerate_points, run_sweep

__all__ = ["sweep", "product_configs"]


def product_configs(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    *,
    derive_seeds: bool = False,
) -> list[tuple[dict[str, Any], NetworkConfig]]:
    """All configurations in the cartesian product of ``axes`` overrides.

    Returns ``(point, config)`` pairs where ``point`` maps axis name to the
    chosen value — e.g. ``axes={"router_delay": (1, 2, 4)}`` yields three
    configs differing only in tr.  With ``derive_seeds`` each config also
    carries a per-point child seed (:func:`repro.rng.sweep_seed`); the
    default keeps the base seed on every config, matching the historical
    behaviour the benchmark harnesses were calibrated against.
    """
    return [
        (dict(p.overrides), base.with_(**{**p.overrides, "seed": p.seed}))
        for p in enumerate_points(base, axes, derive_seeds=derive_seeds)
    ]


def sweep(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    runner: Callable[[NetworkConfig], Mapping[str, Any]],
    *,
    extra_axes: Mapping[str, Sequence[Any]] | None = None,
    n_workers: int = 1,
    journal=None,
    resume: bool = False,
    resume_force: bool = False,
    point_timeout: float | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    derive_seeds: bool = True,
    seed_jitter: bool = False,
    cache=None,
) -> list[dict[str, Any]]:
    """Run ``runner`` over every configuration point; collect records.

    ``axes`` vary :class:`NetworkConfig` fields.  ``extra_axes`` vary
    non-config parameters (e.g. the batch model's ``m``): their values are
    passed to ``runner`` as keyword arguments.  Each record contains the
    point's coordinates, the runner's outputs, and the wall-clock seconds
    the point took (the paper's speed claim is itself an experiment).

    A runner that raises produces a record with ``failed=True`` and the
    exception string under ``"error"`` while the rest of the sweep
    completes; see :func:`repro.core.parallel.run_sweep` for the executor
    knobs (``n_workers``, ``journal``/``resume``, ``point_timeout``,
    ``progress``).  ``cache`` points at a content-addressed result store
    (:mod:`repro.core.cache`): previously computed points replay from disk
    instead of re-simulating, bit-identically.
    """
    return run_sweep(
        base,
        axes,
        runner,
        extra_axes=extra_axes,
        n_workers=n_workers,
        journal=journal,
        resume=resume,
        resume_force=resume_force,
        point_timeout=point_timeout,
        progress=progress,
        derive_seeds=derive_seeds,
        seed_jitter=seed_jitter,
        cache=cache,
    )
