"""Pluggable per-cycle instrumentation for any engine-driven run.

A :class:`Probe` observes the network every cycle and contributes fields to
a *windowed record*: every ``interval`` cycles the owning :class:`ProbeSet`
flushes one flat dict merging each probe's fields with the window bounds.
Records are JSON-native (ints, floats, lists), so they stream to disk as
JSON-lines via :func:`repro.analysis.io.append_jsonl` and round-trip through
:func:`repro.analysis.io.read_jsonl`; ``repro.analysis.ascii_plot.
probe_heatmap`` renders the per-node series as a quick terminal heatmap.

Probes are strictly opt-in: a run with ``probes=None`` executes the same
cycle loop with a single ``is None`` branch — no per-cycle allocations, no
hooks installed.  The only always-on costs in the network itself are the
``injection_stalls`` integer (incremented on backpressure events only) and
one ``None`` check per link traversal.

Built-in probes (compose freely, or subclass :class:`Probe`):

* :class:`ChannelUtilizationProbe` — per-link flit traversals (via the
  network's ``_flit_hook``), per-node ejected/injected flit deltas, and
  aggregate link utilization.  Ejected totals reconcile exactly with
  ``total_flits_delivered``.
* :class:`VCOccupancyProbe` — per-node max single-VC buffer occupancy,
  sampled each cycle; bounded by ``vc_buffer_size`` by construction.
* :class:`InjectionStallProbe` — source backpressure events per window.
* :class:`InFlightProbe` — packets-in-flight time series (avg/peak/last).
* :class:`ClassLatencyProbe` — per-traffic-class delivered packets, flits,
  and average latency per window (registry name ``classes``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..analysis.io import append_jsonl
from ..network.base import NetworkLike

__all__ = [
    "Probe",
    "ChannelUtilizationProbe",
    "VCOccupancyProbe",
    "InjectionStallProbe",
    "InFlightProbe",
    "ClassLatencyProbe",
    "ProbeSet",
    "PROBE_REGISTRY",
    "build_probes",
]


class Probe:
    """One instrumentation dimension; subclass and override the hooks.

    Lifecycle: ``attach`` once per run, ``on_cycle`` every cycle,
    ``flush`` at each window boundary (returning this window's fields and
    resetting window state), ``detach`` at run end.
    """

    #: prefix for this probe's record fields (subclasses set it)
    name = "probe"

    def attach(self, net: NetworkLike) -> None:
        pass

    def detach(self, net: NetworkLike) -> None:
        pass

    def on_cycle(self, net: NetworkLike, now: int, delivered: list) -> None:
        pass

    def on_idle_gap(self, net: NetworkLike, start: int, end: int) -> None:
        """Observe fast-forwarded idle cycles ``[start, end)`` at once.

        The engine's idle-cycle fast-forward skips cycles during which the
        network provably does nothing; this hook keeps probe output
        bit-identical to the dense loop.  The default replays
        :meth:`on_cycle` per skipped cycle (always correct for custom
        probes); built-ins override it with O(1) batch updates because an
        idle network's samples are all zeros.
        """
        for now in range(start, end):
            self.on_cycle(net, now, _NO_DELIVERIES)

    def flush(self, net: NetworkLike, window_cycles: int) -> dict:
        """Return this window's fields; reset per-window state."""
        return {}


#: shared empty deliveries list for replayed idle cycles (never mutated)
_NO_DELIVERIES: list = []


class ChannelUtilizationProbe(Probe):
    """Per-link flit traversals plus per-node injection/ejection deltas.

    Fields: ``link_flits`` (total flit-hops in the window), ``link_util``
    (flit-hops / (links × cycles)), ``max_link_util``, ``per_channel``
    (flits per directed channel, ordered as ``net.probe_channels()``),
    ``ejected_flits`` / ``injected_flits`` (window deltas reconciling with
    the network's cumulative counters), and ``per_node_ejected``.
    On fabrics with no channels (the ideal network) the per-link fields
    are zero and the per-node deltas still work.
    """

    name = "channel"

    def __init__(self) -> None:
        self._counts: Optional[np.ndarray] = None
        self._index: dict = {}
        self._ej_base: Optional[np.ndarray] = None
        self._inj_base: Optional[np.ndarray] = None
        self._delivered_base = 0

    def attach(self, net: NetworkLike) -> None:
        channels = list(net.probe_channels())
        self._index = {
            (ch.src, ch.out_port): i for i, ch in enumerate(channels)
        }
        self._counts = np.zeros(max(len(channels), 1), dtype=np.int64)
        self._num_channels = len(channels)
        self._ej_base = net.flit_ejections.copy()
        self._inj_base = net.flit_injections.copy()
        self._delivered_base = net.total_flits_delivered
        if self._num_channels:
            index = self._index
            counts = self._counts

            def hook(ch, vc, pkt, fidx, now, _index=index, _counts=counts):
                _counts[_index[(ch.src, ch.out_port)]] += 1

            net._flit_hook = hook

    def detach(self, net: NetworkLike) -> None:
        net._flit_hook = None

    def flush(self, net: NetworkLike, window_cycles: int) -> dict:
        counts = self._counts
        ej = net.flit_ejections
        inj = net.flit_injections
        ej_delta = ej - self._ej_base
        inj_delta = inj - self._inj_base
        delivered = net.total_flits_delivered - self._delivered_base
        self._ej_base = ej.copy()
        self._inj_base = inj.copy()
        self._delivered_base = net.total_flits_delivered
        nch = self._num_channels
        total = int(counts[:nch].sum()) if nch else 0
        denom = nch * window_cycles
        fields = {
            "link_flits": total,
            "link_util": total / denom if denom else 0.0,
            "max_link_util": (
                int(counts[:nch].max()) / window_cycles if nch and window_cycles else 0.0
            ),
            "per_channel": counts[:nch].tolist(),
            "ejected_flits": int(ej_delta.sum()),
            "injected_flits": int(inj_delta.sum()),
            "delivered_flits": delivered,
            "per_node_ejected": ej_delta.tolist(),
        }
        if nch:
            counts[:] = 0
        return fields


class VCOccupancyProbe(Probe):
    """Max single-VC buffer occupancy, per node, sampled every cycle.

    Fields: ``vc_occ_peak`` (worst VC depth seen anywhere this window),
    ``vc_occ_mean`` (mean over nodes of the per-cycle max, averaged over
    the window) and ``per_node_vc_peak``.
    """

    name = "vc"

    def __init__(self) -> None:
        self._peaks: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None
        self._sum = 0.0
        self._samples = 0

    def attach(self, net: NetworkLike) -> None:
        self._peaks = np.zeros(net.num_nodes, dtype=np.int64)
        self._scratch = np.zeros(net.num_nodes, dtype=np.int64)

    def on_cycle(self, net: NetworkLike, now: int, delivered: list) -> None:
        snap = net.probe_vc_occupancy(self._scratch)
        np.maximum(self._peaks, snap, out=self._peaks)
        self._sum += float(snap.mean())
        self._samples += 1

    def on_idle_gap(self, net: NetworkLike, start: int, end: int) -> None:
        # An idle network buffers nothing: every skipped sample is a zero
        # snapshot, so only the sample count advances.
        self._samples += end - start

    def flush(self, net: NetworkLike, window_cycles: int) -> dict:
        peaks = self._peaks
        fields = {
            "vc_occ_peak": int(peaks.max()),
            "vc_occ_mean": self._sum / self._samples if self._samples else 0.0,
            "per_node_vc_peak": peaks.tolist(),
        }
        peaks[:] = 0
        self._sum = 0.0
        self._samples = 0
        return fields


class InjectionStallProbe(Probe):
    """Source backpressure events (flits that could not stream) per window."""

    name = "stall"

    def __init__(self) -> None:
        self._base = 0

    def attach(self, net: NetworkLike) -> None:
        self._base = net.injection_stalls

    def flush(self, net: NetworkLike, window_cycles: int) -> dict:
        stalls = net.injection_stalls - self._base
        self._base = net.injection_stalls
        return {
            "injection_stalls": stalls,
            "stall_rate": stalls / window_cycles if window_cycles else 0.0,
        }


class InFlightProbe(Probe):
    """Packets-in-flight time series: window average, peak, and last sample."""

    name = "inflight"

    def __init__(self) -> None:
        self._sum = 0
        self._peak = 0
        self._last = 0
        self._samples = 0

    def on_cycle(self, net: NetworkLike, now: int, delivered: list) -> None:
        inflight = net.in_flight
        self._sum += inflight
        if inflight > self._peak:
            self._peak = inflight
        self._last = inflight
        self._samples += 1

    def on_idle_gap(self, net: NetworkLike, start: int, end: int) -> None:
        # Fast-forward only happens with zero packets in flight, so every
        # skipped sample is 0: sum/peak are unchanged, last becomes 0.
        self._last = 0
        self._samples += end - start

    def flush(self, net: NetworkLike, window_cycles: int) -> dict:
        fields = {
            "in_flight_avg": self._sum / self._samples if self._samples else 0.0,
            "in_flight_peak": self._peak,
            "in_flight_last": self._last,
        }
        self._sum = 0
        self._peak = 0
        self._samples = 0
        return fields


class ClassLatencyProbe(Probe):
    """Per-traffic-class delivery counts and latency, per window.

    Fields: ``class_packets`` / ``class_flits`` (deliveries per class this
    window) and ``class_avg_latency`` (mean creation-to-delivery latency per
    class, ``None`` for classes that delivered nothing — JSON ``null``, so
    records stay JSONL round-trippable).  The class registry is read off
    ``net.config.classes`` at attach; unregistered networks report a single
    class, and out-of-range packet class ids clamp to the last class — the
    same rule the arbiters apply.
    """

    name = "classes"

    def __init__(self, num_classes: Optional[int] = None) -> None:
        self._configured = num_classes
        self._n = 1
        self._packets: Optional[np.ndarray] = None
        self._flits: Optional[np.ndarray] = None
        self._lat_sum: Optional[np.ndarray] = None

    def attach(self, net: NetworkLike) -> None:
        n = self._configured
        if n is None:
            config = getattr(net, "config", None)
            classes = getattr(config, "classes", None)
            n = len(classes) if classes else 1
        self._n = n
        self._packets = np.zeros(n, dtype=np.int64)
        self._flits = np.zeros(n, dtype=np.int64)
        self._lat_sum = np.zeros(n, dtype=np.float64)

    def on_cycle(self, net: NetworkLike, now: int, delivered: list) -> None:
        if not delivered:
            return
        last = self._n - 1
        packets = self._packets
        flits = self._flits
        lat_sum = self._lat_sum
        for pkt in delivered:
            c = pkt.traffic_class
            if c > last:
                c = last
            packets[c] += 1
            flits[c] += pkt.size
            lat_sum[c] += pkt.deliver_time - pkt.create_time

    def on_idle_gap(self, net: NetworkLike, start: int, end: int) -> None:
        # Idle cycles deliver nothing; all per-class state is unchanged.
        pass

    def flush(self, net: NetworkLike, window_cycles: int) -> dict:
        packets = self._packets
        fields = {
            "class_packets": packets.tolist(),
            "class_flits": self._flits.tolist(),
            "class_avg_latency": [
                float(self._lat_sum[c] / packets[c]) if packets[c] else None
                for c in range(self._n)
            ],
        }
        packets[:] = 0
        self._flits[:] = 0
        self._lat_sum[:] = 0.0
        return fields


#: name -> factory, the CLI's ``--probes`` vocabulary
PROBE_REGISTRY: dict[str, Callable[[], Probe]] = {
    "channel": ChannelUtilizationProbe,
    "vc": VCOccupancyProbe,
    "stall": InjectionStallProbe,
    "inflight": InFlightProbe,
    "classes": ClassLatencyProbe,
}


def build_probes(spec: Union[str, Iterable[str]]) -> list[Probe]:
    """Build probes from a comma-separated spec (or iterable); ``all`` = every one."""
    if isinstance(spec, str):
        names = [s.strip() for s in spec.split(",") if s.strip()]
    else:
        names = list(spec)
    if names == ["all"]:
        names = list(PROBE_REGISTRY)
    probes = []
    for name in names:
        try:
            probes.append(PROBE_REGISTRY[name]())
        except KeyError:
            raise ValueError(
                f"unknown probe {name!r} (choose from {', '.join(PROBE_REGISTRY)})"
            ) from None
    return probes


class ProbeSet:
    """A group of probes sharing one sampling window and output stream.

    ``interval`` — window length in cycles; each window flushes one record.
    ``out`` — optional JSONL path (or any ``append_jsonl``-compatible
    target): records stream to it as they flush, so a long run can be
    watched live with ``tail -f``.  All records also accumulate in
    :attr:`records`.
    """

    def __init__(
        self,
        probes: Sequence[Probe],
        *,
        interval: int = 100,
        out=None,
    ):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.probes = list(probes)
        self.interval = interval
        self.out = out
        self.records: list[dict] = []
        self._window_start = 0
        self._cycles_in_window = 0

    def begin(self, net: NetworkLike) -> None:
        """Attach all probes and reset window state (engine calls this)."""
        self.records = []
        self._window_start = net.now
        self._cycles_in_window = 0
        for probe in self.probes:
            probe.attach(net)

    def on_cycle(self, net: NetworkLike, now: int, delivered: list) -> None:
        """Sample one executed cycle; flush if the window just filled."""
        for probe in self.probes:
            probe.on_cycle(net, now, delivered)
        self._cycles_in_window += 1
        if self._cycles_in_window >= self.interval:
            self._flush(net, end=now + 1)

    def on_idle_gap(self, net: NetworkLike, start: int, end: int) -> None:
        """Account fast-forwarded idle cycles ``[start, end)``.

        Windows that fill inside the gap flush at exactly the cycle they
        would have flushed in the dense loop (the network's counters are
        frozen across the gap, so each record's fields are identical too).
        """
        cursor = start
        while cursor < end:
            take = min(self.interval - self._cycles_in_window, end - cursor)
            for probe in self.probes:
                probe.on_idle_gap(net, cursor, cursor + take)
            self._cycles_in_window += take
            cursor += take
            if self._cycles_in_window >= self.interval:
                self._flush(net, end=cursor)

    def finish(self, net: NetworkLike) -> list[dict]:
        """Flush any partial window, detach probes, return all records."""
        if self._cycles_in_window:
            self._flush(net, end=net.now)
        for probe in self.probes:
            probe.detach(net)
        return self.records

    def _flush(self, net: NetworkLike, *, end: int) -> None:
        cycles = self._cycles_in_window
        record = {
            "window_start": self._window_start,
            "window_end": end,
            "cycles": cycles,
        }
        for probe in self.probes:
            record.update(probe.flush(net, cycles))
        self.records.append(record)
        if self.out is not None:
            append_jsonl(record, self.out)
        self._window_start = end
        self._cycles_in_window = 0
