"""Fault injection, stall watchdog, and conservation invariants.

Long closed-loop and execution-driven runs are only trustworthy if a
mis-tuned configuration cannot silently spin to ``max_cycles``, and the
framework can only explore degraded-topology scenarios (the EmuNoC /
Pareto-NoC style robustness studies) if link and router failures are a
first-class, *seeded* part of the configuration.  This module provides the
three pieces of that resilience layer:

* :class:`FaultPlan` — a declarative, deterministic description of which
  links/routers fail and when, parsed from a compact spec string
  (``NetworkConfig.faults`` / CLI ``--faults``).  Resolution against a
  topology plus a seed yields the concrete directed channels to disable;
  the same seed always picks the same links, so faulted sweeps are
  bit-reproducible serial vs. parallel.
* :class:`Watchdog` — an opt-in engine plug-in that samples the network's
  forward-progress counters every ``window`` cycles and raises
  :class:`SimulationStalled` (carrying a :class:`StallDiagnosis` snapshot:
  blocked VCs, credit counts, oldest in-flight packet, suspected wait
  cycle) when flits are in flight but nothing has moved for a full window.
* :class:`InvariantChecker` — an opt-in conservation auditor asserting
  flit conservation (injected == ejected + buffered + on-links) and
  per-channel credit conservation each window, raising
  :class:`InvariantViolation` on the first discrepancy.  Enabled per
  engine or globally via the ``REPRO_CHECK_INVARIANTS`` environment
  variable (the CI invariants job sets it for the fast suite).

Everything here is zero-cost when disabled, like probes: a run without
faults/watchdog/invariants executes one ``is None`` test per feature per
cycle and allocates nothing from this module.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from .. import rng as rng_mod

if TYPE_CHECKING:  # pragma: no cover
    from ..topology.base import Topology

__all__ = [
    "LinkFault",
    "RouterFault",
    "RandomLinkFaults",
    "FaultPlan",
    "FaultState",
    "RetryPolicy",
    "TRANSIENT_KINDS",
    "UNREACHABLE",
    "UnreachableDestination",
    "SimulationStalled",
    "StallDiagnosis",
    "BlockedVC",
    "Watchdog",
    "InvariantViolation",
    "InvariantChecker",
]


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
#: ``error_kind`` values that are transient by nature and worth retrying:
#: the point itself is deterministic, so only failures of the *executor* —
#: a stalled run aborted by the watchdog, a dead worker process, an expired
#: work lease, a dropped worker connection — can succeed on a re-run.
TRANSIENT_KINDS = frozenset({"stalled", "worker_death", "lease_expired", "disconnect"})


@dataclass
class RetryPolicy:
    """Capped exponential backoff with jitter for transient point failures.

    Shared by the process-pool sweep executor (:mod:`repro.core.parallel`)
    and the distributed sweep service (:mod:`repro.service`): both retry
    *transient* failures (see :data:`TRANSIENT_KINDS`) up to ``max_retries``
    times, sleeping ``backoff * 2**(attempt-1)`` seconds (capped at
    ``max_backoff``) times a jitter factor in ``[1, 1.25)`` between
    attempts.  Deterministic runner exceptions are never retried — the same
    config and seed would fail the same way.

    ``rng`` selects the jitter source: ``None`` (the default) draws from the
    process-global :mod:`random` like the historical behaviour, while a
    :class:`random.Random` instance makes the jitter — and therefore the
    retry timeline — a pure function of its seed.  :meth:`seeded` builds a
    policy whose jitter stream derives from a config seed via
    :func:`repro.rng.spawn`, which is what makes self-healing tests
    deterministic.
    """

    max_retries: int = 2
    backoff: float = 0.25
    max_backoff: float = 5.0
    transient_kinds: frozenset = TRANSIENT_KINDS
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")

    @classmethod
    def seeded(cls, seed: int, *labels: object, **kwargs) -> "RetryPolicy":
        """A policy whose jitter stream derives from ``seed`` and ``labels``."""
        return cls(rng=random.Random(rng_mod.spawn(seed, "retry-jitter", *labels)), **kwargs)

    def is_transient(self, kind: object) -> bool:
        """True when ``kind`` names a failure worth retrying."""
        return kind in self.transient_kinds

    def should_retry(self, kind: object, attempt: int) -> bool:
        """True when a failure of ``kind`` at 0-based ``attempt`` gets a retry."""
        return self.is_transient(kind) and attempt < self.max_retries

    def delay(self, attempt: int) -> float:
        """Backoff sleep before retry ``attempt`` (1-based), jitter included."""
        base = min(self.backoff * 2 ** (attempt - 1), self.max_backoff)
        draw = self.rng.random() if self.rng is not None else random.random()
        return base * (1.0 + 0.25 * draw)


# ---------------------------------------------------------------------------
# Structured errors
# ---------------------------------------------------------------------------
class UnreachableDestination(RuntimeError):
    """A packet's destination is unreachable under the active fault set."""

    def __init__(self, src: int, dst: int, cycle: int):
        self.src = src
        self.dst = dst
        self.cycle = cycle
        super().__init__(
            f"node {dst} is unreachable from node {src} at cycle {cycle} "
            "under the active fault set"
        )


class SimulationStalled(RuntimeError):
    """The watchdog detected no forward progress; carries a diagnosis."""

    def __init__(self, diagnosis: "StallDiagnosis"):
        self.diagnosis = diagnosis
        super().__init__(diagnosis.summary())


class InvariantViolation(AssertionError):
    """A flit/credit conservation invariant failed (simulator bug)."""


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFault:
    """Fail the directed channel ``src -> dst`` during ``[start, end)``.

    ``end=None`` means permanent.  ``both=True`` also fails ``dst -> src``
    (a physical bidirectional link).
    """

    src: int
    dst: int
    start: int = 0
    end: Optional[int] = None
    both: bool = False


@dataclass(frozen=True)
class RouterFault:
    """Fail every channel into and out of ``node`` during ``[start, end)``."""

    node: int
    start: int = 0
    end: Optional[int] = None


@dataclass(frozen=True)
class RandomLinkFaults:
    """Fail ``count`` seeded-random physical links during ``[start, end)``.

    Selection is over *undirected* links (both directions fail together)
    and is a pure function of the resolution seed, so the same config seed
    always kills the same links.
    """

    count: int
    start: int = 0
    end: Optional[int] = None


#: distance sentinel for nodes cut off by the active fault set
UNREACHABLE = 1 << 30

_WINDOW_RE = re.compile(r"^(\d+)(?:-(\d+))?$")


def _parse_window(text: str) -> tuple[int, Optional[int]]:
    m = _WINDOW_RE.match(text)
    if not m:
        raise ValueError(f"bad fault window {text!r} (expected START or START-END)")
    start = int(m.group(1))
    end = int(m.group(2)) if m.group(2) is not None else None
    if end is not None and end <= start:
        raise ValueError(f"bad fault window {text!r} (end must exceed start)")
    return start, end


class FaultPlan:
    """A declarative set of fault clauses, resolvable against any topology.

    Spec grammar (clauses joined with ``;``, optional ``@`` window suffix
    in cycles — ``@START`` onward, ``@START-END`` transient)::

        links:K              K seeded-random physical links (both directions)
        link:A>B             the directed channel A -> B
        link:A-B             both directions between adjacent nodes A and B
        router:N             every channel into and out of node N
.
    Examples: ``"links:2"``, ``"link:3>4@100-500"``,
    ``"links:1;router:9@1000"``.
    """

    def __init__(self, clauses: Iterable[object] = ()):
        self.clauses: tuple = tuple(clauses)
        for clause in self.clauses:
            if not isinstance(clause, (LinkFault, RouterFault, RandomLinkFaults)):
                raise TypeError(f"not a fault clause: {clause!r}")

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.clauses)!r})"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see class docstring for the grammar)."""
        clauses: list[object] = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            try:
                cls._parse_clause(raw, clauses)
            except ValueError as exc:
                raise ValueError(f"bad fault clause {raw!r}: {exc}") from None
        if not clauses:
            raise ValueError(f"fault spec {spec!r} contains no clauses")
        return cls(clauses)

    @classmethod
    def _parse_clause(cls, raw: str, clauses: list) -> None:
        body, _, window = raw.partition("@")
        start, end = _parse_window(window) if window else (0, None)
        kind, sep, arg = body.partition(":")
        kind = kind.strip()
        arg = arg.strip()
        if not sep or not arg:
            raise ValueError("expected KIND:ARG")
        if kind == "links":
            count = int(arg)
            if count < 1:
                raise ValueError("links:K needs K >= 1")
            clauses.append(RandomLinkFaults(count, start, end))
        elif kind == "link":
            if ">" in arg:
                a, b = arg.split(">", 1)
                clauses.append(LinkFault(int(a), int(b), start, end))
            elif "-" in arg:
                a, b = arg.split("-", 1)
                clauses.append(LinkFault(int(a), int(b), start, end, both=True))
            else:
                raise ValueError("link needs A>B (directed) or A-B (both ways)")
        elif kind == "router":
            clauses.append(RouterFault(int(arg), start, end))
        else:
            raise ValueError(
                f"unknown fault clause kind {kind!r} (links/link/router)"
            )

    # -- resolution ---------------------------------------------------------
    def resolve(
        self, topology: "Topology", seed: int
    ) -> list[tuple[int, int, int, Optional[int]]]:
        """Concrete faults as ``(node, out_port, start, end)`` tuples.

        Raises :class:`ValueError` for links between non-adjacent nodes or
        random counts exceeding the topology's physical link count.
        """
        by_pair: dict[tuple[int, int], int] = {}
        for ch in topology.channels():
            by_pair[(ch.src, ch.dst)] = ch.out_port
        resolved: list[tuple[int, int, int, Optional[int]]] = []

        def add_directed(a: int, b: int, start: int, end: Optional[int]) -> None:
            port = by_pair.get((a, b))
            if port is None:
                raise ValueError(
                    f"fault names channel {a}->{b}, but the topology has no "
                    "such link"
                )
            resolved.append((a, port, start, end))

        for clause in self.clauses:
            if isinstance(clause, LinkFault):
                add_directed(clause.src, clause.dst, clause.start, clause.end)
                if clause.both:
                    add_directed(clause.dst, clause.src, clause.start, clause.end)
            elif isinstance(clause, RouterFault):
                node = clause.node
                if not 0 <= node < topology.num_nodes:
                    raise ValueError(f"router fault names node {node}, out of range")
                for (a, b), port in by_pair.items():
                    if a == node or b == node:
                        resolved.append((a, port, clause.start, clause.end))
            else:  # RandomLinkFaults
                undirected = sorted(
                    {(min(a, b), max(a, b)) for (a, b) in by_pair}
                )
                if clause.count > len(undirected):
                    raise ValueError(
                        f"links:{clause.count} exceeds the topology's "
                        f"{len(undirected)} physical links"
                    )
                gen = rng_mod.make_generator(seed, "fault-links")
                picks = gen.choice(len(undirected), size=clause.count, replace=False)
                for i in sorted(int(p) for p in picks):
                    a, b = undirected[i]
                    if (a, b) in by_pair:
                        add_directed(a, b, clause.start, clause.end)
                    if (b, a) in by_pair:
                        add_directed(b, a, clause.start, clause.end)
        return resolved


class FaultState:
    """Runtime fault bookkeeping for one :class:`~repro.network.network.Network`.

    Owns the activation/deactivation schedule, the set of currently-faulted
    ``(node, out_port)`` channels, the per-router fault bitmasks, and a
    per-version reachability cache used for unreachable-pair detection.
    The owning network bumps ``network._fault_version`` through
    :meth:`apply`, which is what tells blocked head flits to recompute
    their routes after the fault set changes.
    """

    def __init__(self, resolved: Sequence[tuple[int, int, int, Optional[int]]], network):
        self.network = network
        self.active: set[tuple[int, int]] = set()
        self._events: dict[int, list[tuple[int, int, int]]] = {}
        for node, port, start, end in resolved:
            self._events.setdefault(max(start, 0), []).append((node, port, +1))
            if end is not None:
                self._events.setdefault(end, []).append((node, port, -1))
        self._reach_version = -1
        self._dist: dict[int, list[int]] = {}
        self._rev: Optional[list[list[int]]] = None

    @property
    def has_events(self) -> bool:
        return bool(self._events)

    def next_event_cycle(self) -> Optional[int]:
        """Earliest pending activation/deactivation cycle (None when done).

        Bounds the engine's idle-cycle fast-forward: a transient fault
        window must open and close on its exact cycles even if the fabric
        is empty when they arrive.
        """
        if not self._events:
            return None
        return min(self._events)

    def apply(self, now: int) -> None:
        """Apply the activation/deactivation events scheduled for ``now``."""
        bucket = self._events.pop(now, None)
        if bucket is None:
            return
        net = self.network
        routers = net.routers
        for node, port, delta in bucket:
            if delta > 0:
                self.active.add((node, port))
                routers[node].fault_mask |= 1 << port
            else:
                self.active.discard((node, port))
                routers[node].fault_mask &= ~(1 << port)
        net._fault_version += 1

    def is_faulted(self, node: int, port: int) -> bool:
        return (node, port) in self.active

    def distances_to(self, target: int) -> list[int]:
        """Hop distance from every node to ``target`` over non-faulted links.

        BFS on the reversed directed graph, cached per (fault version,
        target).  Unreachable nodes get ``UNREACHABLE`` (an effectively
        infinite sentinel).  The fault-aware routing fallback steers every
        hop strictly downhill on this metric, which is what makes detours
        oscillation-free.
        """
        version = self.network._fault_version
        if version != self._reach_version:
            self._reach_version = version
            self._dist = {}
            self._rev = None
        dist = self._dist.get(target)
        if dist is None:
            topo = self.network.topology
            n = topo.num_nodes
            rev = self._rev
            if rev is None:
                # Reverse adjacency over non-faulted channels, shared by
                # every BFS of this fault version.
                rev = [[] for _ in range(n)]
                active = self.active
                for ch in topo.channels():
                    if (ch.src, ch.out_port) not in active:
                        rev[ch.dst].append(ch.src)
                self._rev = rev
            dist = [UNREACHABLE] * n
            dist[target] = 0
            frontier = [target]
            d = 0
            while frontier:
                d += 1
                nxt: list[int] = []
                for node in frontier:
                    for prev in rev[node]:
                        if dist[prev] > d:
                            dist[prev] = d
                            nxt.append(prev)
                frontier = nxt
            self._dist[target] = dist
        return dist

    def reachable(self, src: int, dst: int) -> bool:
        """True if ``dst`` is reachable from ``src`` avoiding faulted links."""
        return self.distances_to(dst)[src] < UNREACHABLE


# ---------------------------------------------------------------------------
# Stall watchdog
# ---------------------------------------------------------------------------
@dataclass
class BlockedVC:
    """One input VC whose ready head flit cannot move."""

    node: int
    in_port: int
    vc: int
    depth: int
    out_port: int  #: allocated output port (-1 if VC allocation failed)
    out_vc: int
    credits: Optional[int]  #: downstream credits on the allocated VC
    head_pid: int
    head_age: int
    faulted: bool = False  #: the allocated output port is currently faulted
    #: (node, in_port, vc) keys of the input VCs this one waits on: the
    #: downstream VC its credits come from, or — when VC allocation failed —
    #: the local input VCs holding every candidate output VC
    waits_on: list = field(default_factory=list)

    def describe(self) -> str:
        where = f"router {self.node} in_port {self.in_port} vc {self.vc}"
        if self.out_port < 0:
            return f"{where}: head pkt #{self.head_pid} (age {self.head_age}) awaiting VC allocation"
        state = "faulted port" if self.faulted else f"{self.credits} credits"
        return (
            f"{where}: head pkt #{self.head_pid} (age {self.head_age}) -> "
            f"out_port {self.out_port} vc {self.out_vc} ({state})"
        )


@dataclass
class StallDiagnosis:
    """Snapshot of a stalled network, attached to :class:`SimulationStalled`."""

    cycle: int
    window: int
    in_flight: int
    delivered_packets: int
    buffered_flits: int
    queued_packets: int
    blocked: list[BlockedVC] = field(default_factory=list)
    oldest_packet: Optional[dict] = None
    suspected_cycle: list[tuple[int, int, int]] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"no forward progress for {self.window} cycles at cycle "
            f"{self.cycle}: {self.in_flight} packets in flight, "
            f"{self.buffered_flits} flits buffered, {self.queued_packets} "
            f"packets queued at sources, {self.delivered_packets} delivered"
        ]
        if self.oldest_packet:
            p = self.oldest_packet
            lines.append(
                f"oldest in-flight packet #{p['pid']} {p['src']}->{p['dst']} "
                f"(age {p['age']}, at {p['location']})"
            )
        for b in self.blocked[:8]:
            lines.append("blocked: " + b.describe())
        if len(self.blocked) > 8:
            lines.append(f"... and {len(self.blocked) - 8} more blocked VCs")
        if self.suspected_cycle:
            chain = " -> ".join(
                f"(router {n}, port {p}, vc {v})" for n, p, v in self.suspected_cycle
            )
            lines.append(f"suspected wait cycle: {chain}")
        return "\n".join(lines)


def diagnose(net, *, window: int = 0) -> StallDiagnosis:
    """Build a :class:`StallDiagnosis` snapshot of ``net``.

    Works on any :class:`~repro.network.base.NetworkLike`; the per-VC
    detail (blocked VCs, credit counts, suspected wait cycle) is only
    available on backends that expose ``routers`` (the real network).
    """
    now = net.now
    queued = sum(len(q) for qs in getattr(net, "src_queues", ()) for q in qs)
    diag = StallDiagnosis(
        cycle=now,
        window=window,
        in_flight=net.in_flight,
        delivered_packets=net.total_packets_delivered,
        buffered_flits=net.buffered_flits(),
        queued_packets=queued,
    )
    routers = getattr(net, "routers", None)
    if routers is None:
        return diag
    num_vcs = net.config.num_vcs
    oldest = None
    oldest_loc = None
    for router in routers:
        fmask = router.fault_mask
        for idx in sorted(router.busy):
            ivc = router.ivcs[idx]
            if not ivc.fifo:
                continue
            pkt, _, ready = ivc.fifo[0]
            if oldest is None or pkt.create_time < oldest.create_time:
                oldest = pkt
                oldest_loc = f"router {router.node} port {ivc.in_port} vc {ivc.vc}"
            if ready > now:
                continue  # still in the router pipeline, not blocked
            op = ivc.out_port
            if op == router.local_port:
                continue  # ejection never blocks
            if op >= 0:
                credits = router.credits[op][ivc.out_vc]
                faulted = bool(fmask >> op & 1)
                if credits > 0 and not faulted:
                    continue  # eligible: lost arbitration, not blocked
                b = BlockedVC(
                    router.node, ivc.in_port, ivc.vc, len(ivc.fifo),
                    op, ivc.out_vc, credits,
                    pkt.pid, now - pkt.create_time, faulted,
                )
                # Credits return when the downstream input VC drains.
                ch = net.topology.channel(router.node, op)
                if ch is not None:
                    b.waits_on.append((ch.dst, ch.in_port, ivc.out_vc))
                diag.blocked.append(b)
            else:
                b = BlockedVC(
                    router.node, ivc.in_port, ivc.vc, len(ivc.fifo),
                    -1, -1, None, pkt.pid, now - pkt.create_time,
                )
                # VA failed: every candidate output VC is held by some
                # sibling input VC of this router; wait on each holder.
                for cand in ivc.candidates or ():
                    owners = router.vc_owner[cand.out_port]
                    if owners is None:
                        continue
                    for vc in cand.vcs:
                        holder = owners[vc]
                        if holder is not None:
                            key = (router.node, holder.in_port, holder.vc)
                            if key not in b.waits_on:
                                b.waits_on.append(key)
                diag.blocked.append(b)
    for qs in getattr(net, "src_queues", ()):
        for q in qs:
            if q and (oldest is None or q[0].create_time < oldest.create_time):
                oldest = q[0]
                oldest_loc = f"source queue of node {q[0].src}"
    if oldest is not None:
        diag.oldest_packet = {
            "pid": oldest.pid,
            "src": oldest.src,
            "dst": oldest.dst,
            "age": now - oldest.create_time,
            "location": oldest_loc,
        }
    diag.suspected_cycle = _wait_cycle(net, diag.blocked, num_vcs)
    return diag


def _wait_cycle(net, blocked: list[BlockedVC], num_vcs: int) -> list[tuple[int, int, int]]:
    """Find a cycle in the wait-for graph of the blocked VCs.

    Each blocked VC's ``waits_on`` edges point at the input VCs it needs
    drained: the downstream VC its credits come from, or (after a failed VC
    allocation) the local holders of its candidate output VCs.  A cycle in
    this graph restricted to blocked VCs is the deadlock's dependency loop;
    return it as ``(node, in_port, vc)`` triples.
    """
    by_key = {(b.node, b.in_port, b.vc): b for b in blocked}
    # Iterative DFS with the usual visiting/done coloring.
    done: set[tuple[int, int, int]] = set()
    for start in by_key:
        if start in done:
            continue
        chain: list[tuple[int, int, int]] = []
        on_chain: dict[tuple[int, int, int], int] = {}
        stack: list[tuple[tuple[int, int, int], int]] = [(start, 0)]
        while stack:
            key, edge = stack[-1]
            if edge == 0:
                on_chain[key] = len(chain)
                chain.append(key)
            edges = [k for k in by_key[key].waits_on if k in by_key]
            if edge < len(edges):
                stack[-1] = (key, edge + 1)
                nxt = edges[edge]
                if nxt in on_chain:
                    return chain[on_chain[nxt]:]
                if nxt not in done:
                    stack.append((nxt, 0))
            else:
                stack.pop()
                chain.pop()
                del on_chain[key]
                done.add(key)
    return []


class Watchdog:
    """Detects no-forward-progress runs and raises :class:`SimulationStalled`.

    Every ``window`` cycles it samples the network's monotone progress
    counters (flits delivered + link traversals + flits injected into the
    fabric).  If packets are in flight but the counters did not move over a
    whole window, the run is deadlocked (or livelocked at zero goodput) and
    cannot terminate on its own: the watchdog raises with a full
    :class:`StallDiagnosis` instead of burning the rest of ``max_cycles``.

    One instance may be reused across runs; the engine calls :meth:`begin`
    at the start of each run.  Per-cycle cost while armed is one integer
    comparison; a disabled run pays a single ``is None`` test.
    """

    def __init__(self, *, window: int = 1000):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._next_check = window
        self._last_sig: Optional[tuple[int, int]] = None

    def begin(self, net) -> None:
        self._next_check = net.now + self.window
        self._last_sig = None

    def on_cycle(self, net) -> None:
        if net.now < self._next_check:
            return
        self._next_check = net.now + self.window
        sig = (
            net.total_flits_delivered,
            net.total_flit_traversals + int(net.flit_injections.sum()),
        )
        if net.in_flight > 0 and sig == self._last_sig:
            raise SimulationStalled(diagnose(net, window=self.window))
        self._last_sig = sig

    def on_idle_gap(self, net, start: int, end: int) -> None:
        """Account fast-forwarded idle cycles ``[start, end)``.

        Fast-forward only happens with zero packets in flight, so no check
        inside the gap could raise; this replays their bookkeeping — the
        signature sample and the re-armed deadline — in O(1).  In the dense
        loop checks would fire at ``_next_check``, ``_next_check + window``,
        … up to the last observed clock value ``end``.
        """
        if end < self._next_check:
            return
        fired = (end - self._next_check) // self.window + 1
        self._next_check += fired * self.window
        self._last_sig = (
            net.total_flits_delivered,
            net.total_flit_traversals + int(net.flit_injections.sum()),
        )


# ---------------------------------------------------------------------------
# Conservation invariants
# ---------------------------------------------------------------------------
class InvariantChecker:
    """Asserts flit and credit conservation every ``interval`` cycles.

    * **Flit conservation** — every flit injected into the fabric is either
      ejected, buffered in a router, or in flight on a link.
    * **Credit conservation** — for every (channel, VC): upstream credits
      + downstream buffered flits + flits in flight on the link + credits
      in flight upstream equals the configured buffer depth.

    Violations raise :class:`InvariantViolation` naming the first bad
    quantity.  The deep per-channel audit needs the real network's
    internals; other backends get the counter-level checks only.
    """

    def __init__(self, *, interval: int = 256):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self._next_check = interval

    def begin(self, net) -> None:
        self._next_check = net.now + self.interval

    def on_cycle(self, net) -> None:
        if net.now < self._next_check:
            return
        self._next_check = net.now + self.interval
        self.check(net)

    def on_idle_gap(self, net, start: int, end: int) -> None:
        """Account fast-forwarded idle cycles ``[start, end)``.

        Network state is frozen across the gap, so the audits the dense
        loop would have run at each elapsed deadline are all the same
        audit: run it once, then re-arm the deadline where the dense loop
        would have left it.
        """
        if end < self._next_check:
            return
        fired = (end - self._next_check) // self.interval + 1
        self._next_check += fired * self.interval
        self.check(net)

    def check(self, net) -> None:
        """Run all applicable invariant checks against ``net`` right now."""
        delivered = net.total_flits_delivered
        ejected = int(net.flit_ejections.sum())
        if delivered != ejected:
            raise InvariantViolation(
                f"cycle {net.now}: total_flits_delivered={delivered} but "
                f"per-node ejections sum to {ejected}"
            )
        if net.in_flight < 0:
            raise InvariantViolation(f"cycle {net.now}: in_flight={net.in_flight} < 0")
        routers = getattr(net, "routers", None)
        if routers is None:
            return
        injected = int(net.flit_injections.sum())
        buffered = net.buffered_flits()
        on_links = net._arrivals.pending
        if injected != ejected + buffered + on_links:
            raise InvariantViolation(
                f"cycle {net.now}: flit conservation broken — injected "
                f"{injected} != ejected {ejected} + buffered {buffered} + "
                f"on-links {on_links}"
            )
        self._check_credits(net, routers)

    def _check_credits(self, net, routers) -> None:
        cfg = net.config
        num_vcs = cfg.num_vcs
        buf_size = cfg.vc_buffer_size
        # Flits in flight per (dst, in_port, vc) and credits in flight per
        # (upstream router id, out_port, vc).
        arrivals: dict[tuple[int, int, int], int] = {}
        for node, in_port, vc, _pkt, _fidx in net._arrivals.events():
            key = (node, in_port, vc)
            arrivals[key] = arrivals.get(key, 0) + 1
        credits_in_flight: dict[tuple[int, int, int], int] = {}
        for router, op, vc in net._credits.events():
            key = (id(router), op, vc)
            credits_in_flight[key] = credits_in_flight.get(key, 0) + 1
        for ch in net.topology.channels():
            upstream = routers[ch.src]
            downstream = routers[ch.dst]
            for vc in range(num_vcs):
                held = upstream.credits[ch.out_port][vc]
                buffered = len(downstream.ivcs[ch.in_port * num_vcs + vc].fifo)
                flying = arrivals.get((ch.dst, ch.in_port, vc), 0)
                returning = credits_in_flight.get((id(upstream), ch.out_port, vc), 0)
                total = held + buffered + flying + returning
                if total != buf_size:
                    raise InvariantViolation(
                        f"cycle {net.now}: credit conservation broken on "
                        f"channel {ch.src}:{ch.out_port}->{ch.dst}:{ch.in_port} "
                        f"vc {vc} — credits {held} + buffered {buffered} + "
                        f"in-flight {flying} + returning {returning} = {total} "
                        f"!= buffer depth {buf_size}"
                    )
