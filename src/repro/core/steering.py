"""Model-steered sweeps: spend cycle-accurate points only where they matter.

A latency–load curve is cheap everywhere except near its knee: the flat
region is predicted by the zero-cycle model (:mod:`repro.analytical`) to
within a few percent, while the knee — where latency bends toward the
saturation asymptote — is exactly where the queueing approximation is
weakest and measurement is worth its cost.  A steered sweep therefore:

1. builds the analytical model per axis combination and predicts the
   latency–load curve over the requested rates;
2. locates the curve's knee with :func:`find_knee` (Kneedle-style maximum
   sag below the first→last chord; a curve with no distinct bend knees at
   its last point);
3. runs a contiguous window of at most ``sim_fraction`` of the rates,
   centred on the predicted knee, through the real :func:`run_sweep`
   machinery — cache, retries, process pool, progress — **one sub-sweep
   per combination with the same axis coordinates**, so every simulated
   record is bit-identical to the one the dense sweep would produce
   (per-point seeds derive from the point's coordinates alone);
4. fills the remaining rates from the model and returns the merged records
   in dense canonical order, each tagged ``source: "simulated"`` or
   ``"analytical"``.

Non-steered sweeps never touch this module, and the steered path reuses
``run_sweep`` unchanged — the steering layer only decides *which* points
deserve cycles.  Resume is deliberately unsupported (the window is
recomputed per run); journal output is written once, after the sweep, in
the same ``{"index", "point", "record"}`` JSONL shape dense journals use.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from ..analytical.model import (
    DEFAULT_CAPACITY_FACTOR,
    AnalyticalModel,
    sweep_record,
)
from ..analysis.io import append_jsonl
from ..config import NetworkConfig
from .parallel import (
    SweepHealth,
    SweepRecords,
    _jsonable,
    run_sweep,
    sweep_fingerprint,
)

__all__ = ["SteeringPlan", "find_knee", "steered_sweep"]


def find_knee(xs: Sequence[float], ys: Sequence[float], *, tolerance: float = 0.05) -> int:
    """Index of the knee of curve ``ys(xs)`` (Kneedle-style, clipping inf).

    Both series are min-max normalized; the knee is the point of maximum
    sag below the chord from the first to the last point.  Non-finite
    ``ys`` (saturated points) are clipped one span above the finite
    maximum so divergence registers as a bend, not a NaN.  A curve whose
    maximum sag stays under ``tolerance`` — linear ramps, concave-down
    growth, constants — has no distinct knee and returns the last index,
    so steering falls back to sampling the high-load end of the grid.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = int(x.size)
    if n == 0:
        raise ValueError("need at least one point")
    if n < 3:
        return n - 1
    finite = np.isfinite(y)
    if not finite.any():
        return n - 1
    fmax = float(y[finite].max())
    fmin = float(y[finite].min())
    span = fmax - fmin
    yc = np.where(finite, y, fmax + (span if span > 0.0 else 1.0))
    xr = float(x.max() - x.min())
    yr = float(yc.max() - yc.min())
    if xr <= 0.0 or yr <= 0.0:
        return n - 1
    xn = (x - x.min()) / xr
    yn = (yc - yc.min()) / yr
    denom = xn[-1] - xn[0]
    if denom <= 0.0:
        return n - 1
    chord = yn[0] + (yn[-1] - yn[0]) * (xn - xn[0]) / denom
    sag = chord - yn
    if float(sag.max()) < tolerance:
        return n - 1
    return int(np.argmax(sag))


@dataclass(frozen=True)
class SteeringPlan:
    """How one axis combination was steered."""

    #: config-axis coordinates of the combination (empty for a pure
    #: rate sweep)
    overrides: Mapping[str, Any]
    #: the full rate grid, dense order
    rates: tuple[float, ...]
    #: the model's predicted mean latency per rate
    model_latency: tuple[float, ...]
    #: predicted saturation rate (flits/cycle/node)
    saturation_rate: float
    #: index into ``rates`` of the predicted knee
    knee_index: int
    #: indices that ran cycle-accurately (contiguous, centred on the knee)
    simulated_indices: tuple[int, ...]

    @property
    def knee_rate(self) -> float:
        return self.rates[self.knee_index]

    @property
    def simulated_fraction(self) -> float:
        return len(self.simulated_indices) / len(self.rates)


def _window(knee: int, total: int, budget: int) -> tuple[int, ...]:
    """A contiguous ``budget``-wide index window centred on ``knee``."""
    budget = max(1, min(budget, total))
    start = knee - (budget - 1) // 2
    start = max(0, min(start, total - budget))
    return tuple(range(start, start + budget))


def steered_sweep(
    base: NetworkConfig,
    axes: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, Any]],
    *,
    rates: Sequence[float],
    rate_axis: str = "rate",
    sim_fraction: float = 0.5,
    min_simulated: int = 2,
    knee_tolerance: float = 0.05,
    capacity_factor: float = DEFAULT_CAPACITY_FACTOR,
    n_workers: int = 1,
    journal=None,
    progress=None,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    cache=None,
) -> SweepRecords:
    """Run a knee-steered sweep over ``axes`` × ``rates``.

    Parameters mirror :func:`repro.core.parallel.run_sweep` (minus resume;
    the window is recomputed per run) plus the steering knobs:
    ``sim_fraction`` caps the share of rates simulated per combination
    (``min_simulated`` floors it so tiny grids still measure something),
    ``knee_tolerance``/``capacity_factor`` tune knee detection and the
    model.  The returned :class:`SweepRecords` holds the merged records in
    dense canonical order — simulated ones bit-identical to a dense
    ``run_sweep`` (modulo ``wall_seconds``), analytical ones tagged and
    NaN where the model has no answer — plus ``.plans``, one
    :class:`SteeringPlan` per combination.
    """
    if not 0.0 < sim_fraction <= 1.0:
        raise ValueError("sim_fraction must be in (0, 1]")
    if min_simulated < 1:
        raise ValueError("min_simulated must be >= 1")
    rates = tuple(float(r) for r in rates)
    if not rates:
        raise ValueError("rates must be non-empty")
    axes = dict(axes)
    names = list(axes)
    budget = max(min_simulated, int(len(rates) * sim_fraction))
    budget = min(budget, len(rates))
    health = SweepHealth()
    plans: list[SteeringPlan] = []
    records: list[dict[str, Any]] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo))
        cfg = base.with_(**overrides)
        model = AnalyticalModel(cfg, capacity_factor=capacity_factor)
        curve = model.curve(rates)
        latencies = tuple(est.avg_latency for est in curve)
        knee = find_knee(rates, latencies, tolerance=knee_tolerance)
        simulated = _window(knee, len(rates), budget)
        plan = SteeringPlan(
            overrides=overrides,
            rates=rates,
            model_latency=latencies,
            saturation_rate=model.saturation_rate,
            knee_index=knee,
            simulated_indices=simulated,
        )
        plans.append(plan)
        # The sub-sweep pins this combination's coordinates as single-value
        # axes, so every point's derived seed and cache key are identical
        # to the dense sweep's — that is the bit-identity guarantee.
        sub = run_sweep(
            base,
            {name: (value,) for name, value in overrides.items()},
            runner,
            extra_axes={rate_axis: tuple(rates[i] for i in simulated)},
            n_workers=n_workers,
            progress=progress,
            point_timeout=point_timeout,
            max_retries=max_retries,
            cache=cache,
        )
        for field in (
            "ok",
            "failed",
            "retried",
            "timed_out",
            "stalled",
            "worker_deaths",
            "cache_hits",
            "cache_misses",
            "quarantined",
            "stale_results",
        ):
            setattr(health, field, getattr(health, field) + getattr(sub.health, field))
        by_rate = {rates[i]: rec for i, rec in zip(simulated, sub)}
        simulated_set = set(simulated)
        for i, rate in enumerate(rates):
            if i in simulated_set:
                rec = dict(by_rate[rate])
                rec["source"] = "simulated"
            else:
                start = time.perf_counter()
                rec = {**overrides, rate_axis: rate, **sweep_record(model, rate)}
                rec["wall_seconds"] = time.perf_counter() - start
                health.ok += 1
            records.append(rec)
    health.total = len(records)
    if journal is not None:
        fingerprint = sweep_fingerprint(base, axes, {rate_axis: rates})
        open(journal, "w").close()
        append_jsonl(
            {
                "sweep": {
                    "fingerprint": fingerprint,
                    "total": len(records),
                    "steered": True,
                    "sim_fraction": sim_fraction,
                }
            },
            journal,
        )
        append_jsonl(
            (
                {
                    "index": index,
                    "point": _jsonable(
                        {k: rec[k] for k in (*names, rate_axis) if k in rec}
                    ),
                    "record": rec,
                }
                for index, rec in enumerate(records)
            ),
            journal,
        )
    out = SweepRecords(records, health)
    out.plans = plans
    return out
