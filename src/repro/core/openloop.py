"""Open-loop measurement (paper §II-A, Figs. 1, 3, 9).

Open-loop simulation drives the network from an *infinite source queue*
with traffic parameters (spatial pattern, Bernoulli temporal process, size
distribution) that the network cannot influence; the result is the classic
latency vs. offered-load curve with its zero-load latency and saturation
throughput.

Methodology (Dally & Towles ch. 23): a warm-up phase, a measurement phase
tagging every packet *created* in the window, then a drain phase during
which background traffic keeps being injected so tagged packets experience
steady-state contention.  Latency counts from packet creation, so source
queueing delay is included and latency diverges at saturation.  A run whose
tagged packets cannot drain within the budget reports ``saturated=True``
and infinite latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import rng as rng_mod
from ..classes import class_shares
from ..config import NetworkConfig
from ..network.factory import build_network
from ..traffic.patterns import TrafficPattern
from ..traffic.process import Bernoulli
from ..traffic.registry import build_pattern, build_sizes
from ..traffic.sizes import SizeDistribution
from .engine import SimulationEngine
from .metrics import LatencyStats
from .probes import ProbeSet

__all__ = ["OpenLoopResult", "OpenLoopSimulator"]


@dataclass
class OpenLoopResult:
    """Steady-state measurements of one open-loop run.

    ``avg_latency``/``worst_node_latency`` are in cycles (inf if saturated);
    ``throughput`` is accepted flits/cycle/node over the measurement window;
    per-node averages are grouped by *source* node, matching the paper's
    Fig. 11 node distributions.
    """

    injection_rate: float
    avg_latency: float
    worst_node_latency: float
    throughput: float
    avg_hops: float
    saturated: bool
    num_measured: int
    per_node_latency: np.ndarray = field(repr=False)
    latencies: np.ndarray = field(repr=False)
    probe_records: list = field(default_factory=list, repr=False)
    #: traffic-class id of each measured packet, aligned with ``latencies``
    class_ids: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64), repr=False
    )
    num_classes: int = 1
    #: accepted flits/cycle/node per class, measured over the window's
    #: tagged packets (sums to ~``throughput`` away from saturation)
    per_class_throughput: np.ndarray = field(
        default_factory=lambda: np.zeros(1), repr=False
    )

    @property
    def p99_latency(self) -> float:
        """99th-percentile packet latency (inf if saturated)."""
        if self.saturated or len(self.latencies) == 0:
            return float("inf")
        return float(np.percentile(self.latencies, 99))

    def per_class_stats(self) -> "list[LatencyStats]":
        """Latency statistics per traffic class (NaN stats for empty classes)."""
        return [
            LatencyStats.from_values(self.latencies[self.class_ids == c])
            for c in range(self.num_classes)
        ]

    @property
    def per_class_avg_latency(self) -> np.ndarray:
        """Mean latency per class; NaN where a class measured no packets."""
        return np.array([s.mean for s in self.per_class_stats()])


class _TrafficInjector:
    """Open-loop packet source: an infinite queue fed by a temporal process.

    Injects every cycle of the run (background traffic keeps flowing through
    the drain phase so tagged packets see steady-state contention); packets
    created during the measurement phase are tagged and counted on the sink.

    Fast-forward support: the dense loop draws ``process.arrivals(gen)``
    once per cycle, so :meth:`next_event_cycle` looks ahead by performing
    exactly those draws for the skipped cycles — the RNG stream (and hence
    every downstream ``dest``/``size`` draw) is bit-identical to the dense
    loop's.  ``_drawn_until`` records how far the stream has been consumed
    so a capped jump can never double-draw a cycle; the first non-empty
    arrival set is cached and replayed by :meth:`inject` when the clock
    reaches its cycle.
    """

    def __init__(
        self, pattern, sizes, process, gen, sink: "_MeasureSink", traffic_class: int = 0
    ):
        self.pattern = pattern
        self.sizes = sizes
        self.process = process
        self.gen = gen
        self.sink = sink
        self.traffic_class = traffic_class
        self._drawn_until = 0  # arrivals consumed for every cycle < this
        self._cached_cycle = -1
        self._cached_arrivals = None

    def inject(self, engine: SimulationEngine) -> None:
        net = engine.network
        now = net.now
        gen = self.gen
        if now == self._cached_cycle:
            arrivals = self._cached_arrivals
            self._cached_cycle = -1
            self._cached_arrivals = None
        elif now < self._drawn_until:
            # This cycle's arrivals draw happened during lookahead and was
            # empty (a non-empty one would have been cached); nothing to do.
            return
        else:
            arrivals = self.process.arrivals(gen)
            self._drawn_until = now + 1
        in_window = engine.in_measure
        pattern = self.pattern
        sizes = self.sizes
        sink = self.sink
        cls = self.traffic_class
        for src in arrivals:
            src = int(src)
            dst = pattern.dest(src, gen)
            pkt = net.make_packet(
                src, dst, sizes.draw(gen), measured=in_window, traffic_class=cls
            )
            if in_window:
                sink.outstanding += 1
            net.offer(pkt)

    def done(self, engine: SimulationEngine) -> bool:
        # The source never exhausts; the run may end once the window closed.
        return engine.in_drain

    def next_event_cycle(self, engine: SimulationEngine) -> Optional[int]:
        """Next cycle with a non-empty arrivals draw (consuming the stream).

        Called by the engine only while the network is idle; draws forward
        at most to the budget (the run cannot execute cycles beyond it).
        """
        now = engine.network.now
        if self._cached_cycle >= now:
            return self._cached_cycle
        cycle = max(now, self._drawn_until)
        horizon = engine.max_cycles
        if cycle >= horizon:
            return horizon
        offset, arrivals = self.process.first_arrival_block(self.gen, horizon - cycle)
        if arrivals is None:
            self._drawn_until = horizon
            return horizon
        self._drawn_until = cycle + offset + 1
        self._cached_cycle = cycle + offset
        self._cached_arrivals = arrivals
        return cycle + offset


class _MultiClassInjector:
    """Per-class open-loop sources behind the single-injector interface.

    Each traffic class gets its own :class:`_TrafficInjector` — its own
    spatial pattern (the class's ``pattern`` override or the config's), its
    own Bernoulli sub-process at ``share``-scaled rate, and its own derived
    RNG substream, so per-class streams are independent and reproducible.
    Classes inject in registry order each cycle; fast-forward takes the
    minimum next-arrival over the sub-streams (each sub-injector consumes
    its own RNG draws exactly as its dense loop would).
    """

    def __init__(self, subs: list):
        self.subs = subs

    def inject(self, engine: SimulationEngine) -> None:
        for sub in self.subs:
            sub.inject(engine)

    def done(self, engine: SimulationEngine) -> bool:
        return engine.in_drain

    def next_event_cycle(self, engine: SimulationEngine) -> Optional[int]:
        return min(sub.next_event_cycle(engine) for sub in self.subs)


class _MeasureSink:
    """Collects tagged packets; satisfied when all of them have drained."""

    def __init__(self) -> None:
        self.measured: list = []
        self.outstanding = 0

    def on_delivered(self, pkt, engine: SimulationEngine) -> None:
        if pkt.measured:
            self.measured.append(pkt)
            self.outstanding -= 1

    def done(self, engine: SimulationEngine) -> bool:
        return self.outstanding == 0


class OpenLoopSimulator:
    """Runs open-loop measurements on a fresh network per run."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        pattern: Optional[TrafficPattern] = None,
        sizes: Optional[SizeDistribution] = None,
        process=None,
        warmup: int = 1000,
        measure: int = 2000,
        drain_limit: int = 30000,
        probes: Optional[ProbeSet] = None,
        watchdog=None,
        check_invariants: Optional[bool] = None,
        network_factory=build_network,
    ):
        self.config = config
        self.pattern = pattern if pattern is not None else build_pattern(config)
        self.sizes = sizes if sizes is not None else build_sizes(config)
        # Temporal injection process factory: (num_nodes, packet_rate) ->
        # InjectionProcess.  Default is the conventional Bernoulli process;
        # pass e.g. ``lambda n, r: MarkovOnOff.for_average_rate(n, r)`` for
        # bursty traffic (SII-A's "temporal distribution" axis).
        self.process = process if process is not None else Bernoulli
        self.warmup = warmup
        self.measure = measure
        self.drain_limit = drain_limit
        self.probes = probes
        #: optional resilience.Watchdog shared by every run of this simulator
        self.watchdog = watchdog
        self.check_invariants = check_invariants
        # Injection point for instrumented networks (matches BatchSimulator).
        self.network_factory = network_factory

    # -- single-point run -----------------------------------------------------
    def run(self, injection_rate: float, *, seed: Optional[int] = None) -> OpenLoopResult:
        """Measure at ``injection_rate`` (offered flits/cycle/node)."""
        if not 0.0 < injection_rate <= 1.0:
            raise ValueError("injection_rate must be in (0, 1]")
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        net = self.network_factory(cfg)
        n = net.num_nodes
        # Offered load is in flits/cycle/node; the Bernoulli process draws
        # packets, so scale by the mean packet size.
        p_packet = injection_rate / self.sizes.mean
        if p_packet > 1.0:
            raise ValueError(
                f"rate {injection_rate} needs >1 packet/cycle/node "
                f"(mean size {self.sizes.mean})"
            )
        sink = _MeasureSink()
        if len(cfg.classes) == 1:
            # Single class: the exact pre-class code path — same RNG stream
            # labels, same draw order — so defaults stay bit-identical.
            gen = rng_mod.make_generator(seed, "openloop", injection_rate)
            injector = _TrafficInjector(
                self.pattern, self.sizes, self.process(n, p_packet), gen, sink
            )
        else:
            subs = []
            for idx, (cls, share) in enumerate(
                zip(cfg.classes, class_shares(cfg.classes))
            ):
                pattern = (
                    self.pattern
                    if cls.pattern is None
                    else build_pattern(cfg.with_(traffic=cls.pattern))
                )
                cgen = rng_mod.make_generator(
                    seed, "openloop", injection_rate, "class", idx
                )
                subs.append(
                    _TrafficInjector(
                        pattern,
                        self.sizes,
                        self.process(n, p_packet * share),
                        cgen,
                        sink,
                        traffic_class=idx,
                    )
                )
            injector = _MultiClassInjector(subs)
        engine = SimulationEngine(
            net,
            injector,
            sink,
            warmup=self.warmup,
            measure=self.measure,
            max_cycles=self.warmup + self.measure + self.drain_limit,
            probes=self.probes,
            watchdog=self.watchdog,
            check_invariants=self.check_invariants,
        )
        outcome = engine.run()
        saturated = sink.outstanding > 0
        result = self._collect(
            injection_rate,
            sink.measured,
            saturated,
            outcome.flits_at_measure_start or 0,
            outcome.flits_at_measure_end or 0,
            n,
        )
        result.probe_records = outcome.probe_records
        return result

    def _collect(
        self,
        rate: float,
        measured: list,
        saturated: bool,
        flits_start: int,
        flits_end: int,
        n: int,
    ) -> OpenLoopResult:
        lat = np.array([p.latency for p in measured], dtype=np.float64)
        hops = np.array([p.hops for p in measured], dtype=np.float64)
        per_node = np.full(n, np.nan)
        if len(measured):
            srcs = np.array([p.src for p in measured])
            sums = np.bincount(srcs, weights=lat, minlength=n)
            counts = np.bincount(srcs, minlength=n)
            nz = counts > 0
            per_node[nz] = sums[nz] / counts[nz]
        throughput = (flits_end - flits_start) / (self.measure * n) if self.measure else 0.0
        if saturated or len(lat) == 0:
            avg = worst = float("inf")
        else:
            avg = float(lat.mean())
            worst = float(np.nanmax(per_node))
        num_classes = len(self.config.classes)
        class_ids = np.array([p.traffic_class for p in measured], dtype=np.int64)
        if len(measured) and self.measure:
            sizes = np.array([p.size for p in measured], dtype=np.float64)
            per_class_tp = np.bincount(
                class_ids, weights=sizes, minlength=num_classes
            ) / (self.measure * n)
        else:
            per_class_tp = np.zeros(num_classes)
        return OpenLoopResult(
            injection_rate=rate,
            avg_latency=avg,
            worst_node_latency=worst,
            throughput=throughput,
            avg_hops=float(hops.mean()) if len(hops) else 0.0,
            saturated=saturated,
            num_measured=len(measured),
            per_node_latency=per_node,
            latencies=lat,
            class_ids=class_ids,
            num_classes=num_classes,
            per_class_throughput=per_class_tp,
        )

    # -- derived measurements ----------------------------------------------------
    def latency_load_sweep(
        self, rates, *, seed: Optional[int] = None, stop_after_saturation: bool = True
    ) -> list[OpenLoopResult]:
        """Latency–load curve over ``rates`` (ascending offered loads).

        By default the sweep stops at the first saturated point: beyond it
        every point is saturated too and simulating them is pure drain-limit
        burn (the paper's Fig. 3 curves end at saturation for the same
        reason).
        """
        results = []
        for rate in rates:
            res = self.run(rate, seed=seed)
            results.append(res)
            if stop_after_saturation and res.saturated:
                break
        return results

    def zero_load_latency(self, *, rate: float = 0.005, seed: Optional[int] = None) -> float:
        """Measured latency at a near-zero offered load."""
        return self.run(rate, seed=seed).avg_latency

    def analytic_zero_load_latency(self) -> float:
        """First-principles zero-load latency under uniform random traffic.

        avg_hops · (tr + channel_delay) + the source router's pipeline (tr)
        + serialization; used to cross-check the simulator in tests.
        """
        from ..topology.registry import build_topology

        topo = build_topology(self.config)
        h = topo.average_min_hops()
        tr = self.config.router_delay
        ser = self.sizes.mean - 1.0
        try:
            ch_delay = next(iter(topo.channels())).delay
        except StopIteration:
            ch_delay = self.config.link_delay
        return h * (tr + ch_delay) + tr + ser

    def saturation_throughput(
        self,
        *,
        track_fraction: float = 0.95,
        tolerance: float = 0.01,
        lo: float = 0.02,
        hi: float = 1.0,
        seed: Optional[int] = None,
    ) -> float:
        """Saturation throughput via bisection on offered load.

        A point is "stable" if its tagged packets drain and the accepted
        throughput tracks the offered load within ``track_fraction`` — the
        practical proxy for the latency-asymptote definition in the paper
        (footnote 3 notes the exact latency is ill-conditioned near
        saturation, which is also why a latency cap makes a poor criterion
        on high-diameter topologies like the ring).
        """

        def stable(rate: float) -> bool:
            res = self.run(rate, seed=seed)
            return (not res.saturated) and res.throughput >= track_fraction * rate

        if not stable(lo):
            return 0.0
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if stable(mid):
                lo = mid
            else:
                hi = mid
        return lo
