"""The paper's evaluation framework: open-loop, closed-loop, and extensions."""

from .barrier import BarrierResult, BarrierSimulator
from .closedloop import OS_CLASS, USER_CLASS, BatchResult, BatchSimulator
from .engine import (
    DrainSink,
    EngineResult,
    Injector,
    Phase,
    SimulationEngine,
    Sink,
)
from .correlation import (
    CorrelationResult,
    ScatterPair,
    batch_vs_openloop,
    correlate,
    normalize_per_group,
    pearson,
)
from .metrics import LatencyStats, latency_stats, node_distribution, runtime_map
from .openloop import OpenLoopResult, OpenLoopSimulator
from .osmodel import OSModel
from .parallel import SweepPoint, SweepProgress, enumerate_points, run_sweep
from .probes import (
    PROBE_REGISTRY,
    ChannelUtilizationProbe,
    InFlightProbe,
    InjectionStallProbe,
    Probe,
    ProbeSet,
    VCOccupancyProbe,
    build_probes,
)
from .reply import (
    FixedReply,
    ImmediateReply,
    PerClassReply,
    ProbabilisticReply,
    ReplyModel,
)
from .sweep import product_configs, sweep
from .tracedriven import (
    Trace,
    TraceDrivenResult,
    TraceDrivenSimulator,
    TraceRecord,
    capture_batch_trace,
    capture_openloop_trace,
)

__all__ = [
    "SimulationEngine",
    "EngineResult",
    "Phase",
    "Injector",
    "Sink",
    "DrainSink",
    "Probe",
    "ProbeSet",
    "ChannelUtilizationProbe",
    "VCOccupancyProbe",
    "InjectionStallProbe",
    "InFlightProbe",
    "PROBE_REGISTRY",
    "build_probes",
    "OpenLoopSimulator",
    "OpenLoopResult",
    "BatchSimulator",
    "BatchResult",
    "BarrierSimulator",
    "BarrierResult",
    "USER_CLASS",
    "OS_CLASS",
    "ReplyModel",
    "ImmediateReply",
    "FixedReply",
    "ProbabilisticReply",
    "PerClassReply",
    "OSModel",
    "LatencyStats",
    "latency_stats",
    "node_distribution",
    "runtime_map",
    "pearson",
    "normalize_per_group",
    "correlate",
    "batch_vs_openloop",
    "CorrelationResult",
    "ScatterPair",
    "product_configs",
    "sweep",
    "run_sweep",
    "enumerate_points",
    "SweepPoint",
    "SweepProgress",
    "Trace",
    "TraceRecord",
    "TraceDrivenSimulator",
    "TraceDrivenResult",
    "capture_openloop_trace",
    "capture_batch_trace",
]
