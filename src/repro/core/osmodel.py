"""Kernel/OS traffic extension of the batch model (paper §V, Fig. 22).

The paper classifies kernel network activity into two kinds and models each
with a batch-size adjustment:

* **Application-dependent traffic** (system calls, traps — thread creation,
  synchronization at start/end): *independent of runtime*.  Modelled by a
  **static** batch increase before simulation: each node's batch grows by
  ``static_fraction`` · b requests of the OS traffic class.
* **Periodic timer interrupts**: traffic *proportional to runtime*.
  Modelled **dynamically**: every ``1/timer_rate`` cycles each node receives
  an extra mini-batch of ``timer_batch`` OS-class requests, so total OS
  traffic scales with the achieved runtime — the 75 MHz configuration simply
  has a much higher per-cycle ``timer_rate`` than 3 GHz, because the
  interrupt interval is fixed in wall-clock time, not cycles.

OS-class requests share the node's MSHR budget (``m``) with user requests,
are injected preferentially (interrupts preempt), and use their own NAR and
reply-model class (Table IV's OS columns).

The OS class is class 1 of the config's traffic-class registry
(``repro.classes.OS_CLASS``); :class:`~repro.core.closedloop.BatchSimulator`
auto-extends a single-class config to the canonical user/OS pair when an
``os_model`` is attached, so priority-aware arbiters see the OS class's
elevated priority without further configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OSModel"]


@dataclass(frozen=True)
class OSModel:
    """Parameters of the kernel-traffic extension.

    ``static_fraction`` — extra OS requests as a fraction of the user batch
    (Table IV "application dependent additional traffic").
    ``timer_rate`` — timer interrupts per cycle (Table IV ``Rtimer``); an
    interrupt fires every ``round(1/timer_rate)`` cycles.
    ``timer_batch`` — OS requests added per node per interrupt.
    ``os_nar`` — injection rate of OS-class requests when eligible.
    """

    static_fraction: float = 0.5
    timer_rate: float = 0.004
    timer_batch: int = 4
    os_nar: float = 1.0

    def __post_init__(self) -> None:
        if self.static_fraction < 0:
            raise ValueError("static_fraction must be >= 0")
        if not 0.0 <= self.timer_rate < 1.0:
            raise ValueError("timer_rate must be in [0, 1)")
        if self.timer_batch < 0:
            raise ValueError("timer_batch must be >= 0")
        if not 0.0 < self.os_nar <= 1.0:
            raise ValueError("os_nar must be in (0, 1]")

    @property
    def timer_interval(self) -> int:
        """Cycles between timer interrupts (0 disables the timer)."""
        if self.timer_rate <= 0.0 or self.timer_batch == 0:
            return 0
        return max(1, round(1.0 / self.timer_rate))

    def static_extra(self, batch_size: int) -> int:
        """OS requests added to each node's batch before simulation."""
        return round(self.static_fraction * batch_size)
