"""Closed-loop batch model with intra-node dependency (paper §II-B1, §IV).

Each node must complete a *batch* of ``b`` remote operations: it injects a
request packet, the destination returns a reply, and the operation completes
when the reply arrives.  At most ``m`` requests may be outstanding per node
(the MSHR model); a node whose ``pf`` in-flight count reaches ``m`` stalls
until a reply returns.  The run's figure of merit is the **runtime** ``T`` —
the cycle at which the last node completes its batch — and the achieved
throughput ``θ = 2·b/T`` (flits/cycle/node for 1-flit packets).

This class also implements the paper's three extensions, all off by default
so the baseline model is recovered exactly:

* ``nar`` < 1 — the **enhanced injection model** (§IV-C1): an eligible node
  injects with probability NAR per cycle instead of always.
* ``reply_model`` — the **enhanced reply model** (§IV-C2): replies wait for
  an L2/memory service delay before entering the network.
* ``os_model`` — the **kernel-traffic model** (§V): a static batch increase
  for syscall/trap traffic plus dynamic timer-interrupt mini-batches, using
  an OS traffic class with its own NAR and reply class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import rng as rng_mod
from ..classes import OS_CLASS, USER_CLASS, USER_OS_CLASSES, inject_order
from ..config import NetworkConfig
from ..network.links import TimeBuckets
from ..network.factory import build_network
from ..traffic.patterns import TrafficPattern
from ..traffic.registry import build_pattern, build_sizes
from ..traffic.sizes import SizeDistribution
from .engine import SimulationEngine
from .osmodel import OSModel
from .probes import ProbeSet
from .reply import ImmediateReply, ReplyModel

__all__ = ["BatchResult", "BatchSimulator", "USER_CLASS", "OS_CLASS"]


@dataclass
class BatchResult:
    """Outcome of one batch-model run.

    ``runtime`` is the paper's ``T``; ``normalized_runtime`` is ``T/b``
    (Fig. 2's y-axis); ``throughput`` is delivered flits/cycle/node over the
    run, which equals the paper's ``θ = 2b/T`` for 1-flit packets.
    ``node_finish`` holds each node's completion cycle (Fig. 7's map).
    """

    batch_size: int
    max_outstanding: int
    runtime: int
    throughput: float
    completed: bool
    total_requests: int
    avg_request_latency: float
    node_finish: np.ndarray = field(repr=False)
    os_requests: int = 0
    probe_records: list = field(default_factory=list, repr=False)

    @property
    def normalized_runtime(self) -> float:
        """Runtime per batch operation, T/b."""
        return self.runtime / self.batch_size

    @property
    def packet_throughput(self) -> float:
        """The paper's θ = (b·2)/T in packets/cycle/node."""
        return 2.0 * self.batch_size / self.runtime


class _BatchLoop:
    """The batch state machine, as engine injector *and* sink in one.

    Injection eligibility depends on replies already received, so the same
    object plays both roles: ``inject`` runs the timer/reply-release/inject
    sequence before each network cycle, ``on_delivered`` turns requests into
    replies and retires batch operations, and ``done`` signals when every
    node has completed its batch.
    """

    def __init__(self, sim: "BatchSimulator", num_nodes: int, gen):
        n = num_nodes
        b = sim.batch_size
        self.sim = sim
        self.gen = gen
        classes = sim.config.classes
        self.os_static = sim.os_model.static_extra(b) if sim.os_model else 0
        self.timer_interval = sim.os_model.timer_interval if sim.os_model else 0
        self.next_timer = self.timer_interval if self.timer_interval else -1
        # Per-class bookkeeping, indexed by the config's class registry:
        # the user batch lives in USER_CLASS, the OS extension's extras in
        # OS_CLASS (the registry is auto-extended when an os_model is set),
        # any further classes carry no batch work — they exist for
        # arbitration.  Injection walks classes in priority order
        # (inject_order), which for the user/OS pair is exactly the paper's
        # "interrupts preempt" rule.
        self.remaining = [[0] * n for _ in classes]
        self.remaining[USER_CLASS] = [b] * n
        if self.os_static:
            self.remaining[OS_CLASS] = [self.os_static] * n
        self.inject_order = inject_order(classes)
        self.nar_by_class = [sim.nar] * len(classes)
        if sim.os_model is not None and len(classes) > OS_CLASS:
            self.nar_by_class[OS_CLASS] = sim.os_model.os_nar
        self.requests_by_class = [0] * len(classes)
        self.replies_needed = [b + self.os_static] * n
        self.pf = [0] * n
        self.finish = np.full(n, -1, dtype=np.int64)
        self.unfinished = n
        self.pending_replies = TimeBuckets()
        self.total_requests = 0
        self.req_latency_sum = 0
        self.req_latency_count = 0
        # Fast-forward bookkeeping: the dense loop draws ``gen.random(n)``
        # unconditionally every cycle, so lookahead must consume exactly
        # those draws for every cycle it skips (see next_event_cycle).
        self._drawn_until = 0
        self._cached_cycle = -1
        self._cached_draws = None

    @property
    def os_requests(self) -> int:
        """Requests injected by the OS class (0 without an OS class)."""
        if len(self.requests_by_class) > OS_CLASS:
            return self.requests_by_class[OS_CLASS]
        return 0

    def inject(self, engine: SimulationEngine) -> None:
        net = engine.network
        now = net.now
        sim = self.sim
        gen = self.gen
        n = len(self.pf)
        # Timer interrupts add OS-class work to every unfinished node
        # whose previous handler batch has drained — interrupts do not
        # nest (a core still inside the handler skips the next tick),
        # which also keeps the model stable when the handler cost
        # exceeds the interval, exactly as in the execution-driven
        # substrate.
        if self.next_timer >= 0 and now == self.next_timer:
            extra = sim.os_model.timer_batch
            os_remaining = self.remaining[OS_CLASS]
            for node in range(n):
                if self.finish[node] < 0 and os_remaining[node] == 0:
                    os_remaining[node] += extra
                    self.replies_needed[node] += extra
            self.next_timer = now + self.timer_interval
        # Release replies whose memory service completed.
        bucket = self.pending_replies.pop(now)
        if bucket is not None:
            for reply in bucket:
                net.offer(reply)
        # Injection: OS class preempts user class; NAR gates the rate.
        if now == self._cached_cycle:
            # Lookahead already drew this cycle and found an injection.
            draws = self._cached_draws
            self._cached_cycle = -1
            self._cached_draws = None
        elif now < self._drawn_until:
            # Lookahead drew this cycle and proved it injects nothing (a
            # non-injecting draw stays non-injecting: eligibility cannot
            # change before the next timer tick or reply release, and the
            # lookahead never draws past either).
            return
        else:
            draws = gen.random(n)
            self._drawn_until = now + 1
        pf = self.pf
        m = sim.max_outstanding
        pattern = sim.pattern
        sizes = sim.sizes
        remaining = self.remaining
        order = self.inject_order
        nar = self.nar_by_class
        for node in range(n):
            if pf[node] >= m:
                continue
            for cls in order:
                if remaining[cls][node] > 0:
                    break
            else:
                continue
            rate = nar[cls]
            if rate < 1.0 and draws[node] >= rate:
                continue
            dst = pattern.dest(node, gen)
            pkt = net.make_packet(
                node, dst, sizes.draw(gen), traffic_class=cls, meta=("req", node)
            )
            net.offer(pkt)
            pf[node] += 1
            self.total_requests += 1
            remaining[cls][node] -= 1
            self.requests_by_class[cls] += 1

    def on_delivered(self, pkt, engine: SimulationEngine) -> None:
        net = engine.network
        gen = self.gen
        if pkt.meta is not None and pkt.meta[0] == "req":
            self.req_latency_sum += pkt.latency
            self.req_latency_count += 1
            delay = self.sim.reply_model.delay(gen, pkt.traffic_class)
            reply = net.make_packet(
                pkt.dst,
                pkt.src,
                self.sim.reply_sizes.draw(gen),
                is_reply=True,
                traffic_class=pkt.traffic_class,
                meta=("rep", pkt.meta[1]),
            )
            if delay == 0:
                net.offer(reply)
            else:
                self.pending_replies.schedule(net.now + delay, reply)
        else:
            owner = pkt.meta[1]
            self.pf[owner] -= 1
            self.replies_needed[owner] -= 1
            if self.replies_needed[owner] == 0 and all(
                rem[owner] == 0 for rem in self.remaining
            ):
                self.finish[owner] = net.now
                self.unfinished -= 1

    def done(self, engine: SimulationEngine) -> bool:
        return self.unfinished == 0

    def next_event_cycle(self, engine: SimulationEngine) -> Optional[int]:
        """Next cycle at which this loop could act (consuming RNG draws).

        Called only while the network is idle, so node eligibility is
        frozen until the next timer tick or reply release — the lookahead
        never draws past either.  Per skipped cycle it consumes the same
        ``gen.random(n)`` the dense loop would, keeping the stream (and
        every later dest/size/delay draw) bit-identical.
        """
        now = engine.network.now
        if self._cached_cycle >= now:
            return self._cached_cycle
        stop = engine.max_cycles
        if 0 <= self.next_timer < stop:
            stop = self.next_timer
        rel = self.pending_replies.next_time()
        if rel is not None and rel < stop:
            stop = rel
        if stop <= now:
            return stop  # a timer tick or reply release is due this cycle
        # Classify nodes by their (frozen) eligibility and NAR gate.
        pf = self.pf
        m = self.sim.max_outstanding
        remaining = self.remaining
        nar = self.nar_by_class
        gated: list[tuple[int, float]] = []
        for node in range(len(pf)):
            if pf[node] >= m:
                continue
            for cls in self.inject_order:
                if remaining[cls][node] > 0:
                    break
            else:
                continue
            rate = nar[cls]
            if rate >= 1.0:
                return now  # an ungated node injects this very cycle
            gated.append((node, rate))
        gen = self.gen
        n = len(pf)
        cycle = max(now, self._drawn_until)
        if not gated:
            # Nothing can inject before ``stop``: burn the dense loop's
            # per-cycle draws in one bulk call (same stream position).
            if stop > cycle:
                gen.random((stop - cycle) * n)
                self._drawn_until = stop
            return stop
        # Scan whole blocks of cycles per RNG call (``random(k * n)``
        # consumes the doubles of ``k`` successive ``random(n)`` calls); on
        # a mid-block hit, rewind the generator state and redraw exactly up
        # to the hit so the stream position matches the dense loop's.
        idx = np.array([node for node, _ in gated], dtype=np.intp)
        rates = np.array([rate for _, rate in gated])
        # Short gaps (some node's gate fires within a cycle or two) are the
        # common case at moderate NAR: scan them with plain per-cycle draws
        # before escalating to block draws.
        warm_until = min(stop, cycle + 2)
        while cycle < warm_until:
            draws = gen.random(n)
            self._drawn_until = cycle + 1
            if (draws[idx] < rates).any():
                self._cached_cycle = cycle
                self._cached_draws = draws
                return cycle
            cycle += 1
        block_cycles = 16
        while cycle < stop:
            k = min(block_cycles, stop - cycle)
            state = gen.bit_generator.state
            block = gen.random(k * n).reshape(k, n)
            hits = (block[:, idx] < rates).any(axis=1)
            if hits.any():
                j = int(np.argmax(hits))
                gen.bit_generator.state = state
                draws = gen.random((j + 1) * n)[j * n :]
                self._drawn_until = cycle + j + 1
                self._cached_cycle = cycle + j
                self._cached_draws = draws
                return cycle + j
            cycle += k
            self._drawn_until = cycle
            block_cycles = min(block_cycles * 4, 512)
        return stop


class BatchSimulator:
    """Closed-loop batch-model driver over a cycle-level network."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        batch_size: int = 1000,
        max_outstanding: int = 1,
        nar: float = 1.0,
        reply_model: Optional[ReplyModel] = None,
        os_model: Optional[OSModel] = None,
        pattern: Optional[TrafficPattern] = None,
        sizes: Optional[SizeDistribution] = None,
        reply_sizes: Optional[SizeDistribution] = None,
        max_cycles: Optional[int] = None,
        network_factory=build_network,
        probes: Optional[ProbeSet] = None,
        watchdog=None,
        check_invariants: Optional[bool] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_outstanding < 1:
            raise ValueError("max_outstanding (m) must be >= 1")
        if not 0.0 < nar <= 1.0:
            raise ValueError("nar must be in (0, 1]")
        if os_model is not None and len(config.classes) < 2:
            # The OS extension needs an OS traffic class; extend a default
            # single-class config to the canonical user/OS registry (the OS
            # class carries priority 1, so priority-aware arbiters favor
            # kernel traffic — round-robin/age arbiters ignore it and the
            # baseline behavior is unchanged).
            config = config.with_(classes=USER_OS_CLASSES)
        self.config = config
        self.batch_size = batch_size
        self.max_outstanding = max_outstanding
        self.nar = nar
        self.reply_model = reply_model if reply_model is not None else ImmediateReply()
        self.os_model = os_model
        self.pattern = pattern if pattern is not None else build_pattern(config)
        self.sizes = sizes if sizes is not None else build_sizes(config)
        self.reply_sizes = reply_sizes if reply_sizes is not None else self.sizes
        # Generous default: enough for m=1 at high per-op latency.
        self.max_cycles = (
            max_cycles
            if max_cycles is not None
            else 4000 * batch_size + 2_000_000 // batch_size
        )
        # Injection point for instrumented networks (e.g. trace capture).
        self.network_factory = network_factory
        self.probes = probes
        self.watchdog = watchdog
        self.check_invariants = check_invariants

    def run(self, *, seed: Optional[int] = None) -> BatchResult:
        """Run to completion (or ``max_cycles``); deterministic per seed."""
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        net = self.network_factory(cfg)
        n = net.num_nodes
        gen = rng_mod.make_generator(seed, "batch", self.batch_size, self.max_outstanding)
        loop = _BatchLoop(self, n, gen)
        engine = SimulationEngine(
            net,
            loop,
            max_cycles=self.max_cycles,
            probes=self.probes,
            watchdog=self.watchdog,
            check_invariants=self.check_invariants,
        )
        outcome = engine.run()
        completed = outcome.completed
        runtime = int(loop.finish.max()) if completed else self.max_cycles
        throughput = net.total_flits_delivered / (runtime * n) if runtime else 0.0
        return BatchResult(
            batch_size=self.batch_size,
            max_outstanding=self.max_outstanding,
            runtime=runtime,
            throughput=throughput,
            completed=completed,
            total_requests=loop.total_requests,
            avg_request_latency=(
                loop.req_latency_sum / loop.req_latency_count
                if loop.req_latency_count
                else float("nan")
            ),
            node_finish=loop.finish,
            os_requests=loop.os_requests,
            probe_records=outcome.probe_records,
        )
