"""NSGA-II design-space exploration over the network parameter space.

The paper's framework exists to *compare* design points; this module turns
that comparison into a search.  :func:`explore` runs a seeded, deterministic
NSGA-II (Deb et al. 2002) over a validated :class:`DesignSpace` — topology
× k/n × VC count × buffer depth × routing × arbitration — and returns the
Pareto front over three minimized objectives:

``latency``
    Average packet latency (cycles) at the low evaluation rate; ``inf``
    when the design saturates even there.
``throughput``
    Negated accepted throughput (flits/cycle/node) at the high evaluation
    rate, so more throughput sorts as "smaller".
``cost``
    A silicon area proxy computed from the topology alone (no simulation),
    documented at :func:`design_cost`: wire length (sum of channel delays,
    so folded torus/ring wraps pay double), buffer bits (one input buffer
    per channel terminal plus injection queue, times VCs × depth), and a
    crossbar term (ports² per router) at 5% weight — crossbars are small
    next to buffers at these radices but grow quadratically with degree.

Candidate evaluation routes through :func:`repro.core.parallel.run_sweep`
(or :func:`repro.service.client.run_remote_sweep` with ``remote=``): each
generation's un-archived genomes become one sweep over the extra axes
``genome`` × ``rate``, inheriting the content-addressed result cache
(duplicate genomes across runs are free), self-healing retries, and
distributed execution.  Genomes are canonical tuples of ``(field, value)``
pairs sorted by field name, so per-point seeds from
:func:`repro.rng.sweep_seed` and cache keys are stable regardless of how a
genome was produced.

Infeasible genomes — config validation errors and
:class:`~repro.network.base.BackendUnsupported` — become *penalty points*
(latency ``inf``, throughput 0, cost ``inf``): dominated by every feasible
design, so selection steers away from them without crashing the run.  With
``spec.surrogate`` the analytical model (:mod:`repro.analytical`) screens
each generation first: only the surrogate-front share
(``spec.screen_fraction``) pays for cycle-accurate simulation, the rest
keep surrogate objectives for selection but are excluded from the final
(simulated-only) front.

Determinism and resume
----------------------
All randomness flows from one :func:`repro.rng.make_generator` stream
(numpy ``Generator``, stable across platforms), and consumes the same
draws regardless of cache state — two runs with the same seed produce
bit-identical fronts whether the cache was cold, warm, or off.  A journal
(JSONL) carries the same fingerprint-header contract as sweep journals:
the first line is ``{"sweep": {"fingerprint", "total", "version", ...}}``
and :func:`repro.core.parallel.check_journal_fingerprint` guards a resume
against a changed spec/config/code-salt.  On resume, archived genomes are
answered from the journal and never re-submitted to the sweep layer, so
the sweep health's "N/M cache hits" counts only genuinely fresh points —
replayed genomes are reported separately (``resumed`` / ``dedup_hits``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..analysis.io import canonical_json
from ..analysis.pareto import dominates, pareto_front
from ..config import FIELD_CHOICES, NetworkConfig
from ..rng import make_generator
from ..topology import build_topology
from . import cache as result_cache
from .openloop import OpenLoopSimulator
from .parallel import SweepHealth, check_journal_fingerprint, run_sweep

__all__ = [
    "DesignSpace",
    "ExploreSpec",
    "ExploreResult",
    "QUICK_SPACE",
    "DEFAULT_SPACE",
    "QUICK_HV_REFERENCE",
    "OBJECTIVES",
    "design_cost",
    "explore",
    "explore_runner",
    "genome_key",
    "non_dominated_sort",
    "crowding_distances",
    "nsga2_select",
    "make_offspring",
    "init_population",
]

JOURNAL_VERSION = 1

#: The full objective menu, in canonical order.  ``ExploreSpec.objectives``
#: is an ordered subset of these names.
OBJECTIVES = ("latency", "throughput", "cost")

#: Penalty metrics for infeasible genomes: dominated by every feasible
#: design on every objective subset.
PENALTY_METRICS = {"latency": math.inf, "throughput": 0.0, "cost": math.inf}

#: Hypervolume reference point for the ``--quick`` profile front
#: (latency cycles, negated throughput, cost units) — weakly worse than
#: any feasible quick-space design, fixed so the committed baseline gate
#: is comparing like with like.
QUICK_HV_REFERENCE = (200.0, 0.0, 5000.0)

# Fields the explorer refuses to treat as genes: seeds belong to the
# driver (per-point seeds are derived), traffic classes are structured
# objects (not JSON-scalar genes), and faults are a reliability-study knob
# orthogonal to design-space search.
_RESERVED_FIELDS = frozenset({"seed", "classes", "faults"})


# --------------------------------------------------------------------------
# Design space and genomes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignSpace:
    """A validated, canonically-ordered design space.

    ``genes`` maps :class:`NetworkConfig` field names to the candidate
    values the search may assign, sorted by field name — the sorted order
    fixes genome tuple layout, journal serialization, and per-point seed
    derivation all at once.  Validation is eager: unknown fields, reserved
    fields (``seed``, ``classes``, ``faults``), empty or duplicate value
    lists, and values outside :data:`repro.config.FIELD_CHOICES` fail at
    construction, before any simulation starts.
    """

    genes: tuple[tuple[str, tuple[Any, ...]], ...]

    def __post_init__(self) -> None:
        if not self.genes:
            raise ValueError("design space needs at least one gene")
        names = [name for name, _ in self.genes]
        if names != sorted(names):
            raise ValueError(f"genes must be sorted by field name, got {names}")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate gene names: {names}")
        config_fields = {f.name for f in dataclasses.fields(NetworkConfig)}
        for name, values in self.genes:
            if name in _RESERVED_FIELDS:
                raise ValueError(f"{name!r} cannot be a gene (reserved by the explorer)")
            if name not in config_fields:
                raise ValueError(f"unknown config field {name!r} in design space")
            if not values:
                raise ValueError(f"gene {name!r} has no candidate values")
            if len(set(values)) != len(values):
                raise ValueError(f"gene {name!r} repeats values: {values}")
            choices = FIELD_CHOICES.get(name)
            for v in values:
                if not isinstance(v, (str, int, float, bool)):
                    raise ValueError(
                        f"gene {name!r} value {v!r} is not a JSON-scalar"
                    )
                if choices is not None and v not in choices:
                    raise ValueError(
                        f"gene {name!r} value {v!r} not in {choices}"
                    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Sequence[Any]]) -> "DesignSpace":
        """Build (and validate) a space from ``{field: values}``."""
        genes = tuple(
            (name, tuple(mapping[name])) for name in sorted(mapping)
        )
        return cls(genes=genes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.genes)

    @property
    def size(self) -> int:
        """Number of distinct genomes in the space."""
        out = 1
        for _, values in self.genes:
            out *= len(values)
        return out

    def as_mapping(self) -> dict[str, list[Any]]:
        return {name: list(values) for name, values in self.genes}


# A genome is a tuple of values aligned with ``space.genes`` order; its
# serialized form is the tuple of (field, value) pairs.
Genome = tuple


def genome_pairs(space: DesignSpace, genome: Genome) -> tuple[tuple[str, Any], ...]:
    """Canonical ``((field, value), ...)`` pairs for a genome."""
    return tuple(zip(space.names, genome))


def genome_key(space: DesignSpace, genome: Genome) -> str:
    """Stable string identity of a genome (archive/journal key)."""
    return "|".join(f"{n}={v!r}" for n, v in genome_pairs(space, genome))


def genome_config(
    base: NetworkConfig, pairs: Sequence[Sequence[Any]]
) -> NetworkConfig:
    """Apply genome pairs to ``base`` (raises ``ValueError`` if infeasible)."""
    return base.with_(**{str(n): v for n, v in pairs})


# --------------------------------------------------------------------------
# Cost proxy
# --------------------------------------------------------------------------


def design_cost(cfg: NetworkConfig) -> float:
    """Silicon area proxy of a design point, in flit-buffer-equivalents.

    ``wire + buffers + 0.05 * crossbar`` where

    * ``wire``     = Σ channel delay over the topology's channels — delay is
      proportional to physical length under the folded layouts, so torus
      and ring wraps pay their doubled wire honestly;
    * ``buffers``  = (channels + nodes) × num_vcs × vc_buffer_size — one
      input buffer bank per channel terminal plus one injection queue per
      node, each ``num_vcs`` VCs deep at ``vc_buffer_size`` flits;
    * ``crossbar`` = nodes × ports², weighted 0.05: small next to buffers
      at these radices, but the quadratic growth is what makes
      high-degree routers (ideal, large k rings) expensive.

    Pure function of the config — no simulation, no RNG.
    """
    topo = build_topology(cfg)
    channels = list(topo.channels())
    wire = float(sum(ch.delay for ch in channels))
    buffers = float(
        (len(channels) + topo.num_nodes) * cfg.num_vcs * cfg.vc_buffer_size
    )
    crossbar = float(topo.num_nodes * topo.ports_per_router**2)
    return wire + buffers + 0.05 * crossbar


# --------------------------------------------------------------------------
# Evaluation runner (module-level: picklable, remote-importable)
# --------------------------------------------------------------------------


def explore_runner(cfg, *, genome, rate, warmup, measure, drain_limit):
    """Sweep runner for one (genome, rate) point.

    ``genome`` arrives as the canonical pairs tuple (an extra-axis value,
    so it is part of the point's cache key and derived seed); applying it
    to an infeasible combination raises ``ValueError`` /
    ``BackendUnsupported``, which the sweep layer records as a failed
    point — the explorer turns those into penalty objectives.
    """
    cfg = genome_config(cfg, genome)
    sim = OpenLoopSimulator(cfg, warmup=warmup, measure=measure, drain_limit=drain_limit)
    res = sim.run(rate)
    return {
        "latency": res.avg_latency,
        "throughput": res.throughput,
        "saturated": res.saturated,
    }


# --------------------------------------------------------------------------
# NSGA-II pure functions
# --------------------------------------------------------------------------


def non_dominated_sort(objectives: Sequence[Sequence[float]]) -> list[list[int]]:
    """Fast non-dominated sort: indices grouped into fronts, best first.

    Front 0 is the Pareto front of the input; each later front is the
    Pareto front of what remains.  Every index appears in exactly one
    front.  O(n²) dominance comparisons — fine at population scale.
    """
    n = len(objectives)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
            elif dominates(objectives[j], objectives[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        nxt: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current += 1
        fronts.append(nxt)
    fronts.pop()  # the loop always leaves one empty trailing front
    return fronts


def crowding_distances(
    objectives: Sequence[Sequence[float]], front: Sequence[int]
) -> list[float]:
    """Crowding distance per front member (aligned with ``front`` order).

    Boundary points on any objective get ``inf`` (always kept); interior
    points sum normalized gaps to their sorted neighbours.  Objectives
    with zero or non-finite span contribute nothing to interior points —
    penalty genomes at ``inf`` cannot crowd out real designs.
    """
    m = len(front)
    if m == 0:
        return []
    dist = [0.0] * m
    n_obj = len(objectives[front[0]])
    for k in range(n_obj):
        order = sorted(range(m), key=lambda i: objectives[front[i]][k])
        dist[order[0]] = math.inf
        dist[order[-1]] = math.inf
        lo = objectives[front[order[0]]][k]
        hi = objectives[front[order[-1]]][k]
        span = hi - lo
        if not math.isfinite(span) or span <= 0.0:
            continue
        for pos in range(1, m - 1):
            prev_v = objectives[front[order[pos - 1]]][k]
            next_v = objectives[front[order[pos + 1]]][k]
            if math.isfinite(prev_v) and math.isfinite(next_v):
                dist[order[pos]] += (next_v - prev_v) / span
    return dist


def nsga2_select(objectives: Sequence[Sequence[float]], k: int) -> list[int]:
    """Environmental selection: ``k`` indices by (front rank, crowding).

    Whole fronts are taken best-first; the front that overflows ``k`` is
    truncated by descending crowding distance with index order as the
    deterministic tie-break.
    """
    if k <= 0:
        return []
    chosen: list[int] = []
    for front in non_dominated_sort(objectives):
        if len(chosen) + len(front) <= k:
            chosen.extend(front)
            if len(chosen) == k:
                break
            continue
        crowd = crowding_distances(objectives, front)
        ranked = sorted(range(len(front)), key=lambda i: (-crowd[i], front[i]))
        chosen.extend(front[i] for i in ranked[: k - len(chosen)])
        break
    return chosen


def rank_and_crowding(
    objectives: Sequence[Sequence[float]],
) -> tuple[list[int], list[float]]:
    """Per-individual front rank and crowding distance (tournament inputs)."""
    n = len(objectives)
    rank = [0] * n
    crowd = [0.0] * n
    for r, front in enumerate(non_dominated_sort(objectives)):
        dists = crowding_distances(objectives, front)
        for i, d in zip(front, dists):
            rank[i] = r
            crowd[i] = d
    return rank, crowd


def _tournament(
    gen: np.random.Generator, rank: Sequence[int], crowd: Sequence[float]
) -> int:
    """Binary tournament: lower rank wins, then higher crowding, then index."""
    i, j = (int(x) for x in gen.integers(0, len(rank), size=2))
    if (rank[i], -crowd[i], i) <= (rank[j], -crowd[j], j):
        return i
    return j


def init_population(
    gen: np.random.Generator, space: DesignSpace, size: int
) -> list[Genome]:
    """Uniform random initial population (duplicates allowed — they're free)."""
    population = []
    for _ in range(size):
        genome = tuple(
            values[int(gen.integers(0, len(values)))] for _, values in space.genes
        )
        population.append(genome)
    return population


def make_offspring(
    gen: np.random.Generator,
    population: Sequence[Genome],
    objectives: Sequence[Sequence[float]],
    space: DesignSpace,
    count: int,
    *,
    crossover_rate: float = 0.9,
    mutation_rate: float = 0.2,
) -> list[Genome]:
    """``count`` children via tournament selection + uniform crossover + mutation.

    Per child: two binary tournaments pick parents; with probability
    ``crossover_rate`` each gene comes from either parent uniformly
    (otherwise the child clones the first parent); then each gene mutates
    with probability ``mutation_rate`` by resampling uniformly among the
    gene's *other* values.  The draw sequence is fixed-shape per child
    given the space, so identical seeds give identical offspring streams.
    """
    rank, crowd = rank_and_crowding(objectives)
    children: list[Genome] = []
    n_genes = len(space.genes)
    while len(children) < count:
        p1 = population[_tournament(gen, rank, crowd)]
        p2 = population[_tournament(gen, rank, crowd)]
        if gen.random() < crossover_rate:
            mask = gen.integers(0, 2, size=n_genes)
            child = [p1[g] if mask[g] else p2[g] for g in range(n_genes)]
        else:
            child = list(p1)
        mutate = gen.random(n_genes) < mutation_rate
        for g, (_, values) in enumerate(space.genes):
            if mutate[g] and len(values) > 1:
                others = [v for v in values if v != child[g]]
                child[g] = others[int(gen.integers(0, len(others)))]
        children.append(tuple(child))
    return children


# --------------------------------------------------------------------------
# Spec, result
# --------------------------------------------------------------------------

QUICK_SPACE = DesignSpace.from_mapping(
    {
        "topology": ("mesh", "torus", "ring"),
        "num_vcs": (2, 4),
        "vc_buffer_size": (2, 4),
        "routing": ("dor", "val"),  # val off-mesh is infeasible: penalty path
        "arbitration": ("round_robin", "age"),
    }
)

DEFAULT_SPACE = DesignSpace.from_mapping(
    {
        "topology": ("mesh", "torus", "ring"),
        "k": (4, 8),
        "num_vcs": (2, 4, 8),
        "vc_buffer_size": (1, 2, 4, 8),
        "routing": ("dor", "val", "ma", "romm"),
        "arbitration": ("round_robin", "age"),
    }
)


@dataclass(frozen=True)
class ExploreSpec:
    """Everything that identifies one exploration run.

    The fingerprint (and therefore journal resume compatibility) covers
    every field here plus the base config and the code-version salt.
    """

    space: DesignSpace = QUICK_SPACE
    population: int = 12
    generations: int = 6
    seed: int = 1
    #: (low, high) injection rates: latency is read at low, throughput at high.
    rates: tuple[float, float] = (0.1, 0.55)
    warmup: int = 300
    measure: int = 600
    drain_limit: int = 6000
    objectives: tuple[str, ...] = OBJECTIVES
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    #: Screen each generation with the analytical surrogate first.
    surrogate: bool = False
    #: Fraction of screened genomes that graduate to cycle-accurate runs.
    screen_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 0:
            raise ValueError("generations must be >= 0")
        if len(self.rates) != 2 or not (0.0 < self.rates[0] <= self.rates[1]):
            raise ValueError(f"rates must be (low, high) with 0 < low <= high: {self.rates}")
        bad = [o for o in self.objectives if o not in OBJECTIVES]
        if bad or len(self.objectives) < 2 or len(set(self.objectives)) != len(self.objectives):
            raise ValueError(
                f"objectives must be >= 2 distinct names from {OBJECTIVES}: {self.objectives}"
            )
        if not 0.0 < self.screen_fraction <= 1.0:
            raise ValueError("screen_fraction must be in (0, 1]")

    def fingerprint(self, base: NetworkConfig) -> str:
        """Resume identity: spec × base config × code salt (sha256)."""
        payload = {
            "space": self.space.as_mapping(),
            "population": self.population,
            "generations": self.generations,
            "seed": self.seed,
            "rates": list(self.rates),
            "windows": [self.warmup, self.measure, self.drain_limit],
            "objectives": list(self.objectives),
            "crossover_rate": self.crossover_rate,
            "mutation_rate": self.mutation_rate,
            "surrogate": self.surrogate,
            "screen_fraction": self.screen_fraction,
            "config": dataclasses.asdict(base),
            "salt": result_cache.cache_salt(),
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def objective_vector(self, metrics: Mapping[str, float]) -> tuple[float, ...]:
        """Minimized objective vector in spec order (throughput negated)."""
        out = []
        for name in self.objectives:
            v = float(metrics[name])
            out.append(-v if name == "throughput" else v)
        return tuple(out)


@dataclass
class ExploreResult:
    """One exploration run: front, archive, populations, health, counters."""

    #: Non-dominated, feasible, *simulated* designs (canonical order).
    front: list[dict[str, Any]]
    #: Every evaluated genome, in evaluation order (journal mirror).
    archive: list[dict[str, Any]]
    #: Genome keys per generation (index 0 = initial population).
    populations: list[list[str]]
    #: Aggregated sweep-layer health of the fresh evaluations only.
    health: SweepHealth
    #: Genomes answered by fresh simulation this run.
    evaluated: int = 0
    #: Genomes answered from the resumed journal archive.
    resumed: int = 0
    #: Duplicate genome requests answered from the in-run archive.
    dedup_hits: int = 0
    #: Genomes that proved infeasible (penalty points).
    infeasible: int = 0
    #: Genomes that failed for *unexpected* reasons (crashes, stalls) —
    #: unlike infeasibility these are real errors and fail the CLI.
    errors: int = 0
    #: Genomes evaluated by the surrogate only (never simulated).
    surrogate_only: int = 0

    def summary(self) -> str:
        parts = [
            f"{len(self.front)} on front",
            f"{self.evaluated} simulated",
        ]
        if self.surrogate_only:
            parts.append(f"{self.surrogate_only} surrogate-only")
        if self.infeasible:
            parts.append(f"{self.infeasible} infeasible")
        if self.errors:
            parts.append(f"{self.errors} errors")
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.dedup_hits:
            parts.append(f"{self.dedup_hits} dedup hits")
        parts.append(self.health.summary())
        return ", ".join(parts)


# --------------------------------------------------------------------------
# Journal
# --------------------------------------------------------------------------


def _journal_header(spec: ExploreSpec, base: NetworkConfig) -> dict[str, Any]:
    # The same {"sweep": {...}} shape run_sweep writes, so
    # check_journal_fingerprint guards explore resumes unchanged.
    return {
        "sweep": {
            "fingerprint": spec.fingerprint(base),
            "total": spec.population * (spec.generations + 1),
            "version": JOURNAL_VERSION,
            "explore": {
                "population": spec.population,
                "generations": spec.generations,
                "seed": spec.seed,
                "objectives": list(spec.objectives),
            },
        }
    }


def _load_archive(journal: Path) -> list[dict[str, Any]]:
    """Archive entries from a journal, tolerating a truncated tail line."""
    entries: list[dict[str, Any]] = []
    with journal.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                break  # interrupted mid-write: drop the tail
            if "sweep" in obj:
                continue
            if "key" in obj and "objectives" in obj:
                entries.append(obj)
    return entries


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def _classify_failure(error: str) -> str:
    """``"infeasible"`` for validation/backend rejections, else ``"error"``."""
    # BackendUnsupported subclasses ValueError but keeps its own name in
    # the record's "TypeName: message" string.
    return (
        "infeasible"
        if error.startswith(("ValueError:", "BackendUnsupported:"))
        else "error"
    )


_HEALTH_FIELDS = (
    "total",
    "ok",
    "failed",
    "retried",
    "timed_out",
    "stalled",
    "worker_deaths",
    "cache_hits",
    "cache_misses",
    "quarantined",
    "stale_results",
)


def _fold_health(total: SweepHealth, part: SweepHealth) -> None:
    for name in _HEALTH_FIELDS:
        setattr(total, name, getattr(total, name) + getattr(part, name))
    total.interrupted = total.interrupted or part.interrupted


def _surrogate_metrics(
    cfg: NetworkConfig, rates: tuple[float, float]
) -> dict[str, float] | None:
    """Analytical (zero-cycle) latency/throughput estimate, or None.

    ``None`` means the surrogate cannot model this (feasible) design —
    the genome must be simulated rather than screened.
    """
    from ..analytical import AnalyticalModel

    try:
        model = AnalyticalModel(cfg)
        lo = model.estimate(rates[0])
        hi = model.estimate(rates[1])
    except Exception:
        return None
    latency = math.inf if lo.saturated else float(lo.avg_latency)
    return {"latency": latency, "throughput": float(hi.throughput)}


def explore(
    base: NetworkConfig,
    spec: ExploreSpec,
    *,
    journal: str | Path | None = None,
    resume: bool = False,
    resume_force: bool = False,
    n_workers: int = 1,
    cache: Any = None,
    remote: str | None = None,
    max_retries: int = 2,
    point_timeout: float | None = None,
    log: Callable[[str], None] | None = None,
) -> ExploreResult:
    """Run the NSGA-II exploration; return the front, archive, and health.

    ``base`` supplies every config field the space does not vary (network
    size, traffic pattern, ...).  ``journal`` checkpoints each evaluated
    genome as a JSONL line under the fingerprint-header contract; with
    ``resume=True`` archived genomes are replayed instead of re-evaluated
    (``resume_force`` overrides a fingerprint mismatch).  ``remote`` is a
    ``host:port`` sweep-service address; otherwise evaluation runs locally
    with ``n_workers`` / ``cache`` / ``point_timeout`` passed through to
    :func:`run_sweep`.  ``log`` receives one progress line per generation.
    """
    say = log or (lambda msg: None)
    space = spec.space
    journal_path = Path(journal) if journal is not None else None
    if resume and journal_path is None:
        raise ValueError("resume=True requires a journal path")

    archive: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    result = ExploreResult(front=[], archive=[], populations=[], health=SweepHealth())

    if journal_path is not None and resume and journal_path.exists():
        check_journal_fingerprint(
            journal_path, spec.fingerprint(base), force=resume_force
        )
        for entry in _load_archive(journal_path):
            if entry["key"] not in archive:
                archive[entry["key"]] = entry
                order.append(entry["key"])
        result.resumed = len(archive)
        say(f"resumed {result.resumed} archived genomes from {journal_path}")

    # (Re)write the journal: header plus whatever survived the resume load,
    # dropping any truncated tail — the same rewrite run_sweep performs.
    if journal_path is not None:
        with journal_path.open("w", encoding="utf-8") as fh:
            fh.write(canonical_json(_journal_header(spec, base)) + "\n")
            for key in order:
                fh.write(canonical_json(archive[key]) + "\n")

    def append_entries(entries: Sequence[Mapping[str, Any]]) -> None:
        if journal_path is None or not entries:
            return
        with journal_path.open("a", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(canonical_json(entry) + "\n")

    def finish_entry(
        key: str,
        pairs: tuple[tuple[str, Any], ...],
        generation: int,
        source: str,
        feasible: bool,
        metrics: Mapping[str, float],
        error: str | None = None,
    ) -> dict[str, Any]:
        entry = {
            "key": key,
            "genome": [list(p) for p in pairs],
            "generation": generation,
            "source": source,
            "feasible": feasible,
            "metrics": dict(metrics),
            "objectives": list(spec.objective_vector(metrics)),
        }
        if error is not None:
            entry["error"] = error
        archive[key] = entry
        order.append(key)
        return entry

    def evaluate_generation(genomes: Sequence[Genome], generation: int) -> None:
        """Ensure every genome has an archive entry; journal the fresh ones.

        Resumed/duplicate genomes are answered from the archive and never
        re-submitted to the sweep layer — so the sweep health's cache
        accounting only ever sees genuinely fresh points.
        """
        todo: list[Genome] = []
        seen_batch: set[str] = set()
        for genome in genomes:
            key = genome_key(space, genome)
            if key in archive or key in seen_batch:
                if key in archive:
                    result.dedup_hits += 1
                continue
            seen_batch.add(key)
            todo.append(genome)
        if not todo:
            return

        new_entries: list[dict[str, Any]] = []
        simulate: list[Genome] = []
        if spec.surrogate:
            screened: list[tuple[Genome, dict[str, float]]] = []
            for genome in todo:
                pairs = genome_pairs(space, genome)
                key = genome_key(space, genome)
                try:
                    cfg = genome_config(base, pairs)
                except ValueError as exc:
                    result.infeasible += 1
                    new_entries.append(
                        finish_entry(
                            key, pairs, generation, "penalty", False,
                            PENALTY_METRICS, error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                est = _surrogate_metrics(cfg, spec.rates)
                if est is None:
                    simulate.append(genome)  # surrogate can't model it
                else:
                    est["cost"] = design_cost(cfg)
                    screened.append((genome, est))
            if screened:
                vectors = [spec.objective_vector(m) for _, m in screened]
                n_pick = max(1, math.ceil(spec.screen_fraction * len(screened)))
                picked = set(nsga2_select(vectors, n_pick))
                for i, (genome, est) in enumerate(screened):
                    if i in picked:
                        simulate.append(genome)
                    else:
                        result.surrogate_only += 1
                        new_entries.append(
                            finish_entry(
                                genome_key(space, genome),
                                genome_pairs(space, genome),
                                generation,
                                "surrogate",
                                True,
                                est,
                            )
                        )
        else:
            simulate = todo

        if simulate:
            genome_axis = tuple(genome_pairs(space, g) for g in simulate)
            sweep_kwargs: dict[str, Any] = dict(
                extra_axes={"genome": genome_axis, "rate": tuple(spec.rates)},
                max_retries=max_retries,
            )
            runner = _bound_runner(spec)
            if remote is not None:
                from ..service.client import run_remote_sweep

                records = run_remote_sweep(
                    remote, base, {}, runner, label=f"explore-gen{generation}",
                    **sweep_kwargs,
                )
            else:
                records = run_sweep(
                    base, {}, runner,
                    n_workers=n_workers,
                    cache=cache,
                    point_timeout=point_timeout,
                    **sweep_kwargs,
                )
            _fold_health(result.health, records.health)
            # Canonical enumeration order: genome-major, rate-minor.
            for i, genome in enumerate(simulate):
                pairs = genome_pairs(space, genome)
                key = genome_key(space, genome)
                rec_lo, rec_hi = records[2 * i], records[2 * i + 1]
                failed = [r for r in (rec_lo, rec_hi) if r.get("failed")]
                if failed:
                    error = str(failed[0].get("error", "unknown"))
                    kind = _classify_failure(error)
                    if kind == "infeasible":
                        result.infeasible += 1
                    else:
                        result.errors += 1
                    new_entries.append(
                        finish_entry(
                            key, pairs, generation, "penalty", False,
                            PENALTY_METRICS, error=error,
                        )
                    )
                    continue
                result.evaluated += 1
                latency = (
                    math.inf if rec_lo.get("saturated") else float(rec_lo["latency"])
                )
                metrics = {
                    "latency": latency,
                    "throughput": float(rec_hi["throughput"]),
                    "cost": design_cost(genome_config(base, pairs)),
                }
                new_entries.append(
                    finish_entry(key, pairs, generation, "simulated", True, metrics)
                )
        append_entries(new_entries)

    # ---- the generational loop -------------------------------------------
    gen = make_generator(spec.seed, "explore")
    population = init_population(gen, space, spec.population)
    evaluate_generation(population, 0)
    result.populations.append([genome_key(space, g) for g in population])
    say(f"generation 0/{spec.generations}: population evaluated")
    for g in range(1, spec.generations + 1):
        objs = [
            tuple(archive[genome_key(space, p)]["objectives"]) for p in population
        ]
        offspring = make_offspring(
            gen, population, objs, space, spec.population,
            crossover_rate=spec.crossover_rate,
            mutation_rate=spec.mutation_rate,
        )
        evaluate_generation(offspring, g)
        combined = list(population) + offspring
        combined_objs = [
            tuple(archive[genome_key(space, p)]["objectives"]) for p in combined
        ]
        keep = nsga2_select(combined_objs, spec.population)
        population = [combined[i] for i in keep]
        result.populations.append([genome_key(space, p) for p in population])
        say(f"generation {g}/{spec.generations}: {result.summary()}")

    # ---- the front: feasible, simulated, non-dominated, deduplicated -----
    result.archive = [archive[key] for key in order]
    candidates = [
        e for e in result.archive if e["feasible"] and e["source"] == "simulated"
    ]
    vectors = [tuple(e["objectives"]) for e in candidates]
    front_entries = [candidates[i] for i in pareto_front(vectors)]
    front_entries.sort(key=lambda e: (tuple(e["objectives"]), e["key"]))
    for e in front_entries:
        rec: dict[str, Any] = {str(n): v for n, v in e["genome"]}
        rec.update(e["metrics"])
        rec["objectives"] = list(e["objectives"])
        rec["key"] = e["key"]
        rec["generation"] = e["generation"]
        result.front.append(rec)
    return result


def _bound_runner(spec: ExploreSpec):
    """The runner with measurement windows bound as keywords.

    ``functools.partial`` over the module-level :func:`explore_runner`
    keeps the runner picklable for the process pool *and* importable by
    name for the remote service (the client re-binds keyword arguments on
    the worker side).
    """
    import functools

    return functools.partial(
        explore_runner,
        warmup=spec.warmup,
        measure=spec.measure,
        drain_limit=spec.drain_limit,
    )
