"""Enhanced reply models (paper §IV-C2, Fig. 17).

In the baseline batch model a reply is injected the moment the request's
tail flit arrives.  In a real CMP the reply waits for an L2 access, or an
L2 access plus a DRAM access on an L2 miss.  Two models capture this:

* :class:`FixedReply` — constant service latency for every request
  (Fig. 17a/b: 20 and 50 cycles),
* :class:`ProbabilisticReply` — L2 latency on a hit, L2 + memory latency on
  a miss (Fig. 17c: 20 + 0.1·300), which has the same *mean* as a 50-cycle
  fixed model but a long tail, reproducing the paper's observation that
  identical average memory latency can still shift the batch model's
  operating point.

Models are per-traffic-class capable so the OS extension (§V) can give
kernel requests their own L2 miss rate (Table IV).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "ReplyModel",
    "ImmediateReply",
    "FixedReply",
    "ProbabilisticReply",
    "PerClassReply",
]


class ReplyModel(ABC):
    """Maps a delivered request to the service delay before its reply."""

    name: str = "abstract"

    @abstractmethod
    def delay(self, rng: np.random.Generator, traffic_class: int = 0) -> int:
        """Service latency in cycles for one request."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected service latency (class 0)."""


class ImmediateReply(ReplyModel):
    """Baseline batch model: the reply is injected immediately."""

    name = "immediate"

    def delay(self, rng: np.random.Generator, traffic_class: int = 0) -> int:
        return 0

    @property
    def mean(self) -> float:
        return 0.0


class FixedReply(ReplyModel):
    """Every remote access costs a fixed ``latency`` cycles."""

    name = "fixed"

    def __init__(self, latency: int):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.latency = latency

    def delay(self, rng: np.random.Generator, traffic_class: int = 0) -> int:
        return self.latency

    @property
    def mean(self) -> float:
        return float(self.latency)


class ProbabilisticReply(ReplyModel):
    """L2 access, plus a memory access with probability ``l2_miss_rate``.

    Paper defaults: 20-cycle L2, 300-cycle memory, 10% miss rate.
    """

    name = "probabilistic"

    def __init__(
        self,
        l2_latency: int = 20,
        memory_latency: int = 300,
        l2_miss_rate: float = 0.1,
    ):
        if l2_latency < 0 or memory_latency < 0:
            raise ValueError("latencies must be >= 0")
        if not 0.0 <= l2_miss_rate <= 1.0:
            raise ValueError("l2_miss_rate must be in [0, 1]")
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency
        self.l2_miss_rate = l2_miss_rate

    def delay(self, rng: np.random.Generator, traffic_class: int = 0) -> int:
        if rng.random() < self.l2_miss_rate:
            return self.l2_latency + self.memory_latency
        return self.l2_latency

    @property
    def mean(self) -> float:
        return self.l2_latency + self.l2_miss_rate * self.memory_latency


class PerClassReply(ReplyModel):
    """Dispatch to a different model per traffic class.

    Keys are class *indices* into the config's class registry
    (``repro.classes``: user=0, OS=1 in the canonical user/OS pair);
    :meth:`from_registry` builds the index map from class *names* instead.
    """

    name = "per_class"

    def __init__(self, models: dict[int, ReplyModel], default: ReplyModel):
        self.models = dict(models)
        self.default = default

    @classmethod
    def from_registry(
        cls,
        classes,
        models: dict[str, ReplyModel],
        default: ReplyModel,
    ) -> "PerClassReply":
        """Build from class *names* resolved against a class registry.

        ``classes`` is a registry as held by ``NetworkConfig.classes`` (any
        ``repro.classes.parse_classes`` input works); unknown names raise.
        """
        from ..classes import parse_classes

        registry = parse_classes(classes)
        index = {c.name: i for i, c in enumerate(registry)}
        by_index: dict[int, ReplyModel] = {}
        for name, model in models.items():
            try:
                by_index[index[name]] = model
            except KeyError:
                raise ValueError(
                    f"unknown traffic class {name!r}"
                    f" (registry: {', '.join(index)})"
                ) from None
        return cls(by_index, default)

    def delay(self, rng: np.random.Generator, traffic_class: int = 0) -> int:
        return self.models.get(traffic_class, self.default).delay(rng, traffic_class)

    @property
    def mean(self) -> float:
        return self.models.get(0, self.default).mean
