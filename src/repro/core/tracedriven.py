"""Trace-driven simulation (paper §II, background methodology #2).

A trace stores "only abstract information of network packets such as the
timestamp, packet size, and source and destination" (§II) captured from
some reference run, and replays it on a network-only simulator.  Replay is
fast and workload-faithful to the *reference* configuration — but, as the
paper stresses, "feedback from the network does not affect the workload and
ignores the causality of messages": replaying a tr=1 trace on a tr=8
network keeps injecting at tr=1 rates, so it underestimates the slowdown
that a closed-loop (or real) system would see.  The ablation benchmark
``benchmarks/test_ablation_tracedriven.py`` quantifies exactly that.

Convenience captures for the open-loop and batch drivers are provided;
any other driver can record by passing an instrumented network factory
(see :func:`capture_batch_trace`).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..config import NetworkConfig
from ..network.factory import build_network
from ..network.network import Network
from .closedloop import BatchSimulator
from .engine import SimulationEngine
from .openloop import OpenLoopSimulator
from .probes import ProbeSet

__all__ = [
    "TraceRecord",
    "Trace",
    "capture_openloop_trace",
    "capture_batch_trace",
    "TraceDrivenSimulator",
    "TraceDrivenResult",
]


@dataclass(frozen=True)
class TraceRecord:
    """One packet of a trace: creation timestamp plus abstract header."""

    time: int
    src: int
    dst: int
    size: int

    def __post_init__(self) -> None:
        if self.time < 0 or self.size < 1:
            raise ValueError("need time >= 0 and size >= 1")


class Trace:
    """An ordered sequence of trace records with (de)serialization.

    Records must be sorted by timestamp; the constructor verifies it so a
    corrupted trace fails loudly instead of replaying out of order.
    """

    def __init__(self, records: Sequence[TraceRecord], *, num_nodes: int):
        records = list(records)
        for a, b in zip(records, records[1:]):
            if b.time < a.time:
                raise ValueError("trace records must be sorted by time")
        for r in records:
            if not (0 <= r.src < num_nodes and 0 <= r.dst < num_nodes):
                raise ValueError(f"record {r} outside 0..{num_nodes - 1}")
        self.records = records
        self.num_nodes = num_nodes

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> int:
        """Timestamp of the last injection (0 for an empty trace)."""
        return self.records[-1].time if self.records else 0

    @property
    def total_flits(self) -> int:
        return sum(r.size for r in self.records)

    def injection_rate(self) -> float:
        """Average offered flits/cycle/node over the trace duration."""
        if not self.records or self.duration == 0:
            return 0.0
        return self.total_flits / (self.duration * self.num_nodes)

    # -- persistence -----------------------------------------------------------
    def to_csv(self) -> str:
        """Serialize as CSV text (time,src,dst,size)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["time", "src", "dst", "size"])
        for r in self.records:
            writer.writerow([r.time, r.src, r.dst, r.size])
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str, *, num_nodes: int) -> "Trace":
        """Parse a trace serialized by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["time", "src", "dst", "size"]:
            raise ValueError("not a trace CSV (bad header)")
        records = [
            TraceRecord(int(t), int(s), int(d), int(z)) for t, s, d, z in reader
        ]
        return cls(records, num_nodes=num_nodes)


class _RecordingNetwork(Network):
    """Network that records every offered packet's abstract header."""

    def __init__(self, config: NetworkConfig):
        super().__init__(config)
        self.trace_records: list[TraceRecord] = []

    def offer(self, packet) -> None:
        self.trace_records.append(
            TraceRecord(self.now, packet.src, packet.dst, packet.size)
        )
        super().offer(packet)


def capture_openloop_trace(
    config: NetworkConfig,
    injection_rate: float,
    *,
    cycles: int = 2000,
    seed: Optional[int] = None,
) -> Trace:
    """Capture a trace from an open-loop run at ``injection_rate``."""
    sim = OpenLoopSimulator(config, warmup=0, measure=cycles, drain_limit=1)
    net = _RecordingNetwork(config)
    # Drive the recording network directly with the simulator's process.
    from .. import rng as rng_mod

    gen = rng_mod.make_generator(
        config.seed if seed is None else seed, "trace", injection_rate
    )
    p_packet = injection_rate / sim.sizes.mean
    for _ in range(cycles):
        for src in np.nonzero(gen.random(net.num_nodes) < p_packet)[0]:
            src = int(src)
            dst = sim.pattern.dest(src, gen)
            net.offer(net.make_packet(src, dst, sim.sizes.draw(gen)))
        net.step()
    return Trace(net.trace_records, num_nodes=net.num_nodes)


def capture_batch_trace(
    config: NetworkConfig,
    *,
    batch_size: int = 100,
    max_outstanding: int = 1,
    seed: Optional[int] = None,
    **batch_kwargs,
) -> Trace:
    """Capture a trace from a closed-loop batch run.

    The trace embeds the reference network's feedback (the injection times
    reflect *that* network's round trips) — which is precisely why replay
    on a different configuration is misleading, per §II.
    """
    recorders: list[_RecordingNetwork] = []

    def factory(cfg: NetworkConfig) -> _RecordingNetwork:
        net = _RecordingNetwork(cfg)
        recorders.append(net)
        return net

    BatchSimulator(
        config,
        batch_size=batch_size,
        max_outstanding=max_outstanding,
        network_factory=factory,
        **batch_kwargs,
    ).run(seed=seed)
    return Trace(recorders[-1].trace_records, num_nodes=config.num_nodes)


@dataclass
class TraceDrivenResult:
    """Replay measurements."""

    runtime: int
    avg_latency: float
    throughput: float
    packets: int
    completed: bool
    probe_records: list = field(default_factory=list, repr=False)


class _TraceReplayer:
    """Injects each trace record at exactly its recorded timestamp.

    Network feedback never delays an injection — the defining (and
    limiting) property of trace-driven evaluation.
    """

    def __init__(self, trace: Trace):
        self._it = iter(trace)
        self._next = next(self._it, None)

    def inject(self, engine: SimulationEngine) -> None:
        net = engine.network
        nxt = self._next
        while nxt is not None and nxt.time == net.now:
            net.offer(net.make_packet(nxt.src, nxt.dst, nxt.size))
            nxt = next(self._it, None)
        self._next = nxt

    def done(self, engine: SimulationEngine) -> bool:
        return self._next is None

    def next_event_cycle(self, engine: SimulationEngine) -> Optional[int]:
        """Timestamp of the next trace record (trace replay uses no RNG)."""
        nxt = self._next
        return nxt.time if nxt is not None else None


class _ReplaySink:
    """Collects every delivered packet's latency; done once all drained."""

    def __init__(self) -> None:
        self.latencies: list[int] = []

    def on_delivered(self, pkt, engine: SimulationEngine) -> None:
        self.latencies.append(pkt.latency)

    def done(self, engine: SimulationEngine) -> bool:
        return engine.network.is_idle()


class TraceDrivenSimulator:
    """Replays a :class:`Trace` on a network configuration.

    Packets are injected at their recorded timestamps regardless of what
    the replay network does — the defining (and limiting) property of
    trace-driven evaluation.
    """

    def __init__(
        self,
        config: NetworkConfig,
        trace: Trace,
        *,
        probes: Optional[ProbeSet] = None,
        network_factory=build_network,
    ):
        if trace.num_nodes != config.num_nodes:
            raise ValueError(
                f"trace has {trace.num_nodes} nodes, config {config.num_nodes}"
            )
        self.config = config
        self.trace = trace
        self.probes = probes
        # Injection point for instrumented networks (matches the other drivers).
        self.network_factory = network_factory

    def run(self, *, drain_limit: int = 200_000) -> TraceDrivenResult:
        """Replay the full trace and drain; returns aggregate measurements."""
        net = self.network_factory(self.config)
        sink = _ReplaySink()
        engine = SimulationEngine(
            net,
            _TraceReplayer(self.trace),
            sink,
            max_cycles=self.trace.duration + drain_limit,
            probes=self.probes,
        )
        outcome = engine.run()
        latencies = sink.latencies
        runtime = net.now
        return TraceDrivenResult(
            runtime=runtime,
            avg_latency=float(np.mean(latencies)) if latencies else float("nan"),
            throughput=net.total_flits_delivered / (runtime * net.num_nodes)
            if runtime
            else 0.0,
            packets=len(latencies),
            completed=outcome.completed,
            probe_records=outcome.probe_records,
        )
