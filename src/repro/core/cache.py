"""Content-addressed result cache for sweeps and figure reproduction.

The framework's workloads re-run the same (config, seed) points constantly:
latency-load grids behind the figure harnesses, correlation sweeps, CI
reruns of identical commits.  Every point is deterministic — same resolved
config, same seed, same code ⇒ bit-identical record — so recomputing one is
pure waste.  This module memoizes them on disk, BookSim-style:

* **Content addressing.**  A point's identity is the sha256 fingerprint of
  its *resolved* configuration dict, its extra-axis kwargs, the identity of
  the runner that produced it, and a **code-version salt**.  The salt folds
  in ``repro.__version__`` plus a per-module source digest of the hot-path
  files (``config``/``rng`` and the ``core``, ``network``, ``routing``,
  ``topology``, ``traffic``, ``execdriven`` packages), so any edit to
  simulation-relevant code invalidates the cache cleanly.  A doc-only edit
  that is *known* not to change results can opt in to the old entries by
  pinning ``REPRO_CACHE_SALT`` to the previous salt.
* **Store layout.**  One append-only JSON-lines file (``store.jsonl``)
  holding full entries — key, provenance metadata, record — plus an
  in-memory sha256 index built on open.  A tail truncated by a crash is
  tolerated exactly like the sweep journal: complete lines load, the
  partial line is dropped.  ``stats.json`` accumulates hit/miss/write
  counters across runs.
* **Write-back on success only.**  Failed, stalled, or timed-out points
  are never cached; they re-run next time.
* **Kill switch.**  ``REPRO_NO_CACHE=1`` disables every lookup and
  write-back, regardless of what callers pass.

Integration points: :func:`repro.core.parallel.run_sweep` (``cache=``
argument; lookup before a point is dispatched to the pool, write-back as
records land), the figure-benchmark fixtures in ``benchmarks/conftest.py``,
and the ``repro cache`` CLI (``stats`` / ``verify`` / ``gc``).
"""

from __future__ import annotations

import copy
import dataclasses
import functools
import hashlib
import importlib
import json
import os
import pathlib
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

import numpy as np

from ..analysis.io import append_jsonl, canonical_json, read_jsonl

__all__ = [
    "CacheStats",
    "GCResult",
    "ResultCache",
    "VerifyResult",
    "cache_disabled",
    "cache_salt",
    "code_fingerprint",
    "default_cache_dir",
    "fingerprint",
    "point_key",
    "provenance",
    "resolve_cache",
    "runner_spec",
    "verify_entries",
]

#: Environment variable that disables the cache entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable pinning the code-version salt explicitly (the
#: doc-only-edit opt-in: pin it to the previous salt to keep old entries).
CACHE_SALT_ENV = "REPRO_CACHE_SALT"

#: Hot-path modules/packages whose source feeds the code-version salt.
#: ``analysis`` and ``__main__`` are deliberately absent: plotting and CLI
#: wiring cannot change a simulation record.
_HOT_PATHS = (
    "config.py",
    "rng.py",
    "core",
    "network",
    "routing",
    "topology",
    "traffic",
    "execdriven",
)

_STORE_NAME = "store.jsonl"
_STATS_NAME = "stats.json"


def cache_disabled() -> bool:
    """True when ``REPRO_NO_CACHE`` requests a full bypass."""
    return os.environ.get(NO_CACHE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def default_cache_dir() -> pathlib.Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV) or ".repro-cache")


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> dict:
    """Per-module sha256 source digests of the hot-path files.

    Keys are paths relative to the ``repro`` package (``core/engine.py``),
    values are hex digests of the file bytes.  Computed once per process —
    the sources cannot change under a running interpreter in any way that
    matters to the records it will produce.
    """
    pkg_root = pathlib.Path(__file__).resolve().parent.parent
    digests: dict[str, str] = {}
    for rel in _HOT_PATHS:
        target = pkg_root / rel
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for f in files:
            if f.exists():
                digests[f.relative_to(pkg_root).as_posix()] = hashlib.sha256(
                    f.read_bytes()
                ).hexdigest()
    return digests


@functools.lru_cache(maxsize=1)
def _computed_salt() -> str:
    from .. import __version__

    payload = {"version": __version__, "sources": code_fingerprint()}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def cache_salt() -> str:
    """The code-version salt: ``REPRO_CACHE_SALT`` if pinned, else computed."""
    return os.environ.get(CACHE_SALT_ENV) or _computed_salt()


def _json_default(obj: Any) -> Any:
    """JSON fallback that keeps numeric types numeric (bit-exact floats)."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def _jsonable(obj: Any) -> Any:
    """``obj`` as it reads back from JSON (tuples→lists, numpy→native)."""
    return json.loads(json.dumps(obj, default=_json_default))


def fingerprint(payload: Mapping[str, Any], *, salt: Optional[str] = None) -> str:
    """sha256 key of an arbitrary JSON-able payload under the code salt."""
    body = {"payload": payload, "salt": salt if salt is not None else cache_salt()}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def runner_spec(runner: Callable[..., Any]) -> dict[str, Any]:
    """A stable, JSON-able identity for a sweep runner.

    Two different runners must never share cache entries, so the spec folds
    in the dotted name, any :func:`functools.partial` binding (args and
    keywords, recursively), and — for functions — a CRC of the compiled
    bytecode, which distinguishes same-named lambdas and tracks edits to
    runners living outside the salted ``repro`` package.
    """
    if isinstance(runner, functools.partial):
        return {
            "partial_of": runner_spec(runner.func),
            "args": _jsonable(list(runner.args)),
            "kwargs": _jsonable(dict(runner.keywords or {})),
        }
    spec: dict[str, Any] = {
        "runner": f"{getattr(runner, '__module__', '?')}:"
        f"{getattr(runner, '__qualname__', repr(type(runner).__name__))}"
    }
    code = getattr(runner, "__code__", None)
    if code is not None:
        spec["code_crc"] = zlib.crc32(code.co_code)
    return spec


def provenance(spec: Mapping[str, Any]) -> tuple[Optional[str], dict[str, Any]]:
    """(dotted runner name, merged keyword bindings) from a runner spec.

    Flattens a :func:`functools.partial` chain so ``repro cache verify``
    can rebuild the callable; outer bindings shadow inner ones exactly as
    ``partial.__call__`` resolves them.  Positional partial args make the
    call unreconstructible from keywords alone → ``(None, {})``.
    """
    runner_kwargs: dict[str, Any] = {}
    node: Mapping[str, Any] = spec
    while "partial_of" in node:
        if node.get("args"):
            return None, {}
        for name, value in (node.get("kwargs") or {}).items():
            runner_kwargs.setdefault(name, value)
        node = node["partial_of"]
    return node.get("runner"), runner_kwargs


def point_key(
    config_dict: Mapping[str, Any],
    kwargs: Mapping[str, Any],
    spec: Mapping[str, Any],
    *,
    salt: Optional[str] = None,
) -> str:
    """Cache key of one sweep point: resolved config × kwargs × runner."""
    return fingerprint(
        {
            "config": _jsonable(dict(config_dict)),
            "kwargs": _jsonable(dict(kwargs)),
            "runner": spec,
        },
        salt=salt,
    )


@dataclass
class CacheStats:
    """Per-process cache counters (cumulative ones live in ``stats.json``)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class GCResult:
    """Outcome of one :meth:`ResultCache.gc` pass."""

    kept: int
    dropped: int
    bytes_before: int
    bytes_after: int


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of re-running one sampled cache entry."""

    key: str
    status: str  # "ok" | "mismatch" | "skipped"
    detail: str = ""


class ResultCache:
    """Content-addressed on-disk store: JSONL records + sha256 index.

    Open is cheap (one linear scan of ``store.jsonl``); lookups are a dict
    probe; writes append one flushed line.  Duplicate keys resolve to the
    newest line, so re-caching an entry is an overwrite without a rewrite.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.store_path = self.path / _STORE_NAME
        self.stats = CacheStats()
        self._repair_tail()
        self._index: dict[str, dict[str, Any]] = {}
        for entry in read_jsonl(self.store_path):
            if "key" in entry and "record" in entry:
                self._index[entry["key"]] = entry

    def _repair_tail(self) -> None:
        """Drop a partial trailing line left by a crash mid-append.

        Reads tolerate the partial line, but a subsequent append would glue
        a fresh entry onto it and corrupt *that* record too — so truncate
        back to the last complete line before accepting writes.
        """
        if not self.store_path.exists():
            return
        data = self.store_path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1
        with open(self.store_path, "r+b") as fh:
            fh.truncate(cut)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def total_bytes(self) -> int:
        """Bytes the store occupies on disk (0 for a fresh cache)."""
        return self.store_path.stat().st_size if self.store_path.exists() else 0

    def entries(self) -> list[dict[str, Any]]:
        """All live entries, oldest first."""
        return list(self._index.values())

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The cached record for ``key`` (a private copy), or ``None``."""
        entry = self._index.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return copy.deepcopy(entry["record"])

    def put(
        self, key: str, record: Mapping[str, Any], meta: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Store ``record`` under ``key`` with provenance ``meta`` fields."""
        entry = dict(meta or {})
        entry["key"] = key
        entry["record"] = _jsonable(dict(record))
        before = self.total_bytes
        append_jsonl(entry, self.store_path)
        self.stats.writes += 1
        self.stats.bytes_written += self.total_bytes - before
        self._index[key] = entry

    def flush_stats(self) -> None:
        """Fold this process's counters into the cumulative ``stats.json``."""
        if not (self.stats.hits or self.stats.misses or self.stats.writes):
            return
        totals = self.cumulative_stats()
        for name, value in self.stats.as_dict().items():
            totals[name] = int(totals.get(name, 0)) + value
        (self.path / _STATS_NAME).write_text(json.dumps(totals, indent=1) + "\n")
        self.stats = CacheStats()

    def cumulative_stats(self) -> dict[str, int]:
        """Counters accumulated by every run against this cache directory."""
        path = self.path / _STATS_NAME
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return data if isinstance(data, dict) else {}

    def gc(self, max_bytes: int) -> GCResult:
        """Shrink the store under ``max_bytes``, evicting oldest-first.

        Rewrites ``store.jsonl`` with the newest entries whose encoded
        lines fit the budget (insertion order preserved among survivors),
        which also compacts away lines shadowed by duplicate keys.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        bytes_before = self.total_bytes
        entries = self.entries()
        kept: list[dict[str, Any]] = []
        budget = max_bytes
        for entry in reversed(entries):
            size = len(json.dumps(entry, default=_json_default)) + 1
            if size > budget:
                break
            budget -= size
            kept.append(entry)
        kept.reverse()
        self.store_path.write_text("")
        if kept:
            append_jsonl(kept, self.store_path)
        self._index = {e["key"]: e for e in kept}
        return GCResult(
            kept=len(kept),
            dropped=len(entries) - len(kept),
            bytes_before=bytes_before,
            bytes_after=self.total_bytes,
        )


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalize a ``cache=`` argument: path → store, honoring the kill switch."""
    if cache is None or cache_disabled():
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _import_runner(dotted: str) -> Callable[..., Any]:
    module_name, _, qualname = dotted.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def rerun_entry(entry: Mapping[str, Any]) -> VerifyResult:
    """Re-execute one sweep-cache entry and diff its record bit-for-bit.

    Only entries written by :func:`repro.core.parallel.run_sweep` carry the
    provenance needed to reconstruct the run (resolved config, extra
    kwargs, an importable runner); anything else is reported ``skipped``.
    The diff covers every runner-output field; ``wall_seconds`` is excluded
    because timing is the one field determinism does not promise.
    """
    from ..config import NetworkConfig

    key = str(entry.get("key", "?"))
    spec = entry.get("runner_spec") or {}
    dotted = spec.get("runner") if isinstance(spec, Mapping) else None
    config = entry.get("config")
    if not dotted or not isinstance(config, Mapping):
        return VerifyResult(key, "skipped", "entry has no importable runner provenance")
    try:
        runner = _import_runner(dotted)
    except (ImportError, AttributeError) as exc:
        return VerifyResult(key, "skipped", f"runner {dotted!r} not importable: {exc}")
    kwargs = dict(entry.get("kwargs") or {})
    runner_kwargs = dict(entry.get("runner_kwargs") or {})
    try:
        cfg = NetworkConfig(**config)
        fresh = runner(cfg, **runner_kwargs, **kwargs)
    except Exception as exc:
        return VerifyResult(key, "mismatch", f"re-run raised {type(exc).__name__}: {exc}")
    coords = set(entry.get("coords") or kwargs)
    cached_out = {
        k: v
        for k, v in dict(entry["record"]).items()
        if k not in coords and k != "wall_seconds"
    }
    fresh_out = _jsonable(dict(fresh))
    if canonical_json(cached_out) != canonical_json(fresh_out):
        diffs = [
            f"{name}: cached={cached_out.get(name)!r} fresh={fresh_out.get(name)!r}"
            for name in sorted(set(cached_out) | set(fresh_out))
            if canonical_json(cached_out.get(name)) != canonical_json(fresh_out.get(name))
        ]
        return VerifyResult(key, "mismatch", "; ".join(diffs))
    return VerifyResult(key, "ok")


def verify_entries(
    cache: ResultCache, *, sample: int = 1, seed: int = 0
) -> list[VerifyResult]:
    """Re-run ``sample`` entries drawn deterministically from ``cache``.

    Sampling is seeded and keyed on the sorted entry keys, so the same
    cache state verifies the same points — a flaky verify would be worse
    than none.  Returns one :class:`VerifyResult` per sampled entry.
    """
    if sample < 1:
        raise ValueError("sample must be >= 1")
    entries = sorted(cache.entries(), key=lambda e: e["key"])
    if not entries:
        return []
    gen = np.random.default_rng(seed)
    count = min(sample, len(entries))
    chosen = gen.choice(len(entries), size=count, replace=False)
    return [rerun_entry(entries[i]) for i in sorted(int(c) for c in chosen)]
