"""Closed-loop model with inter-node dependency (paper §II-B2).

The barrier (burst-synchronized) model: every node injects ``b`` packets as
fast as the network accepts them — no outstanding-request limit — and the
measurement completes when every injected packet has been delivered, i.e.
all nodes meet at a barrier.  As the paper notes, this essentially measures
network throughput and tracks open-loop saturation results; it is included
for completeness and for the open-loop/closed-loop comparison experiments.

``rounds`` > 1 interposes repeated barriers (each round injects ``b``
packets and waits for global completion), modelling bulk-synchronous
applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import rng as rng_mod
from ..config import NetworkConfig
from ..network.factory import build_network
from ..traffic.patterns import TrafficPattern
from ..traffic.registry import build_pattern, build_sizes
from ..traffic.sizes import SizeDistribution
from .engine import DrainSink, SimulationEngine
from .probes import ProbeSet

__all__ = ["BarrierResult", "BarrierSimulator"]


@dataclass
class BarrierResult:
    """Outcome of a barrier-model run."""

    batch_size: int
    rounds: int
    runtime: int
    throughput: float
    completed: bool
    round_times: np.ndarray = field(repr=False)
    probe_records: list = field(default_factory=list, repr=False)

    @property
    def normalized_runtime(self) -> float:
        """Runtime per injected packet per node."""
        return self.runtime / (self.batch_size * self.rounds)


class _BurstInjector:
    """Offers a whole ``b``-packet burst per node whenever the fabric idles.

    Offering the burst up front matches the paper's "inject until b packets
    transmitted" semantics: the infinite source queue streams it subject
    only to network backpressure.  Each time the network drains with rounds
    remaining, the previous round's completion cycle is recorded and the
    next burst is offered in the same cycle (a zero-cost barrier).
    """

    def __init__(self, batch_size: int, rounds: int, pattern, sizes, gen):
        self.batch_size = batch_size
        self.rounds = rounds
        self.pattern = pattern
        self.sizes = sizes
        self.gen = gen
        self.rounds_offered = 0
        self.round_times: list[int] = []

    def inject(self, engine: SimulationEngine) -> None:
        net = engine.network
        if not net.is_idle() or self.rounds_offered >= self.rounds:
            return
        if self.rounds_offered:
            self.round_times.append(net.now)
        gen = self.gen
        pattern = self.pattern
        sizes = self.sizes
        for node in range(net.num_nodes):
            for _ in range(self.batch_size):
                dst = pattern.dest(node, gen)
                net.offer(net.make_packet(node, dst, sizes.draw(gen)))
        self.rounds_offered += 1

    def done(self, engine: SimulationEngine) -> bool:
        return self.rounds_offered >= self.rounds

    def next_event_cycle(self, engine: SimulationEngine) -> Optional[int]:
        """An idle fabric with rounds remaining bursts *this* cycle.

        Barrier runs therefore contain no skippable idle gaps: the method
        exists to satisfy the engine's fast-forward protocol explicitly.
        """
        if self.rounds_offered < self.rounds:
            return engine.network.now
        return None


class BarrierSimulator:
    """Burst-synchronized closed-loop driver."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        batch_size: int = 1000,
        rounds: int = 1,
        pattern: Optional[TrafficPattern] = None,
        sizes: Optional[SizeDistribution] = None,
        max_cycles: Optional[int] = None,
        probes: Optional[ProbeSet] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.config = config
        self.batch_size = batch_size
        self.rounds = rounds
        self.pattern = pattern if pattern is not None else build_pattern(config)
        self.sizes = sizes if sizes is not None else build_sizes(config)
        self.max_cycles = max_cycles if max_cycles is not None else 2000 * batch_size * rounds
        self.probes = probes

    def run(self, *, seed: Optional[int] = None) -> BarrierResult:
        """Run all rounds to completion (or ``max_cycles``)."""
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        net = build_network(cfg)
        n = net.num_nodes
        gen = rng_mod.make_generator(seed, "barrier", self.batch_size)
        injector = _BurstInjector(
            self.batch_size, self.rounds, self.pattern, self.sizes, gen
        )
        engine = SimulationEngine(
            net, injector, DrainSink(), max_cycles=self.max_cycles, probes=self.probes
        )
        outcome = engine.run()
        completed = outcome.completed
        runtime = net.now if completed else self.max_cycles
        # The final (or truncated) round's completion cycle is recorded here:
        # the engine stops before the injector can observe the drained fabric.
        round_times = injector.round_times + [net.now]
        throughput = net.total_flits_delivered / (runtime * n) if runtime else 0.0
        return BarrierResult(
            batch_size=self.batch_size,
            rounds=self.rounds,
            runtime=runtime,
            throughput=throughput,
            completed=completed,
            round_times=np.array(round_times, dtype=np.int64),
            probe_records=outcome.probe_records,
        )
