"""Correlation methodology (paper §III-B steps 1-4, Figs. 5, 8, 15, 19, 22).

The paper compares two measurement methodologies by pairing their results
per configuration, normalizing each series *within its own group* to that
group's baseline configuration, and reporting the Pearson correlation
coefficient of the scatter.  Per-group normalization is what lets different
``m`` values (which achieve very different absolute loads) share one plot —
the footnote on Fig. 5 spells this out.

:func:`batch_vs_openloop` automates steps 1-4 for the batch-model vs
open-loop comparison: run the batch model, convert its runtime to an
achieved load ``θ = 2b/T``, run the open-loop simulator at that offered
load, and pair the normalized values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

import numpy as np

from ..config import NetworkConfig
from .closedloop import BatchSimulator
from .openloop import OpenLoopSimulator

__all__ = [
    "pearson",
    "normalize_per_group",
    "ScatterPair",
    "CorrelationResult",
    "correlate",
    "batch_vs_openloop",
]


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Non-finite pairs are dropped (the paper excludes saturated points the
    same way).  When either series has zero variance the coefficient is
    mathematically undefined — the result is ``NaN``, never a fabricated
    1.0 or 0.0, so downstream comparisons surface the degenerate input
    instead of reporting perfect (anti)correlation.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape:
        raise ValueError(f"shape mismatch: {xa.shape} vs {ya.shape}")
    if xa.size < 2:
        raise ValueError("need at least 2 points")
    mask = np.isfinite(xa) & np.isfinite(ya)
    xa, ya = xa[mask], ya[mask]
    if xa.size < 2:
        raise ValueError("fewer than 2 finite points")
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    denom = np.sqrt((xd * xd).sum() * (yd * yd).sum())
    if denom == 0.0:
        return float("nan")
    return float((xd * yd).sum() / denom)


def normalize_per_group(
    values: Sequence[float],
    groups: Sequence[Hashable],
    is_baseline: Sequence[bool],
) -> np.ndarray:
    """Normalize each value to its group's baseline value.

    Every group must contain exactly one baseline entry (e.g. for the Fig. 5
    router-delay study, the group is ``m`` and the baseline is ``tr == 1``).
    """
    values = np.asarray(values, dtype=np.float64)
    base: dict[Hashable, float] = {}
    for v, g, b in zip(values, groups, is_baseline, strict=True):
        if b:
            if g in base:
                raise ValueError(f"group {g!r} has two baseline entries")
            base[g] = v
    missing = {g for g in groups} - set(base)
    if missing:
        raise ValueError(f"groups without a baseline: {sorted(map(str, missing))}")
    return np.array([v / base[g] for v, g in zip(values, groups)])


@dataclass(frozen=True)
class ScatterPair:
    """One scatter point: the same configuration under two methodologies."""

    key: tuple
    group: Hashable
    x: float
    y: float


@dataclass(frozen=True)
class CorrelationResult:
    """Scatter points and their Pearson r."""

    pairs: tuple[ScatterPair, ...]
    r: float

    def filtered(self, predicate: Callable[[ScatterPair], bool]) -> "CorrelationResult":
        """Correlation over the subset matching ``predicate`` (e.g. drop
        near-saturation m values, as the paper does for m = 16, 32)."""
        kept = tuple(p for p in self.pairs if predicate(p))
        return CorrelationResult(kept, pearson([p.x for p in kept], [p.y for p in kept]))


def correlate(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    keys: Sequence[tuple],
    groups: Sequence[Hashable],
    baselines: Sequence[bool],
) -> CorrelationResult:
    """Pair two measurement series with per-group normalization."""
    xn = normalize_per_group(xs, groups, baselines)
    yn = normalize_per_group(ys, groups, baselines)
    pairs = tuple(
        ScatterPair(key=k, group=g, x=float(x), y=float(y))
        for k, g, x, y in zip(keys, groups, xn, yn, strict=True)
    )
    return CorrelationResult(pairs, pearson(xn, yn))


def batch_vs_openloop(
    configs: Sequence[tuple[Hashable, NetworkConfig]],
    m_values: Sequence[int],
    *,
    batch_size: int = 1000,
    baseline_key: Optional[Hashable] = None,
    openloop_kwargs: Optional[dict] = None,
    batch_kwargs: Optional[dict] = None,
    worst_case: bool = False,
) -> CorrelationResult:
    """Steps 1-4 of the paper's §III-B batch/open-loop comparison.

    ``configs`` maps a label (e.g. ``tr=2``) to a network configuration;
    ``baseline_key`` names the configuration each group normalizes to
    (default: the first).  Set ``worst_case=True`` to pair the batch
    runtime against the open-loop *worst-case node* latency, which is what
    restores correlation for edge-asymmetric topologies (Fig. 8).

    Saturated open-loop points yield infinite latency and are dropped by
    :func:`pearson`, mirroring the paper's exclusion of near-saturation
    measurements.
    """
    if baseline_key is None:
        baseline_key = configs[0][0]
    ol_kw = dict(openloop_kwargs or {})
    ba_kw = dict(batch_kwargs or {})
    xs: list[float] = []
    ys: list[float] = []
    keys: list[tuple] = []
    groups: list[Hashable] = []
    baselines: list[bool] = []
    for m in m_values:
        for label, cfg in configs:
            batch = BatchSimulator(
                cfg, batch_size=batch_size, max_outstanding=m, **ba_kw
            ).run()
            theta = min(batch.throughput, 1.0)
            ol = OpenLoopSimulator(cfg, **ol_kw).run(max(theta, 1e-3))
            xs.append(ol.worst_node_latency if worst_case else ol.avg_latency)
            ys.append(batch.runtime)
            keys.append((label, m))
            groups.append(m)
            baselines.append(label == baseline_key)
    return correlate(xs, ys, keys=keys, groups=groups, baselines=baselines)
