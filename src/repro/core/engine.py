"""The unified cycle-loop: one simulation engine, many drivers.

Every evaluation mode in the paper — open-loop, closed-loop batch, barrier,
trace-driven, execution-driven — is the *same* cycle loop with a different
packet source and a different completion rule.  :class:`SimulationEngine`
owns that loop once:

* **Phase control** — an optional ``warmup → measure → drain`` lifecycle
  (Dally & Towles ch. 23).  The engine tracks the current :class:`Phase`,
  snapshots the delivered-flit counters at the measurement-window edges
  (for throughput), and exposes ``in_measure`` so injectors can tag packets
  created inside the window.  Drivers that run to completion (closed-loop,
  trace replay, CMP) simply leave ``warmup=0, measure=None`` and stay in
  ``MEASURE`` for the whole run.
* **Budget cutoff** — ``max_cycles`` bounds every run; a run that stops on
  budget reports ``completed=False`` (the open-loop driver maps that to
  ``saturated``).
* **Pluggable strategies** — an :class:`Injector` creates traffic before
  each network cycle, a :class:`Sink` consumes each delivered packet after
  it; the engine stops when both report ``done``.  One object may play both
  roles (the closed-loop batch state machine must: deliveries feed back
  into injection eligibility).
* **Probes** — an optional :class:`repro.core.probes.ProbeSet` observes
  every cycle and aggregates windowed instrumentation records; when absent
  the loop contains a single ``is None`` test and no probe code runs.
* **Health** — an optional :class:`repro.core.resilience.Watchdog` raises
  :class:`~repro.core.resilience.SimulationStalled` (with a diagnosis
  snapshot) when flits are in flight but nothing moves for a whole
  window, and ``check_invariants`` audits flit/credit conservation every
  few hundred cycles (:class:`~repro.core.resilience.InvariantChecker`).
  Both follow the probe contract: disabled costs one ``is None`` test.

Per-cycle order of operations (identical to what the five pre-engine
drivers each hand-rolled, so seeded results are bit-identical):

1. phase transitions for the cycle about to execute (counter snapshots),
2. stop check: ``injector.done and sink.done`` → completed, else budget,
3. ``injector.inject(engine)`` — offer this cycle's packets,
4. ``network.step()`` — one cycle of the fabric,
5. ``sink.on_delivered(pkt, engine)`` for each delivered packet,
6. probe sampling.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from ..network.base import NetworkLike

if TYPE_CHECKING:  # pragma: no cover
    from .probes import ProbeSet
    from .resilience import Watchdog


def _invariants_default() -> bool:
    """``check_invariants=None`` resolves against this environment toggle.

    The CI invariants job exports ``REPRO_CHECK_INVARIANTS=1`` to force
    conservation auditing across the whole fast suite without every test
    opting in explicitly.
    """
    return os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")


def _fast_forward_default() -> bool:
    """``fast_forward=None`` resolves against this environment toggle.

    ``REPRO_DISABLE_FAST_FORWARD=1`` forces the dense cycle loop on every
    engine in the process — the equivalence suite and the perf benchmark
    harness use it to compare the two paths through unmodified drivers.
    """
    return os.environ.get("REPRO_DISABLE_FAST_FORWARD", "") in ("", "0")

__all__ = [
    "Phase",
    "Injector",
    "Sink",
    "DrainSink",
    "EngineResult",
    "SimulationEngine",
]


class Phase(enum.Enum):
    """Lifecycle phase of a measurement run."""

    WARMUP = "warmup"
    MEASURE = "measure"
    DRAIN = "drain"


@runtime_checkable
class Injector(Protocol):
    """Creates traffic: called once per cycle before the network steps.

    Injectors *may* additionally implement ``next_event_cycle(engine)``
    (see the module docstring): when the network is idle, the engine asks
    the injector for the next cycle at which it could possibly inject and
    jumps the clock there in one step.  The default — not implementing the
    method at all, or returning ``None`` — safely disables fast-forward
    for that injector (the execution-driven CMP does per-cycle core work
    and must opt out).  An implementation must (a) never under-predict
    (returning a cycle *later* than the true next injection is a bug;
    earlier is merely slower), and (b) keep the run's RNG stream identical
    to the dense loop's by consuming exactly the per-cycle draws the dense
    loop would have consumed for every cycle it looked ahead through.
    """

    def inject(self, engine: "SimulationEngine") -> None:
        """Offer this cycle's packets to ``engine.network``."""
        ...

    def done(self, engine: "SimulationEngine") -> bool:
        """True when this injector no longer requires the loop to continue."""
        ...


@runtime_checkable
class Sink(Protocol):
    """Consumes deliveries: called per delivered packet after each step."""

    def on_delivered(self, pkt, engine: "SimulationEngine") -> None: ...

    def done(self, engine: "SimulationEngine") -> bool:
        """True when the sink's completion criterion is met."""
        ...


class DrainSink:
    """Trivial sink: discard deliveries, done when the network is idle.

    The right sink for throughput-style drivers (barrier, trace replay)
    whose completion rule is simply "everything injected has drained".
    """

    def on_delivered(self, pkt, engine: "SimulationEngine") -> None:
        pass

    def done(self, engine: "SimulationEngine") -> bool:
        return engine.network.is_idle()


@dataclass
class EngineResult:
    """What the engine itself measured; drivers layer their own results on top."""

    cycles: int
    completed: bool
    final_phase: Phase
    flits_at_measure_start: Optional[int] = None
    flits_at_measure_end: Optional[int] = None
    probe_records: list = field(default_factory=list, repr=False)

    @property
    def measured_flits(self) -> Optional[int]:
        """Flits delivered inside the measurement window (None if no window)."""
        if self.flits_at_measure_start is None or self.flits_at_measure_end is None:
            return None
        return self.flits_at_measure_end - self.flits_at_measure_start


class SimulationEngine:
    """One instrumented cycle loop driving a :class:`NetworkLike` backend."""

    def __init__(
        self,
        network: NetworkLike,
        injector: Injector,
        sink: Optional[Sink] = None,
        *,
        warmup: int = 0,
        measure: Optional[int] = None,
        max_cycles: int,
        probes: Optional["ProbeSet"] = None,
        watchdog: Optional["Watchdog"] = None,
        check_invariants: Optional[bool] = None,
        fast_forward: Optional[bool] = None,
    ):
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        if measure is not None and measure < 0:
            raise ValueError("measure must be >= 0 (or None for unbounded)")
        if max_cycles < 0:
            raise ValueError("max_cycles must be >= 0")
        if sink is None:
            if not isinstance(injector, Sink):
                raise TypeError(
                    "sink omitted but injector does not implement the Sink protocol"
                )
            sink = injector
        self.network = network
        self.injector = injector
        self.sink = sink
        self.warmup = warmup
        self.measure = measure
        self.max_cycles = max_cycles
        self.probes = probes
        self.watchdog = watchdog
        if check_invariants is None:
            check_invariants = _invariants_default()
        if check_invariants:
            from .resilience import InvariantChecker

            self.invariants: Optional[InvariantChecker] = InvariantChecker()
        else:
            self.invariants = None
        if fast_forward is None:
            fast_forward = _fast_forward_default()
        self.fast_forward = fast_forward
        self._measure_start = warmup
        self._measure_end = None if measure is None else warmup + measure
        self.phase = Phase.WARMUP if warmup > 0 else Phase.MEASURE
        self.flits_at_measure_start: Optional[int] = None
        self.flits_at_measure_end: Optional[int] = None

    # -- phase queries ---------------------------------------------------------
    @property
    def in_measure(self) -> bool:
        """True while packets created now fall inside the measurement window."""
        return self.phase is Phase.MEASURE

    @property
    def in_drain(self) -> bool:
        return self.phase is Phase.DRAIN

    # -- the loop ---------------------------------------------------------------
    def run(self) -> EngineResult:
        """Run until injector and sink agree they are done, or the budget ends."""
        net = self.network
        injector = self.injector
        sink = self.sink
        shared = sink is injector
        probes = self.probes
        measure_start = self._measure_start
        measure_end = self._measure_end
        max_cycles = self.max_cycles
        watchdog = self.watchdog
        invariants = self.invariants
        if probes is not None:
            probes.begin(net)
        if watchdog is not None:
            watchdog.begin(net)
        if invariants is not None:
            invariants.begin(net)
        next_event = (
            getattr(injector, "next_event_cycle", None) if self.fast_forward else None
        )
        completed = False
        while True:
            now = net.now
            # 1. Phase transitions take effect for the cycle about to run.
            if now == measure_start:
                self.phase = Phase.MEASURE
                self.flits_at_measure_start = net.total_flits_delivered
            if measure_end is not None and now == measure_end:
                self.phase = Phase.DRAIN
                self.flits_at_measure_end = net.total_flits_delivered
            # 2. Stop checks: completion first (matching the drivers'
            #    historical ``while not-done and now < budget`` loops).
            if injector.done(self) and (shared or sink.done(self)):
                completed = True
                break
            if now >= max_cycles:
                break
            # 2b. Idle-cycle fast-forward: when nothing is in flight and the
            #     injector can name its next injection cycle, jump the clock
            #     there in one step instead of stepping an empty fabric.  The
            #     jump is capped at every cycle something *could* happen — a
            #     phase boundary (stop checks and counter snapshots re-run
            #     there), the budget, and any event scheduled inside the
            #     network (credits in flight, fault activations) — so each
            #     skipped cycle is provably a no-op and results stay
            #     bit-identical to the dense loop.
            if next_event is not None and net.is_idle():
                nxt = next_event(self)
                if nxt is not None and nxt > now:
                    target = nxt
                    if now < measure_start < target:
                        target = measure_start
                    if measure_end is not None and now < measure_end < target:
                        target = measure_end
                    if max_cycles < target:
                        target = max_cycles
                    ev = net.next_internal_event_cycle()
                    if ev is not None and ev < target:
                        target = ev
                    if target > now:
                        net.advance_to(target)
                        # Hooks observe the skipped cycles [now, target) so
                        # their windows/schedules stay aligned with the
                        # dense loop's.
                        if probes is not None:
                            probes.on_idle_gap(net, now, target)
                        if watchdog is not None:
                            watchdog.on_idle_gap(net, now, target)
                        if invariants is not None:
                            invariants.on_idle_gap(net, now, target)
                        continue
            # 3-5. Inject, step, deliver.
            injector.inject(self)
            delivered = net.step()
            if delivered:
                for pkt in delivered:
                    sink.on_delivered(pkt, self)
            # 6. Probes and health checks observe the cycle that executed.
            if probes is not None:
                probes.on_cycle(net, now, delivered)
            if watchdog is not None:
                watchdog.on_cycle(net)
            if invariants is not None:
                invariants.on_cycle(net)
        records = probes.finish(net) if probes is not None else []
        return EngineResult(
            cycles=net.now,
            completed=completed,
            final_phase=self.phase,
            flits_at_measure_start=self.flits_at_measure_start,
            flits_at_measure_end=self.flits_at_measure_end,
            probe_records=records,
        )
