"""Perf-regression microbenchmark harness (the ``repro bench`` subcommand).

Times the canonical driver configurations — an 8×8 mesh at near-zero load,
mid load, and saturation; a faulted mesh under a watchdog; the closed-loop
batch model, busy and NAR-gated; a sparse trace replay; an execution-driven
CMP smoke run — and emits one
machine-readable ``BENCH_<name>.json`` per scenario with cycles/sec, wall
time, peak RSS, and two speedups:

* ``speedup_vs_dense`` — the same scenario re-run in the same process with
  ``REPRO_DISABLE_FAST_FORWARD=1``.  Because both runs share one machine
  and one process, this ratio is *machine-neutral*: the dense loop is the
  per-host normalizer, so CI can compare it against the committed baseline
  without flaking on runner speed.  The harness also asserts the two runs
  execute the same cycle count and produce identical figures of merit — a
  free large-config equivalence check on every bench run.
* ``speedup_vs_seed`` — against the cycles/sec recorded (on the reference
  development host) at the commit that introduced the hot path, embedded in
  ``benchmarks/perf/seed_baseline.json``.  Meaningful on that host class
  only; it documents what the acceleration bought.

Regression checking (``repro bench --check``) fails when a scenario's
``speedup_vs_dense`` drops more than ``fail_threshold`` (default 25%) below
the committed ``BENCH_<name>.json`` — i.e. a cycles/sec regression of the
hot path relative to the dense loop.
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..config import NetworkConfig
from ..network.base import NetworkLike
from ..network.factory import build_network
from .closedloop import BatchSimulator
from .openloop import OpenLoopSimulator
from .resilience import Watchdog

__all__ = [
    "BenchScenario",
    "SCENARIOS",
    "run_bench",
    "bench_paths",
    "run_backend_compare",
    "run_steered_compare",
]

#: canonical mesh for the open-loop scenarios (the paper's workhorse)
_MESH = dict(k=8, n=2, seed=7)


@dataclass(frozen=True)
class BenchScenario:
    """One timed configuration.

    ``run(quick)`` executes the scenario once and returns
    ``(cycles, fast_forwarded_cycles, fingerprint)`` where ``fingerprint``
    is a JSON-native dict of the scenario's figures of merit — the harness
    asserts it is identical between the fast and dense runs.
    """

    name: str
    description: str
    run: Callable[[bool], tuple[int, int, dict]]
    #: network backend the scenario exercises; a seed baseline or committed
    #: BENCH record carrying a different backend never gates this scenario.
    backend: str = "object"


def _openloop(
    rate: float,
    quick: bool,
    *,
    faults: Optional[str] = None,
    watchdog_window: int = 0,
    warmup: int = 1000,
    measure: int = 2000,
    classes: Optional[str] = None,
    arbitration: str = "round_robin",
) -> tuple[int, int, dict]:
    scale = 4 if quick else 1
    cfg = NetworkConfig(
        faults=faults, classes=classes, arbitration=arbitration, **_MESH
    )
    nets: list[NetworkLike] = []
    sim = OpenLoopSimulator(
        cfg,
        warmup=warmup // scale,
        measure=measure // scale,
        drain_limit=30000 // scale,
        watchdog=Watchdog(window=watchdog_window) if watchdog_window else None,
        network_factory=lambda c: nets.append(build_network(c)) or nets[-1],
    )
    res = sim.run(rate)
    net = nets[-1]
    fingerprint = {
        "avg_latency": res.avg_latency,
        "throughput": res.throughput,
        "num_measured": res.num_measured,
        "saturated": res.saturated,
    }
    if res.num_classes > 1:
        fingerprint["class_latency"] = [
            s.mean if s.count else None for s in res.per_class_stats()
        ]
    return net.now, net.fast_forwarded_cycles, fingerprint


def _batch(quick: bool, *, nar: float = 1.0, max_outstanding: int = 4) -> tuple[int, int, dict]:
    nets: list[NetworkLike] = []
    sim = BatchSimulator(
        NetworkConfig(**_MESH),
        batch_size=30 if quick else 100,
        max_outstanding=max_outstanding,
        nar=nar,
        network_factory=lambda c: nets.append(build_network(c)) or nets[-1],
    )
    res = sim.run()
    net = nets[-1]
    return (
        net.now,
        net.fast_forwarded_cycles,
        {
            "runtime": res.runtime,
            "throughput": res.throughput,
            "total_requests": res.total_requests,
        },
    )


def _trace(quick: bool) -> tuple[int, int, dict]:
    from .tracedriven import Trace, TraceDrivenSimulator, TraceRecord

    # A bursty, mostly-silent trace: 40 packets in 8 widely-spaced clusters
    # over ~200k cycles (~25k in quick mode) — the pattern where replay
    # spends nearly all its wall time stepping an empty fabric.
    span = 25_000 if quick else 200_000
    records = []
    for burst in range(8):
        base = burst * (span // 8)
        for i in range(5):
            records.append(TraceRecord(base + 3 * i, (7 * burst + i) % 64, (11 * burst + 5 * i) % 64, 4))
    nets: list[NetworkLike] = []
    sim = TraceDrivenSimulator(
        NetworkConfig(**_MESH),
        Trace(records, num_nodes=64),
        network_factory=lambda c: nets.append(build_network(c)) or nets[-1],
    )
    res = sim.run()
    net = nets[-1]
    return (
        net.now,
        net.fast_forwarded_cycles,
        {
            "runtime": res.runtime,
            "avg_latency": res.avg_latency,
            "packets": res.packets,
        },
    )


def _cmp(quick: bool) -> tuple[int, int, dict]:
    from ..execdriven import BENCHMARKS, CmpSystem

    spec = BENCHMARKS["blackscholes"](1500 if quick else 3000)
    system = CmpSystem(spec, timer_interval=10000, seed=3)
    res = system.run()
    return (
        res.cycles,
        system.network.fast_forwarded_cycles,
        {"cycles": res.cycles, "total_flits": res.total_flits, "requests": res.requests},
    )


SCENARIOS: dict[str, BenchScenario] = {
    s.name: s
    for s in [
        BenchScenario(
            # Near-zero load is the fast-forward showcase: ~95% of cycles
            # are provably idle.  The window is 10x the canonical one (and
            # quick mode keeps it) so idle cycles dominate fixed setup cost
            # and the timing is stable — the run is milliseconds either way.
            "openloop_lowload",
            "8x8 mesh, open-loop at 0.0001 flits/cycle/node (near-zero load)",
            lambda quick: _openloop(0.0001, False, warmup=10_000, measure=20_000),
        ),
        BenchScenario(
            "openloop_midload",
            "8x8 mesh, open-loop at 0.30 flits/cycle/node",
            lambda quick: _openloop(0.30, quick),
        ),
        BenchScenario(
            "openloop_saturation",
            "8x8 mesh, open-loop at 0.44 flits/cycle/node (saturation)",
            lambda quick: _openloop(0.44, quick),
        ),
        BenchScenario(
            # Near saturation with strict-priority arbitration: the high
            # class keeps near-zero-load latency while the low class queues,
            # so the fingerprint's per-class latencies double as a
            # separation check on every bench run.
            "priority_2class",
            "8x8 mesh at 0.40 load, 2 classes (os prio 1), strict priority",
            lambda quick: _openloop(
                0.40,
                quick,
                classes="user:share=4+os:priority=1",
                arbitration="priority",
            ),
        ),
        BenchScenario(
            "faulted_mesh",
            "8x8 mesh with 2 link faults at 0.20 load, watchdog attached",
            lambda quick: _openloop(0.20, quick, faults="links:2", watchdog_window=2000),
        ),
        BenchScenario(
            "batch_model",
            "8x8 mesh, closed-loop batch model (b=100/30, m=4)",
            _batch,
        ),
        BenchScenario(
            "batch_lownar",
            "8x8 mesh, batch model gated at NAR 0.02 (idle-gap heavy)",
            lambda quick: _batch(quick, nar=0.02, max_outstanding=1),
        ),
        BenchScenario(
            "trace_sparse",
            "8x8 mesh, sparse trace replay (40 packets over ~200k/25k cycles)",
            _trace,
        ),
        BenchScenario(
            "cmp_smoke",
            "16-core CMP, blackscholes kernel (fast-forward opts out)",
            _cmp,
        ),
    ]
}


def bench_paths(out_dir, names: Sequence[str], *, quick: bool) -> list[Path]:
    """The ``BENCH_*.json`` paths a run over ``names`` would write."""
    suffix = ".quick.json" if quick else ".json"
    return [Path(out_dir) / f"BENCH_{name}{suffix}" for name in names]


def _timed(scenario: BenchScenario, quick: bool, repeats: int) -> dict:
    """Best-of-``repeats`` timing (scenarios are deterministic, so the best
    run is the least-perturbed one; the first repeat doubles as warm-up for
    allocator/import/JIT-cache effects that bias a cold process 2x slow)."""
    wall = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        cycles, ff_cycles, fingerprint = scenario.run(quick)
        wall = min(wall, time.perf_counter() - t0)
    return {
        "cycles": cycles,
        "wall_time_s": wall,
        "cycles_per_sec": cycles / wall if wall > 0 else float("inf"),
        "fast_forwarded_cycles": ff_cycles,
        "fingerprint": fingerprint,
    }


def _timed_dense(scenario: BenchScenario, quick: bool, repeats: int) -> dict:
    prior = os.environ.get("REPRO_DISABLE_FAST_FORWARD")
    os.environ["REPRO_DISABLE_FAST_FORWARD"] = "1"
    try:
        return _timed(scenario, quick, repeats)
    finally:
        if prior is None:
            del os.environ["REPRO_DISABLE_FAST_FORWARD"]
        else:
            os.environ["REPRO_DISABLE_FAST_FORWARD"] = prior


def _load_seed_baseline(out_dir: Path) -> dict:
    path = out_dir / "seed_baseline.json"
    if not path.exists():
        return {}
    with open(path) as f:
        return json.load(f)


def _seed_entry(raw) -> tuple[Optional[float], str]:
    """(cycles/sec, backend) of one seed-baseline entry.

    Entries are ``{"cps": float, "backend": str}``; a bare float (the
    pre-backend format) reads as an object-backend measurement, since that
    was the only backend when those baselines were recorded.
    """
    if raw is None:
        return None, "object"
    if isinstance(raw, dict):
        cps = raw.get("cps")
        return (float(cps) if cps else None), str(raw.get("backend", "object"))
    return float(raw), "object"


def run_bench(
    *,
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    out_dir="benchmarks/perf",
    check: bool = False,
    fail_threshold: float = 0.25,
    repeats: int = 3,
    update_baselines: bool = False,
    echo: Callable[[str], None] = print,
) -> int:
    """Run the harness; returns a process exit code (0 ok, 1 regression).

    Writes one ``BENCH_<name>.json`` (``.quick.json`` in quick mode) per
    scenario into ``out_dir``.  With ``check=True`` the *previously
    committed* file is read first and the fresh ``speedup_vs_dense`` must
    not fall more than ``fail_threshold`` below it.

    ``update_baselines=True`` additionally rewrites the scenarios' entries
    in ``seed_baseline.json`` (for the mode being run) with this run's
    cycles/sec — the sanctioned way to re-baseline ``speedup_vs_seed``
    without hand-editing JSON.  Run it on the reference host and commit
    the regenerated files.
    """
    out_dir = Path(out_dir)
    names = list(only) if only else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {', '.join(unknown)} "
            f"(choose from {', '.join(SCENARIOS)})"
        )
    mode = "quick" if quick else "full"
    all_baselines = _load_seed_baseline(out_dir)
    seed_baseline = all_baselines.get(mode, {})
    out_dir.mkdir(parents=True, exist_ok=True)
    failures: list[str] = []
    fresh_cps: dict[str, float] = {}
    echo(f"repro bench [{mode}]: {len(names)} scenario(s)")
    for name, path in zip(names, bench_paths(out_dir, names, quick=quick)):
        scenario = SCENARIOS[name]
        committed = None
        if check and path.exists():
            with open(path) as f:
                committed = json.load(f)
            # A record produced under a different backend never gates this
            # scenario — the comparison would be meaningless.
            if committed.get("backend", "object") != scenario.backend:
                committed = None
        fast = _timed(scenario, quick, repeats)
        dense = _timed_dense(scenario, quick, repeats)
        if fast["cycles"] != dense["cycles"] or fast["fingerprint"] != dense["fingerprint"]:
            raise AssertionError(
                f"{name}: fast path diverged from dense loop "
                f"(cycles {fast['cycles']} vs {dense['cycles']}, "
                f"fingerprint {fast['fingerprint']} vs {dense['fingerprint']})"
            )
        speedup_vs_dense = fast["cycles_per_sec"] / dense["cycles_per_sec"]
        seed_cps, seed_backend = _seed_entry(seed_baseline.get(name))
        if seed_backend != scenario.backend:
            seed_cps = None  # a baseline from another backend never applies
        record = {
            "name": name,
            "mode": mode,
            "description": scenario.description,
            "backend": scenario.backend,
            "cycles": fast["cycles"],
            "wall_time_s": fast["wall_time_s"],
            "cycles_per_sec": fast["cycles_per_sec"],
            "fast_forwarded_cycles": fast["fast_forwarded_cycles"],
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "fingerprint": fast["fingerprint"],
            "dense": {
                "wall_time_s": dense["wall_time_s"],
                "cycles_per_sec": dense["cycles_per_sec"],
            },
            "speedup_vs_dense": speedup_vs_dense,
            "seed_baseline_cps": seed_cps,
            "speedup_vs_seed": (
                fast["cycles_per_sec"] / seed_cps if seed_cps else None
            ),
        }
        line = (
            f"  {name}: {fast['cycles']} cycles in {fast['wall_time_s']:.3f}s "
            f"({fast['cycles_per_sec']:,.0f} c/s, "
            f"{speedup_vs_dense:.2f}x vs dense"
        )
        if record["speedup_vs_seed"] is not None:
            line += f", {record['speedup_vs_seed']:.2f}x vs seed"
        echo(line + ")")
        if committed is not None:
            floor = committed["speedup_vs_dense"] * (1.0 - fail_threshold)
            if speedup_vs_dense < floor:
                failures.append(
                    f"{name}: speedup_vs_dense {speedup_vs_dense:.3f} fell below "
                    f"{floor:.3f} (committed {committed['speedup_vs_dense']:.3f} "
                    f"- {fail_threshold:.0%})"
                )
        fresh_cps[name] = fast["cycles_per_sec"]
        with open(path, "w") as f:
            json.dump(record, f, indent=1, sort_keys=True)
            f.write("\n")
    if update_baselines:
        updated = dict(all_baselines)
        updated[mode] = {
            **updated.get(mode, {}),
            **{
                name: {"cps": cps, "backend": SCENARIOS[name].backend}
                for name, cps in fresh_cps.items()
            },
        }
        with open(out_dir / "seed_baseline.json", "w") as f:
            json.dump(updated, f, indent=1, sort_keys=True)
            f.write("\n")
        echo(
            f"updated seed_baseline.json [{mode}] for "
            f"{', '.join(sorted(fresh_cps))}"
        )
    if failures:
        echo("PERF REGRESSION:")
        for msg in failures:
            echo("  " + msg)
        return 1
    return 0


# ---------------------------------------------------------------------------
# backend comparison (``repro bench --backends``)
# ---------------------------------------------------------------------------

#: saturated open-loop scenario used to compare the object and vectorized
#: backends.  Saturation is where fast-forward never engages, so the ratio
#: is a pure measure of the struct-of-arrays pipeline.  Full mode is the
#: acceptance configuration recorded in BENCH_vectorized_saturation.json
#: (a 14x14x14 mesh, 2744 nodes); quick mode is a 16x16 mesh smoke small
#: enough for CI.  Both use 8-flit packets so per-packet driver overhead —
#: identical across backends — does not dilute the per-flit speedup.
BACKEND_COMPARE_SCENARIO = {
    "full": dict(k=14, n=3),
    "quick": dict(k=8, n=3),
}
_BACKEND_COMPARE_KW = dict(
    topology="mesh",
    num_vcs=4,
    vc_buffer_size=8,
    packet_size="bimodal",
    bimodal_long_fraction=1.0,
    bimodal_long_size=8,
    seed=7,
)
_BACKEND_COMPARE_RATE = 0.6
_BACKEND_COMPARE_WINDOWS = dict(warmup=100, measure=200, drain_limit=300)


def _backend_leg(cfg: NetworkConfig) -> tuple[int, dict]:
    """Run the comparison scenario once; (cycles, figures-of-merit)."""
    nets: list[NetworkLike] = []
    sim = OpenLoopSimulator(
        cfg,
        network_factory=lambda c: nets.append(build_network(c)) or nets[-1],
        **_BACKEND_COMPARE_WINDOWS,
    )
    res = sim.run(_BACKEND_COMPARE_RATE)
    # Digesting every measured per-packet latency makes "identical figures
    # of merit" a bit-exact record equality check, not a summary match.
    digest = hashlib.sha256(
        json.dumps(res.latencies.tolist()).encode("utf-8")
    ).hexdigest()
    return nets[-1].now, {
        "avg_latency": res.avg_latency,
        "throughput": res.throughput,
        "num_measured": res.num_measured,
        "saturated": res.saturated,
        "latency_digest": digest,
    }


def run_backend_compare(
    *,
    quick: bool = False,
    out_dir="benchmarks/perf",
    check: bool = False,
    min_speedup: float = 3.0,
    repeats: int = 1,
    echo: Callable[[str], None] = print,
) -> int:
    """Time both backends on the saturation scenario; returns an exit code.

    Runs the object and vectorized backends on the same saturated
    configuration, asserts their records are bit-identical (the equivalence
    contract, enforced on every bench run), and writes
    ``BENCH_vectorized_saturation[.quick].json`` with both timings and the
    speedup.  With ``check=True`` the run fails when the vectorized backend
    is less than ``min_speedup`` times faster than the object backend —
    the CI gate that surfaces vectorized-path regressions in PRs.
    """
    mode = "quick" if quick else "full"
    kw = {**_BACKEND_COMPARE_KW, **BACKEND_COMPARE_SCENARIO[mode]}
    legs: dict[str, dict] = {}
    echo(f"repro bench --backends [{mode}]: object vs vectorized")
    for backend in ("object", "vectorized"):
        cfg = NetworkConfig(backend=backend, **kw)
        wall = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            cycles, fingerprint = _backend_leg(cfg)
            wall = min(wall, time.perf_counter() - t0)
        legs[backend] = {
            "cycles": cycles,
            "wall_time_s": wall,
            "cycles_per_sec": cycles / wall if wall > 0 else float("inf"),
            "fingerprint": fingerprint,
        }
        echo(
            f"  {backend}: {cycles} cycles in {wall:.3f}s "
            f"({legs[backend]['cycles_per_sec']:,.0f} c/s)"
        )
    obj, vec = legs["object"], legs["vectorized"]
    if obj["cycles"] != vec["cycles"] or obj["fingerprint"] != vec["fingerprint"]:
        raise AssertionError(
            "vectorized backend diverged from the object backend "
            f"(cycles {vec['cycles']} vs {obj['cycles']}, fingerprint "
            f"{vec['fingerprint']} vs {obj['fingerprint']})"
        )
    speedup = obj["wall_time_s"] / vec["wall_time_s"]
    echo(f"  speedup: {speedup:.2f}x (records bit-identical)")
    # Second, un-timed leg: the same comparison with a 2-class priority
    # registry, so the class-aware arbitration path is equivalence-checked
    # on every backend-compare run (quick mode included — the CI smoke).
    cls_kw = {
        **kw,
        **(BACKEND_COMPARE_SCENARIO["quick"] if not quick else {}),
        "classes": "user:share=4+os:priority=1",
        "arbitration": "priority",
    }
    cls_fp: dict[str, dict] = {}
    for backend in ("object", "vectorized"):
        cycles, fingerprint = _backend_leg(NetworkConfig(backend=backend, **cls_kw))
        cls_fp[backend] = {"cycles": cycles, **fingerprint}
    if cls_fp["object"] != cls_fp["vectorized"]:
        raise AssertionError(
            "vectorized backend diverged on the 2-class priority scenario "
            f"({cls_fp['vectorized']} vs {cls_fp['object']})"
        )
    echo("  2-class priority records bit-identical")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = ".quick.json" if quick else ".json"
    record = {
        "name": "vectorized_saturation",
        "mode": mode,
        "description": (
            f"{kw['k']}^{kw['n']} mesh, open-loop at "
            f"{_BACKEND_COMPARE_RATE} flits/cycle/node (saturated, 8-flit "
            "packets), object vs vectorized backend"
        ),
        "config": kw,
        "rate": _BACKEND_COMPARE_RATE,
        "windows": _BACKEND_COMPARE_WINDOWS,
        "object": {k: v for k, v in obj.items() if k != "fingerprint"},
        "vectorized": {k: v for k, v in vec.items() if k != "fingerprint"},
        "fingerprint": obj["fingerprint"],
        "two_class_fingerprint": cls_fp["object"],
        "speedup": speedup,
        "min_speedup": min_speedup if check else None,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    with open(out_dir / f"BENCH_vectorized_saturation{suffix}", "w") as f:
        json.dump(record, f, indent=1, sort_keys=True)
        f.write("\n")
    if check and speedup < min_speedup:
        echo(
            f"PERF REGRESSION: vectorized speedup {speedup:.2f}x fell below "
            f"the {min_speedup:.1f}x gate"
        )
        return 1
    return 0


#: steered-vs-dense scenario: the paper's 8×8 mesh swept across its knee
#: (model saturation ≈ 0.42); quick mode shrinks to the 4×4 CI mesh.
STEERED_COMPARE_SCENARIO = {
    "full": dict(
        config=dict(k=8, n=2, seed=7),
        rates=tuple(round(0.05 * i, 2) for i in range(1, 11)),
        windows=dict(warmup=500, measure=1000, drain_limit=10000),
    ),
    "quick": dict(
        config=dict(k=4, n=2, seed=7),
        rates=tuple(round(0.1 * i, 1) for i in range(1, 9)),
        windows=dict(warmup=200, measure=400, drain_limit=4000),
    ),
}


def _steered_leg_runner(cfg, *, rate, warmup, measure, drain_limit):
    """Module-level open-loop runner (picklable; mirrors the CLI's)."""
    sim = OpenLoopSimulator(
        cfg, warmup=warmup, measure=measure, drain_limit=drain_limit
    )
    res = sim.run(rate)
    return {
        "latency": res.avg_latency,
        "worst_node": res.worst_node_latency,
        "throughput": res.throughput,
        "saturated": res.saturated,
    }


def run_steered_compare(
    *,
    quick: bool = False,
    out_dir="benchmarks/perf",
    check: bool = False,
    max_sim_fraction: float = 0.5,
    echo: Callable[[str], None] = print,
) -> int:
    """Dense vs knee-steered sweep on the same grid; returns an exit code.

    Runs the full latency–load sweep cycle-accurately, then the steered
    version (model everywhere, cycles only in a window around the predicted
    knee), and writes ``BENCH_steered_sweep[.quick].json`` recording both
    wall times, the simulated-point budget, and how far the steered knee
    landed from the dense one.  With ``check=True`` the run fails when the
    steered sweep simulated more than ``max_sim_fraction`` of the grid or
    missed the dense knee by more than one grid step — the CI gate on the
    steering contract.
    """
    import functools

    from .parallel import run_sweep
    from .steering import find_knee, steered_sweep

    mode = "quick" if quick else "full"
    scen = STEERED_COMPARE_SCENARIO[mode]
    cfg = NetworkConfig(**scen["config"])
    rates = scen["rates"]
    runner = functools.partial(_steered_leg_runner, **scen["windows"])
    echo(f"repro bench --steered [{mode}]: dense vs knee-steered sweep")

    t0 = time.perf_counter()
    dense = run_sweep(cfg, {}, runner, extra_axes={"rate": rates})
    dense_wall = time.perf_counter() - t0
    dense_knee = find_knee(rates, [r["latency"] for r in dense])
    echo(
        f"  dense: {len(dense)} simulated points in {dense_wall:.2f}s, "
        f"measured knee at rate {rates[dense_knee]:g}"
    )

    t0 = time.perf_counter()
    steered = steered_sweep(
        cfg, {}, runner, rates=rates, sim_fraction=max_sim_fraction
    )
    steered_wall = time.perf_counter() - t0
    (plan,) = steered.plans
    n_sim = sum(1 for r in steered if r["source"] == "simulated")
    knee_step_error = abs(plan.knee_index - dense_knee)
    speedup = dense_wall / steered_wall if steered_wall > 0 else float("inf")
    echo(
        f"  steered: {n_sim}/{len(rates)} simulated "
        f"({plan.simulated_fraction:.0%}) in {steered_wall:.2f}s "
        f"({speedup:.2f}x), predicted knee at rate {plan.knee_rate:g} "
        f"({knee_step_error} grid step(s) from dense)"
    )

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = ".quick.json" if quick else ".json"
    record = {
        "name": "steered_sweep",
        "mode": mode,
        "description": (
            f"{scen['config']['k']}x{scen['config']['k']} mesh latency-load "
            "sweep: dense cycle-accurate grid vs analytical-model-steered "
            "window around the predicted knee"
        ),
        "config": scen["config"],
        "rates": list(rates),
        "windows": scen["windows"],
        "dense": {
            "points_simulated": len(dense),
            "wall_time_s": dense_wall,
            "knee_index": dense_knee,
            "knee_rate": rates[dense_knee],
        },
        "steered": {
            "points_simulated": n_sim,
            "simulated_fraction": plan.simulated_fraction,
            "wall_time_s": steered_wall,
            "knee_index": plan.knee_index,
            "knee_rate": plan.knee_rate,
            "model_saturation_rate": plan.saturation_rate,
        },
        "knee_step_error": knee_step_error,
        "speedup": speedup,
        "max_sim_fraction": max_sim_fraction if check else None,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    with open(out_dir / f"BENCH_steered_sweep{suffix}", "w") as f:
        json.dump(record, f, indent=1, sort_keys=True)
        f.write("\n")
    if check:
        if plan.simulated_fraction > max_sim_fraction:
            echo(
                f"STEERING REGRESSION: simulated {plan.simulated_fraction:.0%} "
                f"of the grid, above the {max_sim_fraction:.0%} budget"
            )
            return 1
        if knee_step_error > 1:
            echo(
                f"STEERING REGRESSION: predicted knee {knee_step_error} grid "
                "steps from the dense knee (allowed: 1)"
            )
            return 1
    return 0
