"""Command-line interface: quick experiments without writing a script.

Examples::

    python -m repro openloop --rate 0.2
    python -m repro sweep --rates 0.05,0.15,0.25,0.35,0.42
    python -m repro sweep --rates 0.05,0.2 --axis router-delay=1,2,4 \\
        --workers 4 --journal sweep.jsonl --resume --progress
    python -m repro saturation --topology torus --num-vcs 4
    python -m repro batch -b 200 -m 4 --router-delay 2
    python -m repro batch -b 100 -m 1 --nar 0.05 --reply prob:20:300:0.1
    python -m repro cmp --benchmark lu --router-delay 4 --clock 75mhz
    python -m repro characterize --benchmark all
    python -m repro serve --port 7421 --cache &
    python -m repro worker localhost:7421 &
    python -m repro submit localhost:7421 --rates 0.05,0.2

Every command accepts the network knobs of Table I (``--topology``,
``--k``, ``--num-vcs``, ``--vc-buffer-size``, ``--router-delay``,
``--routing``, ``--arbitration``, ``--traffic``, ``--packet-size``,
``--seed``) and prints a plain-text result.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from pathlib import Path

from . import __version__
from .analysis import format_records, format_table, probe_heatmap
from .analysis.io import _coerce
from .config import CmpConfig, NetworkConfig
from .core.barrier import BarrierSimulator
from .core.closedloop import BatchSimulator
from .core.openloop import OpenLoopSimulator
from .core.parallel import SweepProgress, run_sweep
from .core.probes import PROBE_REGISTRY, ProbeSet, build_probes
from .core.reply import FixedReply, ImmediateReply, ProbabilisticReply, ReplyModel
from .core.resilience import SimulationStalled, Watchdog

__all__ = ["main"]


def _add_probe_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--probes",
        default=None,
        metavar="NAMES",
        help=(
            "enable instrumentation probes: comma-separated from "
            f"{{{','.join(PROBE_REGISTRY)}}} or 'all'"
        ),
    )
    p.add_argument(
        "--probe-interval",
        type=int,
        default=100,
        help="probe aggregation window in cycles (default 100)",
    )
    p.add_argument(
        "--probe-out",
        default=None,
        metavar="PATH",
        help="stream probe records to this JSON-lines file as they flush",
    )


def _build_probe_set(args) -> ProbeSet | None:
    if not getattr(args, "probes", None):
        return None
    return ProbeSet(
        build_probes(args.probes), interval=args.probe_interval, out=args.probe_out
    )


def _report_probes(probes: ProbeSet | None, records: list) -> None:
    if probes is None:
        return
    print(f"probes: {len(records)} window records", end="")
    if probes.out is not None:
        print(f" -> {probes.out}", end="")
    print()
    if records and "per_node_ejected" in records[0]:
        print(probe_heatmap(records, field="per_node_ejected"))


def _add_network_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--topology", default="mesh", choices=("mesh", "torus", "ring"))
    p.add_argument("--k", type=int, default=8)
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--num-vcs", type=int, default=2)
    p.add_argument("--vc-buffer-size", "-q", type=int, default=4)
    p.add_argument("--router-delay", "--tr", type=int, default=1)
    p.add_argument("--routing", default="dor", choices=("dor", "val", "ma", "romm"))
    p.add_argument(
        "--arbitration",
        default="round_robin",
        choices=("round_robin", "age", "priority", "weighted"),
    )
    p.add_argument(
        "--classes",
        default=None,
        metavar="SPEC",
        help=(
            "traffic-class registry: a count (e.g. '2') or '+'-separated "
            "entries 'name[:priority=P][:weight=W][:share=S][:pattern=T]', "
            "e.g. 'user:share=3+os:priority=1' (default: one class); pair "
            "with --arbitration priority|weighted; also sweepable via "
            "--axis classes=SPEC1,SPEC2"
        ),
    )
    p.add_argument(
        "--traffic",
        default="uniform_random",
        choices=(
            "uniform_random",
            "transpose",
            "bit_complement",
            "bit_reversal",
            "neighbor",
            "tornado",
            "hotspot",
        ),
    )
    p.add_argument("--packet-size", default="single", choices=("single", "bimodal"))
    p.add_argument(
        "--backend",
        default="object",
        choices=("object", "vectorized", "analytical"),
        help="network implementation: per-flit Python objects (reference), "
        "the struct-of-arrays numpy backend (bit-identical, much faster at "
        "scale; rejects faulted or credit_delay=0 configs), or the "
        "zero-cycle analytical estimator (cycle drivers reject it — use "
        "'repro estimate' or 'repro sweep --steer')",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault plan, e.g. 'links:2' (random), 'link:12>20', "
            "'router:5@1000-2000'; clauses joined with ';'"
        ),
    )


def _network_config(args: argparse.Namespace) -> NetworkConfig:
    return NetworkConfig(
        topology=args.topology,
        k=args.k,
        n=args.n,
        num_vcs=args.num_vcs,
        vc_buffer_size=args.vc_buffer_size,
        router_delay=args.router_delay,
        routing=args.routing,
        arbitration=args.arbitration,
        traffic=args.traffic,
        packet_size=args.packet_size,
        backend=getattr(args, "backend", "object"),
        classes=getattr(args, "classes", None),
        seed=args.seed,
        faults=getattr(args, "faults", None),
    )


def _add_health_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--watchdog",
        type=int,
        default=None,
        metavar="CYCLES",
        help="stall watchdog window: abort with a diagnosis after this many "
        "cycles without forward progress",
    )
    p.add_argument(
        "--check-invariants",
        action="store_true",
        help="assert flit/credit conservation periodically (slow; debugging)",
    )


def _health_kwargs(args) -> dict:
    kw: dict = {}
    if getattr(args, "watchdog", None) is not None:
        kw["watchdog"] = Watchdog(window=args.watchdog)
    if getattr(args, "check_invariants", False):
        kw["check_invariants"] = True
    return kw


def _parse_reply(spec: str) -> ReplyModel:
    """Parse ``immediate``, ``fixed:<L>`` or ``prob:<l2>:<mem>:<missrate>``."""
    parts = spec.split(":")
    if parts[0] == "immediate":
        return ImmediateReply()
    if parts[0] == "fixed":
        return FixedReply(int(parts[1]))
    if parts[0] == "prob":
        return ProbabilisticReply(int(parts[1]), int(parts[2]), float(parts[3]))
    raise argparse.ArgumentTypeError(f"bad reply model {spec!r}")


def _cmd_openloop(args) -> int:
    cfg = _network_config(args)
    probes = _build_probe_set(args)
    sim = OpenLoopSimulator(
        cfg,
        warmup=args.warmup,
        measure=args.measure,
        drain_limit=args.drain,
        probes=probes,
        **_health_kwargs(args),
    )
    res = sim.run(args.rate)
    print(
        f"offered {res.injection_rate}: avg latency "
        f"{res.avg_latency:.2f} cycles (worst node {res.worst_node_latency:.2f}), "
        f"throughput {res.throughput:.4f}, saturated={res.saturated}, "
        f"{res.num_measured} packets measured"
    )
    if res.num_classes > 1:
        for cls, stats, tp in zip(
            cfg.classes, res.per_class_stats(), res.per_class_throughput
        ):
            print(
                f"  class {cls.name} (prio {cls.priority}, weight "
                f"{cls.weight}): avg latency {stats.mean:.2f}, p99 "
                f"{stats.p99:.2f}, throughput {tp:.4f}, "
                f"{stats.count} packets"
            )
    _report_probes(probes, res.probe_records)
    return 0


def _parse_axis(spec: str) -> tuple[str, tuple]:
    """Parse a ``--axis name=v1,v2,...`` config-axis spec."""
    name, sep, values = spec.partition("=")
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"bad axis {spec!r} (expected name=value,value,...)"
        )
    return name.replace("-", "_"), tuple(_coerce(v) for v in values.split(","))


def _openloop_runner(cfg, *, rate, warmup, measure, drain_limit):
    """Module-level sweep runner (picklable for the process pool)."""
    sim = OpenLoopSimulator(cfg, warmup=warmup, measure=measure, drain_limit=drain_limit)
    res = sim.run(rate)
    record = {
        "latency": res.avg_latency,
        "worst_node": res.worst_node_latency,
        "throughput": res.throughput,
        "saturated": res.saturated,
    }
    if res.num_classes > 1:
        # Per-class views, JSON-native so sweep journals round-trip.
        record["class_names"] = [c.name for c in cfg.classes]
        record["class_latency"] = [
            s.mean if s.count else None for s in res.per_class_stats()
        ]
        record["class_throughput"] = res.per_class_throughput.tolist()
    return record


def _print_progress(p: SweepProgress) -> None:
    eta = f"{p.eta:.0f}s" if p.eta != float("inf") else "?"
    print(
        f"  [{p.done}/{p.total}] {p.rate:.2f} points/s, ETA {eta}"
        + (f", {p.failed} failed" if p.failed else ""),
        file=sys.stderr,
    )


def _cmd_sweep(args) -> int:
    from .core.cache import default_cache_dir

    cfg = _network_config(args)
    rates = tuple(float(r) for r in args.rates.split(","))
    axes = dict(args.axis or [])
    if args.resume and not args.journal:
        print("--resume requires --journal", file=sys.stderr)
        return 2
    cache = None
    if args.cache is not None:
        cache = args.cache or default_cache_dir()
    runner = functools.partial(
        _openloop_runner, warmup=args.warmup, measure=args.measure, drain_limit=args.drain
    )
    if getattr(args, "steer", False):
        return _steered_sweep_cli(args, cfg, axes, rates, runner, cache)
    try:
        if getattr(args, "remote", None):
            from .service import run_remote_sweep

            # The controller owns execution: pool width, point timeouts,
            # and the shared cache are its configuration, not the client's.
            records = run_remote_sweep(
                args.remote,
                cfg,
                axes,
                runner,
                extra_axes={"rate": rates},
                journal=args.journal,
                resume=args.resume,
                resume_force=args.force_resume,
                progress=_print_progress if args.progress else None,
                max_retries=args.max_retries,
            )
        else:
            records = run_sweep(
                cfg,
                axes,
                runner,
                extra_axes={"rate": rates},
                n_workers=args.workers,
                journal=args.journal,
                resume=args.resume,
                resume_force=args.force_resume,
                progress=_print_progress if args.progress else None,
                point_timeout=args.point_timeout,
                max_retries=args.max_retries,
                cache=cache,
            )
    except ValueError as exc:  # bad n_workers, journal/axes mismatch, ...
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    except (OSError, RuntimeError) as exc:  # remote mode: refused/error reply
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    columns = list(axes) + ["rate", "latency", "throughput", "saturated"]
    if any(r.get("failed") for r in records):
        columns.append("error")
    print(format_records(records, columns))
    health = getattr(records, "health", None)
    if health is not None:
        print(f"health: {health.summary()}", file=sys.stderr)
    return 0 if health is None or health.failed == 0 else 1


def _steered_sweep_cli(args, cfg, axes, rates, runner, cache) -> int:
    from .core.steering import steered_sweep

    if args.resume or args.remote:
        print("--steer does not support --resume or --remote (the simulated "
              "window is recomputed per run; run it locally)", file=sys.stderr)
        return 2
    if cfg.backend == "analytical":
        print("--steer simulates its knee window cycle-accurately; pick "
              "--backend object|vectorized (the model half is implied)",
              file=sys.stderr)
        return 2
    try:
        records = steered_sweep(
            cfg,
            axes,
            runner,
            rates=rates,
            sim_fraction=args.steer_fraction,
            n_workers=args.workers,
            journal=args.journal,
            progress=_print_progress if args.progress else None,
            point_timeout=args.point_timeout,
            max_retries=args.max_retries,
            cache=cache,
        )
    except ValueError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    columns = list(axes) + ["rate", "latency", "throughput", "saturated", "source"]
    if any(r.get("failed") for r in records):
        columns.append("error")
    print(format_records(records, columns))
    for plan in records.plans:
        coords = (
            " ".join(f"{k}={v}" for k, v in plan.overrides.items()) or "(base)"
        )
        lo, hi = plan.simulated_indices[0], plan.simulated_indices[-1]
        print(
            f"steer {coords}: predicted knee at rate {plan.knee_rate:g} "
            f"(model saturation {plan.saturation_rate:.4f}), simulated rates "
            f"[{plan.rates[lo]:g}..{plan.rates[hi]:g}] = "
            f"{len(plan.simulated_indices)}/{len(plan.rates)} points",
            file=sys.stderr,
        )
    health = records.health
    print(f"health: {health.summary()}", file=sys.stderr)
    return 0 if health.failed == 0 else 1


def _explore_spec(args):
    """Resolve the CLI flags into an (config, ExploreSpec) pair."""
    from .core.explore import DEFAULT_SPACE, QUICK_SPACE, DesignSpace, ExploreSpec

    cfg = _network_config(args)
    if args.quick:
        # The quick profile is pinned — 4x4 network, small space, short
        # windows — so its front is comparable across hosts and gateable
        # against the committed BENCH_explore_quick.json baseline.
        cfg = cfg.with_(k=4, n=2)
        profile = dict(
            space=QUICK_SPACE, population=8, generations=3,
            rates=(0.1, 0.55), warmup=150, measure=300, drain_limit=3000,
        )
    else:
        profile = dict(
            space=DEFAULT_SPACE, population=12, generations=6,
            rates=(0.05, 0.45), warmup=300, measure=600, drain_limit=6000,
        )
    space_map = profile["space"].as_mapping()
    for name, values in args.gene or []:
        space_map[name] = list(values)
    spec = ExploreSpec(
        space=DesignSpace.from_mapping(space_map),
        population=args.population or profile["population"],
        generations=(
            args.generations if args.generations is not None
            else profile["generations"]
        ),
        seed=args.seed,
        rates=(
            tuple(float(r) for r in args.rates.split(","))
            if args.rates else profile["rates"]
        ),
        warmup=args.warmup or profile["warmup"],
        measure=args.measure or profile["measure"],
        drain_limit=args.drain or profile["drain_limit"],
        objectives=tuple(args.objectives.split(",")),
        surrogate=args.surrogate,
        screen_fraction=args.screen_fraction,
    )
    return cfg, spec


def _write_explore_outputs(out_dir, result, spec) -> tuple[str, str]:
    """Write front JSONL + ASCII figure under ``out_dir``; return the paths."""
    from .analysis.io import canonical_json
    from .analysis.pareto import pareto_plot

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    front_path = out / "explore_front.jsonl"
    with front_path.open("w", encoding="utf-8") as fh:
        for rec in result.front:
            fh.write(canonical_json(rec) + "\n")
    fig = pareto_plot(
        result.front,
        x="cost",
        y="latency",
        title=f"pareto front ({len(result.front)} designs, "
        f"objectives {'/'.join(spec.objectives)})",
    )
    fig_path = out / "explore_front.txt"
    fig_path.write_text(fig + "\n", encoding="utf-8")
    return str(front_path), str(fig_path)


def _cmd_explore(args) -> int:
    from .core.cache import default_cache_dir
    from .core.explore import explore

    try:
        cfg, spec = _explore_spec(args)
    except ValueError as exc:
        print(f"explore error: {exc}", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("--resume requires --journal", file=sys.stderr)
        return 2
    if args.check:
        return _explore_check(args, cfg, spec)
    cache = None
    if args.cache is not None:
        cache = args.cache or default_cache_dir()
    say = (lambda msg: print(f"explore: {msg}", file=sys.stderr))
    try:
        result = explore(
            cfg,
            spec,
            journal=args.journal,
            resume=args.resume,
            resume_force=args.force_resume,
            n_workers=args.workers,
            cache=cache,
            remote=args.remote,
            max_retries=args.max_retries,
            point_timeout=args.point_timeout,
            log=say,
        )
    except ValueError as exc:
        print(f"explore error: {exc}", file=sys.stderr)
        return 2
    except (OSError, RuntimeError) as exc:  # remote mode: refused/error reply
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    columns = list(spec.space.names) + list(spec.objectives) + ["generation"]
    print(format_records(result.front, columns))
    if args.out:
        front_path, fig_path = _write_explore_outputs(args.out, result, spec)
        print(f"front -> {front_path}\nfigure -> {fig_path}", file=sys.stderr)
    else:
        from .analysis.pareto import pareto_plot

        print(pareto_plot(result.front))
    print(f"explore: {result.summary()}", file=sys.stderr)
    return 1 if result.errors else 0


def _explore_check(args, cfg, spec) -> int:
    """Self-contained explore gate: determinism, cache reuse, resume, HV.

    Runs the seeded profile twice (cold then warm) plus a simulated-
    interrupt resume, asserting bit-identical fronts, >= half the warm
    evaluations answered from the result cache, and hypervolume no worse
    than the committed ``BENCH_explore_quick.json`` baseline
    (``--update-baseline`` refreshes it).  Artifacts land under ``--out``.
    """
    import shutil
    import tempfile

    from .analysis.io import canonical_json
    from .analysis.pareto import hypervolume
    from .core.explore import QUICK_HV_REFERENCE, explore

    if not args.quick:
        print("--check requires --quick (the gated profile)", file=sys.stderr)
        return 2
    if args.remote or args.resume:
        print("--check runs locally from scratch; drop --remote/--resume",
              file=sys.stderr)
        return 2
    baseline_path = Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
    baseline_path = baseline_path / "BENCH_explore_quick.json"
    failures: list[str] = []
    tmp = Path(tempfile.mkdtemp(prefix="repro-explore-check-"))
    try:
        cache_dir = args.cache or str(tmp / "cache")
        j_a, j_b, j_c = tmp / "a.jsonl", tmp / "b.jsonl", tmp / "c.jsonl"
        say = (lambda msg: print(f"explore: {msg}", file=sys.stderr))
        run_a = explore(cfg, spec, journal=j_a, cache=cache_dir,
                        n_workers=args.workers, log=say)
        front_a = "\n".join(canonical_json(r) for r in run_a.front)
        run_b = explore(cfg, spec, journal=j_b, cache=cache_dir,
                        n_workers=args.workers)
        front_b = "\n".join(canonical_json(r) for r in run_b.front)
        if front_a != front_b:
            failures.append("determinism: fronts differ across same-seed runs")
        else:
            print(f"check determinism: ok ({len(run_a.front)} designs, "
                  f"bit-identical)")
        hits, misses = run_b.health.cache_hits, run_b.health.cache_misses
        if hits < misses:
            failures.append(
                f"cache reuse: warm run answered {hits}/{hits + misses} "
                "points from cache (< half)"
            )
        else:
            print(f"check cache reuse: ok ({hits}/{hits + misses} warm "
                  "points from cache)")
        # Simulated interrupt: drop the journal tail (one full line plus a
        # partial one) and resume; the front must be unchanged.
        lines = j_a.read_text(encoding="utf-8").splitlines()
        cut = max(1, len(lines) - 2)
        j_c.write_text(
            "\n".join(lines[:cut]) + "\n" + lines[cut][: len(lines[cut]) // 2],
            encoding="utf-8",
        )
        run_c = explore(cfg, spec, journal=j_c, resume=True, cache=cache_dir,
                        n_workers=args.workers)
        front_c = "\n".join(canonical_json(r) for r in run_c.front)
        if front_c != front_a:
            failures.append("resume: front after interrupted-journal resume "
                            "differs from the uninterrupted run")
        elif run_c.resumed == 0:
            failures.append("resume: nothing was resumed from the journal")
        else:
            print(f"check resume: ok ({run_c.resumed} genomes resumed, "
                  "front unchanged)")
        hv = hypervolume(
            [r["objectives"] for r in run_a.front], QUICK_HV_REFERENCE
        )
        if args.update_baseline:
            baseline_path.parent.mkdir(parents=True, exist_ok=True)
            baseline_path.write_text(
                json.dumps(
                    {
                        "name": "explore_quick",
                        "hypervolume": hv,
                        "reference": list(QUICK_HV_REFERENCE),
                        "front_size": len(run_a.front),
                        "population": spec.population,
                        "generations": spec.generations,
                        "seed": spec.seed,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
            print(f"check hypervolume: baseline updated ({hv:.1f}) -> "
                  f"{baseline_path}")
        elif not baseline_path.exists():
            failures.append(
                f"hypervolume: no baseline at {baseline_path} "
                "(run with --update-baseline to create it)"
            )
        else:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
            floor = float(baseline["hypervolume"]) * (1.0 - 1e-6)
            if hv < floor:
                failures.append(
                    f"hypervolume: {hv:.3f} below baseline "
                    f"{baseline['hypervolume']:.3f}"
                )
            else:
                print(f"check hypervolume: ok ({hv:.1f} >= baseline "
                      f"{baseline['hypervolume']:.1f})")
        front_path, fig_path = _write_explore_outputs(
            args.out or "explore-out", run_a, spec
        )
        print(f"front -> {front_path}\nfigure -> {fig_path}", file=sys.stderr)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    for failure in failures:
        print(f"check FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("explore --check: all gates passed")
    return 1 if failures else 0


def _cmd_estimate(args) -> int:
    from .analytical import AnalyticalModel

    cfg = _network_config(args)
    model = AnalyticalModel(cfg, capacity_factor=args.capacity_factor)
    rates = tuple(float(r) for r in args.rates.split(","))
    print(
        f"analytical model: zero-load latency "
        f"{model.estimate(min(rates)).zero_load_latency:.2f} cycles, "
        f"saturation rate {model.saturation_rate:.4f} flits/cycle/node"
    )
    for rate in rates:
        est = model.estimate(rate)
        lat = f"{est.avg_latency:.2f}" if not est.saturated else "inf"
        print(
            f"rate {rate:g}: avg latency {lat} cycles, throughput "
            f"{est.throughput:.4f}, utilization {est.utilization:.2f}, "
            f"saturated={est.saturated}"
        )
        if len(cfg.classes) > 1:
            for cls_est in est.classes:
                clat = (
                    f"{cls_est.avg_latency:.2f}" if not cls_est.saturated else "inf"
                )
                print(
                    f"  class {cls_est.name}: avg latency {clat}, throughput "
                    f"{cls_est.throughput:.4f}, saturated={cls_est.saturated}"
                )
    return 0


def _cmd_saturation(args) -> int:
    cfg = _network_config(args)
    sim = OpenLoopSimulator(
        cfg, warmup=args.warmup, measure=args.measure, drain_limit=args.drain
    )
    t0 = time.perf_counter()
    sat = sim.saturation_throughput(tolerance=args.tolerance)
    print(
        f"saturation throughput: {sat:.4f} flits/cycle/node "
        f"({time.perf_counter() - t0:.1f}s)"
    )
    return 0


def _cmd_batch(args) -> int:
    cfg = _network_config(args)
    probes = _build_probe_set(args)
    kwargs = {}
    if args.nar is not None:
        kwargs["nar"] = args.nar
    if args.reply is not None:
        kwargs["reply_model"] = args.reply
    if args.barrier:
        res = BarrierSimulator(cfg, batch_size=args.batch_size, probes=probes).run()
        print(
            f"barrier model: runtime {res.runtime}, throughput "
            f"{res.throughput:.4f}, completed={res.completed}"
        )
        _report_probes(probes, res.probe_records)
        return 0
    res = BatchSimulator(
        cfg,
        batch_size=args.batch_size,
        max_outstanding=args.max_outstanding,
        probes=probes,
        **kwargs,
        **_health_kwargs(args),
    ).run()
    print(
        f"batch model (b={args.batch_size}, m={args.max_outstanding}): "
        f"runtime T={res.runtime} (T/b={res.normalized_runtime:.2f}), "
        f"theta={res.throughput:.4f}, avg request latency "
        f"{res.avg_request_latency:.1f}, completed={res.completed}"
    )
    _report_probes(probes, res.probe_records)
    return 0


def _cmd_cmp(args) -> int:
    from .execdriven import (
        BENCHMARKS,
        TIMER_INTERVAL_3GHZ,
        TIMER_INTERVAL_75MHZ,
        CmpSystem,
    )

    interval = {
        "off": 0,
        "3ghz": TIMER_INTERVAL_3GHZ,
        "75mhz": TIMER_INTERVAL_75MHZ,
    }[args.clock]
    spec = BENCHMARKS[args.benchmark](args.instructions)
    cfg = CmpConfig(
        network=NetworkConfig(
            k=4, n=2, num_vcs=8, vc_buffer_size=4, router_delay=args.router_delay
        )
    )
    res = CmpSystem(
        spec, cfg, ideal=args.ideal, timer_interval=interval, seed=args.seed
    ).run()
    print(
        f"{args.benchmark} on {'ideal' if args.ideal else '4x4 mesh'} "
        f"(tr={args.router_delay}, clock={args.clock}): {res.cycles} cycles, "
        f"NAR {res.nar:.4f}, L2 miss {res.l2_miss_rate:.3f}, kernel share "
        f"{res.kernel_fraction:.2f}, {res.interrupts} interrupts, "
        f"completed={res.completed}"
    )
    return 0


def _cmd_characterize(args) -> int:
    from .execdriven import BENCHMARKS, characterize

    names = list(BENCHMARKS) if args.benchmark == "all" else [args.benchmark]
    rows = []
    for name in names:
        ch = characterize(BENCHMARKS[name](args.instructions), seed=args.seed)
        rows.append(
            [name, ch.ideal_cycles, ch.nar, ch.user_nar, ch.user_l2_miss,
             ch.os_l2_miss, ch.static_kernel_fraction]
        )
    print(
        format_table(
            ["benchmark", "ideal_cycles", "NAR", "user_NAR", "user_L2miss",
             "os_L2miss", "static_kernel"],
            rows,
            precision=3,
        )
    )
    return 0


def _cmd_bench(args) -> int:
    from .core.bench import run_backend_compare, run_bench, run_steered_compare

    if args.backends:
        # One leg per backend: the runs are minutes-long at full scale and
        # deterministic, so best-of-N buys little for the speedup ratio.
        return run_backend_compare(
            quick=args.quick,
            out_dir=args.out,
            check=args.check,
            min_speedup=args.min_backend_speedup,
        )
    if args.steered:
        return run_steered_compare(
            quick=args.quick,
            out_dir=args.out,
            check=args.check,
            max_sim_fraction=args.max_sim_fraction,
        )
    return run_bench(
        quick=args.quick,
        only=args.only or None,
        out_dir=args.out,
        check=args.check,
        fail_threshold=args.fail_threshold,
        repeats=args.repeats,
        update_baselines=args.update_baselines,
    )


def _cmd_submit(args) -> int:
    # ``repro submit HOST:PORT`` is ``repro sweep --remote HOST:PORT`` with
    # the local-executor knobs pinned off; one implementation, two spellings.
    args.remote = args.address
    args.workers = 1
    args.point_timeout = None
    args.cache = None
    return _cmd_sweep(args)


def _cmd_serve(args) -> int:
    from .core.cache import default_cache_dir
    from .service import Controller, ControllerServer, ServiceOptions

    cache = None
    if args.cache is not None:
        cache = args.cache or default_cache_dir()
    options = ServiceOptions(
        lease_seconds=args.lease_seconds,
        heartbeat_timeout=args.heartbeat_timeout,
        quarantine_after=args.quarantine_after,
        quarantine_seconds=args.quarantine_seconds,
        fallback_after=None if args.no_fallback else args.fallback_after,
        fallback_workers=args.fallback_workers,
    )
    server = ControllerServer(
        Controller(options, cache=cache), host=args.host, port=args.port
    )
    server.start()
    host, port = server.address
    print(f"sweep service on {host}:{port}" + (f" (cache: {cache})" if cache else ""))
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_worker(args) -> int:
    from .service import Worker, parse_address

    host, port = parse_address(args.address)
    worker = Worker(
        host,
        port,
        name=args.name,
        max_points=args.max_points,
        max_idle=args.max_idle,
        log=lambda line: print(f"worker: {line}", file=sys.stderr),
    )
    try:
        done = worker.run()
    except KeyboardInterrupt:
        done = worker.points_done
    print(f"worker executed {done} point{'s' if done != 1 else ''}")
    return 0


def _cmd_cache(args) -> int:
    from .core.cache import (
        ResultCache,
        cache_salt,
        default_cache_dir,
        verify_entries,
    )

    cache_dir = args.dir or default_cache_dir()
    cache = ResultCache(cache_dir)
    if args.action == "stats":
        totals = cache.cumulative_stats()
        contexts: dict[str, int] = {}
        for entry in cache.entries():
            ctx = str(entry.get("context") or "?")
            contexts[ctx] = contexts.get(ctx, 0) + 1
        print(f"cache {cache.path}")
        print(f"  salt     {cache_salt()[:16]}")
        print(f"  entries  {len(cache)}")
        print(f"  bytes    {cache.total_bytes}")
        for name in ("hits", "misses", "writes"):
            print(f"  {name:<8} {int(totals.get(name, 0))}")
        for ctx in sorted(contexts):
            print(f"  context  {ctx}: {contexts[ctx]} entries")
        return 0
    if args.action == "verify":
        if len(cache) == 0:
            print("cache is empty; nothing to verify")
            return 0
        results = verify_entries(cache, sample=args.sample, seed=args.seed)
        bad = 0
        for res in results:
            print(f"  {res.key[:16]} {res.status}" + (f": {res.detail}" if res.detail else ""))
            bad += res.status == "mismatch"
        print(f"verified {len(results)} sampled entr{'y' if len(results) == 1 else 'ies'}: "
              f"{bad} mismatch(es)")
        return 1 if bad else 0
    # gc
    if args.max_bytes is None:
        print("cache gc requires --max-bytes", file=sys.stderr)
        return 2
    res = cache.gc(args.max_bytes)
    print(
        f"gc: kept {res.kept}, dropped {res.dropped} "
        f"({res.bytes_before} -> {res.bytes_after} bytes)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="On-Chip Network Evaluation Framework (SC 2010) CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def openloop_args(p):
        _add_network_args(p)
        p.add_argument("--warmup", type=int, default=500)
        p.add_argument("--measure", type=int, default=1000)
        p.add_argument("--drain", type=int, default=10000)

    p = sub.add_parser("openloop", help="one open-loop measurement point")
    openloop_args(p)
    p.add_argument("--rate", type=float, required=True, help="flits/cycle/node")
    _add_probe_args(p)
    _add_health_args(p)
    p.set_defaults(func=_cmd_openloop)

    p = sub.add_parser(
        "sweep", help="latency-load curve / design-space sweep (parallel, resumable)"
    )
    openloop_args(p)
    p.add_argument("--rates", required=True, help="comma-separated offered loads")
    p.add_argument(
        "--axis",
        action="append",
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="sweep a config field too (repeatable), e.g. --axis router-delay=1,2,4",
    )
    p.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    p.add_argument(
        "--journal", default=None, help="JSON-lines checkpoint file (one point per line)"
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip points already in --journal instead of starting fresh",
    )
    p.add_argument(
        "--force-resume",
        action="store_true",
        help="resume even when the journal's sweep fingerprint (config x "
        "axes x code version) no longer matches",
    )
    p.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="run the sweep on the distributed service at this address "
        "instead of locally (see 'repro serve' / 'repro worker')",
    )
    p.add_argument(
        "--progress", action="store_true", help="print per-point rate/ETA to stderr"
    )
    p.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill sweep points that run longer than this (parallel mode)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry transient point failures (stalls, worker deaths) up to "
        "this many times (default 2)",
    )
    p.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="reuse identical (config, seed) points from a content-addressed "
        "result cache (default dir: $REPRO_CACHE_DIR or .repro-cache); "
        "REPRO_NO_CACHE=1 bypasses it",
    )
    p.add_argument(
        "--steer",
        action="store_true",
        help="knee-steered sweep: simulate only a window of rates around "
        "the analytical model's predicted knee, fill the rest from the "
        "model (records tagged source=simulated|analytical)",
    )
    p.add_argument(
        "--steer-fraction",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="--steer: max share of rates simulated per combination "
        "(default 0.5)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "explore",
        help="NSGA-II Pareto search over the design space "
        "(latency / throughput / cost)",
    )
    _add_network_args(p)
    p.add_argument("--warmup", type=int, default=None)
    p.add_argument("--measure", type=int, default=None)
    p.add_argument("--drain", type=int, default=None)
    p.add_argument(
        "--quick",
        action="store_true",
        help="pinned quick profile: 4x4 network, small space/windows, "
        "population 8 x 3 generations (the CI-gated configuration)",
    )
    p.add_argument(
        "--population", type=int, default=None, help="population size per generation"
    )
    p.add_argument(
        "--generations", type=int, default=None, help="number of NSGA-II generations"
    )
    p.add_argument(
        "--gene",
        action="append",
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="override/add a design-space gene (repeatable), e.g. "
        "--gene num-vcs=2,4,8",
    )
    p.add_argument(
        "--objectives",
        default="latency,throughput,cost",
        metavar="NAMES",
        help="ordered subset of latency,throughput,cost (default: all three)",
    )
    p.add_argument(
        "--rates",
        default=None,
        metavar="LO,HI",
        help="evaluation rates: latency read at LO, throughput at HI",
    )
    p.add_argument(
        "--surrogate",
        action="store_true",
        help="screen each generation with the analytical model first; only "
        "the surrogate-front share is simulated cycle-accurately",
    )
    p.add_argument(
        "--screen-fraction",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="--surrogate: share of screened genomes that graduate to "
        "simulation (default 0.5)",
    )
    p.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    p.add_argument(
        "--journal",
        default=None,
        help="JSON-lines archive of every evaluated genome (one per line)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay genomes already in --journal instead of re-evaluating",
    )
    p.add_argument(
        "--force-resume",
        action="store_true",
        help="resume even when the journal's fingerprint (spec x config x "
        "code version) no longer matches",
    )
    p.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="evaluate generations on the distributed sweep service",
    )
    p.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill evaluation points that run longer than this (parallel mode)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry transient point failures up to this many times (default 2)",
    )
    p.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="content-addressed result cache (duplicate genomes are free); "
        "default dir: $REPRO_CACHE_DIR or .repro-cache",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write explore_front.jsonl + explore_front.txt here",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="gate the quick profile: bit-identical fronts across two "
        "same-seed runs, >= half the warm run from cache, clean resume "
        "after a simulated interrupt, hypervolume vs the committed baseline",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="--check: rewrite benchmarks/perf/BENCH_explore_quick.json "
        "from this run instead of gating against it",
    )
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "estimate", help="zero-cycle analytical latency/saturation estimate"
    )
    _add_network_args(p)
    p.add_argument("--rates", required=True, help="comma-separated offered loads")
    p.add_argument(
        "--capacity-factor",
        type=float,
        default=0.85,
        metavar="FRACTION",
        help="fraction of the ideal channel capacity reachable before "
        "saturation (default 0.85; 1.0 = the textbook bound)",
    )
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser("saturation", help="bisect the saturation throughput")
    openloop_args(p)
    p.add_argument("--tolerance", type=float, default=0.01)
    p.set_defaults(func=_cmd_saturation)

    p = sub.add_parser("batch", help="closed-loop batch (or barrier) model")
    _add_network_args(p)
    p.add_argument("-b", "--batch-size", type=int, default=1000)
    p.add_argument("-m", "--max-outstanding", type=int, default=1)
    p.add_argument("--nar", type=float, default=None, help="enhanced injection rate")
    p.add_argument(
        "--reply",
        type=_parse_reply,
        default=None,
        help="reply model: immediate | fixed:<L> | prob:<l2>:<mem>:<miss>",
    )
    p.add_argument("--barrier", action="store_true", help="use the barrier model")
    _add_probe_args(p)
    _add_health_args(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("cmp", help="execution-driven CMP run")
    p.add_argument(
        "--benchmark",
        default="blackscholes",
        choices=("blackscholes", "lu", "canneal", "fft", "barnes"),
    )
    p.add_argument("--instructions", type=int, default=10000)
    p.add_argument("--router-delay", "--tr", type=int, default=1)
    p.add_argument("--clock", default="3ghz", choices=("off", "3ghz", "75mhz"))
    p.add_argument("--ideal", action="store_true", help="run on the ideal network")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_cmp)

    p = sub.add_parser("characterize", help="Table III/IV characterization")
    p.add_argument("--benchmark", default="all")
    p.add_argument("--instructions", type=int, default=10000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser(
        "bench", help="perf microbenchmarks (writes BENCH_<name>.json records)"
    )
    p.add_argument(
        "--quick", action="store_true", help="scaled-down configs (CI smoke job)"
    )
    p.add_argument(
        "--only",
        action="append",
        metavar="SCENARIO",
        help="run one scenario (repeatable); default: all",
    )
    p.add_argument(
        "--out", default="benchmarks/perf", help="output directory for BENCH records"
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a speedup regression vs the committed records",
    )
    p.add_argument(
        "--fail-threshold",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed speedup_vs_dense drop before --check fails (default 0.25)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per scenario leg; best-of-N is recorded (default 3)",
    )
    p.add_argument(
        "--update-baselines",
        action="store_true",
        help="refresh seed_baseline.json from this run's cycles/sec (run on "
        "the reference host, then commit the regenerated records)",
    )
    p.add_argument(
        "--backends",
        action="store_true",
        help="instead of the scenario suite, time the object vs vectorized "
        "backends on the saturation scenario, assert bit-identical records, "
        "and write BENCH_vectorized_saturation.json",
    )
    p.add_argument(
        "--min-backend-speedup",
        type=float,
        default=3.0,
        metavar="RATIO",
        help="--backends --check fails below this vectorized speedup "
        "(default 3.0)",
    )
    p.add_argument(
        "--steered",
        action="store_true",
        help="instead of the scenario suite, compare a dense latency-load "
        "sweep against the analytical-model-steered version and write "
        "BENCH_steered_sweep.json; --check gates the simulated-point "
        "budget and knee accuracy",
    )
    p.add_argument(
        "--max-sim-fraction",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="--steered budget: share of grid points the steered sweep may "
        "simulate (default 0.5; also the --check gate)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve", help="run the distributed sweep-service controller"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421, help="0 = ephemeral")
    p.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="shared content-addressed result store: hits are answered "
        "without dispatching, worker results are written back "
        "(default dir: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--lease-seconds",
        type=float,
        default=60.0,
        help="seconds a worker owns a point before it is re-queued (default 60)",
    )
    p.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        help="seconds of worker silence before its leases re-queue (default 10)",
    )
    p.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        help="consecutive lease failures before a worker is quarantined",
    )
    p.add_argument(
        "--quarantine-seconds",
        type=float,
        default=30.0,
        help="seconds a quarantined worker is refused new leases",
    )
    p.add_argument(
        "--fallback-after",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="run queued work on the controller itself after this long with "
        "no live workers (default 15)",
    )
    p.add_argument(
        "--no-fallback",
        action="store_true",
        help="never execute locally; queued work waits for workers forever",
    )
    p.add_argument(
        "--fallback-workers",
        type=int,
        default=1,
        help="process-pool size of the local fallback executor (default 1)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("worker", help="run one sweep-service worker daemon")
    p.add_argument("address", metavar="HOST:PORT", help="controller address")
    p.add_argument("--name", default=None, help="worker name (default: host-derived)")
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="exit after executing this many points (batch schedulers)",
    )
    p.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long with no work available",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "submit", help="submit a sweep to a running service (remote 'sweep')"
    )
    openloop_args(p)
    p.add_argument("address", metavar="HOST:PORT", help="controller address")
    p.add_argument("--rates", required=True, help="comma-separated offered loads")
    p.add_argument(
        "--axis",
        action="append",
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="sweep a config field too (repeatable)",
    )
    p.add_argument("--journal", default=None, help="client-side JSON-lines checkpoint")
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip points already in --journal instead of starting fresh",
    )
    p.add_argument(
        "--force-resume",
        action="store_true",
        help="resume even when the journal's sweep fingerprint mismatches",
    )
    p.add_argument(
        "--progress", action="store_true", help="print per-point rate/ETA to stderr"
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-point transient-failure retry budget on the service",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "cache", help="content-addressed result cache: stats, verify, gc"
    )
    p.add_argument(
        "action",
        choices=("stats", "verify", "gc"),
        help="stats: counters and store size; verify: re-run sampled entries "
        "and diff bit-for-bit; gc: evict oldest entries past --max-bytes",
    )
    p.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: shrink the store under this many bytes (oldest evicted first)",
    )
    p.add_argument(
        "--sample", type=int, default=1, help="verify: how many entries to re-run"
    )
    p.add_argument(
        "--seed", type=int, default=0, help="verify: sampling seed (deterministic)"
    )
    p.set_defaults(func=_cmd_cache)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Config/plan validation errors are user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SimulationStalled as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
