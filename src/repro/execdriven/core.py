"""In-order core model.

Each core executes its benchmark's phase stream one instruction per cycle
(plus L1 access latency for memory operations).  Memory instructions probe
the real L1; a miss allocates an MSHR and sends a request packet to the
line's home L2 tile.  The core keeps executing past outstanding misses
until the MSHR file fills — exactly the intra-node dependency the batch
model abstracts with ``m`` — and stalls when it does.

Timer interrupts push the benchmark's handler phase onto an interrupt
stack; the handler's instructions execute with kernel-class parameters
before user execution resumes (§V's runtime-proportional kernel traffic).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .address import AddressSpace, MixtureStream
from .benchmarks import BenchmarkSpec, PhaseSpec
from .cache import SetAssocCache
from .mshr import MSHRFile

__all__ = ["InOrderCore"]

_SHARED_BASE = 2 << 40  # mid/cold pools: lines at/above this are shared


class InOrderCore:
    """One in-order core executing a synthetic phase stream."""

    def __init__(
        self,
        core_id: int,
        spec: BenchmarkSpec,
        space: AddressSpace,
        *,
        l1: SetAssocCache,
        mshrs: MSHRFile,
        send_request: Callable[[int, int, int], None],
        rng: np.random.Generator,
        l1_latency: int = 2,
        blocking_fraction: float = 0.7,
        logical_matrix: Optional[np.ndarray] = None,
    ):
        self.core_id = core_id
        self.spec = spec
        self.space = space
        self.l1 = l1
        self.mshrs = mshrs
        # send_request(core_id, line, traffic_class) -> injects a packet.
        self.send_request = send_request
        self.rng = rng
        self.l1_latency = l1_latency
        # Fraction of misses that are loads the in-order pipeline must wait
        # for (the rest behave like stores/prefetches: MSHR-tracked but
        # non-blocking).  This is what couples runtime to network latency.
        if not 0.0 <= blocking_fraction <= 1.0:
            raise ValueError("blocking_fraction must be in [0, 1]")
        self.blocking_fraction = blocking_fraction
        self.logical_matrix = logical_matrix

        self._phase_idx = 0
        self._phase_left = spec.phases[0].instructions if spec.phases else 0
        self._interrupt_stack: list[list] = []  # [phase, instrs_left, stream]
        self._streams: dict[int, MixtureStream] = {}
        self._busy_until = 0
        self._pending_line: Optional[int] = None
        self._pending_class = 0
        self._pending_blocking = False
        self._blocked_line: Optional[int] = None
        self.instructions_retired = 0
        self.kernel_instructions = 0
        self.l1_hits = 0
        self.l1_misses = 0
        self.mshr_stall_cycles = 0
        self.load_stall_cycles = 0
        self._block_since = 0
        self.done = self._phase_left == 0 and len(spec.phases) <= 1
        self._skip_empty_phases()

    # -- phase plumbing ------------------------------------------------------
    def _stream_for(self, phase: PhaseSpec) -> MixtureStream:
        key = id(phase)
        stream = self._streams.get(key)
        if stream is None:
            offsets = self.spec.neighbors
            n = self.space.num_cores
            partners = tuple((self.core_id + off) % n for off in offsets)
            stream = MixtureStream(
                self.space,
                self.core_id,
                p_mid=phase.p_mid,
                p_cold=phase.p_cold,
                rng=self.rng,
                partners=partners,
                partner_bias=phase.partner_bias,
            )
            self._streams[key] = stream
        return stream

    def _current(self) -> tuple[PhaseSpec, MixtureStream]:
        if self._interrupt_stack:
            frame = self._interrupt_stack[-1]
            return frame[0], frame[2]
        phase = self.spec.phases[self._phase_idx]
        return phase, self._stream_for(phase)

    def _retire(self) -> None:
        self.instructions_retired += 1
        if self._interrupt_stack:
            self.kernel_instructions += 1
            frame = self._interrupt_stack[-1]
            frame[1] -= 1
            if frame[1] <= 0:
                self._interrupt_stack.pop()
            return
        if self.spec.phases[self._phase_idx].traffic_class != 0:
            self.kernel_instructions += 1
        self._phase_left -= 1
        if self._phase_left <= 0:
            self._phase_idx += 1
            self._skip_empty_phases()

    def _skip_empty_phases(self) -> None:
        while self._phase_idx < len(self.spec.phases):
            self._phase_left = self.spec.phases[self._phase_idx].instructions
            if self._phase_left > 0:
                return
            self._phase_idx += 1
        self.done = True

    # -- external events --------------------------------------------------------
    def interrupt(self, handler: PhaseSpec) -> bool:
        """Deliver a timer interrupt; ignored when nested or finished.

        Returns True if the handler was actually scheduled.
        """
        if self.done or self._interrupt_stack:
            return False
        self._interrupt_stack.append(
            [handler, handler.instructions, self._stream_for(handler)]
        )
        return True

    def on_reply(self, line: int, now: int = 0) -> None:
        """A memory reply arrived: fill the L1 and free the MSHR.

        If the pipeline is blocked on this line (a load in flight), the
        blocked instruction retires now.
        """
        self.mshrs.release(line)
        self.l1.fill(line)
        if self._blocked_line == line:
            self._blocked_line = None
            self.load_stall_cycles += now - self._block_since
            self._busy_until = now + 1
            self._retire()

    @property
    def active(self) -> bool:
        """True while the core still has work (instructions or stall retry)."""
        return (
            not self.done
            or self._pending_line is not None
            or self._blocked_line is not None
        )

    # -- per-cycle execution -------------------------------------------------------
    def step(self, now: int) -> None:
        """Execute at most one instruction event at cycle ``now``."""
        if self._busy_until > now or self._blocked_line is not None:
            return
        if self._pending_line is not None:
            # Stalled on a full MSHR file: retry the blocked access.
            status = self.mshrs.allocate(self._pending_line)
            if status == "full":
                self.mshr_stall_cycles += 1
                return
            if status == "allocated":
                self.send_request(self.core_id, self._pending_line, self._pending_class)
            if self._pending_blocking:
                self._blocked_line = self._pending_line
                self._block_since = now
                self._pending_line = None
                return
            self._pending_line = None
            self._busy_until = now + self.l1_latency
            self._retire()
            return
        if self.done:
            return
        phase, stream = self._current()
        if self.rng.random() >= phase.mem_ratio:
            self._busy_until = now + 1
            self._retire()
            return
        line = stream.next_line()
        if self.logical_matrix is not None and line >= _SHARED_BASE:
            self.logical_matrix[self.core_id, self.space.producer_of(line)] += 1
        if self.l1.lookup(line):
            self.l1_hits += 1
            self._busy_until = now + self.l1_latency
            self._retire()
            return
        self.l1_misses += 1
        blocking = self.rng.random() < self.blocking_fraction
        status = self.mshrs.allocate(line)
        if status == "full":
            self._pending_line = line
            self._pending_class = phase.traffic_class
            self._pending_blocking = blocking
            self.mshr_stall_cycles += 1
            return
        if status == "allocated":
            self.send_request(self.core_id, line, phase.traffic_class)
        if blocking:
            # In-order pipeline: the dependent instruction stream waits for
            # the load; retirement happens in on_reply.
            self._blocked_line = line
            self._block_since = now
            return
        self._busy_until = now + self.l1_latency
        self._retire()
