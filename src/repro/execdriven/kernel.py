"""Kernel activity timing (paper §V).

The paper classifies kernel network traffic into (a) application-dependent
syscall/trap traffic — modelled as kernel-class phases inside each
:class:`~repro.execdriven.benchmarks.BenchmarkSpec` — and (b) periodic timer
interrupts, whose *wall-clock* period means their per-cycle rate scales with
the core clock: the Simics default 75 MHz Serengeti sees ~40× more
interrupts per cycle than a 3 GHz configuration, which is exactly the ratio
that wrecks the un-modelled correlation in Fig. 22(a).

Our surrogate benchmarks are ~``SCALE``× shorter than the real SPLASH-2 /
PARSEC runs, so intervals are scaled by the same factor to keep
interrupts-per-run in the paper's observed range (6-10 at 3 GHz, hundreds
at 75 MHz).
"""

from __future__ import annotations

__all__ = [
    "timer_interval_cycles",
    "TIMER_INTERVAL_3GHZ",
    "TIMER_INTERVAL_75MHZ",
    "SCALE",
]

#: Ratio between real benchmark length and the synthetic surrogates.
SCALE = 1200

#: Solaris clock-tick rate used by the paper's Simics configuration.
TIMER_HZ = 100


def timer_interval_cycles(freq_hz: float, *, timer_hz: float = TIMER_HZ, scale: float = SCALE) -> int:
    """Cycles between timer interrupts for a core clocked at ``freq_hz``.

    ``scale`` divides the real interval to match the surrogate benchmarks'
    shortened runtimes (see module docstring).
    """
    if freq_hz <= 0 or timer_hz <= 0 or scale <= 0:
        raise ValueError("freq_hz, timer_hz and scale must be positive")
    return max(1, round(freq_hz / timer_hz / scale))


#: 3 GHz "modern high-end processor" configuration.
TIMER_INTERVAL_3GHZ = timer_interval_cycles(3e9)

#: 75 MHz Simics Serengeti default configuration.
TIMER_INTERVAL_75MHZ = timer_interval_cycles(75e6)
