"""Shared-L2 home tiles and the memory backing them (paper Table II).

The L2 is shared and statically distributed: every line address has one
home tile (low-order interleaving), whose bank is a real set-associative
cache.  A request arriving at its home tile is serviced in ``l2_latency``
cycles on a hit, or ``l2_latency + memory_latency`` on a miss (the 300-cycle
DRAM of Table II).  Banks are pipelined (no port contention model); the
network is the contended resource under study.

Per-traffic-class hit/miss counters feed the Table IV user/OS L2 miss-rate
characterization.
"""

from __future__ import annotations

from .cache import SetAssocCache

__all__ = ["HomeTile"]


class HomeTile:
    """One tile's L2 bank plus its slice of the memory controller."""

    __slots__ = (
        "tile_id",
        "l2",
        "l2_latency",
        "memory_latency",
        "interleave",
        "class_hits",
        "class_misses",
    )

    def __init__(
        self,
        tile_id: int,
        *,
        l2_lines: int,
        l2_assoc: int,
        l2_latency: int,
        memory_latency: int,
        interleave: int = 1,
    ):
        self.tile_id = tile_id
        self.l2 = SetAssocCache(l2_lines, l2_assoc)
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency
        # Banks index with the tile-local address (line // interleave): the
        # low bits select the home tile, so they are constant within a bank
        # and must not feed the set index or 15/16 of the sets sit unused.
        self.interleave = interleave
        self.class_hits: dict[int, int] = {}
        self.class_misses: dict[int, int] = {}

    def fill(self, line: int) -> None:
        """Pre-load ``line`` into the bank (warm-start support)."""
        self.l2.fill(line // self.interleave)

    def service(self, line: int, traffic_class: int = 0) -> tuple[int, bool]:
        """Serve a request for ``line``: returns (latency, l2_hit).

        The bank fills on a miss (fetch from memory), so reuse across cores
        hits once any core has pulled the line in.
        """
        hit = self.l2.access(line // self.interleave)
        if hit:
            self.class_hits[traffic_class] = self.class_hits.get(traffic_class, 0) + 1
            return self.l2_latency, True
        self.class_misses[traffic_class] = self.class_misses.get(traffic_class, 0) + 1
        return self.l2_latency + self.memory_latency, False

    def miss_rate(self, traffic_class: int | None = None) -> float:
        """L2 miss rate, overall or for one traffic class."""
        if traffic_class is None:
            total = self.l2.stats.accesses
            return self.l2.stats.miss_rate if total else 0.0
        hits = self.class_hits.get(traffic_class, 0)
        misses = self.class_misses.get(traffic_class, 0)
        total = hits + misses
        return misses / total if total else 0.0
