"""Benchmark characterization and batch-model parameter derivation.

This module closes the paper's methodology loop:

1. :func:`characterize` runs a benchmark on the **ideal network** and
   extracts the Table III / Table IV observables — ideal cycle count, total
   flits, NAR, L2 miss rate, the user/OS splits, the static kernel-traffic
   fraction, and the measured timer rate.
2. :func:`derive_batch_params` converts a characterization into the
   enhanced batch model's parameters (``nar``, a per-class probabilistic
   reply model, and an :class:`~repro.core.osmodel.OSModel`) — the exact
   parameter flow of §IV-D and §V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import CmpConfig
from ..core.osmodel import OSModel
from ..core.reply import PerClassReply, ProbabilisticReply
from .benchmarks import KERNEL, USER, BenchmarkSpec
from .cmp import CmpResult, CmpSystem

__all__ = ["Characterization", "characterize", "derive_batch_params"]


@dataclass(frozen=True)
class Characterization:
    """Table III + Table IV observables for one benchmark."""

    benchmark: str
    ideal_cycles: int
    instructions: int
    total_flits: int
    nar: float
    l2_miss_rate: float
    user_nar: float
    os_nar: float
    user_l2_miss: float
    os_l2_miss: float
    static_kernel_fraction: float
    timer_rate: float
    interrupts: int
    os_request_rate_active: float

    @classmethod
    def from_result(cls, result: CmpResult) -> "Characterization":
        return cls(
            benchmark=result.benchmark,
            ideal_cycles=result.cycles,
            instructions=result.instructions,
            total_flits=result.total_flits,
            nar=result.nar,
            l2_miss_rate=result.l2_miss_rate,
            user_nar=result.nar_of_class(USER),
            os_nar=result.nar_of_class(KERNEL),
            user_l2_miss=result.l2_miss_by_class.get(USER, 0.0),
            os_l2_miss=result.l2_miss_by_class.get(KERNEL, 0.0),
            static_kernel_fraction=result.static_kernel_fraction,
            timer_rate=result.timer_rate,
            interrupts=result.interrupts,
            os_request_rate_active=result.os_request_rate_active,
        )


def characterize(
    benchmark: BenchmarkSpec,
    config: Optional[CmpConfig] = None,
    *,
    timer_interval: int = 0,
    seed: int = 1,
) -> Characterization:
    """Run ``benchmark`` on the ideal network and extract its observables.

    The ideal network is the definitional setting for NAR (§IV-C1); pass a
    ``timer_interval`` to also measure the kernel timer columns of
    Table IV.
    """
    system = CmpSystem(
        benchmark, config, ideal=True, timer_interval=timer_interval, seed=seed
    )
    return Characterization.from_result(system.run())


def derive_batch_params(
    ch: Characterization,
    config: Optional[CmpConfig] = None,
    *,
    timer_batch: int = 4,
    timer_rate: Optional[float] = None,
) -> dict:
    """Enhanced-batch-model parameters implied by a characterization.

    Returns kwargs for :class:`repro.core.closedloop.BatchSimulator`:
    ``nar`` (per-node request rate under the ideal network — NAR in packets,
    i.e. flits scaled by the request+reply footprint), ``reply_model`` (a
    per-class probabilistic L2/DRAM model using the measured miss rates),
    and ``os_model`` (static fraction + timer rate).

    ``timer_rate`` overrides the characterization's measured rate — use
    this to target a clock configuration (e.g. 1/interval for 75 MHz) when
    the characterization itself ran timer-free, which keeps its NAR and
    miss-rate columns clean (timer traffic would otherwise inflate them).
    """
    cfg = config if config is not None else CmpConfig()
    flits_per_op = 1 + 4  # request + data reply, as injected by the CMP
    user_rate = min(1.0, ch.user_nar / flits_per_op * 2)
    # While a core is *in* the kernel it injects at the per-kernel-
    # instruction density (divided by a nominal kernel CPI); the aggregate
    # per-cycle OS NAR would dilute that by the whole runtime and make
    # kernel batches absurdly slow to drain.
    kernel_cpi = 1.4
    os_rate = min(1.0, max(ch.os_request_rate_active / kernel_cpi, 1e-4))
    reply = PerClassReply(
        {
            0: ProbabilisticReply(cfg.l2_latency, cfg.memory_latency, ch.user_l2_miss),
            1: ProbabilisticReply(cfg.l2_latency, cfg.memory_latency, ch.os_l2_miss),
        },
        default=ProbabilisticReply(cfg.l2_latency, cfg.memory_latency, ch.l2_miss_rate),
    )
    os_model = OSModel(
        static_fraction=ch.static_kernel_fraction,
        timer_rate=ch.timer_rate if timer_rate is None else timer_rate,
        timer_batch=timer_batch,
        os_nar=os_rate,
    )
    return {"nar": max(user_rate, 1e-4), "reply_model": reply, "os_model": os_model}
