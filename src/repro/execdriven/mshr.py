"""Miss-status holding registers (MSHRs).

The MSHR file bounds a core's outstanding misses — the paper's ``m``
parameter is precisely an abstraction of this structure (§II-B1 cites
Kroft '81 and Tuck et al.).  Secondary misses to a line already in flight
*merge* into the existing entry instead of consuming a new one or sending a
duplicate request, as in real lockup-free caches.
"""

from __future__ import annotations

__all__ = ["MSHRFile"]


class MSHRFile:
    """Fixed-capacity miss tracker with secondary-miss merging."""

    __slots__ = ("capacity", "_entries", "merged", "allocations", "full_stalls")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[int, int] = {}  # line -> merged access count
        self.merged = 0
        self.allocations = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line: int) -> bool:
        """True if a miss to ``line`` is already outstanding."""
        return line in self._entries

    def allocate(self, line: int) -> str:
        """Try to track a miss to ``line``.

        Returns ``"merged"`` (already outstanding — no new request needed),
        ``"allocated"`` (new entry — send a request), or ``"full"`` (stall).
        """
        if line in self._entries:
            self._entries[line] += 1
            self.merged += 1
            return "merged"
        if len(self._entries) >= self.capacity:
            self.full_stalls += 1
            return "full"
        self._entries[line] = 1
        self.allocations += 1
        return "allocated"

    def release(self, line: int) -> int:
        """The reply for ``line`` arrived; returns merged access count."""
        count = self._entries.pop(line, None)
        if count is None:
            raise KeyError(f"no outstanding miss for line {line}")
        return count

    def outstanding(self) -> list[int]:
        """Lines currently in flight (oldest first)."""
        return list(self._entries)
