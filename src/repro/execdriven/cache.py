"""Set-associative caches with LRU replacement.

The execution-driven substrate (this package's stand-in for Simics/GEMS)
uses *real* cache structures driven by synthetic address streams, so miss
rates are emergent — they follow from working-set size vs. capacity, not
from a dialed-in probability.  Addresses are line-granular integers.

LRU is implemented with per-set insertion-ordered dicts: a hit re-inserts
the key (moving it to the MRU end), a miss evicts the oldest entry.  Python
dicts preserve insertion order, which makes this both simple and fast.
"""

from __future__ import annotations

__all__ = ["SetAssocCache", "CacheStats"]


class CacheStats:
    """Hit/miss counters for one cache."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class SetAssocCache:
    """A set-associative, LRU, line-granular cache.

    ``lines`` is total capacity in lines; ``assoc`` the ways per set.
    :meth:`access` performs a lookup-and-fill in one step and returns
    whether it hit.
    """

    __slots__ = ("num_sets", "assoc", "_sets", "stats")

    def __init__(self, lines: int, assoc: int):
        if lines < 1 or assoc < 1:
            raise ValueError("lines and assoc must be >= 1")
        if lines % assoc:
            raise ValueError("lines must be a multiple of assoc")
        self.num_sets = lines // assoc
        self.assoc = assoc
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """Look up ``line``; fill on miss (evicting LRU).  True on hit."""
        s = self._sets[line % self.num_sets]
        if line in s:
            # Move to MRU position.
            del s[line]
            s[line] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(s) >= self.assoc:
            del s[next(iter(s))]
        s[line] = None
        return False

    def lookup(self, line: int) -> bool:
        """Look up ``line`` *without* filling on a miss.

        Hits update LRU and stats; misses only update stats.  Use with
        :meth:`fill` for caches whose data arrives later (an L1 in front of
        MSHRs must not pretend to hold a line whose reply is in flight —
        that would defeat secondary-miss merging).
        """
        s = self._sets[line % self.num_sets]
        if line in s:
            del s[line]
            s[line] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line: int) -> None:
        """Insert ``line`` (evicting LRU if needed) without touching stats."""
        s = self._sets[line % self.num_sets]
        if line in s:
            del s[line]
        elif len(s) >= self.assoc:
            del s[next(iter(s))]
        s[line] = None

    def probe(self, line: int) -> bool:
        """Lookup without side effects (no fill, no LRU update, no stats)."""
        return line in self._sets[line % self.num_sets]

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; True if it was."""
        s = self._sets[line % self.num_sets]
        if line in s:
            del s[line]
            return True
        return False

    @property
    def capacity(self) -> int:
        """Total line capacity."""
        return self.num_sets * self.assoc

    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(s) for s in self._sets)
