"""Synthetic surrogate benchmarks (SPLASH-2 / PARSEC stand-ins).

The paper runs ``blackscholes``, ``lu``, ``canneal``, ``fft`` and ``barnes``
under Simics/GEMS.  We cannot run SPARC/Solaris binaries, but the paper
itself consumes each benchmark only through its *observable network
behaviour*: NAR, L2 miss rate, kernel-traffic share, and timer-interrupt
rate (Tables III & IV, Figs. 13/20/21).  Each surrogate is therefore a
phase-structured synthetic instruction stream calibrated to those published
observables, executed on real cache structures — so the execution-driven
comparison exercises the same mechanisms (MSHR limits, L2/DRAM latencies,
bursty kernel activity) with matching operating points.

A benchmark is a sequence of :class:`PhaseSpec`; kernel activity appears as
OS-class phases at the start and end (thread creation / teardown syscalls,
visible as the big peaks in Fig. 21) plus a timer-interrupt handler phase
re-entered every interval (see :class:`repro.execdriven.cmp.CmpSystem`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PhaseSpec",
    "BenchmarkSpec",
    "blackscholes",
    "lu",
    "canneal",
    "fft",
    "barnes",
    "BENCHMARKS",
    "USER",
    "KERNEL",
]

USER = 0
KERNEL = 1


@dataclass(frozen=True)
class PhaseSpec:
    """One execution phase of a synthetic benchmark.

    ``mem_ratio`` — fraction of instructions that are memory accesses;
    ``p_mid``/``p_cold`` — per *memory access*, probability of drawing from
    the L2-resident (L1-missing) and beyond-L2 pools respectively (the rest
    hit the per-core hot set).  ``traffic_class`` tags generated packets as
    user or kernel traffic.
    """

    name: str
    instructions: int
    mem_ratio: float
    p_mid: float
    p_cold: float
    traffic_class: int = USER
    partner_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instructions must be >= 0")
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ValueError("mem_ratio must be in (0, 1]")
        if self.p_mid < 0 or self.p_cold < 0 or self.p_mid + self.p_cold > 1.0:
            raise ValueError("need p_mid, p_cold >= 0, p_mid + p_cold <= 1")


@dataclass(frozen=True)
class BenchmarkSpec:
    """A surrogate benchmark: phases, sharing structure, kernel profile.

    ``timer_handler`` runs on every timer interrupt (its instruction count
    is the handler length).  ``neighbors`` lists each core's logical
    communication partners as offsets (e.g. ``(+1, -1, +4, -4)`` for a 2D
    stencil); together with ``partner_bias`` it shapes the *logical*
    communication matrix of Fig. 13(a).
    """

    name: str
    phases: tuple[PhaseSpec, ...]
    timer_handler: PhaseSpec
    neighbors: tuple[int, ...] = ()
    producer_random: bool = False
    mid_lines: int = 65536
    cold_lines: int = 1 << 22
    #: fraction of L1 misses that block the in-order pipeline; benchmarks
    #: with tight dependence chains (pointer chasing, factorization) block
    #: on nearly every miss, streaming codes (fft) on far fewer.
    blocking_fraction: float = 0.85

    def total_instructions(self) -> int:
        return sum(p.instructions for p in self.phases)

    def scaled(self, factor: float) -> "BenchmarkSpec":
        """Copy with every phase's instruction count scaled by ``factor``.

        Used to shrink runs for CI-speed simulation while preserving rates.
        """
        phases = tuple(
            PhaseSpec(
                p.name,
                max(1, round(p.instructions * factor)),
                p.mem_ratio,
                p.p_mid,
                p.p_cold,
                p.traffic_class,
                p.partner_bias,
            )
            for p in self.phases
        )
        return BenchmarkSpec(
            self.name,
            phases,
            self.timer_handler,
            self.neighbors,
            self.producer_random,
            self.mid_lines,
            self.cold_lines,
            self.blocking_fraction,
        )


def _kernel_bursts(
    main: "PhaseSpec",
    static_fraction: float,
    *,
    os_l2_miss: float = 0.02,
    split: float = 0.55,
    mem_ratio: float = 0.35,
    p_miss: float = 0.30,
) -> tuple["PhaseSpec", "PhaseSpec"]:
    """Spawn/join syscall bursts sized to the Table IV static fraction.

    The burst pair together generates ``static_fraction`` × the main phase's
    request count (the paper's "application dependent additional traffic"),
    split ``split``/(1-``split``) between program start and end.  Burst
    accesses are mostly L2-resident (``os_l2_miss`` sets the cold share),
    matching the small OS L2 miss rates of Table IV.
    """
    main_requests = main.instructions * main.mem_ratio * (main.p_mid + main.p_cold)
    burst_instr = static_fraction * main_requests / (mem_ratio * p_miss)
    p_cold = p_miss * os_l2_miss
    p_mid = p_miss - p_cold
    spawn = PhaseSpec(
        "spawn", max(1, round(burst_instr * split)), mem_ratio, p_mid, p_cold, KERNEL
    )
    join = PhaseSpec(
        "join", max(1, round(burst_instr * (1 - split))), mem_ratio, p_mid, p_cold, KERNEL
    )
    return spawn, join


def _timer_handler(instructions: int = 400, *, os_l2_miss: float = 0.02) -> PhaseSpec:
    """Timer-interrupt handler: a short kernel burst re-run every interval."""
    p_miss = 0.30
    p_cold = p_miss * os_l2_miss
    return PhaseSpec("timer", instructions, 0.35, p_miss - p_cold, p_cold, KERNEL)


# ---------------------------------------------------------------------------
# Calibration notes.  Targets from the paper (Tables III/IV):
#   bench         NAR    L2miss | userNAR osNAR userL2 osL2  extra  Rtimer
#   blackscholes  0.028  0.006  | 0.024   0.266 0.004  0.013 0.58   0.00245
#   lu            0.011  0.183  | 0.021   0.048 0.418  0.005 0.53   0.0080
#   canneal       0.040  0.207  | 0.038   0.126 0.274  0.029 0.57   0.0038
#   fft           0.033  0.629  | 0.033   0.442 0.708  0.021 0.34   0.0056
#   barnes        0.047  0.019  | 0.055   0.063 0.011  0.017 0.67   0.0015
#
# With 1-flit requests and 4-flit data replies (64 B line / 16 B links), a
# miss moves ~5 flits, so the per-cycle miss rate is ≈ NAR / 5 and the per-
# instruction L1 miss probability is  mem_ratio · (p_mid + p_cold)  (hot
# accesses hit).  p_cold / (p_mid + p_cold) sets the L2 miss rate.  Phase
# mixes below back out those numbers at CPI ≈ 1.3.
# ---------------------------------------------------------------------------


def _main_phase(
    name: str,
    instructions: int,
    *,
    nar: float,
    l2_miss: float,
    mem_ratio: float = 0.30,
    partner_bias: float = 0.0,
    flits_per_miss: float = 5.0,
    blocking_fraction: float = 0.7,
    ideal_rtt: float = 14.0,
    memory_latency: float = 300.0,
    l1_latency: float = 2.0,
    cpi_cap: float = 5.0,
) -> PhaseSpec:
    """User phase whose pool mix targets a (NAR, L2 miss) operating point.

    NAR is defined under the ideal network, where the CPI itself depends on
    the miss rate through blocking-load stalls — so the calibration solves
    the small fixed point  miss/instr = NAR/flits · CPI(miss/instr).  For
    memory-dominated points (high L2 miss × blocking loads) the fixed point
    diverges — the target NAR is unreachable on an in-order core — so the
    CPI is capped at ``cpi_cap`` and the achieved NAR lands below target,
    exactly the regime where the paper finds router delay matters least
    (fft, Fig. 14).
    """
    p_miss = 0.02
    stall = blocking_fraction * (ideal_rtt + l2_miss * memory_latency)
    base = 1.0 + mem_ratio * (l1_latency - 1.0)
    for _ in range(25):
        cpi = min(cpi_cap, base + mem_ratio * p_miss * stall)
        p_miss = min(0.95, nar / flits_per_miss * cpi / mem_ratio)
    p_cold = p_miss * l2_miss
    p_mid = p_miss - p_cold
    return PhaseSpec(name, instructions, mem_ratio, p_mid, p_cold, USER, partner_bias)


def blackscholes(instructions: int = 60_000) -> BenchmarkSpec:
    """Embarrassingly parallel option pricing: tiny working set, almost no
    sharing, large kernel share from thread setup/teardown."""
    main = _main_phase(
        "price", instructions, nar=0.024, l2_miss=0.004, blocking_fraction=0.85
    )
    spawn, join = _kernel_bursts(main, 0.58, os_l2_miss=0.013)
    return BenchmarkSpec(
        name="blackscholes",
        phases=(spawn, main, join),
        timer_handler=_timer_handler(os_l2_miss=0.013),
        neighbors=(),
        mid_lines=32768,
        blocking_fraction=0.85,
    )


def lu(instructions: int = 60_000) -> BenchmarkSpec:
    """Blocked LU decomposition: block-partitioned matrix, structured
    neighbour sharing, moderate L2 miss rate, low NAR."""
    main = _main_phase(
        "factor",
        instructions,
        nar=0.021,
        l2_miss=0.418,
        partner_bias=0.5,
        blocking_fraction=1.0,
    )
    spawn, join = _kernel_bursts(main, 0.53, os_l2_miss=0.005)
    return BenchmarkSpec(
        name="lu",
        phases=(spawn, main, join),
        timer_handler=_timer_handler(os_l2_miss=0.005),
        neighbors=(1, -1, 4, -4),
        mid_lines=65536,
        cold_lines=1 << 21,
        blocking_fraction=1.0,
    )


def canneal(instructions: int = 60_000) -> BenchmarkSpec:
    """Simulated annealing over a netlist: random-ownership shared data,
    high NAR, substantial L2 miss rate."""
    main = _main_phase(
        "anneal",
        instructions,
        nar=0.038,
        l2_miss=0.274,
        partner_bias=0.3,
        blocking_fraction=0.95,
    )
    spawn, join = _kernel_bursts(main, 0.57, os_l2_miss=0.029)
    return BenchmarkSpec(
        name="canneal",
        phases=(spawn, main, join),
        timer_handler=_timer_handler(os_l2_miss=0.029),
        neighbors=(),
        producer_random=True,
        cold_lines=1 << 22,
        blocking_fraction=0.95,
    )


def fft(instructions: int = 60_000) -> BenchmarkSpec:
    """All-to-all transpose FFT: streaming access, very high L2 miss rate,
    butterfly-partner sharing."""
    main = _main_phase(
        "butterfly",
        instructions,
        nar=0.033,
        l2_miss=0.708,
        partner_bias=0.6,
        blocking_fraction=0.45,
    )
    spawn, join = _kernel_bursts(main, 0.34, os_l2_miss=0.021)
    return BenchmarkSpec(
        name="fft",
        phases=(spawn, main, join),
        timer_handler=_timer_handler(os_l2_miss=0.021),
        neighbors=(1, 2, 4, 8),
        cold_lines=1 << 22,
        blocking_fraction=0.45,
    )


def barnes(instructions: int = 60_000) -> BenchmarkSpec:
    """Barnes-Hut N-body: tree traversal with high locality (tiny L2 miss
    rate) but the highest NAR of the suite."""
    main = _main_phase(
        "tree", instructions, nar=0.055, l2_miss=0.011, partner_bias=0.2, blocking_fraction=0.9
    )
    spawn, join = _kernel_bursts(main, 0.67, os_l2_miss=0.017)
    return BenchmarkSpec(
        name="barnes",
        phases=(spawn, main, join),
        timer_handler=_timer_handler(os_l2_miss=0.017),
        neighbors=(1, -1),
        mid_lines=49152,
        blocking_fraction=0.9,
    )


#: The paper's benchmark suite, by name.
BENCHMARKS = {
    "blackscholes": blackscholes,
    "lu": lu,
    "canneal": canneal,
    "fft": fft,
    "barnes": barnes,
}
