"""Synthetic address-stream generation.

The execution-driven substrate drives *real* cache structures with synthetic
address streams, so cache behaviour (warm-up, eviction, reuse) is emergent.
A stream is a mixture of three pools, chosen per access:

* **hot**   — a small per-core private set, sized well under the L1, so
  accesses hit the L1 (models registers/stack/inner-loop data),
* **mid**   — a shared pool sized to be L2-resident but far larger than the
  L1 (models the benchmark's L2-resident working set: L1 miss, L2 hit),
* **cold**  — a shared pool far larger than the L2 (streaming/first-touch
  data: L1 miss and L2 miss).

The mixture probabilities are calibrated per benchmark from the paper's
Table III/IV characterization (see :mod:`repro.execdriven.benchmarks`).

Shared lines carry a *producer* — the core that logically owns/wrote the
block under the benchmark's decomposition.  The producer map gives the
"logical communication" matrix of Fig. 13(a); the *home tile* of a line
(address-interleaved) decides where its request packet actually goes, which
is why Fig. 13(b)'s observed traffic looks near-uniform.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AddressSpace", "MixtureStream"]

# Region bases keep the pools disjoint in line-address space.
_HOT_BASE = 1 << 40
_MID_BASE = 2 << 40
_COLD_BASE = 3 << 40


class AddressSpace:
    """Layout of hot/mid/cold pools plus the logical producer map.

    ``producer_blocks`` controls the sharing structure of the shared pools:
    lines are grouped into contiguous blocks dealt round-robin to cores
    (block decomposition, as in ``lu``/``fft``); ``producer_random`` instead
    scatters ownership pseudo-randomly (as in ``canneal``'s random netlist).
    """

    def __init__(
        self,
        num_cores: int,
        *,
        hot_lines: int = 128,
        mid_lines: int = 65536,
        cold_lines: int = 4 << 20,
        producer_block: int = 256,
        producer_random: bool = False,
    ):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.num_cores = num_cores
        self.hot_lines = hot_lines
        self.mid_lines = mid_lines
        self.cold_lines = cold_lines
        self.producer_block = producer_block
        self.producer_random = producer_random

    def hot_line(self, core: int, offset: int) -> int:
        return _HOT_BASE + core * self.hot_lines + (offset % self.hot_lines)

    def mid_line(self, offset: int) -> int:
        return _MID_BASE + (offset % self.mid_lines)

    def cold_line(self, offset: int) -> int:
        return _COLD_BASE + (offset % self.cold_lines)

    def home_tile(self, line: int) -> int:
        """Home L2 tile of a line: low-order address interleaving."""
        return line % self.num_cores

    def producer_of(self, line: int) -> int:
        """Core that logically owns a shared line (Fig. 13a structure)."""
        offset = line & ((1 << 40) - 1)
        block = offset // self.producer_block
        if self.producer_random:
            # Cheap stateless hash scatter.
            return (block * 2654435761 >> 8) % self.num_cores
        return block % self.num_cores


class MixtureStream:
    """Per-core address stream drawing from the hot/mid/cold mixture.

    ``p_mid``/``p_cold`` are the probabilities that a *memory access* falls
    in the mid/cold pool (the remainder is hot).  ``locality`` > 0 biases a
    core's shared draws toward the blocks of a few partner cores, giving
    structured logical communication without changing pool miss behaviour.
    """

    def __init__(
        self,
        space: AddressSpace,
        core: int,
        *,
        p_mid: float,
        p_cold: float,
        rng: np.random.Generator,
        partners: tuple[int, ...] = (),
        partner_bias: float = 0.0,
    ):
        if p_mid < 0 or p_cold < 0 or p_mid + p_cold > 1.0:
            raise ValueError("need p_mid, p_cold >= 0 and p_mid + p_cold <= 1")
        if not 0.0 <= partner_bias <= 1.0:
            raise ValueError("partner_bias must be in [0, 1]")
        self.space = space
        self.core = core
        self.p_mid = p_mid
        self.p_cold = p_cold
        self.rng = rng
        self.partners = partners
        self.partner_bias = partner_bias
        self._hot_ptr = 0

    def _shared_offset(self, pool_lines: int) -> int:
        """Offset into a shared pool, optionally biased toward partners."""
        rng = self.rng
        if self.partners and rng.random() < self.partner_bias:
            owner = self.partners[int(rng.integers(0, len(self.partners)))]
        else:
            owner = self.core
        # Draw inside one of the owner's blocks.
        block_sz = self.space.producer_block
        blocks_total = max(1, pool_lines // block_sz)
        owner_blocks = max(1, blocks_total // self.space.num_cores)
        blk = int(rng.integers(0, owner_blocks))
        if self.space.producer_random:
            # Random ownership: structured targeting is meaningless; draw
            # uniformly over the pool.
            return int(rng.integers(0, pool_lines))
        block_index = blk * self.space.num_cores + owner
        return (block_index * block_sz + int(rng.integers(0, block_sz))) % pool_lines

    def next_line(self) -> int:
        """Line address of the next memory access."""
        r = self.rng.random()
        if r < self.p_cold:
            return self.space.cold_line(self._shared_offset(self.space.cold_lines))
        if r < self.p_cold + self.p_mid:
            return self.space.mid_line(self._shared_offset(self.space.mid_lines))
        self._hot_ptr += 1
        return self.space.hot_line(self.core, int(self.rng.integers(0, self.space.hot_lines)))
