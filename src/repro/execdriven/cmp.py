"""Execution-driven CMP simulation (the Simics/GEMS+Garnet stand-in).

:class:`CmpSystem` assembles the Table II machine: 16 in-order cores with
private L1s and MSHRs, a distributed shared L2 (one home tile per node),
300-cycle DRAM, and the cycle-level 4×4 mesh from :mod:`repro.network` —
or the ideal network, for NAR / ideal-cycle-count characterization.

An L1 miss becomes a 1-flit request packet to the line's home tile; the
tile's L2 bank services it and returns a 4-flit data reply (64 B line over
16 B links).  Timer interrupts (optional) push the benchmark's kernel
handler onto every core at a fixed cycle interval.

The run records everything the paper's Figures 13/14/20/21 and Tables
III/IV need: per-class flit counts and timelines, the actual source →
destination traffic matrix, the logical producer/consumer matrix, L2 miss
rates per class, and interrupt counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from .. import rng as rng_mod
from ..config import CmpConfig
from ..core.engine import SimulationEngine
from ..core.probes import ProbeSet
from ..network.ideal import IdealNetwork
from ..network.links import TimeBuckets
from ..network.factory import build_network
from .address import AddressSpace
from .benchmarks import KERNEL, USER, BenchmarkSpec
from .core import InOrderCore
from .memsys import HomeTile
from .mshr import MSHRFile
from .cache import SetAssocCache

__all__ = ["CmpSystem", "CmpResult", "REQUEST_FLITS", "REPLY_FLITS"]

REQUEST_FLITS = 1
REPLY_FLITS = 4

#: request kinds, indexing the per-kind counters
_KINDS = ("user", "kernel_burst", "kernel_timer")


@dataclass
class CmpResult:
    """Measurements of one execution-driven run."""

    benchmark: str
    cycles: int
    instructions: int
    completed: bool
    total_flits: int
    requests: int
    flits_by_class: dict[int, int]
    requests_by_kind: dict[str, int]
    l2_accesses: int
    l2_misses: int
    l2_miss_by_class: dict[int, float]
    interrupts: int
    timer_interval: int
    mshr_stall_cycles: int
    kernel_instructions: int
    timeline_bucket: int
    timeline: np.ndarray = field(repr=False)  # [class, bucket] flits
    traffic_matrix: np.ndarray = field(repr=False)  # [src, dst] flits
    logical_matrix: np.ndarray = field(repr=False)  # [consumer, producer]
    probe_records: list = field(default_factory=list, repr=False)

    @property
    def nar(self) -> float:
        """Network access rate: flits/cycle/node over the whole run."""
        n = self.traffic_matrix.shape[0]
        return self.total_flits / (self.cycles * n) if self.cycles else 0.0

    def nar_of_class(self, traffic_class: int) -> float:
        """Per-class NAR (Table IV's user/OS columns)."""
        n = self.traffic_matrix.shape[0]
        flits = self.flits_by_class.get(traffic_class, 0)
        return flits / (self.cycles * n) if self.cycles else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def kernel_fraction(self) -> float:
        """Kernel share of total network traffic (Fig. 20's split)."""
        kernel = self.flits_by_class.get(KERNEL, 0)
        return kernel / self.total_flits if self.total_flits else 0.0

    @property
    def static_kernel_fraction(self) -> float:
        """Syscall/trap (runtime-independent) kernel requests relative to
        user requests — the paper's "application dependent additional
        traffic" column of Table IV."""
        user = self.requests_by_kind.get("user", 0)
        burst = self.requests_by_kind.get("kernel_burst", 0)
        return burst / user if user else 0.0

    @property
    def timer_rate(self) -> float:
        """Measured timer interrupts per cycle (Table IV's Rtimer)."""
        return self.interrupts / self.cycles if self.cycles else 0.0

    @property
    def kernel_requests(self) -> int:
        """Network requests issued from kernel phases (bursts + timer)."""
        return self.requests_by_kind.get("kernel_burst", 0) + self.requests_by_kind.get(
            "kernel_timer", 0
        )

    @property
    def os_request_rate_active(self) -> float:
        """Kernel requests per *kernel-active instruction* — the in-handler
        injection density the OS-extended batch model needs (aggregate
        per-cycle OS NAR dilutes it by the whole runtime)."""
        if not self.kernel_instructions:
            return 0.0
        return self.kernel_requests / self.kernel_instructions


class CmpSystem:
    """A 16-core CMP running one surrogate benchmark."""

    def __init__(
        self,
        benchmark: BenchmarkSpec,
        config: Optional[CmpConfig] = None,
        *,
        ideal: bool = False,
        timer_interval: int = 0,
        seed: int = 1,
        timeline_bucket: int = 1000,
        warm_start: bool = True,
        probes: Optional[ProbeSet] = None,
    ):
        self.benchmark = benchmark
        self.config = config if config is not None else CmpConfig()
        self.ideal = ideal
        self.timer_interval = timer_interval
        self.seed = seed
        self.timeline_bucket = timeline_bucket
        cfg = self.config
        n = cfg.num_cores
        self.network: Union[Network, IdealNetwork]
        if ideal:
            self.network = IdealNetwork(n)
        else:
            self.network = build_network(cfg.network)
        self.space = AddressSpace(
            n,
            mid_lines=benchmark.mid_lines,
            cold_lines=benchmark.cold_lines,
            producer_random=benchmark.producer_random,
        )
        self.tiles = [
            HomeTile(
                t,
                l2_lines=cfg.l2_lines_per_tile,
                l2_assoc=cfg.l2_assoc,
                l2_latency=cfg.l2_latency,
                memory_latency=cfg.memory_latency,
                interleave=n,
            )
            for t in range(n)
        ]
        self.logical_matrix = np.zeros((n, n), dtype=np.int64)
        self.traffic_matrix = np.zeros((n, n), dtype=np.int64)
        self._flits_by_class = {USER: 0, KERNEL: 0}
        self._requests_by_kind = dict.fromkeys(_KINDS, 0)
        self._timeline: dict[int, np.ndarray] = {
            USER: np.zeros(256, dtype=np.int64),
            KERNEL: np.zeros(256, dtype=np.int64),
        }
        self.cores = [
            InOrderCore(
                i,
                benchmark,
                self.space,
                l1=SetAssocCache(cfg.l1_lines, cfg.l1_assoc),
                mshrs=MSHRFile(cfg.mshrs),
                send_request=self._send_request,
                rng=rng_mod.make_generator(seed, "core", i, benchmark.name),
                l1_latency=cfg.l1_latency,
                blocking_fraction=benchmark.blocking_fraction,
                logical_matrix=self.logical_matrix,
            )
            for i in range(n)
        ]
        self._pending = TimeBuckets()  # replies waiting on L2/DRAM service
        self._requests = 0
        self._interrupts = 0
        self._next_timer = timer_interval if timer_interval else -1
        self.probes = probes
        if warm_start:
            self._warm_start()

    def _warm_start(self) -> None:
        """Model the paper's warmed-up checkpoints (§IV-A).

        The benchmarks' L2-resident working set (the mid pool) is pre-filled
        into its home banks and each core's hot set into its L1, so short
        simulations measure steady-state miss rates instead of cold-start
        compulsory misses — the paper explicitly warmed and checkpointed its
        workloads for the same reason.
        """
        space = self.space
        for off in range(space.mid_lines):
            line = space.mid_line(off)
            self.tiles[space.home_tile(line)].fill(line)
        for core in self.cores:
            for off in range(space.hot_lines):
                core.l1.fill(space.hot_line(core.core_id, off))

    # -- traffic hooks --------------------------------------------------------
    def _count(self, src: int, dst: int, flits: int, cls: int) -> None:
        self.traffic_matrix[src, dst] += flits
        self._flits_by_class[cls] += flits
        bucket = self.network.now // self.timeline_bucket
        tl = self._timeline[cls]
        if bucket >= tl.size:
            for c in self._timeline:
                self._timeline[c] = np.concatenate(
                    [self._timeline[c], np.zeros(max(256, bucket + 1 - tl.size), dtype=np.int64)]
                )
            tl = self._timeline[cls]
        tl[bucket] += flits

    def _send_request(self, core_id: int, line: int, traffic_class: int) -> None:
        """Injection callback handed to each core."""
        home = self.space.home_tile(line)
        in_interrupt = bool(self.cores[core_id]._interrupt_stack)
        kind = (
            "kernel_timer"
            if in_interrupt
            else ("kernel_burst" if traffic_class == KERNEL else "user")
        )
        self._requests += 1
        self._requests_by_kind[kind] += 1
        pkt = self.network.make_packet(
            core_id,
            home,
            REQUEST_FLITS,
            traffic_class=traffic_class,
            meta=("mem", core_id, line),
        )
        self.network.offer(pkt)
        self._count(core_id, home, REQUEST_FLITS, traffic_class)

    def _send_reply(self, home: int, core_id: int, line: int, traffic_class: int) -> None:
        pkt = self.network.make_packet(
            home,
            core_id,
            REPLY_FLITS,
            is_reply=True,
            traffic_class=traffic_class,
            meta=("rep", core_id, line),
        )
        self.network.offer(pkt)
        self._count(home, core_id, REPLY_FLITS, traffic_class)

    # -- engine strategy hooks ---------------------------------------------------
    # CmpSystem is its own engine injector *and* sink: the cores create
    # traffic (gated by MSHRs and interrupts) and delivered packets feed the
    # memory system and core wakeups back.
    def inject(self, engine: SimulationEngine) -> None:
        net = self.network
        now = net.now
        if now == self._next_timer:
            fired = False
            handler = self.benchmark.timer_handler
            for core in self.cores:
                fired |= core.interrupt(handler)
            if fired:
                self._interrupts += 1
            self._next_timer = now + self.timer_interval
        bucket = self._pending.pop(now)
        if bucket is not None:
            for home, core_id, line, cls in bucket:
                self._send_reply(home, core_id, line, cls)
        for core in self.cores:
            core.step(now)

    def on_delivered(self, pkt, engine: SimulationEngine) -> None:
        net = self.network
        if pkt.meta[0] == "mem":
            _, core_id, line = pkt.meta
            latency, _hit = self.tiles[pkt.dst].service(line, pkt.traffic_class)
            self._pending.schedule(
                net.now + latency, (pkt.dst, core_id, line, pkt.traffic_class)
            )
        else:
            _, core_id, line = pkt.meta
            self.cores[core_id].on_reply(line, net.now)

    def done(self, engine: SimulationEngine) -> bool:
        return (
            not self._pending
            and self.network.is_idle()
            and all(not c.active for c in self.cores)
        )

    def next_event_cycle(self, engine: SimulationEngine) -> Optional[int]:
        """Execution-driven runs opt out of idle-cycle fast-forward.

        Cores retire instructions inside :meth:`inject` every cycle, so a
        cycle with an idle *network* is not a dead cycle — skipping it
        would skip computation.  Returning ``None`` keeps the dense loop.
        """
        return None

    # -- main loop ---------------------------------------------------------------
    def run(self, max_cycles: int = 5_000_000) -> CmpResult:
        """Run the benchmark to completion (or ``max_cycles``)."""
        net = self.network
        cores = self.cores
        tiles = self.tiles
        timer = self.timer_interval
        self._next_timer = timer if timer else -1
        engine = SimulationEngine(net, self, max_cycles=max_cycles, probes=self.probes)
        outcome = engine.run()
        completed = all(c.done for c in cores) and net.is_idle() and not self._pending
        cycles = net.now
        n = self.config.num_cores
        l2_acc = sum(t.l2.stats.accesses for t in tiles)
        l2_miss = sum(t.l2.stats.misses for t in tiles)
        miss_by_class = {}
        for cls in (USER, KERNEL):
            hits = sum(t.class_hits.get(cls, 0) for t in tiles)
            misses = sum(t.class_misses.get(cls, 0) for t in tiles)
            miss_by_class[cls] = misses / (hits + misses) if hits + misses else 0.0
        buckets = cycles // self.timeline_bucket + 1
        timeline = np.zeros((2, buckets), dtype=np.int64)
        for cls in (USER, KERNEL):
            src = self._timeline[cls][:buckets]
            timeline[cls, : src.size] = src
        return CmpResult(
            benchmark=self.benchmark.name,
            cycles=cycles,
            instructions=sum(c.instructions_retired for c in cores),
            completed=completed,
            total_flits=int(self.traffic_matrix.sum()),
            requests=self._requests,
            flits_by_class=dict(self._flits_by_class),
            requests_by_kind=dict(self._requests_by_kind),
            l2_accesses=l2_acc,
            l2_misses=l2_miss,
            l2_miss_by_class=miss_by_class,
            interrupts=self._interrupts,
            timer_interval=timer,
            mshr_stall_cycles=sum(c.mshr_stall_cycles for c in cores),
            kernel_instructions=sum(c.kernel_instructions for c in cores),
            timeline_bucket=self.timeline_bucket,
            timeline=timeline,
            traffic_matrix=self.traffic_matrix,
            logical_matrix=self.logical_matrix,
            probe_records=outcome.probe_records,
        )
