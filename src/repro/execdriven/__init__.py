"""Execution-driven CMP substrate (the Simics/GEMS+Garnet stand-in)."""

from .address import AddressSpace, MixtureStream
from .benchmarks import (
    BENCHMARKS,
    KERNEL,
    USER,
    BenchmarkSpec,
    PhaseSpec,
    barnes,
    blackscholes,
    canneal,
    fft,
    lu,
)
from .cache import CacheStats, SetAssocCache
from .characterize import Characterization, characterize, derive_batch_params
from .cmp import REPLY_FLITS, REQUEST_FLITS, CmpResult, CmpSystem
from .core import InOrderCore
from .kernel import (
    SCALE,
    TIMER_INTERVAL_3GHZ,
    TIMER_INTERVAL_75MHZ,
    timer_interval_cycles,
)
from .memsys import HomeTile
from .mshr import MSHRFile

__all__ = [
    "AddressSpace",
    "MixtureStream",
    "BenchmarkSpec",
    "PhaseSpec",
    "BENCHMARKS",
    "USER",
    "KERNEL",
    "blackscholes",
    "lu",
    "canneal",
    "fft",
    "barnes",
    "SetAssocCache",
    "CacheStats",
    "MSHRFile",
    "InOrderCore",
    "HomeTile",
    "CmpSystem",
    "CmpResult",
    "REQUEST_FLITS",
    "REPLY_FLITS",
    "Characterization",
    "characterize",
    "derive_batch_params",
    "TIMER_INTERVAL_3GHZ",
    "TIMER_INTERVAL_75MHZ",
    "timer_interval_cycles",
    "SCALE",
]
