"""Pareto-front utilities: dominance, front filtering, hypervolume, figures.

The design-space explorer (:mod:`repro.core.explore`) optimizes several
objectives at once — latency, throughput, silicon cost — and its output is
a *front*, not a scalar.  This module holds the pure geometry that front
analysis needs:

* :func:`dominates` / :func:`pareto_front`: Pareto dominance over
  minimization objective vectors (maximized quantities are negated by the
  caller, which keeps one convention everywhere).
* :func:`hypervolume`: the exact dominated hypervolume against a reference
  point, for 2 or 3 objectives — the standard scalar measure of front
  quality (larger is better), used by ``repro explore --check`` to gate a
  committed baseline.
* :func:`pareto_plot`: an ASCII scatter of a front, one marker per series
  (e.g. per topology), built on :func:`repro.analysis.ascii_plot`.

Everything here is deterministic and allocation-light; nothing imports the
simulator, so the module is equally usable on archived JSONL records.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from .ascii_plot import ascii_plot

__all__ = ["dominates", "pareto_front", "hypervolume", "pareto_plot"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if ``a`` Pareto-dominates ``b`` (minimization on every axis).

    ``a`` dominates ``b`` when it is no worse everywhere and strictly
    better somewhere.  Vectors must have equal length; non-finite values
    participate with their usual ordering (``inf`` loses every comparison,
    which is exactly how penalty points should behave).
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def pareto_front(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points, in input order.

    Duplicate objective vectors are all kept (none dominates the other),
    so callers that need one representative per vector dedup first.
    """
    n = len(points)
    keep: list[int] = []
    for i in range(n):
        if not any(dominates(points[j], points[i]) for j in range(n) if j != i):
            keep.append(i)
    return keep


def _hv2(points: list[tuple[float, float]], ref: tuple[float, float]) -> float:
    """Exact 2-objective hypervolume (minimization) by a sorted sweep."""
    clipped = [p for p in points if p[0] < ref[0] and p[1] < ref[1]]
    if not clipped:
        return 0.0
    # Non-dominated staircase: ascending x, strictly descending y.
    clipped.sort()
    area = 0.0
    best_y = ref[1]
    for x, y in clipped:
        if y < best_y:
            area += (ref[0] - x) * (best_y - y)
            best_y = y
    return area


def hypervolume(
    points: Sequence[Sequence[float]], reference: Sequence[float]
) -> float:
    """Exact hypervolume dominated by ``points`` up to ``reference``.

    All objectives are minimized; ``reference`` must be weakly worse than
    every contributing point (points at or beyond it contribute nothing and
    are clipped out, so penalty points with ``inf`` coordinates are simply
    ignored).  Supports 2 or 3 objectives — the explorer's latency /
    −throughput / cost triple — exactly:

    * d=2: sorted staircase sweep, O(n log n);
    * d=3: sweep the third objective's distinct levels, accumulating the
      2-D hypervolume of the points active at each level, O(n² log n).

    Larger is better.  An empty (or fully clipped) front has hypervolume 0.
    """
    ref = tuple(float(r) for r in reference)
    d = len(ref)
    pts = []
    for p in points:
        v = tuple(float(x) for x in p)
        if len(v) != d:
            raise ValueError(f"point {p!r} has {len(v)} objectives, reference has {d}")
        if all(math.isfinite(x) for x in v) and all(x < r for x, r in zip(v, ref)):
            pts.append(v)
    if not pts:
        return 0.0
    if d == 2:
        return _hv2([(p[0], p[1]) for p in pts], (ref[0], ref[1]))
    if d == 3:
        # Sweep z ascending: between consecutive distinct z-levels, the
        # dominated (x, y) region is that of every point with z <= level.
        pts.sort(key=lambda p: p[2])
        levels = sorted({p[2] for p in pts})
        volume = 0.0
        for i, z in enumerate(levels):
            z_next = levels[i + 1] if i + 1 < len(levels) else ref[2]
            active = [(p[0], p[1]) for p in pts if p[2] <= z]
            volume += _hv2(active, (ref[0], ref[1])) * (z_next - z)
        return volume
    raise ValueError(f"hypervolume supports 2 or 3 objectives, got {d}")


def pareto_plot(
    front: Sequence[Mapping],
    *,
    x: str = "cost",
    y: str = "latency",
    series_key: str | None = "topology",
    title: str | None = None,
    width: int = 64,
    height: int = 18,
) -> str:
    """ASCII scatter of a Pareto front, one marker per ``series_key`` value.

    ``front`` is a sequence of mappings (archive/front records); ``x`` and
    ``y`` name numeric fields, ``series_key`` (optional) groups points into
    labelled marker series — by topology, by routing, whatever the study
    varies.  Missing or non-finite fields drop the point silently, matching
    :func:`~repro.analysis.ascii_plot.ascii_plot`.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for rec in front:
        if x not in rec or y not in rec:
            continue
        name = str(rec.get(series_key, "front")) if series_key else "front"
        series.setdefault(name, []).append((float(rec[x]), float(rec[y])))
    if not any(series.values()):
        return (title or "pareto front") + "\n(no plottable points)"
    return ascii_plot(
        {k: series[k] for k in sorted(series)},
        width=width,
        height=height,
        title=title or f"pareto front: {y} vs {x}",
        xlabel=x,
        ylabel=y,
    )
