"""Plain-text tables for benchmark-harness output.

The benchmark harnesses print the same rows the paper's tables/figures
report; this module renders them readably in a terminal and in captured
pytest output (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_records", "format_matrix"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render a list of dict records (e.g. from :func:`repro.core.sweep`)."""
    if not records:
        return title or "(no records)"
    cols = list(columns) if columns is not None else list(records[0])
    rows = [[rec.get(c, "") for c in cols] for rec in records]
    return format_table(cols, rows, precision=precision, title=title)


def format_matrix(
    matrix,
    *,
    normalize: bool = True,
    shades: str = " .:-=+*#%@",
    title: str | None = None,
) -> str:
    """Render a matrix as ASCII art (darker = heavier), Fig. 13 style."""
    import numpy as np

    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError("matrix must be 2-D")
    top = m.max()
    if normalize and top > 0:
        m = m / top
    lines = [] if title is None else [title]
    levels = len(shades) - 1
    for row in m:
        lines.append(
            "".join(shades[min(levels, int(v * levels + 0.5))] * 2 for v in row)
        )
    return "\n".join(lines)
