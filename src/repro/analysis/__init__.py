"""Reporting helpers: text tables, ASCII plots, statistics, persistence."""

from .ascii_plot import ascii_heatmap, ascii_plot, ascii_scatter, probe_heatmap
from .io import (
    append_jsonl,
    load_records,
    read_jsonl,
    records_from_csv,
    records_to_csv,
    save_records,
)
from .stats import (
    ConfidenceInterval,
    LatencyStats,
    batch_means,
    class_breakdown,
    confidence_interval,
    index_of_dispersion,
    latency_stats,
    per_class_latency_stats,
    warmup_cutoff,
)
from .pareto import dominates, hypervolume, pareto_front, pareto_plot
from .tables import format_matrix, format_records, format_table

__all__ = [
    "format_table",
    "format_records",
    "format_matrix",
    "ascii_plot",
    "ascii_scatter",
    "ascii_heatmap",
    "probe_heatmap",
    "LatencyStats",
    "latency_stats",
    "per_class_latency_stats",
    "class_breakdown",
    "ConfidenceInterval",
    "confidence_interval",
    "batch_means",
    "warmup_cutoff",
    "index_of_dispersion",
    "records_to_csv",
    "records_from_csv",
    "save_records",
    "load_records",
    "append_jsonl",
    "read_jsonl",
    "dominates",
    "pareto_front",
    "hypervolume",
    "pareto_plot",
]
