"""Sweep-record persistence (CSV, JSON, and JSON-lines journals).

:func:`repro.core.sweep.sweep` returns flat dict records; these helpers
round-trip them to disk so long sweeps can be analysed offline or resumed.
CSV is for spreadsheets (scalar fields only); JSON preserves types.  The
JSON-lines helpers back the parallel executor's checkpoint journal
(:mod:`repro.core.parallel`): one record per line, appended as each sweep
point completes, with truncated trailing lines tolerated on read so a
killed sweep can always resume.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import pathlib
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "records_to_csv",
    "records_from_csv",
    "save_records",
    "load_records",
    "append_jsonl",
    "read_jsonl",
    "canonical_json",
    "record_digest",
]


def _coerce(value: str) -> Any:
    """Best-effort CSV cell typing: bool, int, float (inf/nan included), str.

    The bool check runs *before* the numeric attempts so no numeric parser
    can ever shadow ``"True"``/``"False"``; ``float`` runs last and accepts
    the ``"nan"``/``"inf"``/``"-inf"`` spellings the CSV writer emits for
    non-finite floats, so those cells round-trip as floats rather than
    strings.
    """
    if value == "":
        return ""
    if value == "True":
        return True
    if value == "False":
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def canonical_json(obj: Any) -> str:
    """A canonical JSON rendering: sorted keys, tight separators, ``str`` fallback.

    Two structurally equal mappings serialize to the same bytes regardless
    of insertion order, which makes the output safe to hash — this is the
    serialization under every content-addressed fingerprint in
    :mod:`repro.core.cache` and the record digests the cache tests compare.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def record_digest(record: Mapping[str, Any] | Sequence[Any]) -> str:
    """sha256 hex digest of a record (or record list) in canonical JSON."""
    return hashlib.sha256(canonical_json(record).encode("utf-8")).hexdigest()


def records_to_csv(records: Sequence[Mapping[str, Any]]) -> str:
    """Serialize records to CSV text (union of keys, insertion-ordered)."""
    if not records:
        return ""
    columns: list[str] = []
    for rec in records:
        for key in rec:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns, restval="")
    writer.writeheader()
    for rec in records:
        writer.writerow({k: rec.get(k, "") for k in columns})
    return buf.getvalue()


def records_from_csv(text: str) -> list[dict[str, Any]]:
    """Parse CSV text back into typed records."""
    reader = csv.DictReader(io.StringIO(text))
    return [{k: _coerce(v) for k, v in row.items()} for row in reader]


def save_records(records: Sequence[Mapping[str, Any]], path) -> None:
    """Write records to ``path``; format chosen by suffix (.csv or .json)."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        path.write_text(records_to_csv(records))
    elif path.suffix == ".json":
        path.write_text(json.dumps(list(records), indent=2, default=str))
    else:
        raise ValueError(f"unsupported suffix {path.suffix!r} (use .csv or .json)")


def load_records(path) -> list[dict[str, Any]]:
    """Read records written by :func:`save_records`."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        return records_from_csv(path.read_text())
    if path.suffix == ".json":
        return json.loads(path.read_text())
    raise ValueError(f"unsupported suffix {path.suffix!r} (use .csv or .json)")


def append_jsonl(record: Mapping[str, Any] | Iterable[Mapping[str, Any]], path) -> None:
    """Append one record (or an iterable of records) to a JSON-lines file.

    Each record is written as a single line and flushed immediately, so a
    sweep killed mid-run loses at most the line being written — which
    :func:`read_jsonl` then skips.
    """
    records = [record] if isinstance(record, Mapping) else list(record)
    with open(path, "a", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(dict(rec), default=str) + "\n")
            fh.flush()


def read_jsonl(path) -> list[dict[str, Any]]:
    """Read a JSON-lines file, dropping blank and corrupt/truncated lines.

    A journal whose final line was cut short by a crash parses cleanly:
    every complete line is returned, the partial tail is ignored.  A
    missing file reads as no records, so resume-from-nothing is a no-op.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    records: list[dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(parsed, dict):
            records.append(parsed)
    return records
