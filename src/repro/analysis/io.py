"""Sweep-record persistence (CSV and JSON).

:func:`repro.core.sweep.sweep` returns flat dict records; these helpers
round-trip them to disk so long sweeps can be analysed offline or resumed.
CSV is for spreadsheets (scalar fields only); JSON preserves types.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Mapping, Sequence

__all__ = ["records_to_csv", "records_from_csv", "save_records", "load_records"]


def _coerce(value: str) -> Any:
    """Best-effort CSV cell typing: int, float, bool, then str."""
    if value == "":
        return ""
    for caster in (int, float):
        try:
            return caster(value)
        except ValueError:
            pass
    if value in ("True", "False"):
        return value == "True"
    return value


def records_to_csv(records: Sequence[Mapping[str, Any]]) -> str:
    """Serialize records to CSV text (union of keys, insertion-ordered)."""
    if not records:
        return ""
    columns: list[str] = []
    for rec in records:
        for key in rec:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns, restval="")
    writer.writeheader()
    for rec in records:
        writer.writerow({k: rec.get(k, "") for k in columns})
    return buf.getvalue()


def records_from_csv(text: str) -> list[dict[str, Any]]:
    """Parse CSV text back into typed records."""
    reader = csv.DictReader(io.StringIO(text))
    return [{k: _coerce(v) for k, v in row.items()} for row in reader]


def save_records(records: Sequence[Mapping[str, Any]], path) -> None:
    """Write records to ``path``; format chosen by suffix (.csv or .json)."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        path.write_text(records_to_csv(records))
    elif path.suffix == ".json":
        path.write_text(json.dumps(list(records), indent=2, default=str))
    else:
        raise ValueError(f"unsupported suffix {path.suffix!r} (use .csv or .json)")


def load_records(path) -> list[dict[str, Any]]:
    """Read records written by :func:`save_records`."""
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        return records_from_csv(path.read_text())
    if path.suffix == ".json":
        return json.loads(path.read_text())
    raise ValueError(f"unsupported suffix {path.suffix!r} (use .csv or .json)")
