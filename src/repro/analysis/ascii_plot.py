"""Terminal line/scatter plots.

Enough plotting to eyeball a latency–load curve or a correlation scatter in
captured benchmark output, with multiple labelled series per axes.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_plot", "ascii_scatter"]

_MARKERS = "ox+*#@%&"


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _finite(points):
    return [
        (x, y)
        for x, y in points
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Plot named series of (x, y) points on shared axes.

    Non-finite points (saturated latencies) are dropped; each series gets a
    marker from a fixed cycle, shown in the legend.
    """
    cleaned = {name: _finite(pts) for name, pts in series.items()}
    all_pts = [p for pts in cleaned.values() for p in pts]
    if not all_pts:
        return (title or "") + "\n(no finite points)"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = _grid(width, height)
    legend = []
    for i, (name, pts) in enumerate(cleaned.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = round((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel}  [{y0:.4g} .. {y1:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{xlabel}  [{x0:.4g} .. {x1:.4g}]    " + "   ".join(legend))
    return "\n".join(lines)


def ascii_scatter(
    pairs: Sequence[tuple[float, float]],
    *,
    width: int = 48,
    height: int = 16,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
    diagonal: bool = True,
) -> str:
    """Scatter plot with an optional y=x reference diagonal (for
    correlation plots like the paper's Figs. 5/8/15/19/22)."""
    pts = _finite(pairs)
    if not pts:
        return (title or "") + "\n(no finite points)"
    vals = [v for p in pts for v in p]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        hi = lo + 1.0
    grid = _grid(width, height)
    if diagonal:
        for i in range(min(width, height * 3)):
            x = lo + (hi - lo) * i / (width - 1)
            col = round((x - lo) / (hi - lo) * (width - 1))
            row = height - 1 - round((x - lo) / (hi - lo) * (height - 1))
            if 0 <= row < height and 0 <= col < width:
                grid[row][col] = "."
    for x, y in pts:
        col = round((x - lo) / (hi - lo) * (width - 1))
        row = height - 1 - round((y - lo) / (hi - lo) * (height - 1))
        grid[row][col] = "o"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel}  [{lo:.4g} .. {hi:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{xlabel}  [{lo:.4g} .. {hi:.4g}]")
    return "\n".join(lines)
