"""Terminal line/scatter plots and heatmaps.

Enough plotting to eyeball a latency–load curve, a correlation scatter, or
a probe-record utilization heatmap in captured benchmark output, with
multiple labelled series per axes.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_plot", "ascii_scatter", "ascii_heatmap", "probe_heatmap"]

_MARKERS = "ox+*#@%&"

#: intensity ramp for heatmaps, dark -> bright
_SHADES = " .:-=+*#%@"


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _finite(points):
    return [
        (x, y)
        for x, y in points
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Plot named series of (x, y) points on shared axes.

    Non-finite points (saturated latencies) are dropped; each series gets a
    marker from a fixed cycle, shown in the legend.
    """
    cleaned = {name: _finite(pts) for name, pts in series.items()}
    all_pts = [p for pts in cleaned.values() for p in pts]
    if not all_pts:
        return (title or "") + "\n(no finite points)"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = _grid(width, height)
    legend = []
    for i, (name, pts) in enumerate(cleaned.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = round((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel}  [{y0:.4g} .. {y1:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{xlabel}  [{x0:.4g} .. {x1:.4g}]    " + "   ".join(legend))
    return "\n".join(lines)


def ascii_scatter(
    pairs: Sequence[tuple[float, float]],
    *,
    width: int = 48,
    height: int = 16,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
    diagonal: bool = True,
) -> str:
    """Scatter plot with an optional y=x reference diagonal (for
    correlation plots like the paper's Figs. 5/8/15/19/22)."""
    pts = _finite(pairs)
    if not pts:
        return (title or "") + "\n(no finite points)"
    vals = [v for p in pts for v in p]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        hi = lo + 1.0
    grid = _grid(width, height)
    if diagonal:
        for i in range(min(width, height * 3)):
            x = lo + (hi - lo) * i / (width - 1)
            col = round((x - lo) / (hi - lo) * (width - 1))
            row = height - 1 - round((x - lo) / (hi - lo) * (height - 1))
            if 0 <= row < height and 0 <= col < width:
                grid[row][col] = "."
    for x, y in pts:
        col = round((x - lo) / (hi - lo) * (width - 1))
        row = height - 1 - round((y - lo) / (hi - lo) * (height - 1))
        grid[row][col] = "o"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel}  [{lo:.4g} .. {hi:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{xlabel}  [{lo:.4g} .. {hi:.4g}]")
    return "\n".join(lines)


def ascii_heatmap(
    rows: Sequence[Sequence[float]],
    *,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
    vmax: float | None = None,
) -> str:
    """Render a matrix as a character-shaded heatmap (one cell per value).

    Rows render top to bottom; intensity is linear from 0 (space) to
    ``vmax`` (defaults to the matrix maximum).  Non-finite cells render as
    ``?``.  Suited to small matrices: probe windows × nodes, traffic
    matrices, node runtime maps.
    """
    data = [[float(v) for v in row] for row in rows]
    if not data or not any(len(r) for r in data):
        return (title or "") + "\n(no data)"
    finite = [v for row in data for v in row if math.isfinite(v)]
    top = vmax if vmax is not None else (max(finite) if finite else 0.0)
    lines = []
    if title:
        lines.append(title)
    span = len(_SHADES) - 1
    for row in data:
        cells = []
        for v in row:
            if not math.isfinite(v):
                cells.append("?")
            elif top <= 0:
                cells.append(_SHADES[0])
            else:
                frac = min(max(v / top, 0.0), 1.0)
                cells.append(_SHADES[round(frac * span)])
        lines.append("|" + "".join(cells) + "|")
    width = max(len(r) for r in data)
    lines.append("+" + "-" * width + "+")
    lines.append(f"{ylabel} (rows) vs {xlabel} (cols), max={top:.4g}")
    return "\n".join(lines)


def probe_heatmap(
    records: Sequence[Mapping],
    *,
    field: str = "per_node_ejected",
    title: str | None = None,
    vmax: float | None = None,
) -> str:
    """Heatmap of a per-node probe field over time: windows × nodes.

    ``records`` are :class:`repro.core.probes.ProbeSet` windowed records
    (live, or round-tripped through ``analysis.io.read_jsonl``); ``field``
    names any list-valued record entry (``per_node_ejected``,
    ``per_node_vc_peak``, ``per_channel``, ...).  Each row is one window,
    so time runs top to bottom.
    """
    rows = [rec[field] for rec in records if field in rec]
    if not rows:
        return (title or "") + f"\n(no {field!r} in records)"
    label = title if title is not None else f"{field} per window"
    return ascii_heatmap(rows, title=label, xlabel="node", ylabel="window", vmax=vmax)
