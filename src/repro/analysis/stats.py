"""Simulation output statistics.

Steady-state simulation results are estimates, and the paper's methodology
comparisons hinge on small relative differences — so the harness needs the
standard output-analysis tools:

* :class:`LatencyStats` / :func:`latency_stats` — summary statistics of a
  latency (or runtime) sample; every path is empty-input safe (NaN fields,
  never an exception — a saturated run or an idle traffic class must not
  crash the analysis);
* :func:`per_class_latency_stats` / :func:`class_breakdown` — the same
  summaries split by traffic class;
* :func:`confidence_interval` — mean ± half-width at a given confidence,
  using a normal quantile (sample sizes here are in the thousands);
  degenerate samples (empty, all-NaN, a single value) degrade to NaN
  fields under the same never-raise contract — only parameter errors
  raise;
* :func:`batch_means` — the batch-means method for correlated series
  (packet latencies from one run are *not* i.i.d.: congestion correlates
  neighbours, so the naive CI is too tight); short/degenerate samples
  degrade to NaN the same way;
* :func:`warmup_cutoff` — MSER-style truncation point selection for
  deciding how much of a run to discard as transient;
* :func:`index_of_dispersion` — windowed variance/mean ratio, the standard
  burstiness measure for arrival processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencyStats",
    "latency_stats",
    "per_class_latency_stats",
    "class_breakdown",
    "ConfidenceInterval",
    "confidence_interval",
    "batch_means",
    "warmup_cutoff",
    "index_of_dispersion",
]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency (or runtime) sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "LatencyStats":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan)
        # Sample standard deviation (ddof=1): these are finite samples of
        # the latency population, and the population formula (ddof=0)
        # systematically under-reports spread on small windows.  A single
        # sample has no defined spread — report NaN, not 0.
        std = float(values.std(ddof=1)) if values.size > 1 else float("nan")
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            std=std,
            minimum=float(values.min()),
            maximum=float(values.max()),
            p50=float(np.percentile(values, 50)),
            p95=float(np.percentile(values, 95)),
            p99=float(np.percentile(values, 99)),
        )


def latency_stats(packets) -> LatencyStats:
    """Latency statistics over delivered packets (NaN stats when empty)."""
    return LatencyStats.from_values(
        np.array([p.latency for p in packets], dtype=np.float64)
    )


def per_class_latency_stats(
    values, class_ids, num_classes: int
) -> list[LatencyStats]:
    """Per-class latency statistics from parallel value/class-id arrays.

    Classes that measured no packets get NaN stats (``count == 0``), never
    an exception — a starved low-share class is a result, not an error.
    """
    v = np.asarray(values, dtype=np.float64)
    cid = np.asarray(class_ids, dtype=np.int64)
    if v.shape != cid.shape:
        raise ValueError(
            f"values/class_ids length mismatch: {v.shape} vs {cid.shape}"
        )
    return [LatencyStats.from_values(v[cid == c]) for c in range(num_classes)]


def class_breakdown(packets, num_classes: int) -> list[LatencyStats]:
    """Per-class latency statistics over delivered packets.

    Class ids beyond the registry are clamped to the last class — the same
    rule both backends apply during arbitration.
    """
    lat = np.array([p.latency for p in packets], dtype=np.float64)
    last = num_classes - 1
    cid = np.array(
        [min(p.traffic_class, last) for p in packets], dtype=np.int64
    )
    return per_class_latency_stats(lat, cid, num_classes)

# two-sided normal quantiles for common confidence levels
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ConfidenceInterval:
    """mean ± half_width at ``confidence``."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """half_width / |mean| (inf for a zero mean)."""
        if self.mean == 0:
            return float("inf")
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True if the two intervals intersect (difference not significant)."""
        return self.low <= other.high and other.low <= self.high


def _z_for(confidence: float) -> float:
    try:
        return _Z[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        ) from None


def confidence_interval(
    values, *, confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation CI of the mean of (assumed independent) values.

    Degenerate samples degrade, never raise: fewer than 2 finite values
    (e.g. the all-NaN latency column of a saturated sweep point) yield a
    NaN ``half_width`` — and a NaN ``mean`` too when there are none — so
    summary pipelines keep flowing.  Only parameter errors (an unsupported
    ``confidence``) raise.
    """
    z = _z_for(confidence)
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    if v.size < 2:
        mean = float(v.mean()) if v.size else float("nan")
        return ConfidenceInterval(mean, float("nan"), confidence, int(v.size))
    half = z * v.std(ddof=1) / math.sqrt(v.size)
    return ConfidenceInterval(float(v.mean()), float(half), confidence, int(v.size))


def batch_means(
    values, *, num_batches: int = 20, confidence: float = 0.95
) -> ConfidenceInterval:
    """Batch-means CI for a *correlated* series (e.g. per-packet latencies).

    The series is cut into ``num_batches`` contiguous batches; batch
    averages are approximately independent when batches are much longer
    than the correlation length, so a CI over them is honest where the
    naive per-sample CI is not.

    Short samples degrade the same way :func:`confidence_interval` does:
    fewer than ``2 * num_batches`` finite values (batches too short to be
    meaningful) yield a NaN ``half_width`` and the plain sample mean (NaN
    when there are no values at all).  ``num_batches < 2`` and an
    unsupported ``confidence`` are parameter errors and still raise.
    """
    if num_batches < 2:
        raise ValueError("need at least 2 batches")
    z = _z_for(confidence)
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    if v.size < 2 * num_batches:
        mean = float(v.mean()) if v.size else float("nan")
        return ConfidenceInterval(mean, float("nan"), confidence, int(v.size))
    usable = v.size - v.size % num_batches
    means = v[:usable].reshape(num_batches, -1).mean(axis=1)
    half = z * means.std(ddof=1) / math.sqrt(num_batches)
    return ConfidenceInterval(float(means.mean()), float(half), confidence, int(v.size))


def warmup_cutoff(series, *, max_fraction: float = 0.5) -> int:
    """MSER-style truncation index for a time-ordered series.

    Returns the prefix length to discard: the cut point that minimizes the
    standard error of the remaining data — the classic MSER heuristic for
    initialization bias.  The cut is capped at ``max_fraction`` of the
    series so a pathological tail cannot eat the whole run.
    """
    v = np.asarray(series, dtype=np.float64)
    v = v[np.isfinite(v)]
    n = v.size
    if n < 8:
        return 0
    limit = int(n * max_fraction)
    stride = max(1, limit // 64)

    def _best(candidates, best_cut: int, best_score: float) -> tuple[int, float]:
        for cut in candidates:
            rest = v[cut:]
            score = rest.var() / rest.size
            if score < best_score:
                best_score = score
                best_cut = cut
        return best_cut, best_score

    # Coarse pass at ``stride`` granularity, then a fine scan of every cut
    # within one stride of the coarse winner — the coarse grid alone can
    # miss the true minimum by up to stride-1 samples, which on long series
    # mislocates the transient/steady-state boundary by hundreds of points.
    best_cut, best_score = _best(range(0, limit + 1, stride), 0, float("inf"))
    if stride > 1:
        lo = max(0, best_cut - stride + 1)
        hi = min(limit, best_cut + stride - 1)
        best_cut, best_score = _best(range(lo, hi + 1), best_cut, best_score)
    return best_cut


def index_of_dispersion(counts, *, window: int = 50) -> float:
    """Variance/mean ratio of windowed sums of an arrival-count series.

    1.0 for Poisson/Bernoulli-like arrivals; > 1 for bursty processes
    (grows with burst length).
    """
    c = np.asarray(counts, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    if c.size < 2 * window:
        raise ValueError(f"need >= {2 * window} samples")
    usable = c.size - c.size % window
    sums = c[:usable].reshape(-1, window).sum(axis=1)
    mean = sums.mean()
    if mean == 0:
        return 0.0
    # Sample variance (ddof=1): the windowed sums are a finite sample of
    # the arrival process, and the population formula (ddof=0) biases the
    # ratio low — a seeded Poisson stream would read as sub-Poisson
    # (IoD < 1) purely from the estimator, worst with few windows.
    return float(sums.var(ddof=1) / mean)
