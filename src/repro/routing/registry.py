"""Routing registry: build an algorithm from a :class:`NetworkConfig`."""

from __future__ import annotations

from .. import rng as rng_mod
from ..config import NetworkConfig
from ..topology.base import Topology
from .base import RoutingAlgorithm
from .dor import DOR
from .minimal_adaptive import MinimalAdaptive
from .romm import ROMM
from .valiant import Valiant

__all__ = ["build_routing"]


def build_routing(config: NetworkConfig, topology: Topology) -> RoutingAlgorithm:
    """Construct the routing algorithm named by ``config.routing``.

    Randomized algorithms derive their RNG stream from ``config.seed`` so a
    configuration reproduces bit-identically.
    """
    if config.routing == "dor":
        return DOR(topology, config.num_vcs, dateline_mode=config.dateline)
    if config.routing == "val":
        return Valiant(topology, config.num_vcs, seed=rng_mod.spawn(config.seed, "routing"))
    if config.routing == "romm":
        return ROMM(topology, config.num_vcs, seed=rng_mod.spawn(config.seed, "routing"))
    if config.routing == "ma":
        return MinimalAdaptive(topology, config.num_vcs)
    raise ValueError(f"unknown routing {config.routing!r}")
