"""Minimal adaptive routing (MA) with Duato-style escape channels.

At each hop the packet may move in *any* productive dimension (one that
reduces its distance), choosing adaptively; the router's VC allocator picks
the candidate with the most downstream credit, so the algorithm load-balances
around congestion while staying minimal.  Deadlock freedom follows Duato's
protocol: VC 0 is an escape channel restricted to dimension-ordered routing
(acyclic on the mesh), and a blocked packet can always fall back to it.
"""

from __future__ import annotations

from ..network.packet import Packet
from ..topology.mesh import KAryNCube
from .base import RouteCandidate, RoutingAlgorithm
from .dor import dor_port

__all__ = ["MinimalAdaptive"]


class MinimalAdaptive(RoutingAlgorithm):
    """Minimal adaptive routing on a mesh (Duato escape protocol)."""

    name = "ma"

    def __init__(self, topology: KAryNCube, num_vcs: int):
        if not isinstance(topology, KAryNCube) or topology.wrap:
            raise TypeError("MA is implemented for meshes (as in the paper)")
        if num_vcs < 2:
            raise ValueError("MA needs >= 2 VCs (escape + adaptive)")
        super().__init__(topology, num_vcs)
        self._adaptive_vcs = tuple(range(1, num_vcs))
        self._escape_vcs = (0,)

    def route(self, node: int, packet: Packet) -> list[RouteCandidate]:
        topo: KAryNCube = self.topology  # type: ignore[assignment]
        target = packet.dst
        if node == target:
            return self._eject()
        candidates: list[RouteCandidate] = []
        for dim in range(topo.n):
            direction = topo.direction(node, target, dim)
            if direction == 0:
                continue
            port = 2 * dim if direction > 0 else 2 * dim + 1
            candidates.append(RouteCandidate(port, self._adaptive_vcs))
        escape_port = dor_port(topo, node, target)
        candidates.append(RouteCandidate(escape_port, self._escape_vcs, escape=True))
        return candidates
