"""Routing algorithm interface.

A routing algorithm answers one question per hop, for the head flit of a
packet sitting at a router: *which output ports may this packet take, and
which virtual channels may it occupy at the downstream router?*

The answer is an ordered list of :class:`RouteCandidate`.  Deterministic
algorithms (DOR) return exactly one candidate; oblivious multi-phase
algorithms (VAL, ROMM) return one candidate per hop but mutate the packet's
``phase`` as it passes its intermediate node; adaptive algorithms (MA) return
several candidates and let the router's VC allocator pick the least congested
one (escape candidates are marked so the allocator only falls back to them).

VC partitioning: ``vc_range(cls, num_classes, num_vcs)`` splits the VC space
into contiguous classes — the dateline discipline and two-phase algorithms
need 2 classes; Duato's MA reserves VC 0 as the escape class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..network.packet import Packet
from ..topology.base import Topology

__all__ = ["RouteCandidate", "RoutingAlgorithm", "vc_range"]


def vc_range(cls: int, num_classes: int, num_vcs: int) -> tuple[int, ...]:
    """VCs belonging to class ``cls`` of ``num_classes`` over ``num_vcs`` VCs.

    Classes partition the VC space contiguously; every class is non-empty
    provided ``num_vcs >= num_classes``.
    """
    if num_vcs < num_classes:
        raise ValueError(f"need >= {num_classes} VCs, have {num_vcs}")
    lo = cls * num_vcs // num_classes
    hi = (cls + 1) * num_vcs // num_classes
    return tuple(range(lo, hi))


class RouteCandidate:
    """One admissible (output port, allowed downstream VCs) choice."""

    __slots__ = ("out_port", "vcs", "escape")

    def __init__(self, out_port: int, vcs: Sequence[int], escape: bool = False):
        self.out_port = out_port
        self.vcs = tuple(vcs)
        self.escape = escape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = " escape" if self.escape else ""
        return f"RouteCandidate(port={self.out_port}, vcs={self.vcs}{kind})"


class RoutingAlgorithm(ABC):
    """Base class; subclasses are stateless apart from their RNG."""

    name: str = "abstract"

    def __init__(self, topology: Topology, num_vcs: int):
        self.topology = topology
        self.num_vcs = num_vcs
        self.all_vcs = tuple(range(num_vcs))
        # Candidate lists are immutable, so hot routing functions reuse
        # cached instances instead of allocating per hop.
        self._eject_candidates = [
            RouteCandidate(topology.local_port, self.all_vcs)
        ]

    def on_inject(self, packet: Packet) -> None:
        """Prepare per-packet routing state at injection (e.g. pick an
        intermediate node).  Default: nothing."""

    @abstractmethod
    def route(self, node: int, packet: Packet) -> list[RouteCandidate]:
        """Candidates for the next hop of ``packet`` at ``node``.

        Called exactly once per (packet, hop), when the head flit reaches the
        front of its input VC; implementations may update the packet's
        routing state (phase advance, dateline class).  A candidate whose
        ``out_port`` equals the topology's local port means *eject here*.
        """

    # -- shared helpers -----------------------------------------------------
    def _eject(self) -> list[RouteCandidate]:
        return self._eject_candidates
