"""Routing algorithms: DOR, Valiant, minimal adaptive, ROMM."""

from .base import RouteCandidate, RoutingAlgorithm, vc_range
from .dor import DOR, dor_port
from .fault import FaultAwareRouting
from .minimal_adaptive import MinimalAdaptive
from .registry import build_routing
from .romm import ROMM
from .valiant import Valiant

__all__ = [
    "RouteCandidate",
    "RoutingAlgorithm",
    "vc_range",
    "DOR",
    "dor_port",
    "FaultAwareRouting",
    "Valiant",
    "ROMM",
    "MinimalAdaptive",
    "build_routing",
]
