"""Dimension-ordered routing (DOR), the paper's baseline.

On a mesh, DOR is deadlock-free in any VC; on rings and tori the wraparound
links close a channel-dependency cycle, broken with Dally's *dateline*
scheme.  We use the standard balanced variant: within each dimension, a leg
that will traverse the wraparound edge rides VC class 0 until the crossing
and class 1 afterwards, while a leg that never wraps rides class 1.  The
class is a pure function of (position after the hop, target), so no
per-packet state is needed.

Deadlock freedom: class-0 channel dependencies never include the wrap edge
(the crossing hop allocates class 1 downstream), so the class-0 chain is
open; class-1 dependencies never *reach* the wrap edge (post-crossing and
non-wrapping packets have no further wrap to take), so the class-1 chain is
open too, and there are no class-1 → class-0 edges to weave a mixed cycle.
"""

from __future__ import annotations

from ..network.packet import Packet
from ..topology.mesh import KAryNCube
from .base import RouteCandidate, RoutingAlgorithm, vc_range

__all__ = ["DOR", "dor_port"]


def dor_port(topo: KAryNCube, node: int, target: int) -> int:
    """The DOR output port from ``node`` toward ``target`` (-1 if arrived).

    Shared by plain DOR and the two-phase overlays (VAL, ROMM), which route
    each phase dimension-ordered toward the phase's target.
    """
    for dim in range(topo.n):
        direction = topo.direction(node, target, dim)
        if direction > 0:
            return 2 * dim
        if direction < 0:
            return 2 * dim + 1
    return -1


class DOR(RoutingAlgorithm):
    """Deterministic dimension-ordered (e-cube) routing on k-ary n-cubes.

    ``dateline_mode`` selects the VC discipline on wrapped topologies:

    * ``"balanced"`` (default) — non-wrapping legs ride class 1, wrapping
      legs class 0 → 1 at the crossing; both classes carry traffic.
    * ``"strict"`` — the textbook scheme: every packet starts in class 0
      and only moves to class 1 after crossing the wrap edge, leaving
      class 1 nearly idle for typical traffic.  Kept for the ablation
      study (``benchmarks/test_ablation_dateline.py``), which shows how
      much torus/ring throughput the naive discipline costs.
    """

    name = "dor"

    def __init__(
        self, topology: KAryNCube, num_vcs: int, *, dateline_mode: str = "balanced"
    ):
        if not isinstance(topology, KAryNCube):
            raise TypeError("DOR requires a k-ary n-cube topology")
        if dateline_mode not in ("balanced", "strict"):
            raise ValueError(f"unknown dateline_mode {dateline_mode!r}")
        super().__init__(topology, num_vcs)
        self._wrap = topology.wrap
        self.dateline_mode = dateline_mode
        if self._wrap and num_vcs < 2:
            raise ValueError("DOR on a wrapped topology needs >= 2 VCs (dateline)")
        self._classes = (
            (vc_range(0, 2, num_vcs), vc_range(1, 2, num_vcs)) if self._wrap else None
        )
        # Pre-built candidate lists (immutable, shared across hops): one per
        # output port on the mesh, one per (port, class) on wrapped
        # topologies.
        ports = 2 * topology.n
        if self._wrap:
            self._cands = [
                [
                    [RouteCandidate(port, self._classes[cls])]
                    for cls in (0, 1)
                ]
                for port in range(ports)
            ]
        else:
            self._cands = [
                [RouteCandidate(port, self.all_vcs)] for port in range(ports)
            ]

    def route(self, node: int, packet: Packet) -> list[RouteCandidate]:
        topo: KAryNCube = self.topology  # type: ignore[assignment]
        target = packet.current_target()
        if node == target:
            if packet.phase == 0 and packet.intermediate is not None:
                # Reached the intermediate of a two-phase overlay (VAL/ROMM
                # reuse DOR per phase) — not used by plain DOR itself.
                packet.phase = 1
                target = packet.dst
                if node == target:
                    return self._eject()
            else:
                return self._eject()
        for dim in range(topo.n):
            direction = topo.direction(node, target, dim)
            if direction == 0:
                continue
            port = 2 * dim if direction > 0 else 2 * dim + 1
            if not self._wrap:
                return self._cands[port]
            # Dateline discipline: the class is decided by the position the
            # hop lands on — class 0 while the remaining leg still has the
            # wrap edge ahead, class 1 from the crossing onwards (and for
            # legs that never wrap).
            k = topo.k
            a = topo.coords(node)[dim]
            b = topo.coords(target)[dim]
            if direction > 0:
                landing = 0 if a == k - 1 else a + 1
                wraps_after = b < landing
            else:
                landing = k - 1 if a == 0 else a - 1
                wraps_after = b > landing
            if self.dateline_mode == "balanced":
                cls = 0 if wraps_after else 1
                return self._cands[port][cls]
            else:
                # strict: class 1 only after an actual crossing.  Whether
                # this packet's leg wraps at all is recomputed from its
                # source coordinate; non-wrapping legs stay in class 0.
                s = topo.coords(packet.src)[dim]
                if direction > 0:
                    leg_wraps = b < s
                    crossed = leg_wraps and landing <= b
                else:
                    leg_wraps = b > s
                    crossed = leg_wraps and landing >= b
                cls = 1 if crossed else 0
            return self._cands[port][cls]
        return self._eject()  # pragma: no cover - target==node handled above
