"""ROMM: Randomized, Oblivious, Multi-phase Minimal routing (Nesson &
Johnsson, SPAA '95).

Like Valiant, ROMM routes through a random intermediate node in two
dimension-ordered phases — but the intermediate is drawn from the *minimal
quadrant* (the sub-array spanned by source and destination), so every route
stays minimal while still spreading load across the quadrant's path
diversity.  Phases map to VC classes exactly as in VAL.
"""

from __future__ import annotations

import numpy as np

from .. import rng as rng_mod
from ..network.packet import Packet
from ..topology.mesh import KAryNCube
from .base import RouteCandidate, RoutingAlgorithm, vc_range
from .dor import dor_port

__all__ = ["ROMM"]


class ROMM(RoutingAlgorithm):
    """Two-phase randomized minimal routing on a mesh."""

    name = "romm"

    def __init__(self, topology: KAryNCube, num_vcs: int, *, seed: int = 1):
        if not isinstance(topology, KAryNCube) or topology.wrap:
            raise TypeError("ROMM is implemented for meshes (as in the paper)")
        if num_vcs < 2:
            raise ValueError("ROMM needs >= 2 VCs (one class per phase)")
        super().__init__(topology, num_vcs)
        self._phase_vcs = (vc_range(0, 2, num_vcs), vc_range(1, 2, num_vcs))
        # Immutable candidate lists cached per (output port, phase).
        self._cands = [
            [[RouteCandidate(port, self._phase_vcs[ph])] for ph in (0, 1)]
            for port in range(2 * topology.n)
        ]
        self._rng: np.random.Generator = rng_mod.make_generator(seed, "romm")

    def pick_intermediate(self, packet: Packet) -> int:
        """Uniform node within the minimal quadrant of (src, dst)."""
        topo: KAryNCube = self.topology  # type: ignore[assignment]
        src_c = topo.coords(packet.src)
        dst_c = topo.coords(packet.dst)
        inter = []
        for dim in range(topo.n):
            lo, hi = sorted((src_c[dim], dst_c[dim]))
            inter.append(int(self._rng.integers(lo, hi + 1)))
        return topo.node_at(inter)

    def on_inject(self, packet: Packet) -> None:
        packet.intermediate = self.pick_intermediate(packet)
        packet.phase = 0

    def route(self, node: int, packet: Packet) -> list[RouteCandidate]:
        topo: KAryNCube = self.topology  # type: ignore[assignment]
        if packet.phase == 0 and node == packet.intermediate:
            packet.phase = 1
        target = packet.dst if packet.phase == 1 else packet.intermediate
        assert target is not None
        port = dor_port(topo, node, target)
        if port < 0:
            if packet.phase == 0:
                packet.phase = 1
                port = dor_port(topo, node, packet.dst)
                if port < 0:
                    return self._eject()
            else:
                return self._eject()
        return self._cands[port][packet.phase]
