"""Valiant's randomized routing (VAL).

Every packet is routed dimension-ordered to a uniformly random intermediate
node (phase 0), then dimension-ordered to its destination (phase 1).  Each
phase occupies its own VC class, so the combined route is deadlock-free on a
mesh.  VAL trades zero-load latency (up to 2× hops) for load balance on
adversarial permutations — except, as the paper's Fig. 12 shows, for
corner-to-corner transpose pairs where even the randomized route degenerates
to minimal, which is why worst-case (closed-loop) measurements see almost no
benefit from VAL at low load.
"""

from __future__ import annotations

import numpy as np

from .. import rng as rng_mod
from ..network.packet import Packet
from ..topology.mesh import KAryNCube
from .base import RouteCandidate, RoutingAlgorithm, vc_range
from .dor import dor_port

__all__ = ["Valiant"]


class Valiant(RoutingAlgorithm):
    """Two-phase randomized oblivious routing on a mesh."""

    name = "val"

    def __init__(self, topology: KAryNCube, num_vcs: int, *, seed: int = 1):
        if not isinstance(topology, KAryNCube) or topology.wrap:
            raise TypeError("Valiant is implemented for meshes (as in the paper)")
        if num_vcs < 2:
            raise ValueError("Valiant needs >= 2 VCs (one class per phase)")
        super().__init__(topology, num_vcs)
        self._phase_vcs = (vc_range(0, 2, num_vcs), vc_range(1, 2, num_vcs))
        # Immutable candidate lists cached per (output port, phase).
        self._cands = [
            [[RouteCandidate(port, self._phase_vcs[ph])] for ph in (0, 1)]
            for port in range(2 * topology.n)
        ]
        self._rng: np.random.Generator = rng_mod.make_generator(seed, "valiant")

    def pick_intermediate(self, packet: Packet) -> int:
        """Uniformly random intermediate over all nodes (may equal src/dst)."""
        return int(self._rng.integers(0, self.topology.num_nodes))

    def on_inject(self, packet: Packet) -> None:
        packet.intermediate = self.pick_intermediate(packet)
        packet.phase = 0

    def route(self, node: int, packet: Packet) -> list[RouteCandidate]:
        topo: KAryNCube = self.topology  # type: ignore[assignment]
        if packet.phase == 0 and node == packet.intermediate:
            packet.phase = 1
        target = packet.dst if packet.phase == 1 else packet.intermediate
        assert target is not None
        port = dor_port(topo, node, target)
        if port < 0:
            if packet.phase == 0:
                # Intermediate reached exactly at the destination column/row
                # start; advance and retry toward the true destination.
                packet.phase = 1
                port = dor_port(topo, node, packet.dst)
                if port < 0:
                    return self._eject()
            else:
                return self._eject()
        return self._cands[port][packet.phase]
