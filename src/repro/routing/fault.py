"""Fault-aware routing fallback.

:class:`FaultAwareRouting` wraps any base routing algorithm when the network
carries an active :class:`~repro.core.resilience.FaultPlan`.  Per hop it:

1. asks the base algorithm for its candidates and keeps those that leave
   through a healthy channel *and* land strictly closer to the target in
   the fault-aware metric — BFS hop distance over the non-faulted graph
   (:meth:`FaultState.distances_to`, cached per fault version);
2. if nothing survives, *detours*: every healthy port whose landing node
   strictly reduces the fault-aware distance is offered (any VC) and the
   packet's ``misroutes`` counter ticks.

Routing strictly downhill on the faulted-graph metric is what makes the
fallback sound: a naive "go around and retry DOR" oscillates forever on a
mesh (x-first DOR sends the packet straight back toward a dead vertical
link, a livelock the watchdog duly reports), whereas the BFS metric already
prices the blockage in, so detours commit to the path that actually clears
the fault region and every hop makes progress.  ``misroute_limit`` stays as
a hard livelock bound for *flapping* transient faults, where the metric
changes between hops and monotonicity no longer holds; a packet over the
limit holds its VC until the next fault-set change re-routes it.

At injection, an unreachable destination raises a structured
:class:`~repro.core.resilience.UnreachableDestination` instead of letting
the packet wander.

Deadlock freedom is deliberately **not** preserved under detours: a route
around a dead link can close a channel-dependency cycle that the base
algorithm's VC discipline (dateline classes, Duato escape VCs) was built to
exclude.  Fault-tolerant routing that provably stays deadlock-free needs
topology-specific machinery out of scope here; instead the engine watchdog
converts any resulting deadlock into a :class:`SimulationStalled` diagnosis.
"""

from __future__ import annotations

from ..core.resilience import FaultState, UnreachableDestination
from ..network.packet import Packet
from .base import RouteCandidate, RoutingAlgorithm

__all__ = ["FaultAwareRouting"]

#: returned when a packet has no admissible hop left: the router retries
#: after the next fault-set change (empty list, shared — never mutated)
_HOLD: list = []


class FaultAwareRouting(RoutingAlgorithm):
    """Wrap ``base`` with fault filtering, detours, and misroute fallback."""

    name = "fault-aware"

    def __init__(
        self,
        base: RoutingAlgorithm,
        faults: FaultState,
        *,
        misroute_limit: int | None = None,
    ):
        super().__init__(base.topology, base.num_vcs)
        self.base = base
        self.faults = faults
        if misroute_limit is None:
            topo = base.topology
            diameter = max(
                topo.min_hops(0, node) for node in range(topo.num_nodes)
            )
            misroute_limit = 8 + 4 * diameter
        self.misroute_limit = misroute_limit
        # One shared candidate per network port for detour/misroute hops;
        # detours may use any VC (see module docstring on deadlock freedom).
        self._port_cands = [
            RouteCandidate(port, self.all_vcs)
            for port in range(base.topology.num_network_ports)
        ]

    def on_inject(self, packet: Packet) -> None:
        self.base.on_inject(packet)
        fs = self.faults
        if fs.active and not fs.reachable(packet.src, packet.dst):
            raise UnreachableDestination(
                packet.src, packet.dst, fs.network.now
            )

    def route(self, node: int, packet: Packet) -> list[RouteCandidate]:
        cands = self.base.route(node, packet)
        fs = self.faults
        active = fs.active
        if not active:
            return cands
        topo = self.topology
        local = topo.local_port
        # current_target() is read *after* the base call so any phase
        # advance (VAL/ROMM at their intermediate) is already applied.
        dist = fs.distances_to(packet.current_target())
        here = dist[node]
        survivors = []
        for c in cands:
            if c.out_port == local:
                return cands  # arrived: ejection is never faulted
            if (node, c.out_port) in active:
                continue
            if dist[topo.channel(node, c.out_port).dst] < here:
                survivors.append(c)
        if survivors:
            return survivors
        return self._detour(node, packet, active, dist, here)

    def _detour(
        self, node: int, packet: Packet, active, dist, here
    ) -> list[RouteCandidate]:
        """No base candidate makes progress: go around the failure."""
        if packet.misroutes >= self.misroute_limit:
            return _HOLD  # livelock bound under flapping transient faults
        out: list[RouteCandidate] = []
        topo = self.topology
        for port in range(topo.num_network_ports):
            if (node, port) in active:
                continue
            ch = topo.channel(node, port)
            if ch is not None and dist[ch.dst] < here:
                out.append(self._port_cands[port])
        if not out:
            return _HOLD  # cut off (here is UNREACHABLE); wait for a heal
        packet.misroutes += 1
        return out
