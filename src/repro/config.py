"""Simulation parameter space (paper Tables I and II).

:class:`NetworkConfig` captures every network-level knob evaluated in the
paper's Table I; :class:`CmpConfig` captures the execution-driven
Simics/GEMS+Garnet configuration of Table II.  Defaults are the paper's
baseline (bold values in Table I).

Validation happens eagerly in ``__post_init__`` so that a bad sweep point
fails before a multi-minute simulation starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .classes import DEFAULT_CLASSES, TrafficClass, parse_classes

__all__ = [
    "NetworkConfig",
    "CmpConfig",
    "TrafficClass",
    "FIELD_CHOICES",
    "TABLE_I_PARAMETER_SPACE",
    "TABLE_II_PARAMETERS",
]

_TOPOLOGIES = ("mesh", "torus", "ring", "ideal")
_ROUTERS = ("dor", "val", "ma", "romm")
_ARBITERS = ("round_robin", "age", "priority", "weighted")
_PATTERNS = (
    "uniform_random",
    "bit_reversal",
    "bit_complement",
    "transpose",
    "neighbor",
    "tornado",
    "hotspot",
)
_SIZES = ("single", "bimodal")

#: Legal values per categorical :class:`NetworkConfig` field.  The design
#: space explorer (:mod:`repro.core.explore`) validates gene values against
#: this mapping up front, so a typo'd space fails before any simulation —
#: the same eager-validation stance ``__post_init__`` takes for single
#: configs.  Numeric fields (``k``, ``num_vcs``, ...) are absent: their
#: ranges are open and checked by construction.
FIELD_CHOICES: dict[str, tuple[str, ...]] = {
    "topology": _TOPOLOGIES,
    "routing": _ROUTERS,
    "arbitration": _ARBITERS,
    "traffic": _PATTERNS,
    "packet_size": _SIZES,
}


@dataclass(frozen=True)
class NetworkConfig:
    """Network configuration; defaults are the paper's baseline (Table I).

    Parameters
    ----------
    topology:
        ``"mesh"`` (k-ary 2-cube mesh), ``"torus"`` (folded), ``"ring"`` or
        ``"ideal"`` (fully connected single-cycle network used to define NAR).
    k:
        Radix per dimension; the paper uses 8 (64 nodes) and 16 (256 nodes)
        for network studies and 4 (16 nodes) for the CMP comparison.
    n:
        Number of dimensions (2 for mesh/torus; ignored by ring/ideal).
    num_vcs:
        Virtual channels per physical channel (paper: 2 or 4).
    vc_buffer_size:
        Flit buffer depth per VC, the paper's ``q`` (1..32).
    router_delay:
        Per-hop router pipeline delay in cycles, the paper's ``tr`` (1..8).
    routing:
        ``"dor"``, ``"val"``, ``"ma"`` or ``"romm"``.
    arbitration:
        ``"round_robin"`` or ``"age"`` (the paper's Table I), or the
        class-aware family: ``"priority"`` (strict priority by the packet's
        traffic class, age/pid/ivc tie-break) or ``"weighted"`` (integer
        virtual-time weighted-fair over classes, priority tie-break).
    classes:
        Traffic-class registry — any spec accepted by
        :func:`repro.classes.parse_classes` (``None``, an int, a spec string
        like ``"hi:priority=1:weight=4,lo"``, or a tuple of
        :class:`~repro.classes.TrafficClass`).  Normalized eagerly to the
        tuple form; the default single class is bit-identical to the
        pre-class behaviour.  Multi-class registries split the offered rate
        by class ``share`` and may override the spatial ``pattern`` per
        class.
    link_delay:
        Channel delay in cycles (1 in Table I; the folded torus doubles it
        internally as §III-C notes).
    packet_size:
        ``"single"`` (1 flit) or ``"bimodal"`` (1-flit and 4-flit mix).
    bimodal_long_fraction:
        Fraction of packets that are long under the bimodal distribution.
    traffic:
        Spatial traffic pattern name.
    credit_delay:
        Cycles for a credit to travel upstream.
    seed:
        Root RNG seed for all stochastic streams of the simulation.  Sweep
        drivers derive per-point child seeds from it via
        :func:`repro.rng.sweep_seed`; it is normalized to a plain ``int``
        (numpy integers included) so the derivation and journal round-trips
        are well-defined.
    faults:
        Optional fault-plan spec string (see
        :meth:`repro.core.resilience.FaultPlan.parse`), e.g. ``"links:2"``
        or ``"link:3>4@100-500;router:9"``.  ``None`` (default) simulates a
        healthy network on the exact pre-fault-layer code path.  Random
        link selection (``links:K``) derives from ``seed``, so a faulted
        config is as reproducible as a healthy one.
    """

    topology: str = "mesh"
    k: int = 8
    n: int = 2
    num_vcs: int = 2
    vc_buffer_size: int = 4
    router_delay: int = 1
    routing: str = "dor"
    arbitration: str = "round_robin"
    link_delay: int = 1
    packet_size: str = "single"
    bimodal_long_fraction: float = 0.5
    bimodal_long_size: int = 4
    traffic: str = "uniform_random"
    credit_delay: int = 1
    #: network implementation: "object" (per-flit Python objects, the
    #: reference cycle-level model), "vectorized" (struct-of-arrays numpy
    #: backend, bit-identical on every supported configuration — see
    #: DESIGN.md "Vectorized backend"), or "analytical" (the zero-cycle
    #: queueing estimator of :mod:`repro.analytical`; cycle drivers reject
    #: it with BackendUnsupported pointing at ``repro.analytical.estimate``
    #: / ``repro estimate``).  The backend is part of the result cache
    #: fingerprint, so cached records never cross backends.
    backend: str = "object"
    #: VC-class discipline for DOR on wrapped topologies: "balanced"
    #: (default; both classes carry traffic) or "strict" (textbook
    #: dateline; kept for the ablation study).
    dateline: str = "balanced"
    #: traffic-class registry (see class docstring); normalized to a tuple
    #: of TrafficClass by __post_init__, so any accepted spec form works in
    #: sweep axes and CLI flags alike.
    classes: "tuple[TrafficClass, ...]" = DEFAULT_CLASSES
    seed: int = 1
    faults: "str | None" = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "seed", int(self.seed))
        except (TypeError, ValueError):
            raise ValueError(f"seed must be an integer, got {self.seed!r}") from None
        object.__setattr__(self, "classes", parse_classes(self.classes))
        if self.topology not in _TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}; pick from {_TOPOLOGIES}")
        if self.routing not in _ROUTERS:
            raise ValueError(f"unknown routing {self.routing!r}; pick from {_ROUTERS}")
        if self.arbitration not in _ARBITERS:
            raise ValueError(f"unknown arbitration {self.arbitration!r}; pick from {_ARBITERS}")
        if self.traffic not in _PATTERNS:
            raise ValueError(f"unknown traffic {self.traffic!r}; pick from {_PATTERNS}")
        for cls in self.classes:
            if cls.pattern is not None and cls.pattern not in _PATTERNS:
                raise ValueError(
                    f"class {cls.name!r}: unknown pattern {cls.pattern!r}; "
                    f"pick from {_PATTERNS}"
                )
        if self.packet_size not in _SIZES:
            raise ValueError(f"unknown packet_size {self.packet_size!r}; pick from {_SIZES}")
        if self.dateline not in ("balanced", "strict"):
            raise ValueError(f"unknown dateline {self.dateline!r}")
        if self.backend not in ("object", "vectorized", "analytical"):
            raise ValueError(
                f"unknown backend {self.backend!r}; pick from "
                "('object', 'vectorized', 'analytical')"
            )
        if self.k < 2:
            raise ValueError("k must be >= 2")
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.num_vcs < 2 and self.topology in ("torus", "ring"):
            raise ValueError("torus/ring DOR needs >= 2 VCs for the dateline scheme")
        if self.num_vcs < 2 and self.routing in ("val", "ma", "romm"):
            raise ValueError(f"routing {self.routing!r} needs >= 2 VCs")
        if self.routing in ("val", "ma", "romm") and self.topology not in ("mesh", "ideal"):
            raise ValueError(
                f"routing {self.routing!r} is implemented for the mesh only "
                "(as evaluated in the paper)"
            )
        if self.vc_buffer_size < 1:
            raise ValueError("vc_buffer_size must be >= 1")
        if self.router_delay < 1:
            raise ValueError("router_delay must be >= 1")
        if self.link_delay < 1:
            raise ValueError("link_delay must be >= 1")
        if self.credit_delay < 0:
            raise ValueError("credit_delay must be >= 0")
        if not 0.0 <= self.bimodal_long_fraction <= 1.0:
            raise ValueError("bimodal_long_fraction must be in [0, 1]")
        if self.bimodal_long_size < 2:
            raise ValueError("bimodal_long_size must be >= 2")
        if self.faults is not None:
            if self.topology == "ideal":
                raise ValueError("the ideal network does not model faults")
            # Imported lazily: config is the bottom of the package's import
            # graph, resilience sits above it.
            from .core.resilience import FaultPlan

            FaultPlan.parse(self.faults)  # eager syntax validation

    @property
    def num_classes(self) -> int:
        """Number of traffic classes in the registry."""
        return len(self.classes)

    @property
    def num_nodes(self) -> int:
        """Total node count: k**n for every topology.

        The ring is built on k**n nodes (a 64-node ring is ``k=8, n=2``) so
        that node counts line up across the paper's topology comparison.
        """
        return self.k**self.n

    @property
    def mean_packet_size(self) -> float:
        """Mean flits per packet under the configured size distribution."""
        if self.packet_size == "single":
            return 1.0
        f = self.bimodal_long_fraction
        return (1.0 - f) * 1.0 + f * float(self.bimodal_long_size)

    def with_(self, **changes: Any) -> "NetworkConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class CmpConfig:
    """Execution-driven CMP configuration (paper Table II defaults).

    The paper models 16 in-order SPARC cores on a 4×4 mesh with split 32 KB
    L1s (2-cycle), a 512 KB-per-tile shared L2 (10-cycle), and 300-cycle
    DRAM.  Cache sizes here are expressed in *lines* since the substrate is
    line-granular.
    """

    num_cores: int = 16
    l1_lines: int = 512  # 32 KB / 64 B
    l1_assoc: int = 4
    l1_latency: int = 2
    l2_lines_per_tile: int = 8192  # 512 KB / 64 B
    l2_assoc: int = 8
    l2_latency: int = 10
    memory_latency: int = 300
    line_bytes: int = 64
    mshrs: int = 8
    #: fraction of L1 misses that are blocking loads (in-order pipeline
    #: waits for the reply); the rest are store/prefetch-like.
    blocking_fraction: float = 0.7
    network: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(k=4, n=2, num_vcs=8, vc_buffer_size=4)
    )

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if self.network.num_nodes != self.num_cores:
            raise ValueError(
                f"network has {self.network.num_nodes} nodes but num_cores={self.num_cores}"
            )
        for name in ("l1_lines", "l1_assoc", "l2_lines_per_tile", "l2_assoc", "mshrs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if not 0.0 <= self.blocking_fraction <= 1.0:
            raise ValueError("blocking_fraction must be in [0, 1]")
        if self.l1_lines % self.l1_assoc:
            raise ValueError("l1_lines must be a multiple of l1_assoc")
        if self.l2_lines_per_tile % self.l2_assoc:
            raise ValueError("l2_lines_per_tile must be a multiple of l2_assoc")

    def with_(self, **changes: Any) -> "CmpConfig":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)


#: Paper Table I — the full open/closed-loop parameter space evaluated.
TABLE_I_PARAMETER_SPACE: dict[str, tuple] = {
    "topology": ("8x8 2D mesh", "16x16 2D mesh"),
    "virtual_channels": (2, 4),
    "vc_buffer_size": (1, 2, 4, 8, 16),
    "router_delay": (1, 2, 4, 8),
    "routing": ("DOR", "VAL", "MA", "ROMM"),
    "arbitration": ("round_robin", "age"),
    "link_delay": (1,),
    "link_bandwidth_flits_per_cycle": (1,),
    "packet_sizes": ("1 flit", "bimodal 1/4 flit"),
    "traffic": ("uniform_random", "bit_reversal", "bit_complement", "transpose"),
}

#: Paper Table II — Simics/GEMS+Garnet configuration.
TABLE_II_PARAMETERS: dict[str, str] = {
    "processor": "16 in-order SPARC cores",
    "l1": "split I&D, 32 KB 4-way, 2-cycle, 64 B lines",
    "l2": "shared, 512 KB/tile (8 MB total), 10-cycle, 64 B lines",
    "memory": "300-cycle DRAM",
    "network": "4-ary 2-cube mesh, 16 B links, tr in {1,2,4,8}, 8 VCs x 4 bufs, DOR",
}
