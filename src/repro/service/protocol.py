"""Wire protocol of the sweep service: line-delimited JSON over TCP.

One message per line, UTF-8 JSON objects with a ``"type"`` field, newline
terminated.  The protocol is strictly request/reply and worker-initiated
(workers *pull* work; the controller never opens connections), which keeps
NAT'd and firewalled workers trivial and makes every peer's read loop a
plain ``readline()``.

Message types (``→`` request, ``←`` reply):

========== =============================================================
worker     ``hello`` → ``welcome`` · ``request`` → ``lease``/``idle`` ·
           ``heartbeat`` → ``ok`` · ``result`` → ``ok``/``stale``
client     ``hello`` → ``welcome`` · ``submit`` → ``submitted`` ·
           ``poll`` → ``status`` · ``info`` → ``service``
any        malformed input → ``error`` (connection stays up)
========== =============================================================

Robustness rules every peer follows:

* a line over :data:`MAX_LINE_BYTES` is a protocol violation — the
  connection is dropped rather than buffering unbounded garbage;
* garbage JSON or a non-object line yields an ``error`` reply and the
  connection survives (one bad frame must not kill a worker's leases);
* EOF mid-stream is a disconnect, never an error to retry on the same
  socket.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Mapping, Optional

import numpy as np

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "MessageStream",
    "ProtocolError",
    "decode",
    "encode",
    "parse_address",
]

#: Bumped on incompatible wire changes; ``hello`` carries it both ways.
PROTOCOL_VERSION = 1

#: Hard cap on one frame.  A lease for a large config is a few KiB; 8 MiB
#: leaves room for bulky poll replies while bounding a hostile or corrupt
#: peer's memory impact.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A frame that violates the wire protocol (size, syntax, or shape)."""


def _json_default(obj: Any) -> Any:
    """Keep numpy scalars numeric on the wire (bit-exact floats)."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def encode(msg: Mapping[str, Any]) -> bytes:
    """One message as a newline-terminated UTF-8 JSON line."""
    line = json.dumps(dict(msg), default=_json_default, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(data)} bytes exceeds {MAX_LINE_BYTES}")
    return data


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on any violation."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"frame of {len(line)} bytes exceeds {MAX_LINE_BYTES}")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(f"frame is a JSON {type(msg).__name__}, not an object")
    if not isinstance(msg.get("type"), str):
        raise ProtocolError("frame has no string 'type' field")
    return msg


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; bare port implies localhost.

    IPv6 hosts use the standard bracket form (``"[::1]:9000"``); the
    brackets are the address *syntax*, not part of the host, so they are
    stripped from the returned host (``socket.connect`` rejects them).
    """
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", address
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(
            f"invalid service address {address!r}: port must be an integer"
        ) from None
    if not (0 < port_num < 65536):
        raise ValueError(f"invalid service address {address!r}: port out of range")
    return host or "127.0.0.1", port_num


class MessageStream:
    """Framed messages over one socket, with a locked request/reply helper.

    ``rpc`` holds a lock across the send/recv pair so a worker's heartbeat
    thread and its main loop can share one connection without interleaving
    replies — the protocol is strictly one reply per request, in order.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._lock = threading.Lock()

    def send(self, msg: Mapping[str, Any]) -> None:
        self._sock.sendall(encode(msg))

    def recv(self) -> Optional[dict[str, Any]]:
        """The next message, or ``None`` on a clean EOF."""
        line = self._rfile.readline(MAX_LINE_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"peer sent a frame over {MAX_LINE_BYTES} bytes")
        return decode(line)

    def rpc(self, msg: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request and return its reply; EOF is a ConnectionError."""
        with self._lock:
            self.send(msg)
            reply = self.recv()
        if reply is None:
            raise ConnectionError("connection closed while awaiting reply")
        return reply

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
