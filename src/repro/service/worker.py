"""The sweep-service worker daemon: pull a lease, run it, report back.

A worker is deliberately dumb: it connects, says ``hello``, and loops
``request`` → execute → ``result``.  All scheduling intelligence (leases,
retries, quarantine, fallback) lives in the controller; the worker's only
robustness duties are

* **heartbeats** — a background thread heartbeats on the same connection
  while a point executes (the :class:`~repro.service.protocol.MessageStream`
  lock keeps the request/reply pairs from interleaving), so a *slow* point
  is distinguishable from a *dead* worker;
* **reconnection** — a lost controller connection is retried with capped
  exponential backoff; leases lost with the connection are the
  controller's problem (it re-queues them), never the worker's.

Execution goes through the exact machinery a local sweep uses —
:func:`repro.core.parallel._execute_point` on a reconstructed
:class:`~repro.core.parallel.SweepPoint` — so a record computed remotely
is bit-identical to the one a serial run would produce (modulo
``wall_seconds``).  The runner arrives as the cache's provenance spec
(dotted module name + keyword bindings) and is resolved by import, which
is also what pins the requirement that remote runners be module-level
functions or keyword-only partials over them.
"""

from __future__ import annotations

import functools
import socket
import threading
import time
from typing import Any, Callable, Mapping, Optional

from ..config import NetworkConfig
from ..core import cache as result_cache
from ..core.parallel import SweepPoint, _execute_point, _failed_record
from ..core.resilience import RetryPolicy
from .protocol import MessageStream, ProtocolError

__all__ = ["Worker", "execute_lease", "importable_name", "resolve_runner"]


def importable_name(spec: Mapping[str, Any]) -> Optional[str]:
    """The spec's dotted runner name if workers could import it, else None.

    ``provenance`` reports a dotted name even for lambdas and local
    functions (``module:<lambda>``, ``module:outer.<locals>.f``); those
    names cannot be resolved by ``importlib`` on a worker, so anything
    containing ``<`` is as unusable as no name at all.
    """
    dotted, _ = result_cache.provenance(spec)
    if not dotted or "<" in dotted:
        return None
    return dotted


def resolve_runner(spec: Mapping[str, Any]) -> Callable[..., Any]:
    """Rebuild a runner callable from its cache-provenance spec.

    Raises ``ValueError`` for specs with no importable dotted name (e.g. a
    lambda, or a partial with positional args) and lets import errors
    propagate — the caller turns either into a deterministic failed record.
    """
    dotted, kwargs = result_cache.provenance(spec)
    if importable_name(spec) is None:
        raise ValueError(
            "runner spec is not importable by dotted name; remote execution "
            "needs a module-level runner or a keyword-only functools.partial"
        )
    fn = result_cache._import_runner(dotted)
    return functools.partial(fn, **kwargs) if kwargs else fn


def execute_lease(lease: Mapping[str, Any]) -> dict[str, Any]:
    """Run one leased point; any failure becomes a ``failed=True`` record.

    The record is exactly what a local sweep would produce for the same
    point: same config resolution, same derived seed, same coordinate
    ordering (overrides then extra kwargs).
    """
    point = SweepPoint(
        int(lease["index"]),
        dict(lease["overrides"]),
        dict(lease["kwargs"]),
        int(lease["seed"]),
    )
    try:
        runner = resolve_runner(lease["runner"])
        base = NetworkConfig(**lease["config"])
    except Exception as exc:
        return _failed_record(point, f"{type(exc).__name__}: {exc}")
    return _execute_point(runner, base, point)


class Worker:
    """One worker daemon: connect, pull leases, execute, heartbeat, repeat.

    ``max_points`` / ``max_idle`` bound the daemon's lifetime (handy for
    tests and batch schedulers); ``stop`` (a :class:`threading.Event`)
    requests a graceful exit between points.  ``execute`` is the
    per-lease execution hook — the chaos tests override it to inject
    stalls and crashes without touching the protocol path.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        max_points: Optional[int] = None,
        max_idle: Optional[float] = None,
        reconnect_backoff: float = 0.5,
        max_reconnects: int = 8,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}-{id(self) & 0xFFFF:04x}"
        self.max_points = max_points
        self.max_idle = max_idle
        self.reconnect_backoff = reconnect_backoff
        self.max_reconnects = max_reconnects
        self.log = log or (lambda line: None)
        self.points_done = 0
        self.execute: Callable[[Mapping[str, Any]], dict[str, Any]] = execute_lease

    def run(self, stop: Optional[threading.Event] = None) -> int:
        """Serve until stopped or budget-exhausted; returns points done.

        Connection losses retry with capped exponential backoff (the
        reconnect policy reuses :class:`~repro.core.resilience.RetryPolicy`
        arithmetic); ``max_reconnects`` consecutive failures give up.
        """
        stop = stop or threading.Event()
        policy = RetryPolicy(
            max_retries=self.max_reconnects, backoff=self.reconnect_backoff
        )
        failures = 0
        while not stop.is_set():
            try:
                finished = self._serve_connection(stop)
                failures = 0
                if finished:
                    break
            except (ConnectionError, ProtocolError, OSError) as exc:
                failures += 1
                if failures > self.max_reconnects:
                    self.log(f"giving up after {failures} connection failures: {exc}")
                    break
                delay = policy.delay(failures)
                self.log(f"connection lost ({exc}); reconnecting in {delay:.1f}s")
                if stop.wait(delay):
                    break
        return self.points_done

    def _serve_connection(self, stop: threading.Event) -> bool:
        """One connection's lifetime; True when the worker is done for good."""
        sock = socket.create_connection((self.host, self.port), timeout=30.0)
        sock.settimeout(None)
        with MessageStream(sock) as stream:
            welcome = stream.rpc({"type": "hello", "role": "worker", "name": self.name})
            if welcome.get("type") != "welcome":
                raise ProtocolError(f"controller refused hello: {welcome}")
            heartbeat_interval = float(welcome.get("heartbeat_interval", 2.0))
            self.log(f"registered as {welcome.get('worker_id', self.name)}")
            idle_since: Optional[float] = None
            while not stop.is_set():
                reply = stream.rpc({"type": "request"})
                kind = reply.get("type")
                if kind == "lease":
                    idle_since = None
                    record = self._execute_with_heartbeats(
                        stream, reply, heartbeat_interval
                    )
                    stream.rpc(
                        {
                            "type": "result",
                            "lease_id": reply.get("lease_id"),
                            "job_id": reply.get("job_id"),
                            "record": record,
                        }
                    )
                    self.points_done += 1
                    if self.max_points is not None and self.points_done >= self.max_points:
                        return True
                elif kind == "idle":
                    now = time.monotonic()
                    idle_since = idle_since if idle_since is not None else now
                    if self.max_idle is not None and now - idle_since >= self.max_idle:
                        return True
                    if stop.wait(float(reply.get("backoff", 0.5))):
                        return True
                elif kind == "error":
                    # One bad exchange must not kill the worker's leases.
                    self.log(f"controller error: {reply.get('error')}")
                else:
                    raise ProtocolError(f"unexpected reply type {kind!r}")
            return True

    def _execute_with_heartbeats(
        self,
        stream: MessageStream,
        lease: Mapping[str, Any],
        interval: float,
    ) -> dict[str, Any]:
        """Run the lease while a sibling thread heartbeats on the stream."""
        done = threading.Event()

        def beat() -> None:
            while not done.wait(interval):
                try:
                    stream.rpc({"type": "heartbeat", "lease_id": lease.get("lease_id")})
                except (ConnectionError, ProtocolError, OSError):
                    return  # main loop will hit the same failure and reconnect

        beater = threading.Thread(target=beat, name="worker-heartbeat", daemon=True)
        beater.start()
        try:
            return self.execute(lease)
        finally:
            done.set()
            beater.join(timeout=5.0)
