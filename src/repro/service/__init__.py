"""Distributed sweep service: controller, workers, and the remote client.

The paper's premise is bulk evaluation of design points; this package turns
the process-pool sweep engine (:mod:`repro.core.parallel`) into a fleet
service.  A :class:`Controller` shards sweep points across worker nodes
over a line-delimited-JSON TCP protocol (:mod:`repro.service.protocol`),
leasing each point with a deadline and re-queuing it if the worker dies,
stalls, or disconnects.  :class:`Worker` daemons pull leases, execute them
through the exact same runner machinery as a local sweep (per-point derived
seeds ⇒ records bit-identical to serial), and stream results back.  The
content-addressed result cache (:mod:`repro.core.cache`) acts as the shared
store: the controller answers hits without dispatching, and every worker's
result becomes every client's hit.  :func:`run_remote_sweep` is the client
side — same journal/resume/progress contract as
:func:`repro.core.parallel.run_sweep`, pointed at a ``HOST:PORT``.

See DESIGN.md §5h for the failure model (lease lifecycle, heartbeat and
quarantine state machines, local-pool fallback).
"""

from .client import ServiceClient, run_remote_sweep
from .controller import Controller, ControllerServer, ServiceOptions
from .protocol import MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError, parse_address
from .worker import Worker

__all__ = [
    "Controller",
    "ControllerServer",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceOptions",
    "Worker",
    "parse_address",
    "run_remote_sweep",
]
